"""Developer tooling built on the public API."""

from .report import method_report
from .trace import main as trace_main

__all__ = ["method_report", "trace_main"]
