"""Developer tooling built on the public API."""

from .mutation_stress import main as mutation_stress_main
from .report import method_report
from .trace import main as trace_main

__all__ = ["method_report", "mutation_stress_main", "trace_main"]
