"""Developer tooling built on the public API."""

from .report import method_report

__all__ = ["method_report"]
