"""Differential tenant-isolation chaos harness for the serve layer.

The claim under test: a tenant sharing a :class:`~repro.serve.Service`
with a fault-injected, budget-blowing, quarantine-cycling neighbor
behaves **bit-identically** to the same tenant served alone.  Three
runs, one comparison:

1. **solo** — a fresh service hosts only the *clean* tenant, which
   runs the seeded workload (grammar probes + world mutations from
   :func:`repro.fuzz.gen.stress_kit`).  Every response and the final
   modeled counters are recorded.
2. **mixed** — a fresh service hosts the clean tenant *and* a *faulty*
   tenant, round-robin interleaved on the same workload.  The faulty
   tenant additionally runs periodic bursts of a fuel-hog request
   (deterministic :class:`DeadlineExceeded` failures that trip the
   circuit breaker, exercise quarantine, and force re-admission on a
   fresh zygote fork), under seeded fault plans **scoped to its
   universe** at the compile-pipeline sites.
3. **mixed again** — same seed, to prove the quarantine machinery
   itself (trip points, rejection counts, re-admissions, per-request
   statuses) is deterministic.

Pass criteria (exit 0):

* clean tenant's per-request results in the mixed run == solo run;
* clean tenant's modeled counters (cycles, instructions, code bytes,
  compiles, IC hits/misses/megamorphic) == solo run;
* the zygote world is untouched (lookup epoch unchanged) in both runs;
* every recovery record carries the right universe stamp, and the
  clean tenant logged the same degradations as solo;
* the faulty tenant actually failed, tripped quarantine, and was
  re-admitted (the run proves something), all bit-identically across
  the two mixed runs.

On success a JSON summary (quarantine/readmission/recovery counts) is
written for the CI ``serve-chaos`` job to upload; any violation prints
the difference and exits nonzero.

Usage::

    python -m repro.tools.serve_stress --seed 3 --requests 60 \
        --summary serve-stress-3.json
"""

from __future__ import annotations

import argparse
import json
import random
import sys

from ..fuzz.gen import stress_kit
from ..robustness import faults
from ..robustness.faults import FaultPlan, derived_nth
from ..serve import Service, ServiceConfig, SupervisorPolicy

CLEAN = "clean"
FAULTY = "faulty"

_KIT = stress_kit()
SETUP = _KIT.setup_source
PROBES = tuple(probe.render() for probe in _KIT.probes)

#: the fuel hog: recursion (one activation per step, so the budget's
#: frame-switch checkpoint fires) whose modeled cycle count dwarfs the
#: per-request fuel, making the supervisor's DeadlineExceeded
#: deterministic — fuel is modeled cycles, not wall clock.  A flat
#: ``whileTrue:`` loop would be inlined into one frame and only reach
#: a checkpoint on return (the granularity caveat on ExecutionBudget).
HOG_SETUP = """
| hog = (| parent* = traits clonable.
    burn: n = ( n < 1 ifTrue: [ 0 ] False: [ n + (burn: n - 1) ] ). |).
|"""
HOG = "hog burn: 3000"

#: per-request modeled-cycle fuel; comfortably above every probe,
#: comfortably below the hog — including a hog degraded to the
#: interpreter tier, whose INTERP_SEND_FUEL toll must exhaust this
#: well before the host recursion limit is anywhere near
FUEL = 10_000

#: compile-pipeline sites armed against the faulty tenant (raise mode:
#: the tier ladder contains each fire and logs a recovery event)
FAULT_SITES = (
    faults.SITE_COMPILER_ENGINE,
    faults.SITE_VM_CODEGEN,
    faults.SITE_VM_PREDECODE,
)


def fault_plans(seed: int) -> list:
    """Seeded plans, every one scoped to the faulty tenant's universe."""
    return [
        FaultPlan(
            site=site,
            mode="raise",
            nth=derived_nth(site, seed),
            persistent=bool((seed + index) % 2),
            scope=FAULTY,
        )
        for index, site in enumerate(FAULT_SITES)
    ]


def build_workload(requests: int, seed: int) -> list:
    """Deterministic request stream: probes with mutations mixed in."""
    rng = random.Random(seed)
    mutations = _KIT.mutation_stream(rng)
    sources = []
    for _ in range(requests):
        sources.append(PROBES[rng.randrange(len(PROBES))])
        if rng.random() < 0.25:
            sources.append(next(mutations))
    return sources


def _response_key(response) -> tuple:
    return (
        response.status,
        response.value,
        response.output,
        response.error_kind,
        response.detail,
    )


def _modeled_counters(runtime) -> dict:
    return {
        "cycles": runtime.cycles,
        "instructions": runtime.instructions,
        "code_bytes": runtime.code_bytes,
        "methods_compiled": runtime.methods_compiled,
        "send_hits": runtime.send_hits,
        "send_misses": runtime.send_misses,
        "send_megamorphic": runtime.send_megamorphic,
    }


def _make_service(seed: int) -> Service:
    return Service(
        policy=SupervisorPolicy(
            fuel=FUEL,
            max_retries=2,
            backoff_base_s=0.0,
            failure_threshold=3,
            quarantine_requests=2,
        ),
        config=ServiceConfig(max_queue_depth=64, overload_threshold=32),
        tenant_setup=(SETUP, HOG_SETUP),
    )


def run_solo(sources: list, seed: int) -> dict:
    service = _make_service(seed)
    epoch_before = service.zygote.world.universe.lookup_epoch
    results = [_response_key(service.call(CLEAN, s)) for s in sources]
    runtime = service.tenants[CLEAN].runtime
    return {
        "results": results,
        "counters": _modeled_counters(runtime),
        "recovery": runtime.recovery.to_records(),
        "zygote_epoch_delta": (
            service.zygote.world.universe.lookup_epoch - epoch_before
        ),
    }


def run_mixed(sources: list, seed: int) -> dict:
    service = _make_service(seed)
    # Materialize both tenants before arming faults: forks and tenant
    # setup are admission-time work, not supervised guest execution.
    service.tenant(CLEAN)
    service.tenant(FAULTY)
    epoch_before = service.zygote.world.universe.lookup_epoch
    ambient = faults.installed_plans()
    faults.install(fault_plans(seed))
    clean_results = []
    faulty_results = []
    try:
        for index, source in enumerate(sources):
            clean_results.append(_response_key(service.call(CLEAN, source)))
            # Bursts of three consecutive hogs trip the breaker
            # (failure_threshold=3); everything else mirrors the
            # clean tenant's stream.
            faulty_source = HOG if index % 10 in (4, 5, 6) else source
            faulty_results.append(
                _response_key(service.call(FAULTY, faulty_source))
            )
    finally:
        faults.install(ambient)
    clean_runtime = service.tenants[CLEAN].runtime
    faulty = service.tenants[FAULTY]
    snapshot = service.metrics_snapshot()
    return {
        "results": clean_results,
        "counters": _modeled_counters(clean_runtime),
        "recovery": clean_runtime.recovery.to_records(),
        "zygote_epoch_delta": (
            service.zygote.world.universe.lookup_epoch - epoch_before
        ),
        "faulty_results": faulty_results,
        "faulty_statuses": [r[0] for r in faulty_results],
        "faulty_recovery": faulty.runtime.recovery.to_scoped_records(),
        "clean_recovery_scoped": clean_runtime.recovery.to_scoped_records(),
        "faulty_generation": faulty.generation,
        "breaker_trips": faulty.breaker.trips,
        "serve_metrics": {
            name: value
            for name, value in snapshot.items()
            if name.startswith("serve.")
        },
    }


def run_stress(requests: int, seed: int) -> dict:
    sources = build_workload(requests, seed)
    solo = run_solo(sources, seed)
    mixed = run_mixed(sources, seed)
    mixed_again = run_mixed(sources, seed)

    violations = []

    def check(condition: bool, label: str, detail: str = "") -> None:
        if not condition:
            violations.append({"check": label, "detail": detail})

    for index, (a, b) in enumerate(zip(solo["results"], mixed["results"])):
        if a != b:
            check(
                False, "clean-results-identical",
                f"request {index}: solo={a!r} mixed={b!r}",
            )
            break
    check(
        solo["counters"] == mixed["counters"],
        "clean-counters-identical",
        f"solo={solo['counters']} mixed={mixed['counters']}",
    )
    if solo["recovery"] != mixed["recovery"]:
        diff = [
            f"solo={a!r} mixed={b!r}"
            for a, b in zip(solo["recovery"], mixed["recovery"])
            if a != b
        ]
        check(
            False, "clean-recovery-identical",
            f"solo={len(solo['recovery'])} events, "
            f"mixed={len(mixed['recovery'])} events; "
            + "; ".join(diff[:3]),
        )
    check(
        solo["zygote_epoch_delta"] == 0 and mixed["zygote_epoch_delta"] == 0,
        "zygote-untouched",
        f"solo delta={solo['zygote_epoch_delta']} "
        f"mixed delta={mixed['zygote_epoch_delta']}",
    )
    check(
        all(r["universe"] == CLEAN for r in mixed["clean_recovery_scoped"])
        and all(r["universe"] == FAULTY for r in mixed["faulty_recovery"]),
        "recovery-scope-stamps",
    )
    deadline_failures = mixed["faulty_statuses"].count("deadline")
    check(
        deadline_failures > 0,
        "faulty-tenant-failed",
        "no deadline failures: the hog never blew its fuel budget",
    )
    check(
        mixed["breaker_trips"] > 0 and mixed["faulty_generation"] > 0,
        "quarantine-exercised",
        f"trips={mixed['breaker_trips']} "
        f"readmissions={mixed['faulty_generation']}",
    )
    for key in (
        "faulty_results", "faulty_generation", "breaker_trips",
        "serve_metrics", "results", "counters",
    ):
        check(
            mixed[key] == mixed_again[key],
            "mixed-run-deterministic",
            f"{key} differs between identically-seeded mixed runs",
        )

    status_counts: dict = {}
    for status in mixed["faulty_statuses"]:
        status_counts[status] = status_counts.get(status, 0) + 1
    return {
        "seed": seed,
        "requests": len(sources),
        "ok": not violations,
        "violations": violations,
        "clean_counters": solo["counters"],
        "faulty_status_counts": status_counts,
        "faulty_recovery_events": len(mixed["faulty_recovery"]),
        "clean_recovery_events": len(mixed["recovery"]),
        "breaker_trips": mixed["breaker_trips"],
        "readmissions": mixed["faulty_generation"],
        "serve_metrics": mixed["serve_metrics"],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.serve_stress",
        description="Differential tenant-isolation chaos harness",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--requests", type=int, default=60,
        help="probe requests per tenant (mutations ride along)",
    )
    parser.add_argument(
        "--summary", default="", help="write the JSON summary here"
    )
    args = parser.parse_args(argv)

    summary = run_stress(args.requests, args.seed)
    if args.summary:
        with open(args.summary, "w", encoding="utf-8") as handle:
            json.dump(summary, handle, indent=2, sort_keys=True)
            handle.write("\n")
    if summary["ok"]:
        print(
            "serve-stress seed {}: OK — {} requests, {} quarantine trips, "
            "{} re-admissions, clean tenant bit-identical".format(
                summary["seed"], summary["requests"],
                summary["breaker_trips"], summary["readmissions"],
            )
        )
        return 0
    print(f"serve-stress seed {summary['seed']}: FAIL", file=sys.stderr)
    for violation in summary["violations"]:
        print(
            f"  {violation['check']}: {violation.get('detail', '')}",
            file=sys.stderr,
        )
    return 1


if __name__ == "__main__":
    sys.exit(main())
