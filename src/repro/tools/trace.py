"""Trace one program through the compile+run pipeline.

Usage::

    python -m repro.tools.trace richards
    python -m repro.tools.trace examples/guest/linkedlist.self \
        --run "| l | l: linkedList clone initialize. l addLast: 3. l sum"
    python -m repro.tools.trace sumTo --system oldself90 \
        --chrome trace.json --jsonl trace.jsonl --check

The positional argument is a benchmark name (see ``repro.bench.base``)
or a path to a ``.self`` source file of slot declarations.  The program
is compiled and run with tracing **enabled**; the tool then

* prints the human-readable narrative ("why was this send not inlined /
  this test not elided") reconstructed from the trace,
* prints the unified metrics table for the run,
* writes the Chrome trace-event export (``--chrome``, default
  ``trace.json``; load it in ``chrome://tracing``), and
* optionally writes the JSON-lines export (``--jsonl``) and validates
  the Chrome export structurally (``--check``).
"""

from __future__ import annotations

import argparse
import os
import sys

from ..bench.base import SYSTEMS
from ..obs.export import (
    chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from ..obs.metrics import registry_for_runtime
from ..obs.narrate import narrate
from ..obs.trace import Tracer
from ..vm.runtime import Runtime
from ..world.bootstrap import World


def _load_program(target: str, run: str | None) -> tuple[World, str, str]:
    """Resolve the positional target to (world, run-source, label)."""
    if os.path.exists(target):
        world = World()
        world.add_slots_from(target)
        if run is None:
            raise SystemExit(
                f"{target} is a source file: pass --run EXPR to say what to execute"
            )
        return world, run, os.path.basename(target)
    from ..bench.base import all_benchmarks, get_benchmark

    try:
        benchmark = get_benchmark(target)
    except KeyError:
        raise SystemExit(
            f"{target!r} is neither a file nor a benchmark "
            f"(benchmarks: {', '.join(sorted(all_benchmarks()))})"
        ) from None
    world = World()
    world.add_slots(benchmark.setup_source)
    return world, run if run is not None else benchmark.run_source, benchmark.name


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.tools.trace")
    parser.add_argument(
        "program",
        help="benchmark name (e.g. richards) or path to a .self file",
    )
    parser.add_argument(
        "--run",
        metavar="EXPR",
        default=None,
        help="the do-it to execute (required for a .self file; "
        "overrides the benchmark's run source)",
    )
    parser.add_argument(
        "--system",
        default="newself",
        choices=sorted(SYSTEMS),
        help="compiler configuration to trace under (default: newself)",
    )
    parser.add_argument(
        "--chrome",
        metavar="PATH",
        default="trace.json",
        help="Chrome trace-event output path (default: trace.json; '' disables)",
    )
    parser.add_argument(
        "--jsonl",
        metavar="PATH",
        default=None,
        help="also write the flat JSON-lines trace to PATH",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="validate the Chrome export against the trace schema",
    )
    parser.add_argument(
        "--max-compiles",
        type=int,
        default=50,
        metavar="N",
        help="narrative length bound: paragraphs for the first N compiles",
    )
    args = parser.parse_args(argv)

    world, run_source, label = _load_program(args.program, args.run)
    tracer = Tracer()
    runtime = Runtime(world, SYSTEMS[args.system], tracer=tracer)
    answer = runtime.run(run_source)

    print(f"{label} under {args.system}: answer = {runtime.universe.print_string(answer)}")
    print(
        f"modeled: {runtime.cycles} cycles, {runtime.instructions} instructions, "
        f"{runtime.code_bytes} code bytes, {runtime.methods_compiled} bodies compiled"
    )
    print()
    print(narrate(tracer, max_compiles=args.max_compiles))
    print()
    print(registry_for_runtime(runtime).render(title=f"metrics ({label} / {args.system})"))

    if args.chrome:
        write_chrome_trace(tracer, args.chrome)
        print(f"\nwrote {args.chrome} (load in chrome://tracing)")
    if args.jsonl:
        write_jsonl(tracer, args.jsonl)
        print(f"wrote {args.jsonl}")
    if args.check:
        problems = validate_chrome_trace(chrome_trace(tracer))
        if problems:
            print("trace schema check FAILED:", file=sys.stderr)
            for problem in problems:
                print(f"  {problem}", file=sys.stderr)
            return 1
        print("trace schema check: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
