"""``repro.tools.top`` — a perf-top-style view of a live workload.

Runs a benchmark on a profiled runtime and renders the profiler's view
of it: the hottest send sites (by send count, the paper's unit of
cost), the hottest code bodies (by deterministic activation/branch
ticks), tier occupancy, and the inline-cache lifecycle states — the
interactive version of the evidence section 6.1 of the paper builds by
hand for richards.

Live mode re-runs the workload and repaints between iterations::

    python -m repro.tools.top --workload richards

``--once`` runs the workload to its promotion threshold, renders a
single snapshot, and exits — the scriptable/CI form, optionally
dumping the raw profile (``--json``), a speedscope file
(``--speedscope``), and collapsed stacks (``--collapsed``)::

    python -m repro.tools.top --workload richards --once \\
        --json richards-profile.json \\
        --speedscope richards.speedscope.json --check
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Optional

from ..obs.export import validate_speedscope, write_collapsed, write_speedscope

#: ANSI clear-screen + home, used between live repaints
_CLEAR = "\x1b[2J\x1b[H"


def render_top(profile: dict, top: int = 10, title: str = "") -> str:
    """The perf-top style panel for one profiler snapshot."""
    lines = []
    if title:
        lines.append(title)
    ticks = profile["ticks"]
    tiers = profile["tiers"]
    total = ticks["total"] or 1
    occupancy = "  ".join(
        f"{name} {100.0 * tiers.get(name, 0) / total:5.1f}%"
        for name in ("translated", "optimizing", "pessimistic", "interpreter")
    )
    lines.append(
        f"ticks {ticks['total']} (activation {ticks['activation']}, "
        f"branch {ticks['branch']}, interp {ticks['interp']})"
    )
    lines.append(f"tier occupancy: {occupancy}")
    events = profile["ic_events"]
    lines.append(
        f"ic cold-path events: miss {events.get('miss', 0)}  "
        f"relink {events.get('relink', 0)}  pic {events.get('pic', 0)}  "
        f"mega {events.get('mega', 0)}"
    )
    fanout = profile["fanout_histogram"]
    lines.append(
        "fan-out histogram: "
        + "  ".join(f"{k} maps x{v}" for k, v in fanout.items())
    )
    lines.append("")
    lines.append(
        f"  {'sends':>8} {'hits':>8} {'miss':>6} {'relink':>7} "
        f"{'fan':>4}  {'ladder':8} {'state':16} site"
    )
    for row in profile["sites"][:top]:
        if row.get("mega"):
            ladder = "mega"
        elif row.get("pic_depth"):
            ladder = f"pic({row['pic_depth']})"
        else:
            ladder = "mono"
        lines.append(
            f"  {row['sends']:>8} {row['hits']:>8} {row['misses']:>6} "
            f"{row['relinks']:>7} {row['fanout']:>4}  {ladder:8} "
            f"{row['state']:16} "
            f"{row['owner']}#{row['index']} {row['selector']}"
        )
    lines.append("")
    lines.append(f"  {'ticks':>8} {'activ':>8} {'tier':12} body")
    for body in profile["bodies"][:top]:
        lines.append(
            f"  {body['ticks']:>8} {body['activations']:>8} "
            f"{body['tier']:12} {body['name']}"
        )
    return "\n".join(lines)


def _build_runtime(workload: str, system: str, threshold: Optional[int]):
    from ..bench.base import SYSTEMS, get_benchmark
    from ..vm.runtime import Runtime
    from ..world.bootstrap import World

    benchmark = get_benchmark(workload)
    world = World(universe_id="u0")
    world.add_slots(benchmark.setup_source)
    runtime = Runtime(world, SYSTEMS[system], profile=True)
    if threshold is not None:
        runtime.translate_threshold = threshold
    return benchmark, runtime


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.top",
        description="perf-top for the modeled runtime: hottest send "
        "sites, hottest bodies, tier occupancy, IC lifecycle states.",
    )
    parser.add_argument(
        "--workload", default="richards",
        help="benchmark to run (default: richards)",
    )
    parser.add_argument(
        "--system", default="newself",
        help="system configuration (default: newself)",
    )
    parser.add_argument(
        "--once", action="store_true",
        help="run to the promotion threshold, print one snapshot, exit",
    )
    parser.add_argument(
        "--iterations", type=int, default=0,
        help="live refreshes before exiting (0 = until interrupted)",
    )
    parser.add_argument(
        "--interval", type=float, default=0.0,
        help="seconds to sleep between live refreshes",
    )
    parser.add_argument(
        "--top", type=int, default=10,
        help="rows per table (default: 10)",
    )
    parser.add_argument(
        "--threshold", type=int, default=None,
        help="override REPRO_TRANSLATE_THRESHOLD for this run",
    )
    parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="write the raw profile snapshot as JSON",
    )
    parser.add_argument(
        "--speedscope", default=None, metavar="PATH",
        help="write a speedscope flamegraph file",
    )
    parser.add_argument(
        "--collapsed", default=None, metavar="PATH",
        help="write collapsed stacks (flamegraph.pl input)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="validate the speedscope export; nonzero exit on problems",
    )
    args = parser.parse_args(argv)

    benchmark, runtime = _build_runtime(
        args.workload, args.system, args.threshold
    )
    from ..lang.parser import parse_doit

    doit = parse_doit(benchmark.run_source)
    title = f"repro top — {benchmark.name} under {args.system}"

    if args.once:
        runs = max(2, runtime.translate_threshold + 1)
        for _ in range(runs):
            result = runtime.run_doit(doit)
        profile = runtime.profiler.snapshot()
        print(render_top(profile, args.top, f"{title} (x{runs} -> {result!r})"))
    else:
        iteration = 0
        profile = None
        try:
            while args.iterations <= 0 or iteration < args.iterations:
                runtime.run_doit(doit)
                iteration += 1
                profile = runtime.profiler.snapshot()
                sys.stdout.write(_CLEAR)
                print(render_top(profile, args.top, f"{title} (run {iteration})"))
                sys.stdout.flush()
                if args.interval:
                    time.sleep(args.interval)
        except KeyboardInterrupt:  # pragma: no cover - interactive exit
            pass
        if profile is None:
            profile = runtime.profiler.snapshot()

    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(runtime.profiler.to_json())
    problems = []
    if args.speedscope or args.check:
        from ..obs.export import speedscope_profile

        doc = (
            write_speedscope(profile, args.speedscope, name=title)
            if args.speedscope
            else speedscope_profile(profile, name=title)
        )
        if args.check:
            problems = validate_speedscope(doc)
            for problem in problems:
                print(f"speedscope: {problem}", file=sys.stderr)
    if args.collapsed:
        write_collapsed(profile, args.collapsed)
    return 1 if problems else 0


if __name__ == "__main__":  # pragma: no cover - CLI shim
    sys.exit(main())
