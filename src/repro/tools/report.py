"""Per-method optimization reports.

``method_report`` compiles one method under several configurations and
renders a side-by-side summary: node mix, loop versions and their hot
paths, and the compiler's effort counters — the view a compiler
developer wants when asking "what did each system do with this code?".
The numbers come through the unified metrics registry
(:func:`repro.obs.metrics.collect_graph`), so the report and the bench
metrics table read the same names.

Usage::

    from repro.tools import method_report
    print(method_report(world, "triangleNumber:"))

As a CLI, the module runs a benchmark workload on a live runtime and
appends the translation-tier stats (bodies translated, emit seconds,
fallback entries), so the fourth tier's behavior is inspectable without
wiring up a bench run::

    python -m repro.tools.report --workload sumTo
    python -m repro.tools.report frequency --workload richards

``--profile`` runs the workload on a profiled runtime and appends the
hot-send-site table and the IC-churn narrative (see
:mod:`repro.obs.profile`); ``--results BENCH_results.json`` instead
renders the metrics of a previously written bench-results file —
including per-universe scoped keys (``u0/vm.cycles``) from
``REPRO_SCOPED_METRICS=1`` runs::

    python -m repro.tools.report --workload richards --profile
    python -m repro.tools.report --results BENCH_results.json
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from ..compiler import NEW_SELF, OLD_SELF_90, ST80, STATIC_C, CompilerConfig, compile_code
from ..compiler.result import CompiledGraph
from ..ir.analysis import summarize_loops
from ..objects.model import SelfMethod
from ..obs.metrics import MetricsRegistry, collect_graph
from ..world.bootstrap import World
from ..world.lookup import lookup_slot

DEFAULT_CONFIGS = (ST80, OLD_SELF_90, NEW_SELF, STATIC_C)

_NODE_COLUMNS = (
    ("SendNode", "sends"),
    ("PrimCallNode", "prim calls"),
    ("TypeTestNode", "type tests"),
    ("ArithOvNode", "checked arith"),
    ("ArithNode", "bare arith"),
    ("BoundsCheckNode", "bounds checks"),
    ("MergeNode", "merges"),
    ("LoopHeadNode", "loop heads"),
)


def compile_for_report(
    world: World,
    selector: str,
    config: CompilerConfig,
    holder_name: Optional[str] = None,
) -> CompiledGraph:
    holder = world.get_global(holder_name) if holder_name else world.lobby
    found = lookup_slot(world.universe, holder, selector)
    if found is None:
        raise KeyError(f"{selector!r} not found on {holder_name or 'the lobby'}")
    value = found[1].value
    if not isinstance(value, SelfMethod):
        raise TypeError(f"{selector!r} is not a method slot")
    return compile_code(
        world.universe, config, value.code,
        world.universe.map_of(holder), selector,
    )


def registry_for_graph(graph: CompiledGraph) -> MetricsRegistry:
    """One compiled graph's stats as a metrics registry."""
    registry = MetricsRegistry()
    collect_graph(registry, graph)
    return registry


def method_report(
    world: World,
    selector: str,
    holder_name: Optional[str] = None,
    configs: Sequence[CompilerConfig] = DEFAULT_CONFIGS,
) -> str:
    """A side-by-side compilation report for one method."""
    graphs = [
        (config, compile_for_report(world, selector, config, holder_name))
        for config in configs
    ]
    registries = [registry_for_graph(g) for _, g in graphs]
    lines = [f"method report: {selector!r}"]
    header = f"  {'':16}" + "".join(f"{c.name:>14}" for c, _ in graphs)
    lines.append(header)
    lines.append(
        f"  {'total nodes':16}"
        + "".join(f"{r.get('graph.nodes.total'):>14}" for r in registries)
    )
    for key, label in _NODE_COLUMNS:
        lines.append(
            f"  {label:16}"
            + "".join(
                f"{r.get(f'graph.nodes.{key}') or 0:>14}" for r in registries
            )
        )
    lines.append(
        f"  {'loop analysis':16}"
        + "".join(
            f"{r.get('compiler.loop_analysis_iterations') or 0:>13}x"
            for r in registries
        )
    )
    lines.append("")
    for config, graph in graphs:
        summaries = summarize_loops(graph.start)
        if not summaries:
            continue
        lines.append(f"  {config.name} loop versions:")
        for summary in summaries:
            role = "common-case" if summary.is_common_case else (
                f"hands off to v{summary.hands_off_to}"
                if summary.hands_off_to is not None
                else "general"
            )
            lines.append(
                f"    L{summary.loop_id}v{summary.version} [{role}] "
                f"tests={summary.type_tests} ov={summary.overflow_checks} "
                f"bounds={summary.bounds_checks} sends={summary.sends} "
                f"len={summary.length}"
            )
    return "\n".join(lines)


def translation_report(runtime) -> str:
    """The translation tier's accounting for one Runtime, rendered."""
    stats = runtime.translate_stats
    lines = [
        "translation tier:",
        f"  threshold        {runtime.translate_threshold}"
        + ("" if runtime.translate_threshold else " (disabled)"),
        f"  modeled counters {'on' if runtime.modeled_counters else 'off'}",
        f"  translated       {stats['translated']}",
        f"  reused           {stats['reused']}",
        f"  retired          {stats['retired']}",
        f"  fallback entries {stats['fallback_entries']}",
        f"  emit failed      {stats['emit_failed']}",
        f"  emit seconds     {stats['emit_seconds']:.4f}",
    ]
    if runtime.pic_enabled:
        lines.append(
            f"  dispatch ladder  pic(depth {runtime.pic_depth}), "
            f"{runtime.mega_transitions} mega transitions, "
            f"{runtime.mega_table_hits} table hits"
        )
    else:
        lines.append("  dispatch ladder  off (REPRO_PIC=0)")
    return "\n".join(lines)


def hot_site_table(profile: dict, top: int = 10) -> str:
    """The profiler's hottest send sites, rendered (paper-style: send
    counts are the unit of cost, IC behavior the explanation)."""
    lines = [
        "hot send sites:",
        f"  {'sends':>8} {'hits':>8} {'miss':>6} {'relink':>7} "
        f"{'fan':>4}  {'ladder':8} {'state':16} site",
    ]
    for row in profile.get("sites", [])[:top]:
        if row.get("mega"):
            ladder = "mega"
        elif row.get("pic_depth"):
            ladder = f"pic({row['pic_depth']})"
        else:
            ladder = "mono"
        lines.append(
            f"  {row['sends']:>8} {row['hits']:>8} {row['misses']:>6} "
            f"{row['relinks']:>7} {row['fanout']:>4}  {ladder:8} "
            f"{row['state']:16} "
            f"{row['owner']}#{row['index']} {row['selector']}"
        )
    return "\n".join(lines)


def ic_churn_narrative(profile: dict, top: int = 5) -> str:
    """The IC lifecycle story: which sites drifted away from
    monomorphic, when, and what that churn cost — the section 6.1
    narrative, reconstructed from the lifecycle transitions."""
    events = profile.get("ic_events", {})
    churned = [
        row for row in profile.get("sites", [])
        if row.get("transitions") and row["fanout"] > 1
    ]
    churned.sort(key=lambda r: (-r["relinks"], -r["sends"]))
    lines = [
        "inline-cache churn:",
        f"  cold-path events: {events.get('miss', 0)} misses, "
        f"{events.get('relink', 0)} relinks, {events.get('pic', 0)} PIC "
        f"hits, {events.get('mega', 0)} table hits",
    ]
    if not churned:
        lines.append(
            "  every polymorphic site stayed quiet — no lifecycle "
            "transitions recorded"
        )
        return "\n".join(lines)
    for row in churned[:top]:
        site = f"{row['owner']}#{row['index']} {row['selector']}"
        steps = " -> ".join(
            f"{to}@t{tick}" for tick, _from, to in row["transitions"]
        )
        share = (
            100.0 * row["relinks"] / row["sends"] if row["sends"] else 0.0
        )
        lines.append(
            f"  {site}: {row['state']} after {steps}; "
            f"{row['relinks']} relinks over {row['sends']} sends "
            f"({share:.1f}% took the cold path)"
        )
    return "\n".join(lines)


def results_report(payload: dict, prefixes: tuple = (
    "vm.", "ic.", "dispatch.", "tiers.", "translate.", "profile.",
)) -> str:
    """Render the metrics of a ``BENCH_results.json`` payload.

    Handles both flat metric names and per-universe scoped keys
    (``u0/vm.cycles``): keys are grouped by scope, filtered by the base
    name's prefix, and rendered per (benchmark, system) result.
    """
    from ..obs.metrics import split_scoped

    results = payload.get("results", [])
    lines = [f"bench results ({payload.get('schema', 'unknown schema')}):"]
    for result in results:
        label = f"{result.get('benchmark')} under {result.get('system')}"
        if result.get("failed"):
            lines.append(f"\n{label}: FAILED {result.get('error', '')}")
            continue
        lines.append(f"\n{label}: cycles={result.get('cycles')}")
        by_scope: dict = {}
        for key, value in result.get("metrics", {}).items():
            scope, base = split_scoped(key)
            if not base.startswith(prefixes):
                continue
            by_scope.setdefault(scope, []).append((base, value))
        for scope in sorted(by_scope, key=lambda s: (s is not None, s)):
            if scope is not None:
                lines.append(f"  [universe {scope}]")
            for base, value in sorted(by_scope[scope]):
                if isinstance(value, dict):
                    value = (
                        f"n={value.get('count')} sum={value.get('sum')}"
                    )
                elif isinstance(value, float):
                    value = f"{value:.4f}"
                lines.append(f"  {base:36} {value}")
    return "\n".join(lines)


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.report",
        description=(
            "Run a benchmark workload and report per-method compilation "
            "plus translation-tier stats."
        ),
    )
    parser.add_argument(
        "selector", nargs="?", default=None,
        help="optional method selector for a side-by-side compile report",
    )
    parser.add_argument(
        "--holder", default=None,
        help="global holding the selector (default: the lobby)",
    )
    parser.add_argument(
        "--workload", default="sumTo",
        help="benchmark to execute for runtime stats (default: sumTo)",
    )
    parser.add_argument(
        "--threshold", type=int, default=None,
        help="override REPRO_TRANSLATE_THRESHOLD for this run",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="profile the workload run and append the hot-site table "
        "and IC-churn narrative",
    )
    parser.add_argument(
        "--results", default=None, metavar="PATH",
        help="render a BENCH_results.json file instead of running a "
        "workload (scoped u0/vm.* metric keys supported)",
    )
    args = parser.parse_args(argv)

    if args.results:
        import json

        with open(args.results, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        print(results_report(payload))
        return 0

    from ..bench.base import SYSTEMS, get_benchmark
    from ..lang.parser import parse_doit
    from ..vm.runtime import Runtime

    benchmark = get_benchmark(args.workload)
    world = World()
    world.add_slots(benchmark.setup_source)
    runtime = Runtime(world, SYSTEMS["newself"], profile=args.profile)
    if args.threshold is not None:
        runtime.translate_threshold = args.threshold
    doit = parse_doit(benchmark.run_source)
    # run enough times to cross the promotion threshold
    runs = max(2, runtime.translate_threshold + 1)
    for _ in range(runs):
        result = runtime.run_doit(doit)
    print(f"workload {benchmark.name!r} x{runs} -> {result!r}")
    print()
    if args.selector:
        print(method_report(world, args.selector, args.holder))
        print()
    print(translation_report(runtime))
    if args.profile:
        profile = runtime.profiler.snapshot()
        print()
        print(hot_site_table(profile))
        print()
        print(ic_churn_narrative(profile))
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI shim
    sys.exit(main())
