"""Mutation-stress driver: seeded world churn, differentially checked.

Generates a deterministic stream of world mutations (constant-slot
rewrites, slot additions/removals, parent-slot grafts) interleaved with
computation do-its, runs it twice — once on the reference interpreter,
once on the optimizing VM with code sharing and (optionally) the
persistent code cache enabled — and verifies every intermediate answer
agrees.  The point is volume: hundreds of invalidation waves against
live caches, with the dependency registry, IC flushes, code retirement,
and deopt storms all firing for real.

Exits nonzero on the first divergence; on success writes a JSON summary
(invalidation stats, recovery-log totals, per-stage recovery counts)
for the CI chaos job to upload as an artifact.

Usage::

    python -m repro.tools.mutation_stress --rounds 120 --seed 3 \
        --code-cache /tmp/ms-cache --summary mutation-stress.json
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import time

from ..fuzz.gen import stress_kit

#: the canonical workload, built from the shared fuzz grammar
#: (``repro.fuzz.gen.stress_kit``) instead of hard-coded literals
_KIT = stress_kit()

SETUP = _KIT.setup_source

#: computation do-its replayed between mutations (each exercises folds,
#: inlining, prediction, and dynamic sends over the mutable globals)
PROBES = tuple(probe.render() for probe in _KIT.probes)


def _mutations(rng: random.Random):
    """An endless deterministic stream of mutation do-its."""
    return _KIT.mutation_stream(rng)


def build_script(rounds: int, seed: int) -> list:
    rng = random.Random(seed)
    stream = _mutations(rng)
    script = []
    for _ in range(rounds):
        script.append(next(stream))
        script.append(PROBES[rng.randrange(len(PROBES))])
    return script


def run_stress(rounds: int, seed: int, code_cache: str = "",
               max_seconds: float = 0) -> dict:
    from ..compiler.config import NEW_SELF
    from ..vm.runtime import Runtime
    from ..world.bootstrap import World

    os.environ["REPRO_SHARE_CODE"] = "1"
    if code_cache:
        os.environ["REPRO_CODE_CACHE"] = code_cache

    script = build_script(rounds, seed)

    interp_world = World()
    interp_world.add_slots(SETUP)
    vm_world = World()
    vm_world.add_slots(SETUP)
    runtime = Runtime(vm_world, NEW_SELF)

    deadline = time.monotonic() + max_seconds if max_seconds else None
    divergences = []
    steps_run = 0
    for index, step in enumerate(script):
        if deadline is not None and time.monotonic() >= deadline:
            break  # wall-clock bound for CI; whatever ran was checked
        steps_run += 1
        expected = interp_world.universe.print_string(interp_world.eval(step))
        got = vm_world.universe.print_string(runtime.run(step))
        if got != expected:
            divergences.append(
                {"step": index, "source": step, "expected": expected, "got": got}
            )
            break  # state has forked; later comparisons are noise

    deps = vm_world.universe.deps
    recovery_stages: dict = {}
    for event in runtime.recovery:
        recovery_stages[event.stage] = recovery_stages.get(event.stage, 0) + 1
    summary = {
        "rounds": rounds,
        "seed": seed,
        "steps": len(script),
        "steps_run": steps_run,
        "truncated": steps_run < len(script) and not divergences,
        "divergences": divergences,
        "invalidation": dict(deps.stats),
        "dependency_edges_live": deps.edge_count(),
        "recovery_total": runtime.recovery.total,
        "recovery_dropped": runtime.recovery.dropped,
        "recovery_stages": recovery_stages,
        "code_cache": dict(runtime.code_cache.stats)
        if runtime.code_cache is not None
        else None,
    }
    return summary


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.tools.mutation_stress")
    parser.add_argument("--rounds", type=int, default=100,
                        help="mutation/probe round count (default 100)")
    parser.add_argument("--seed", type=int, default=0,
                        help="PRNG seed for the mutation stream")
    parser.add_argument("--code-cache", default="",
                        help="enable the persistent code cache at this path")
    parser.add_argument("--max-seconds", type=float, default=0,
                        help="wall-clock bound; 0 means unbounded")
    parser.add_argument("--summary", default="",
                        help="write the JSON summary to this file")
    args = parser.parse_args(argv)

    summary = run_stress(args.rounds, args.seed, args.code_cache,
                         max_seconds=args.max_seconds)
    rendered = json.dumps(summary, indent=2, sort_keys=True)
    if args.summary:
        with open(args.summary, "w", encoding="utf-8") as handle:
            handle.write(rendered + "\n")
    print(rendered)
    if summary["divergences"]:
        print("MUTATION STRESS: DIVERGED", file=sys.stderr)
        return 1
    print(
        f"mutation stress: {summary['steps_run']} steps, "
        f"{summary['invalidation']['invalidations']} invalidation waves, "
        f"{summary['invalidation']['codes_retired']} bodies retired, "
        "0 divergences"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
