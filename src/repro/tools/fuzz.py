"""Differential fuzzing CLI: generate, cross-check, shrink, replay.

Drives the :mod:`repro.fuzz` subsystem from the command line.  Two
modes:

**Fuzz** (the default) — generate seeded programs round-robin over the
grammar profiles, run each through the reference interpreter and a
sampled slice of the config × cache × translation × tier matrix, and
classify every cell.  Any failing cell is delta-debugged down to a
minimal repro and written to the corpus directory.  A JSON summary
(per-config cell counts, classification histogram, cell-coverage map,
obs-registry metrics) is printed and optionally written to a file for
CI to upload.  Exits nonzero if any cell failed.

**Replay** (``--replay PATH``) — re-run checked-in repro files (or a
whole corpus directory), re-arming any recorded fault plans, and verify
each reproduces its recorded classification in its recorded cell.

Usage::

    python -m repro.tools.fuzz --seed 0 --max-programs 300 \
        --max-seconds 240 --summary fuzz-summary.json --corpus corpus
    python -m repro.tools.fuzz --plant "fuzz.probe.result:corrupt:3" \
        --max-programs 1 --corpus /tmp/repros
    python -m repro.tools.fuzz --replay corpus
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time

SUMMARY_SCHEMA = "repro-fuzz-summary/1"

DEFAULT_PROFILES = ("mixed", "arith", "mutation", "control")


def _parse_plans(spec: str):
    from ..robustness.faults import FaultPlan

    plans = []
    for chunk in spec.split(";"):
        chunk = chunk.strip()
        if chunk:
            plans.append(FaultPlan.from_spec(chunk))
    return tuple(plans)


def run_fuzz(args) -> int:
    from ..fuzz import Oracle, generate

    plans = _parse_plans(args.plant) if args.plant else ()
    profiles = [p.strip() for p in args.profiles.split(",") if p.strip()]

    started = time.monotonic()
    deadline = started + args.max_seconds if args.max_seconds else None
    truncated = False

    classifications: dict = {}
    config_cells: dict = {}
    cell_coverage: dict = {}
    failures = []
    repro_paths = []
    programs = 0
    probes = 0
    cells = 0

    with tempfile.TemporaryDirectory(prefix="fuzz-cache-") as cache_root:
        oracle = Oracle(cache_root=args.cache_root or cache_root,
                        plans=plans)
        for index in range(args.max_programs):
            if deadline is not None and time.monotonic() >= deadline:
                truncated = True
                break
            program = generate(
                args.seed + index, profiles[index % len(profiles)],
                size=args.size,
            )
            report = oracle.run_program(
                program, index=index, per_program=args.per_program,
            )
            programs += 1
            probes += len(program.probe_sources)
            for cell_report in report.cells:
                cells += 1
                kind = cell_report.classification
                classifications[kind] = classifications.get(kind, 0) + 1
                config = cell_report.cell.split("/", 1)[0]
                per = config_cells.setdefault(config, {})
                per[kind] = per.get(kind, 0) + 1
                cell_coverage[cell_report.cell] = (
                    cell_coverage.get(cell_report.cell, 0) + 1
                )
            if not report.ok:
                failures.append(report.to_record())
                repro_paths.extend(
                    _shrink_failures(oracle, program, report, args, plans)
                )

    summary = {
        "schema": SUMMARY_SCHEMA,
        "seed": args.seed,
        "profiles": profiles,
        "size": args.size,
        "per_program": args.per_program,
        "programs": programs,
        "probes": probes,
        "cells": cells,
        "elapsed_seconds": round(time.monotonic() - started, 3),
        "truncated": truncated,
        "classifications": classifications,
        "config_cells": config_cells,
        "cell_coverage": cell_coverage,
        "failures": failures,
        "repros": repro_paths,
        "planted": [args.plant] if args.plant else [],
        "metrics": oracle.metrics.snapshot(),
    }
    rendered = json.dumps(summary, indent=2, sort_keys=True)
    if args.summary:
        with open(args.summary, "w", encoding="utf-8") as handle:
            handle.write(rendered + "\n")
    print(rendered)
    if failures:
        print(f"FUZZ: {len(failures)} failing program(s); "
              f"repros: {', '.join(repro_paths) or 'none written'}",
              file=sys.stderr)
        return 1
    print(f"fuzz: {programs} programs, {probes} probes, {cells} cells, "
          f"0 failures ({summary['elapsed_seconds']}s"
          f"{', truncated' if truncated else ''})")
    return 0


def _shrink_failures(oracle, program, report, args, plans) -> list:
    """Shrink the first failing cell of a program; write the repro."""
    from ..fuzz import Cell, shrink
    from ..fuzz.shrink import save_repro

    paths = []
    failing = report.failures()[0]
    if failing.cell == "reference":
        return paths  # nothing to bisect: the reference itself crashed
    cell = Cell.from_key(failing.cell)
    try:
        shrunk, final, runs = shrink(program, cell, oracle, failing)
    except Exception as err:  # a shrink bug must not eat the finding
        print(f"shrink failed for {program.pid}: "
              f"{type(err).__name__}: {err}", file=sys.stderr)
        shrunk, final, runs = program, failing, 0
    note = (f"seed={program.seed} profile={program.profile} "
            f"shrunk in {runs} predicate runs")
    paths.append(save_repro(
        shrunk, cell, final, args.corpus, plans=plans, note=note,
    ))
    return paths


def run_replay(args) -> int:
    from ..fuzz import Oracle
    from ..fuzz.shrink import load_repro
    from ..robustness.faults import FaultPlan

    paths = []
    for entry in args.replay:
        if os.path.isdir(entry):
            paths.extend(
                os.path.join(entry, name)
                for name in sorted(os.listdir(entry))
                if name.endswith(".json")
            )
        else:
            paths.append(entry)
    if not paths:
        print("replay: no repro files found", file=sys.stderr)
        return 1

    mismatches = 0
    with tempfile.TemporaryDirectory(prefix="fuzz-replay-") as cache_root:
        for path in paths:
            program, cell, record = load_repro(path)
            plans = tuple(
                FaultPlan.from_spec(spec) for spec in record.get("plans", ())
            )
            oracle = Oracle(cache_root=cache_root, plans=plans)
            report = oracle.run_cell(program, cell)
            want = record["classification"]
            status = "ok" if report.classification == want else "MISMATCH"
            if status != "ok":
                mismatches += 1
            print(f"{status}: {os.path.basename(path)} [{cell.key}] "
                  f"recorded={want} observed={report.classification}"
                  + (f" ({report.detail})" if report.detail else ""))
    if mismatches:
        print(f"REPLAY: {mismatches}/{len(paths)} repro(s) no longer "
              f"reproduce their recorded classification", file=sys.stderr)
        return 1
    print(f"replay: {len(paths)} repro(s) reproduced")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.tools.fuzz")
    parser.add_argument("--seed", type=int, default=0,
                        help="base seed; program i uses seed+i")
    parser.add_argument("--max-programs", type=int, default=100,
                        help="program budget (default 100)")
    parser.add_argument("--max-seconds", type=float, default=0,
                        help="wall-clock bound; 0 means unbounded")
    parser.add_argument("--profiles", default=",".join(DEFAULT_PROFILES),
                        help="comma-separated grammar-weight profiles")
    parser.add_argument("--size", type=int, default=12,
                        help="probe budget per program (default 12)")
    parser.add_argument("--per-program", type=int, default=3,
                        help="sampled matrix cells per program, beyond "
                             "the baseline (default 3)")
    parser.add_argument("--cache-root", default="",
                        help="directory for per-cell code caches "
                             "(default: a private temp dir)")
    parser.add_argument("--corpus", default="corpus",
                        help="where shrunken repros are written")
    parser.add_argument("--summary", default="",
                        help="write the JSON summary to this file")
    parser.add_argument("--plant", default="",
                        help="fault-plan spec(s) to arm in every cell, "
                             "';'-separated (site[:mode][:nth[+]])")
    parser.add_argument("--replay", nargs="+", default=None,
                        metavar="PATH",
                        help="replay repro file(s)/corpus dir(s) instead "
                             "of fuzzing")
    args = parser.parse_args(argv)

    if args.replay:
        return run_replay(args)
    return run_fuzz(args)


if __name__ == "__main__":
    sys.exit(main())
