"""Cycle and code-size cost models.

The paper measured wall-clock time on a Sun-4/260 and bytes of SPARC
machine code.  Our backend stops at bytecode, so we attach a
deterministic cost model to every instruction.  **The model is per
system-architecture class, not per benchmark**: each configuration gets
one table justified by how its real counterpart generated code, and the
same table is used for every program.

* ``static`` (optimized C): register-allocated RISC code — moves are
  coalesced away, every op is ~1 cycle, calls are direct.
* ``new SELF``: the same RISC ops, but register allocation is weaker
  (the paper credits part of its speedup to regalloc improvements we
  don't model), so copies cost a cycle; type tests are compare+branch
  pairs; sends go through inline caches.
* ``old SELF-89/90``: same op costs as new SELF; the 90 system's sends
  and block costs are higher ("more elaborate semantics for message
  lookup and blocks, not as highly tuned", section 6).
* ``ST-80``: a stack-machine dynamic translator — operands constantly
  move through the stack, so every data operation carries extra traffic,
  activations are costlier, and arithmetic runs through the special
  Deutsch–Schiffman bytecode sequences.

Code sizes are bytes of the modeled target code: ~4 bytes per RISC
instruction, with multi-instruction sequences (checked arithmetic,
tests, inline-cache call sites) costing their real expansions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from . import opcodes as op


@dataclass(frozen=True)
class CostModel:
    name: str

    #: cycles for plain data/arith ops (MOVE excluded)
    op_cycles: int = 1
    #: cycles for a register-to-register copy
    move_cycles: int = 1
    #: load a constant
    const_cycles: int = 1
    #: map-compare-and-branch (load map word, compare, branch)
    type_test_cycles: int = 2
    #: checked arithmetic (op + condition-code branch)
    checked_arith_cycles: int = 2
    #: array bounds check (two compares or unsigned trick + branch)
    bounds_cycles: int = 2
    #: array element access (tag adjust + load/store)
    array_cycles: int = 2
    #: data slot load/store
    slot_cycles: int = 2
    #: taken/fall-through jump
    jump_cycles: int = 1
    #: compare-and-branch
    compare_cycles: int = 1

    #: dynamically-bound send: inline-cache hit (call + check + link)
    send_hit_cycles: int = 8
    #: inline-cache miss: full lookup + cache update
    send_miss_cycles: int = 60
    #: a polymorphic send relinking the (monomorphic) inline cache:
    #: full lookup + cache update — the richards task-dispatch cost
    send_megamorphic_cycles: int = 100
    #: a hit in a *polymorphic* inline cache — the paper's proposed
    #: "call-site-specific inline-cache miss handlers" extension (§6.1),
    #: later published as PICs (Hölzle, Chambers & Ungar, ECOOP '91):
    #: a short dispatch stub instead of a full lookup
    send_pic_hit_cycles: int = 16
    #: number of distinct receiver maps after which a site is megamorphic
    megamorphic_threshold: int = 4
    #: object/vector allocation (on top of prim_call_cycles):
    #: C pays malloc; SELF pays a bump allocator + amortized GC
    alloc_cycles: int = 15
    #: statically-bound call in static mode (C function call / vtable)
    static_call_cycles: int = 4
    #: callee frame setup + return overhead (added per activation)
    frame_cycles: int = 6
    #: non-local return unwinding (per frame popped)
    nlr_cycles: int = 4
    #: closure creation
    make_block_cycles: int = 8
    #: per-hop cost of environment (uplevel) variable access
    env_hop_cycles: int = 3
    #: out-of-line primitive call overhead (on top of the work itself)
    prim_call_cycles: int = 10
    #: per-element cost of vector allocation / bulk primitives
    prim_per_element_cycles: float = 0.25

    # ---- code size (bytes) -------------------------------------------------
    word: int = 4
    move_bytes: int = 4
    op_bytes: int = 4
    const_bytes: int = 4
    type_test_bytes: int = 12
    checked_arith_bytes: int = 8
    bounds_bytes: int = 12
    array_bytes: int = 8
    slot_bytes: int = 4
    jump_bytes: int = 4
    compare_bytes: int = 8
    #: a send site: call + nops + inline-cache stub + class check
    send_bytes: int = 32
    prim_bytes: int = 12
    make_block_bytes: int = 16
    env_bytes: int = 8
    return_bytes: int = 8
    error_bytes: int = 8
    #: per-method prologue/epilogue and header
    method_overhead_bytes: int = 32

    def instruction_cycles(self, opcode: int) -> int:
        """Base cycles for one instruction (dynamic extras added by VM)."""
        return _CYCLE_DISPATCH[opcode](self)

    def instruction_bytes(self, opcode: int) -> int:
        return _SIZE_DISPATCH[opcode](self)

    def static_cycle_table(self) -> dict:
        """``opcode -> base cycles`` as a plain dict, computed once per
        model.  The predecoder bakes these into the instruction stream so
        the VM's hot loop adds an int instead of calling
        :meth:`instruction_cycles` for every executed instruction."""
        entry = _STATIC_TABLE_CACHE.get(id(self))
        if entry is None or entry[1] is not self:
            entry = ({opc: fn(self) for opc, fn in _CYCLE_DISPATCH.items()}, self)
            _STATIC_TABLE_CACHE[id(self)] = entry
        return entry[0]


#: id(model) -> (opcode cycle table, model).  The model is kept in the
#: value so a collected model's id can never alias a stale table.
_STATIC_TABLE_CACHE: dict = {}


_CYCLE_DISPATCH = {
    op.MOVE: lambda m: m.move_cycles,
    op.LOADK: lambda m: m.const_cycles,
    op.ADD: lambda m: m.op_cycles,
    op.SUB: lambda m: m.op_cycles,
    op.MUL: lambda m: m.op_cycles * 3,   # integer multiply is slow on SPARC
    op.DIV: lambda m: m.op_cycles * 8,
    op.MOD: lambda m: m.op_cycles * 8,
    op.ADD_OV: lambda m: m.checked_arith_cycles,
    op.SUB_OV: lambda m: m.checked_arith_cycles,
    op.MUL_OV: lambda m: m.checked_arith_cycles + 2,
    op.DIV_OV: lambda m: m.checked_arith_cycles + 7,
    op.MOD_OV: lambda m: m.checked_arith_cycles + 7,
    op.CMP_LT: lambda m: m.compare_cycles,
    op.CMP_LE: lambda m: m.compare_cycles,
    op.CMP_GT: lambda m: m.compare_cycles,
    op.CMP_GE: lambda m: m.compare_cycles,
    op.CMP_EQ: lambda m: m.compare_cycles,
    op.CMP_NE: lambda m: m.compare_cycles,
    op.TYPETEST: lambda m: m.type_test_cycles,
    op.BOUNDS: lambda m: m.bounds_cycles,
    op.ALOAD: lambda m: m.array_cycles,
    op.ASTORE: lambda m: m.array_cycles,
    op.ALEN: lambda m: m.slot_cycles,
    op.LOADSLOT: lambda m: m.slot_cycles,
    op.STORESLOT: lambda m: m.slot_cycles,
    op.ENV_LOAD: lambda m: m.env_hop_cycles,
    op.ENV_STORE: lambda m: m.env_hop_cycles,
    op.MAKE_BLOCK: lambda m: m.make_block_cycles,
    op.SEND: lambda m: 0,       # dynamic; charged by the VM per IC state
    op.PRIMCALL: lambda m: m.prim_call_cycles,
    op.JUMP: lambda m: m.jump_cycles,
    op.RETURN: lambda m: m.jump_cycles,
    op.NLR: lambda m: m.nlr_cycles,
    op.ERROR: lambda m: 0,
}

_SIZE_DISPATCH = {
    op.MOVE: lambda m: m.move_bytes,
    op.LOADK: lambda m: m.const_bytes,
    op.ADD: lambda m: m.op_bytes,
    op.SUB: lambda m: m.op_bytes,
    op.MUL: lambda m: m.op_bytes,
    op.DIV: lambda m: m.op_bytes,
    op.MOD: lambda m: m.op_bytes,
    op.ADD_OV: lambda m: m.checked_arith_bytes,
    op.SUB_OV: lambda m: m.checked_arith_bytes,
    op.MUL_OV: lambda m: m.checked_arith_bytes,
    op.DIV_OV: lambda m: m.checked_arith_bytes,
    op.MOD_OV: lambda m: m.checked_arith_bytes,
    op.CMP_LT: lambda m: m.compare_bytes,
    op.CMP_LE: lambda m: m.compare_bytes,
    op.CMP_GT: lambda m: m.compare_bytes,
    op.CMP_GE: lambda m: m.compare_bytes,
    op.CMP_EQ: lambda m: m.compare_bytes,
    op.CMP_NE: lambda m: m.compare_bytes,
    op.TYPETEST: lambda m: m.type_test_bytes,
    op.BOUNDS: lambda m: m.bounds_bytes,
    op.ALOAD: lambda m: m.array_bytes,
    op.ASTORE: lambda m: m.array_bytes,
    op.ALEN: lambda m: m.slot_bytes,
    op.LOADSLOT: lambda m: m.slot_bytes,
    op.STORESLOT: lambda m: m.slot_bytes,
    op.ENV_LOAD: lambda m: m.env_bytes,
    op.ENV_STORE: lambda m: m.env_bytes,
    op.MAKE_BLOCK: lambda m: m.make_block_bytes,
    op.SEND: lambda m: m.send_bytes,
    op.PRIMCALL: lambda m: m.prim_bytes,
    op.JUMP: lambda m: m.jump_bytes,
    op.RETURN: lambda m: m.return_bytes,
    op.NLR: lambda m: m.return_bytes,
    op.ERROR: lambda m: m.error_bytes,
}

#: Extra cycles for specific out-of-line primitives (the work itself,
#: on top of ``prim_call_cycles``).
PRIMITIVE_WORK_CYCLES = {
    "_BigAdd:": 30, "_BigSub:": 30, "_BigMul:": 40, "_BigDiv:": 50,
    "_BigMod:": 50, "_BigLT:": 20, "_BigLE:": 20, "_BigGT:": 20,
    "_BigGE:": 20, "_BigEQ:": 20, "_BigNE:": 20,
    "_Eq:": 2, "_Ne:": 3,
    "_Clone": 20,
    "_NewVector:Filler:": 20,
    "_Print": 200, "_PrintLine": 200, "_PrintString": 100,
    "_StringSize": 4, "_StringConcat:": 40,
    "_IntAsFloat": 6, "_FltTruncate": 6,
}


# ---------------------------------------------------------------------------
# Per-system tables
# ---------------------------------------------------------------------------

#: Optimized C: perfectly coalesced register code, direct calls.
STATIC_MODEL = CostModel(
    name="optimized C",
    move_cycles=0,
    send_hit_cycles=6,       # an indirect (vtable) call when one remains
    send_miss_cycles=6,
    send_megamorphic_cycles=6,
    frame_cycles=4,
    make_block_cycles=6,
    alloc_cycles=90,         # 1990 malloc
    method_overhead_bytes=16,
    send_bytes=8,            # plain call instruction
    type_test_bytes=8,
)

#: The new SELF compiler's backend.
NEW_SELF_MODEL = CostModel(
    name="new SELF",
)

#: The 1989 old SELF system (well tuned, but an expression-tree
#: compiler without global register allocation: locals live in memory,
#: so copies and checks carry load/store traffic).
OLD_SELF_89_MODEL = CostModel(
    name="old SELF-89",
    move_cycles=2,
    type_test_cycles=3,
    checked_arith_cycles=3,
    slot_cycles=3,
    send_hit_cycles=10,
    frame_cycles=8,
)

#: The 1990 production system: more elaborate lookup and block
#: semantics, less tuned (paper, section 6).
OLD_SELF_90_MODEL = CostModel(
    name="old SELF-90",
    move_cycles=2,
    type_test_cycles=3,
    checked_arith_cycles=3,
    slot_cycles=3,
    const_cycles=2,
    send_hit_cycles=14,
    send_miss_cycles=80,
    send_megamorphic_cycles=120,
    frame_cycles=12,
    make_block_cycles=12,
    env_hop_cycles=4,
)

#: ParcPlace Smalltalk-80: stack-machine dynamic translation.  Every
#: data operation shuffles operands through the home-grown stack; frames
#: are heap-ish; arithmetic runs the special-selector sequences.
ST80_MODEL = CostModel(
    name="ST-80",
    op_cycles=3,
    move_cycles=2,
    const_cycles=2,
    type_test_cycles=3,
    checked_arith_cycles=5,
    bounds_cycles=4,
    array_cycles=5,
    slot_cycles=4,
    compare_cycles=3,
    jump_cycles=2,
    send_hit_cycles=12,
    send_miss_cycles=80,
    send_megamorphic_cycles=60,
    frame_cycles=12,
    make_block_cycles=14,
    env_hop_cycles=5,
    prim_call_cycles=14,
    alloc_cycles=25,
)

MODELS = {
    "optimized C": STATIC_MODEL,
    "new SELF": NEW_SELF_MODEL,
    "old SELF": OLD_SELF_90_MODEL,
    "old SELF-89": OLD_SELF_89_MODEL,
    "old SELF-90": OLD_SELF_90_MODEL,
    "ST-80": ST80_MODEL,
}


def model_for(config_name: str) -> CostModel:
    try:
        return MODELS[config_name]
    except KeyError:
        return NEW_SELF_MODEL
