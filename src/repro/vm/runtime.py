"""The bytecode VM and dynamic-compilation runtime.

A :class:`Runtime` owns a code cache and executes bytecode produced by
the compiler under one :class:`~repro.compiler.config.CompilerConfig`.
Methods are compiled lazily, *customized per receiver map* when the
configuration says so — this is the paper's dynamic compilation setup:
only code that actually runs is compiled, and the measured "compiled
code size" is the size of what the run touched.

Dynamically-bound sends go through per-site inline caches with
hit/miss/megamorphic accounting, so the richards task-queue anomaly
(section 6.1 of the paper) emerges from the model rather than being
hard-coded.

Execution is token-threaded: at code-install time every instruction is
predecoded into ``(handler, cycles, count, ...operands)`` tuples (see
:mod:`.dispatch`), so the hot loop below is three indexed loads, two
integer adds, and one call per dispatch — no ``if/elif`` opcode walk,
no per-instruction cost-model lookup.  Every executed instruction still
adds its cost-model cycles to ``runtime.cycles`` — the deterministic
stand-in for the paper's wall-clock measurements — and superinstruction
fusion is invisible to it by construction.
"""

from __future__ import annotations

import os
import time
from typing import Optional, Sequence

from ..compiler.annotations import StaticAnnotations
from ..compiler.codecache import cache_from_env
from ..compiler.config import CompilerConfig
from ..interp.interpreter import _NonLocalReturn
from ..lang.ast_nodes import MethodNode
from ..lang.parser import parse_doit
from ..objects.errors import (
    MessageNotUnderstood,
    NonLocalReturnFromDeadActivation,
    PrimitiveFailed,
    VMError,
)
from ..objects.maps import ASSIGNMENT, CONSTANT, DATA
from ..objects.model import (
    SelfBlock,
    SelfMethod,
    block_value_selector,
)
from ..primitives.registry import PrimFailSignal
from ..robustness.recovery import (
    RecoveryLog,
    TIER_OPTIMIZING,
    TIER_PESSIMISTIC,
)
from ..robustness.tiers import (
    InterpretedCode,
    TierInterpreter,
    call_foreign_block,
    compile_with_tiers,
    run_interpreted_block,
    run_interpreted_method,
)
from ..world.bootstrap import World
from ..world.lookup import lookup_slot
from .code import Code, InlineCacheSite
from .cost import PRIMITIVE_WORK_CYCLES, CostModel, model_for
from .dispatch import NLR_SIGNAL, predecode
from .frame import Frame, NonLocalUnwind
from .translate import Translator

#: backwards-compatible aliases (Frame used to be defined here)
_NonLocalUnwind = NonLocalUnwind


def _clone_shared_code(code: Code, model: CostModel) -> Code:
    """A per-map clone of a receiver-map-independent compiled body.

    The instruction stream, constants, stats, and sizing are shared by
    reference (all immutable after codegen); inline-cache sites carry
    per-map runtime state and are rebuilt fresh, then the threaded
    stream is re-predecoded against them.  The clone is a distinct Code
    so per-map accounting (size, IC behavior) stays exact.
    """
    ic_sites = [InlineCacheSite(site.selector) for site in code.ic_sites]
    return Code(
        name=code.name,
        insns=code.insns,
        consts=code.consts,
        reg_count=code.reg_count,
        self_reg=code.self_reg,
        arg_regs=code.arg_regs,
        env_keys=code.env_keys,
        ic_sites=ic_sites,
        size_bytes=code.size_bytes,
        is_block=code.is_block,
        graph_stats=code.graph_stats,
        compile_stats=code.compile_stats,
        config_name=code.config_name,
        threaded=predecode(code.insns, code.consts, ic_sites, model),
        map_dependent=code.map_dependent,
    )


class Runtime:
    """Execute guest code under one compiler configuration."""

    def __init__(
        self,
        world: World,
        config: CompilerConfig,
        model: Optional[CostModel] = None,
        annotations: Optional[StaticAnnotations] = None,
        use_polymorphic_caches: bool = False,
        tracer=None,
        profile: Optional[bool] = None,
    ) -> None:
        self.world = world
        self.universe = world.universe
        self.config = config
        self.model = model or model_for(config.name)
        self.annotations = annotations if config.static_types else None
        #: the paper's §6.1 proposal ("call-site-specific inline-cache
        #: miss handlers"): polymorphic sites dispatch through a short
        #: stub instead of relinking — the PIC extension.
        self.use_polymorphic_caches = use_polymorphic_caches

        # -- the real dispatch ladder (REPRO_PIC=1) ------------------------
        #: mono IC -> bounded PIC -> megamorphic table, as a wall-clock
        #: mechanism: accounting on every rung is identical to the
        #: modeled relink it replaces, so the modeled numbers are
        #: bit-identical with the ladder on or off (INTERNALS.md §15)
        self.pic_enabled = os.environ.get("REPRO_PIC", "0") != "0"
        self.pic_depth = max(
            1, int(os.environ.get("REPRO_PIC_DEPTH", "4") or 4)
        )
        self.mega_table_enabled = (
            os.environ.get("REPRO_MEGA_TABLE", "1") != "0"
        )
        #: MRU promotion (REPRO_PIC_MRU, default on): a megamorphic-table
        #: hit in the translated lean path re-installs that row as the
        #: site's mono entry, so a skewed receiver distribution pays the
        #: table probe once per dominant-receiver run instead of on
        #: every send.  The interpreter path has always done this
        #: (_pic_hit); the knob gates the lean open-coded emission.
        self.pic_mru = os.environ.get("REPRO_PIC_MRU", "1") != "0"
        #: per-selector megamorphic dispatch tables (map_id -> action),
        #: shared by every overflowed site of this runtime so hostile
        #: polymorphism warms each selector once, plus the parallel
        #: invalidation scopes (map_id -> consulted-map frozenset)
        self.mega_tables: dict[str, dict] = {}
        self.mega_deps: dict[str, dict] = {}

        #: (method identity, map id or 0) -> (AST node, Code).  The AST
        #: node is stored to keep it alive: the key uses ``id()``, which
        #: the host may reuse once the node is collected.
        self._method_code: dict[tuple[int, int], tuple[object, Code]] = {}
        #: (block id, receiver map id or 0) -> (code node, Code); the
        #: node is pinned in the value for the same id-reuse reason
        self._block_code: dict[tuple[int, int], tuple[object, Code]] = {}
        #: method identity -> (AST node, canonical non-customized Code):
        #: compiles whose taint flag proved independence from the
        #: receiver map; other maps get a cheap clone instead of a
        #: recompile (``REPRO_SHARE_CODE=0`` disables)
        self._shared_method_code: dict[int, tuple[object, Code]] = {}
        self._share_enabled = (
            os.environ.get("REPRO_SHARE_CODE", "1") != "0" and config.customize
        )
        #: customization-aware sharing accounting (host-speed only; the
        #: modeled measurements are identical with sharing on or off)
        self.share_hits = 0
        self.share_stores = 0
        #: persistent cross-run code cache (None unless REPRO_CODE_CACHE
        #: points somewhere); stats live on the cache object
        self.code_cache = cache_from_env()
        #: block literal id -> BlockTemplate (captured at MAKE_BLOCK)
        self._block_templates: dict[int, object] = {}
        #: bound once: the dispatch handlers' map lookup
        self._map_of = world.universe.map_of

        # -- translation tier (vm/translate.py) ---------------------------
        #: fresh-activation count at which a body is translated to a
        #: specialized host function (0 disables the tier)
        self.translate_threshold = int(
            os.environ.get("REPRO_TRANSLATE_THRESHOLD", "16") or 0
        )
        #: compile modeled-counter accounting into translated bodies
        #: (default on: goldens stay bit-identical; REPRO_MODELED_COUNTERS=0
        #: elides all accounting for raw wall-clock runs)
        self.modeled_counters = (
            os.environ.get("REPRO_MODELED_COUNTERS", "1") != "0"
        )
        #: deterministic activation-tick profiler (obs/profile.py), or
        #: None — the off state.  Construction-time only, mirroring
        #: REPRO_MODELED_COUNTERS: translated bodies compile their tick
        #: hooks in (or out) at emission, so profiling cannot toggle
        #: mid-run.  Off costs one ``is not None`` test per run segment
        #: and nothing per instruction.
        if profile is None:
            profile = os.environ.get("REPRO_PROFILE", "0") != "0"
        if profile:
            from ..obs.profile import Profiler

            self.profiler = Profiler(self)
        else:
            self.profiler = None
        self.translator = Translator(
            self, self.modeled_counters,
            profiling=self.profiler is not None,
            pic=self.pic_enabled,
            mru=self.pic_mru,
        )
        #: translate.* observability counters (surfaced by obs/metrics.py)
        self.translate_stats = {
            "translated": 0,
            "reused": 0,
            "retired": 0,
            "fallback_entries": 0,
            "emit_failed": 0,
            "emit_seconds": 0.0,
        }

        # -- measurements ------------------------------------------------
        self.cycles = 0
        self.compile_seconds = 0.0
        self.code_bytes = 0
        self.methods_compiled = 0
        self.send_hits = 0
        self.send_misses = 0
        self.send_megamorphic = 0
        self.send_pic_hits = 0
        #: dispatch-ladder telemetry (host-level, never modeled):
        #: dispatches served by a megamorphic table, and PIC->table
        #: overflow transitions
        self.mega_table_hits = 0
        self.mega_transitions = 0
        self.instructions = 0

        self.frames: list[Frame] = []
        #: value produced by the RETURN/NLR handler that ended a segment
        self._ret_value = None
        #: in-flight non-local return: (target frame, value, resume pc)
        self._nlr = None

        #: observability: NULL_TRACER unless a real tracer is injected —
        #: the dispatch loop itself never touches it, so the modeled
        #: measurements are bit-identical with tracing on or off
        from ..obs.trace import NULL_TRACER

        self.tracer = tracer if tracer is not None else NULL_TRACER

        #: structured log of tier degradations (robustness subsystem);
        #: scoped to the owning universe so a multi-tenant host can
        #: attribute every record to exactly one tenant
        self.recovery = RecoveryLog(
            tracer=self.tracer, scope=self.universe.universe_id
        )
        self._tier_interpreter: Optional[TierInterpreter] = None

        # -- serving hooks (repro.serve) -----------------------------------
        #: per-request wall/fuel bound, installed by the supervisor and
        #: checked at every frame switch (None = unbounded, one is-None
        #: test per switch)
        self.execution_budget = None
        #: overload mode: new compiles take the pessimistic tier and
        #: translation promotion is suppressed, trading peak throughput
        #: for compile latency (see :meth:`set_degraded`)
        self.degraded = False
        #: cache keys compiled while degraded — dropped when overload
        #: ends so the bodies reoptimize at full tier
        self._degraded_keys: set[tuple] = set()

        # -- invalidation / deoptimization state --------------------------
        #: a mutation retired code with live frames: until they return,
        #: new compiles take the pessimistic tier and are provisional
        self._deopt_storm = False
        #: retired bodies still referenced by live frames — kept so a
        #: *second* mutation can still flush their inline caches
        self._retired_live: list[Code] = []
        #: cache keys compiled during a storm ("m"/"b", key) — dropped
        #: at the next quiet top-level entry so they reoptimize
        self._provisional_keys: set[tuple] = set()
        #: the dependency registry invalidates through this registration
        self.universe.runtimes.add(self)

    @property
    def tier_interpreter(self) -> TierInterpreter:
        """The interpreter-tier evaluator, created on first degradation."""
        if self._tier_interpreter is None:
            self._tier_interpreter = TierInterpreter(self)
        return self._tier_interpreter

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def run(self, source: str, receiver=None):
        """Parse a do-it, compile it, and execute it to a value."""
        if self.tracer.enabled:
            with self.tracer.span("parse", chars=len(source)):
                doit = parse_doit(source)
        else:
            doit = parse_doit(source)
        return self.run_doit(doit, receiver)

    def run_doit(self, doit: MethodNode, receiver=None):
        self._maybe_reoptimize()
        if receiver is None:
            receiver = self.world.lobby
        code = self._compile_method(doit, self.universe.map_of(receiver), "<doit>")
        previous = self.universe.evaluator
        self.universe.evaluator = self
        try:
            if isinstance(code, InterpretedCode):
                return run_interpreted_method(
                    self, code.code, receiver, (), selector=code.selector
                )
            return self._run_code(code, receiver, (), home=None)
        finally:
            self.universe.evaluator = previous

    def call(self, receiver, selector: str, args: Sequence = ()):
        """Perform one dynamically-bound send from the outside."""
        self._maybe_reoptimize()
        previous = self.universe.evaluator
        self.universe.evaluator = self
        try:
            return self._send_sync(receiver, selector, list(args))
        finally:
            self.universe.evaluator = previous

    def call_block(self, block: SelfBlock, args: Sequence = ()):
        """Evaluator protocol (used by _BlockWhileTrue: and friends)."""
        return self._call_block_sync(block, list(args))

    def reset_measurements(self) -> None:
        self.cycles = 0
        self.instructions = 0
        self.send_hits = self.send_misses = self.send_megamorphic = 0
        self.send_pic_hits = 0
        self.mega_table_hits = 0
        # Per-site IC counters are measurements too: without this,
        # back-to-back bench reps inherit the previous rep's hot sites
        # (the cache *contents* — entries, PIC rows, tables — are state,
        # not measurement, and survive the reset).
        for code in self.iter_compiled_codes():
            for site in getattr(code, "ic_sites", ()):
                site.hits = site.misses = site.relinks = 0
        for code in self._retired_live:
            for site in code.ic_sites:
                site.hits = site.misses = site.relinks = 0

    @property
    def compiled_code_bytes(self) -> int:
        return self.code_bytes

    def iter_compiled_codes(self):
        """Every distinct compiled body (methods, then blocks), once each.

        Both code caches are keyed by (identity, receiver map), so one
        body recompiled per map appears under several keys — but each
        entry holds a distinct Code.  The identity-dedup guards the
        aggregators against any future sharing between the two caches
        (and is what keeps aggregate totals honest by construction).
        """
        seen: set[int] = set()
        for _, code in self._method_code.values():
            if id(code) not in seen:
                seen.add(id(code))
                yield code
        for _, code in self._block_code.values():
            if id(code) not in seen:
                seen.add(id(code))
                yield code

    def aggregate_compile_stats(self) -> dict:
        """Sum the compiler's effort/effect counters over every body
        this runtime compiled (methods and blocks) — the evidence for
        "how many sends were inlined, how many checks deleted"."""
        totals: dict = {}
        for code in self.iter_compiled_codes():
            # Interpreter-tier bodies have no compiled stats to count.
            for key, value in getattr(code, "compile_stats", {}).items():
                totals[key] = totals.get(key, 0) + value
        return totals

    def aggregate_dispatch_stats(self) -> dict:
        """Predecode/superinstruction accounting over every compiled body."""
        from .dispatch import superinstruction_stats

        totals = {
            "compiled_bodies": 0,
            "threaded_slots": 0,
            "superinstructions_fused": 0,
            "instructions_absorbed": 0,
        }
        for code in self.iter_compiled_codes():
            threaded = getattr(code, "threaded", None)
            if threaded is None:
                continue
            stats = superinstruction_stats(threaded)
            totals["compiled_bodies"] += 1
            totals["threaded_slots"] += stats["slots"]
            totals["superinstructions_fused"] += stats["fused"]
            totals["instructions_absorbed"] += stats["absorbed"]
        return totals

    def observed_fanout(self) -> dict:
        """Selector -> distinct receiver maps observed at this runtime's
        IC sites and megamorphic tables — the compiler's refusal oracle:
        splitting and customization stop past ``pic_depth`` (§6.1's
        megamorphic sites are not worth specializing against)."""
        fan: dict[str, set] = {}
        for code in self.iter_compiled_codes():
            for site in getattr(code, "ic_sites", ()):
                if site.entries:
                    fan.setdefault(site.selector, set()).update(site.entries)
        for selector, table in self.mega_tables.items():
            if table:
                fan.setdefault(selector, set()).update(
                    rmap.map_id for rmap in table
                )
        return {selector: len(ids) for selector, ids in fan.items()}

    def _megamorphic_selector(self, selector: str) -> bool:
        """The compiler-side refusal gate: ``selector`` has been seen
        with more receiver maps than the PIC can absorb."""
        return (
            self.pic_enabled
            and bool(selector)
            and self.observed_fanout().get(selector, 0) > self.pic_depth
        )

    def _dispatch_deps(self, receiver_map, selector: str, action):
        """The consulted-map scope of a dispatch-ladder row.

        ``None`` means "retire on any invalidation": prim/block
        resolutions have no lookup to scope them, and a row whose
        lookup-cache entry already expired is treated the same way.
        """
        if action[0] in ("prim", "block"):
            return None
        from ..world.lookup import cached_lookup_deps

        return cached_lookup_deps(self.universe, receiver_map, selector)

    # ------------------------------------------------------------------
    # Compilation (the JIT half)
    # ------------------------------------------------------------------

    def _compile_method(self, code_node, receiver_map, selector: str):
        """Compile (or fetch) a method body — down the tier ladder.

        Returns a :class:`Code`, or an :class:`InterpretedCode` marker
        when compilation degraded all the way to the interpreter tier.

        Customization-aware sharing: a previous compile of this body
        whose taint flag proved it never consulted its receiver map
        is *cloned* for the new map (fresh inline caches, re-predecode)
        instead of recompiled.  Every modeled number — size, cycles,
        compile counters — is identical to a fresh compile by
        construction, so sharing buys host seconds only.

        Megamorphic customization refusal (REPRO_PIC): once the
        dispatch ladder has seen more receiver maps for ``selector``
        than the PIC holds, further customization is refused — the body
        compiles once, receiver-map independent, under the shared key
        ``0`` and every subsequent map reuses that one Code (one copy
        of the modeled bytes, one IC site set, so the hot sites inside
        it overflow into the megamorphic table instead of splintering
        per map).
        """
        refused = self._megamorphic_selector(selector)
        key_map = (
            receiver_map.map_id
            if self.config.customize and not refused else 0
        )
        key = (id(code_node), key_map)
        cached = self._method_code.get(key)
        if cached is not None:
            return cached[1]
        from ..robustness import faults

        sharable_map = (
            self._share_enabled
            and receiver_map.kind == "object"
            and not self._deopt_storm
            and not self.degraded
        )
        if sharable_map:
            entry = self._shared_method_code.get(id(code_node))
            if entry is not None and entry[0] is code_node:
                canonical = entry[1]
                started = time.perf_counter()
                try:
                    compiled = _clone_shared_code(canonical, self.model)
                    if faults.ENABLED and faults.hit(faults.SITE_VM_SHARING):
                        # Corrupt mode: a wild write truncated the
                        # clone's threaded stream mid-flight.
                        compiled.threaded = compiled.threaded[
                            : len(compiled.threaded) // 2
                        ]
                    if len(compiled.threaded) != len(canonical.threaded):
                        raise RuntimeError(
                            "shared-code clone failed the integrity check"
                        )
                except Exception as error:  # noqa: BLE001 — degrade to compile
                    self.compile_seconds += time.perf_counter() - started
                    self.recovery.record(
                        "share-clone", selector, "sharing", TIER_OPTIMIZING, error
                    )
                else:
                    self.compile_seconds += time.perf_counter() - started
                    compiled.dep_keys = frozenset(
                        (canonical.dep_keys or frozenset())
                        | {("shape", receiver_map.map_id)}
                    )
                    self._method_code[key] = (code_node, compiled)
                    self._register_code_dependency(
                        "method", key, compiled, code_node, selector
                    )
                    self.code_bytes += compiled.size_bytes
                    self.methods_compiled += 1
                    self.share_hits += 1
                    return compiled
        started = time.perf_counter()
        recovery_before = self.recovery.total
        compiled = compile_with_tiers(
            self, code_node, receiver_map, selector=selector,
            force_pessimistic=self._deopt_storm or self.degraded,
        )
        self.compile_seconds += time.perf_counter() - started
        self._method_code[key] = (code_node, compiled)
        if self._deopt_storm:
            self._provisional_keys.add(("m", key))
        elif self.degraded:
            self._degraded_keys.add(("m", key))
        if isinstance(compiled, Code):
            self._register_code_dependency(
                "method", key, compiled, code_node, selector
            )
            self.code_bytes += compiled.size_bytes
            self.methods_compiled += 1
            if (
                sharable_map
                and not compiled.map_dependent
                and self.recovery.total == recovery_before
            ):
                # Untainted, compiled at the intended tier (no recovery
                # events fired): canonical copy for every later map.
                self._shared_method_code[id(code_node)] = (code_node, compiled)
                self.share_stores += 1
                self._register_code_dependency(
                    "shared", id(code_node), compiled, code_node, selector
                )
        return compiled

    def _compile_block(self, block: SelfBlock, receiver_map):
        key_map = receiver_map.map_id if self.config.customize else 0
        key = (block.code.block_id, key_map)
        cached = self._block_code.get(key)
        if cached is not None:
            return cached[1]
        template = self._block_templates.get(block.code.block_id)
        started = time.perf_counter()
        selector = f"<block#{block.code.block_id}>"
        compiled = compile_with_tiers(
            self, block.code, receiver_map,
            selector=selector, is_block=True,
            block_template=template,
            force_pessimistic=self._deopt_storm or self.degraded,
        )
        self.compile_seconds += time.perf_counter() - started
        self._block_code[key] = (block.code, compiled)
        if self._deopt_storm:
            self._provisional_keys.add(("b", key))
        elif self.degraded:
            self._degraded_keys.add(("b", key))
        if isinstance(compiled, Code):
            self._register_code_dependency(
                "block", key, compiled, block.code, selector
            )
            self.code_bytes += compiled.size_bytes
            self.methods_compiled += 1
        return compiled

    def _register_code_dependency(
        self, kind: str, cache_key, code, code_node, selector: str
    ) -> None:
        """Register ``code`` against every world assumption it recorded.

        ``dep_keys`` is filled by :func:`compile_with_tiers` (or derived
        structurally on a persistent-cache hit); a world mutation that
        fires any of these keys retires the code via
        :mod:`repro.robustness.invalidate`.
        """
        if not isinstance(code, Code) or not code.dep_keys:
            return
        from ..world.deps import CodeDependency

        self.universe.deps.register(
            code.dep_keys,
            CodeDependency(
                self, kind, cache_key, code, code_node, selector, code.disk_key
            ),
        )

    def _maybe_reoptimize(self) -> None:
        """End a deopt storm once no affected frames remain live.

        While a storm is on, every new compile is pessimistic and its
        cache key is *provisional*.  At the next top-level entry with an
        empty frame stack we drop those provisional bodies and flush the
        inline caches, so subsequent sends recompile at the optimizing
        tier against the post-mutation world — transparent
        reoptimization, without ever reasoning about a half-executed
        optimized frame.
        """
        if not self._deopt_storm or self.frames:
            return
        dropped = 0
        profiler = self.profiler
        for kind, key in self._provisional_keys:
            table = self._method_code if kind == "m" else self._block_code
            popped = table.pop(key, None)
            if popped is not None:
                dropped += 1
                if profiler is not None:
                    # Keep the dropped body's send-site counters
                    # attributable in the profile.
                    profiler.note_retired(popped[1])
        self._provisional_keys.clear()
        self._retired_live.clear()
        self._deopt_storm = False
        from ..robustness.invalidate import _flush_ics

        stats = self.universe.deps.stats
        stats["ic_flushes"] += _flush_ics(self)
        stats["reoptimized"] += 1
        self.recovery.note(
            stage="reoptimize",
            selector="<world>",
            from_tier=TIER_PESSIMISTIC,
            to_tier=TIER_OPTIMIZING,
            error_kind="WorldMutation",
            detail=f"storm ended: {dropped} provisional bodies dropped",
        )

    # ------------------------------------------------------------------
    # Serving hooks (repro.serve)
    # ------------------------------------------------------------------

    def set_degraded(self, flag: bool) -> None:
        """Enter or leave overload mode (the serve layer's load valve).

        While degraded, new compiles take the pessimistic tier and
        translation promotion is suppressed — strictly less compile
        work per request, at the price of slower steady-state code.
        Leaving overload (called between requests, with no live frames)
        drops every body compiled under degradation and flushes inline
        caches, so subsequent sends recompile at the optimizing tier —
        the same transparent-reoptimization move a deopt storm uses.
        """
        if flag == self.degraded:
            return
        self.degraded = flag
        if flag or self.frames:
            return
        dropped = 0
        profiler = self.profiler
        for kind, key in self._degraded_keys:
            table = self._method_code if kind == "m" else self._block_code
            popped = table.pop(key, None)
            if popped is not None:
                dropped += 1
                if profiler is not None:
                    profiler.note_retired(popped[1])
        self._degraded_keys.clear()
        if dropped:
            from ..robustness.invalidate import _flush_ics

            stats = self.universe.deps.stats
            stats["ic_flushes"] += _flush_ics(self)
            self.recovery.note(
                stage="reoptimize",
                selector="<world>",
                from_tier=TIER_PESSIMISTIC,
                to_tier=TIER_OPTIMIZING,
                error_kind="Overload",
                detail=f"overload ended: {dropped} degraded bodies dropped",
            )

    def kill_frames(self) -> int:
        """Abandon every live frame after an aborted request.

        A :class:`~repro.objects.errors.DeadlineExceeded` (or any fault
        the supervisor refuses to retry) propagates out of the dispatch
        loop without unwinding ``self.frames``; the supervisor calls
        this before reusing the runtime so the next request starts from
        a clean stack.  Frames are marked dead first, so any closure
        that captured one raises NonLocalReturnFromDeadActivation
        instead of resuming into an abandoned activation.
        """
        killed = len(self.frames)
        for frame in self.frames:
            frame.alive = False
        self.frames.clear()
        self._nlr = None
        return killed

    # ------------------------------------------------------------------
    # Synchronous call helpers (re-entrant run segments)
    # ------------------------------------------------------------------

    def _send_sync(self, receiver, selector: str, args: list):
        if selector.startswith("_"):
            return self._run_primitive_send(receiver, selector, args)
        if type(receiver) is SelfBlock and selector == block_value_selector(len(args)):
            return self._call_block_sync(receiver, args)
        found = lookup_slot(self.universe, receiver, selector)
        if found is None:
            raise MessageNotUnderstood(selector, self.universe.print_string(receiver))
        holder, slot = found
        if slot.kind == CONSTANT:
            value = slot.value
            if isinstance(value, SelfMethod):
                code = self._compile_method(
                    value.code, self.universe.map_of(receiver), selector
                )
                if isinstance(code, InterpretedCode):
                    return run_interpreted_method(
                        self, code.code, receiver, args, selector=selector
                    )
                self.cycles += self.model.frame_cycles
                return self._run_code(code, receiver, args, home=None)
            return value
        if slot.kind == DATA:
            self.cycles += self.model.slot_cycles
            return holder.get_data(slot.offset)
        if slot.kind == ASSIGNMENT:
            self.cycles += self.model.slot_cycles
            holder.set_data(slot.offset, args[0])
            return receiver
        raise VMError(f"unexpected slot kind {slot.kind}")

    def _call_block_sync(self, block: SelfBlock, args: list):
        home = block.home
        if not isinstance(home, Frame):
            # A closure created at the interpreter tier (its home is an
            # Activation): route it back to the bridge evaluator.
            return call_foreign_block(self, block, args)
        method_home = home
        while method_home.home is not None:
            method_home = method_home.home
        if not method_home.alive:
            raise NonLocalReturnFromDeadActivation()
        receiver = block.captured_self if block.captured_self is not None else home.receiver
        code = self._compile_block(block, self.universe.map_of(receiver))
        if isinstance(code, InterpretedCode):
            return run_interpreted_block(self, block, args)
        self.cycles += self.model.frame_cycles
        return self._run_code(
            code, receiver, args, home=home, env_map=block.env_map
        )

    def _run_primitive_send(self, receiver, selector: str, args: list):
        from ..primitives.registry import lookup_primitive

        primitive = lookup_primitive(selector)
        if primitive is None:
            raise MessageNotUnderstood(selector, self.universe.print_string(receiver))
        fail_handler = None
        if selector.endswith("IfFail:") and selector != primitive.selector:
            fail_handler = args.pop()
        self.cycles += self.model.prim_call_cycles
        self.cycles += PRIMITIVE_WORK_CYCLES.get(primitive.selector, 4)
        try:
            return primitive.fn(self.universe, receiver, args)
        except PrimFailSignal as failure:
            if fail_handler is None:
                raise PrimitiveFailed(primitive.selector, failure.code) from None
            if isinstance(fail_handler, SelfBlock):
                handler_args = [failure.code] if fail_handler.arity == 1 else []
                return self._call_block_sync(fail_handler, handler_args)
            return fail_handler

    # ------------------------------------------------------------------
    # The threaded interpreter loop
    # ------------------------------------------------------------------

    def _run_code(
        self,
        code: Code,
        receiver,
        args: Sequence,
        home: Optional[Frame],
        env_map: Optional[dict] = None,
    ):
        frame = Frame(code, receiver, home, ret_reg=-1, env_map=env_map)
        frame.regs[code.self_reg] = receiver
        for reg, value in zip(code.arg_regs, args):
            frame.regs[reg] = value
        base = len(self.frames)
        self.frames.append(frame)
        try:
            return self._loop(base)
        except (NonLocalUnwind, _NonLocalReturn):
            # The target activation lives below this run segment (a VM
            # frame, or — across the tier bridge — an interpreter
            # activation): unwind our frames and re-raise for the outer
            # segment or evaluator.
            for dead in self.frames[base:]:
                dead.alive = False
            del self.frames[base:]
            raise

    def _loop(self, base: int):
        # The whole cost of profiling-off: this single test per run
        # segment.  The profiled twin below carries the tick hooks so
        # the hot loop here stays untouched.
        if self.profiler is not None:
            return self._loop_profiled(base)
        frames = self.frames
        cycles = 0
        icount = 0
        threshold = self.translate_threshold
        budget = self.execution_budget
        try:
            while True:
                # Execution budget (serving): one is-None test per
                # frame switch when unarmed; armed, a fuel compare plus
                # a strided wall-clock probe.  A raised DeadlineExceeded
                # leaves frames on the stack — the supervisor calls
                # kill_frames before reusing this runtime.
                if budget is not None:
                    budget.tick(self.cycles + cycles)
                frame = frames[-1]
                code = frame.code
                regs = frame.regs
                pc = frame.pc
                # Tier selection: a hot body runs as one specialized
                # host function (vm/translate.py).  Promotion counts
                # fresh activations (pc == 0) only; a deopt storm (or
                # serving overload) suppresses new translations the
                # same way it forces pessimistic compiles.
                # ``translated`` is three-state: None = cold, callable
                # = translated, False = failed or retired (fall back to
                # the threaded stream forever).
                fn = code.translated
                if fn is None and threshold and pc == 0:
                    count = code.invocations + 1
                    code.invocations = count
                    if (
                        count >= threshold
                        and not self._deopt_storm
                        and not self.degraded
                    ):
                        fn = self.translator.translate(code)
                try:
                    if fn:
                        # A translated body may *decline* an entry by
                        # returning a non-negative pc: resume points
                        # inside a fused leaf have no dispatch label, so
                        # the rare re-entry there (cold callee, deopt
                        # fallback, NLR resume) continues this
                        # activation on the predecoded stream below —
                        # the identity PC mapping makes that exact.
                        pc = fn(self, frame, regs)
                    elif fn is False:
                        # A retired/untranslatable body: this entry
                        # fell back to the predecoded stream (the
                        # identity PC mapping makes any resume
                        # point valid in both tiers).
                        self.translate_stats["fallback_entries"] += 1
                    if pc >= 0:
                        insns = code.threaded
                        # The hot loop: fetch, charge the precomputed
                        # modeled cost, and jump straight to the bound
                        # handler.
                        while pc >= 0:
                            insn = insns[pc]
                            cycles += insn[1]
                            icount += insn[2]
                            pc = insn[0](self, frame, regs, insn, pc + 1)
                except NonLocalUnwind as unwind:
                    # A nested run segment (or the interpreter tier, via
                    # the bridge) unwound into this segment: pick the
                    # unwind up as if our own NLR handler had signalled.
                    self._nlr = (unwind.target, unwind.value, frame.pc)
                    pc = NLR_SIGNAL
                if pc != NLR_SIGNAL:
                    # REDISPATCH: a callee was pushed or a frame popped.
                    if len(frames) <= base:
                        return self._ret_value
                    continue
                # A non-local return is unwinding toward its home.  The
                # target is found by identity scan (not list.index, whose
                # ValueError doubles as control flow and compares by
                # equality): absence is an expected outcome, not an error.
                target, value, resume_pc = self._nlr
                position = -1
                for index in range(len(frames) - 1, base - 1, -1):
                    if frames[index] is target:
                        position = index
                        break
                if position < 0:
                    frame.pc = resume_pc
                    raise NonLocalUnwind(target, value)
                for dead in frames[position:]:
                    dead.alive = False
                ret_reg = target.ret_reg
                del frames[position:]
                if len(frames) <= base:
                    return value
                if ret_reg >= 0:
                    frames[-1].regs[ret_reg] = value
        finally:
            self.cycles += cycles
            self.instructions += icount

    def _loop_profiled(self, base: int):
        """:meth:`_loop` with the profiler's deterministic tick hooks.

        An exact twin of the hot loop — same tier selection, decline
        protocol, NLR scan, and modeled accounting — plus an activation
        tick per fresh entry (``pc == 0``) and a branch tick per taken
        backward branch (``0 <= next_pc <= current index``).  The hooks
        only *read* VM state, so cycles/instructions/IC counters are
        bit-identical to an unprofiled run.  Kept as a separate body so
        profiling off pays nothing inside :meth:`_loop`.
        """
        frames = self.frames
        prof = self.profiler
        cycles = 0
        icount = 0
        threshold = self.translate_threshold
        budget = self.execution_budget
        try:
            while True:
                if budget is not None:
                    budget.tick(self.cycles + cycles)
                frame = frames[-1]
                code = frame.code
                regs = frame.regs
                pc = frame.pc
                fn = code.translated
                if fn is None and threshold and pc == 0:
                    count = code.invocations + 1
                    code.invocations = count
                    if (
                        count >= threshold
                        and not self._deopt_storm
                        and not self.degraded
                    ):
                        fn = self.translator.translate(code)
                # Tick after tier selection so the activation lands on
                # the tier that actually runs it (a body promoted on
                # this very entry counts as translated).
                if pc == 0:
                    prof.tick_activation(frame)
                try:
                    if fn:
                        pc = fn(self, frame, regs)
                    elif fn is False:
                        self.translate_stats["fallback_entries"] += 1
                    if pc >= 0:
                        insns = code.threaded
                        while pc >= 0:
                            insn = insns[pc]
                            cycles += insn[1]
                            icount += insn[2]
                            npc = insn[0](self, frame, regs, insn, pc + 1)
                            if 0 <= npc <= pc:
                                prof.tick_branch(frame)
                            pc = npc
                except NonLocalUnwind as unwind:
                    self._nlr = (unwind.target, unwind.value, frame.pc)
                    pc = NLR_SIGNAL
                if pc != NLR_SIGNAL:
                    if len(frames) <= base:
                        return self._ret_value
                    continue
                target, value, resume_pc = self._nlr
                position = -1
                for index in range(len(frames) - 1, base - 1, -1):
                    if frames[index] is target:
                        position = index
                        break
                if position < 0:
                    frame.pc = resume_pc
                    raise NonLocalUnwind(target, value)
                for dead in frames[position:]:
                    dead.alive = False
                ret_reg = target.ret_reg
                del frames[position:]
                if len(frames) <= base:
                    return value
                if ret_reg >= 0:
                    frames[-1].regs[ret_reg] = value
        finally:
            self.cycles += cycles
            self.instructions += icount

    # ------------------------------------------------------------------
    # Cold helpers used by the dispatch handlers
    # ------------------------------------------------------------------

    def _resolve_send(self, receiver, receiver_map, selector: str, arity: int):
        if selector.startswith("_"):
            return ("prim",)
        if type(receiver) is SelfBlock and selector == block_value_selector(arity):
            return ("block",)
        found = lookup_slot(self.universe, receiver, selector)
        if found is None:
            raise MessageNotUnderstood(selector, self.universe.print_string(receiver))
        holder, slot = found
        holder_for_action = None if holder is receiver else holder
        if slot.kind == CONSTANT:
            value = slot.value
            if isinstance(value, SelfMethod):
                code = self._compile_method(value.code, receiver_map, selector)
                if isinstance(code, InterpretedCode):
                    return ("interp", code)
                return ("call", code)
            return ("const", value)
        if slot.kind == DATA:
            return ("data", holder_for_action, slot.offset)
        if slot.kind == ASSIGNMENT:
            return ("assign", holder_for_action, slot.offset)
        raise VMError(f"unexpected slot kind {slot.kind}")

    def _send_block(self, regs, insn, block, pc: int) -> int:
        """A SEND whose resolved action is a block invocation; pushes
        the block's frame and returns the REDISPATCH sentinel (or runs
        the block synchronously at the interpreter tier and returns
        ``pc``)."""
        home = block.home
        if not isinstance(home, Frame):
            regs[insn[3]] = call_foreign_block(
                self, block, [regs[r] for r in insn[6]]
            )
            return pc
        method_home = home
        while method_home.home is not None:
            method_home = method_home.home
        if not method_home.alive:
            raise NonLocalReturnFromDeadActivation()
        receiver = (
            block.captured_self if block.captured_self is not None
            else home.receiver
        )
        code = self._compile_block(block, self.universe.map_of(receiver))
        if isinstance(code, InterpretedCode):
            regs[insn[3]] = run_interpreted_block(
                self, block, [regs[r] for r in insn[6]]
            )
            return pc
        self.cycles += self.model.frame_cycles
        callee = Frame(code, receiver, home, ret_reg=insn[3], env_map=block.env_map)
        callee.regs[code.self_reg] = receiver
        for reg, src in zip(code.arg_regs, insn[6]):
            callee.regs[reg] = regs[src]
        self.frames.append(callee)
        return -1

    def _run_interpreted(self, code: InterpretedCode, receiver, args: list):
        """Execute an interpreter-tier method body for the dispatch loop."""
        return run_interpreted_method(
            self, code.code, receiver, args, selector=code.selector
        )

    def _make_block(self, frame: Frame, block_node, template, captured_self):
        self._block_templates.setdefault(block_node.block_id, template)
        env_map = self._build_env_map(frame, template)
        return SelfBlock(
            self.universe.block_map(block_node), block_node, frame,
            env_map=env_map, captured_self=captured_self,
        )

    # ------------------------------------------------------------------
    # Environments
    # ------------------------------------------------------------------

    def _build_env_map(self, frame: Frame, template) -> dict:
        """Capture the closure's free-name -> env-key mapping.

        Passthrough entries ('*name') come from this frame's own closure
        mapping (we are block code creating a nested block).
        """
        env_map: dict = {}
        frame_map = frame.env_map
        for name, key in template.resolutions.items():
            if key is None:
                continue
            if key.startswith("*"):
                source = key[1:]
                if frame_map is not None and source in frame_map:
                    env_map[source] = frame_map[source]
                else:
                    env_map[source] = source
            else:
                env_map[name] = key
        return env_map

    def _env_load(self, frame: Frame, key: str):
        current: Optional[Frame] = frame
        if frame.env_map is not None and key in frame.env_map:
            # A free variable of this block: by construction it lives in
            # the home chain, never in this frame — start above, so a
            # recursive block's own (identically-keyed) locals cannot
            # shadow the instance the closure captured.
            key = frame.env_map[key]
            current = frame.home
        hops = 1
        while current is not None:
            env = current.env
            if env is not None and key in env:
                self.cycles += self.model.env_hop_cycles * hops
                return env[key]
            current = current.home
            hops += 1
        raise VMError(f"unresolved environment variable {key!r}")

    def _env_store(self, frame: Frame, key: str, value) -> None:
        current: Optional[Frame] = frame
        if frame.env_map is not None and key in frame.env_map:
            key = frame.env_map[key]
            current = frame.home
        hops = 1
        while current is not None:
            env = current.env
            if env is not None and key in env:
                self.cycles += self.model.env_hop_cycles * hops
                env[key] = value
                return
            current = current.home
            hops += 1
        raise VMError(f"unresolved environment variable {key!r}")
