"""The bytecode VM and dynamic-compilation runtime.

A :class:`Runtime` owns a code cache and executes bytecode produced by
the compiler under one :class:`~repro.compiler.config.CompilerConfig`.
Methods are compiled lazily, *customized per receiver map* when the
configuration says so — this is the paper's dynamic compilation setup:
only code that actually runs is compiled, and the measured "compiled
code size" is the size of what the run touched.

Dynamically-bound sends go through per-site inline caches with
hit/miss/megamorphic accounting, so the richards task-queue anomaly
(section 6.1 of the paper) emerges from the model rather than being
hard-coded.

Every executed instruction adds its cost-model cycles to
``runtime.cycles`` — the deterministic stand-in for the paper's
wall-clock measurements.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence

from ..compiler.annotations import StaticAnnotations
from ..compiler.config import CompilerConfig
from ..compiler.engine import compile_code
from ..lang.ast_nodes import BlockNode, MethodNode
from ..lang.parser import parse_doit
from ..objects.errors import (
    MessageNotUnderstood,
    NonLocalReturnFromDeadActivation,
    PrimitiveFailed,
    VMError,
)
from ..objects.maps import ASSIGNMENT, CONSTANT, DATA
from ..objects.model import (
    SelfBlock,
    SelfMethod,
    SelfObject,
    SelfVector,
    block_value_selector,
    fits_smallint,
)
from ..primitives.registry import PrimFailSignal
from ..world.bootstrap import World
from ..world.lookup import lookup_slot
from . import opcodes as op
from .code import Code
from .codegen import generate
from .cost import PRIMITIVE_WORK_CYCLES, CostModel, model_for


class Frame:
    """One activation: registers plus the named environment."""

    __slots__ = (
        "code", "pc", "regs", "receiver", "env", "env_map", "home",
        "ret_reg", "alive",
    )

    def __init__(
        self,
        code: Code,
        receiver,
        home: Optional["Frame"],
        ret_reg: int,
        env_map: Optional[dict] = None,
    ) -> None:
        self.code = code
        self.pc = 0
        self.regs = [None] * code.reg_count
        self.receiver = receiver
        self.env = dict.fromkeys(code.env_keys) if code.env_keys else None
        #: block frames: free-name -> concrete env key of the creating
        #: frame (captured at closure creation)
        self.env_map = env_map
        self.home = home
        self.ret_reg = ret_reg
        self.alive = True


class _NonLocalUnwind(Exception):
    """Internal: a ^ in block code is unwinding to its home frame."""

    __slots__ = ("target", "value")

    def __init__(self, target: Frame, value) -> None:
        self.target = target
        self.value = value
        super().__init__("non-local return")


class Runtime:
    """Execute guest code under one compiler configuration."""

    def __init__(
        self,
        world: World,
        config: CompilerConfig,
        model: Optional[CostModel] = None,
        annotations: Optional[StaticAnnotations] = None,
        use_polymorphic_caches: bool = False,
    ) -> None:
        self.world = world
        self.universe = world.universe
        self.config = config
        self.model = model or model_for(config.name)
        self.annotations = annotations if config.static_types else None
        #: the paper's §6.1 proposal ("call-site-specific inline-cache
        #: miss handlers"): polymorphic sites dispatch through a short
        #: stub instead of relinking — the PIC extension.
        self.use_polymorphic_caches = use_polymorphic_caches

        #: (method identity, map id or 0) -> (AST node, Code).  The AST
        #: node is stored to keep it alive: the key uses ``id()``, which
        #: the host may reuse once the node is collected.
        self._method_code: dict[tuple[int, int], tuple[object, Code]] = {}
        #: (block id, receiver map id or 0) -> Code
        self._block_code: dict[tuple[int, int], Code] = {}
        #: block literal id -> BlockTemplate (captured at MAKE_BLOCK)
        self._block_templates: dict[int, object] = {}

        # -- measurements ------------------------------------------------
        self.cycles = 0
        self.compile_seconds = 0.0
        self.code_bytes = 0
        self.methods_compiled = 0
        self.send_hits = 0
        self.send_misses = 0
        self.send_megamorphic = 0
        self.send_pic_hits = 0
        self.instructions = 0

        self.frames: list[Frame] = []

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def run(self, source: str, receiver=None):
        """Parse a do-it, compile it, and execute it to a value."""
        doit = parse_doit(source)
        return self.run_doit(doit, receiver)

    def run_doit(self, doit: MethodNode, receiver=None):
        if receiver is None:
            receiver = self.world.lobby
        code = self._compile_method(doit, self.universe.map_of(receiver), "<doit>")
        previous = self.universe.evaluator
        self.universe.evaluator = self
        try:
            return self._run_code(code, receiver, (), home=None)
        finally:
            self.universe.evaluator = previous

    def call(self, receiver, selector: str, args: Sequence = ()):
        """Perform one dynamically-bound send from the outside."""
        previous = self.universe.evaluator
        self.universe.evaluator = self
        try:
            return self._send_sync(receiver, selector, list(args))
        finally:
            self.universe.evaluator = previous

    def call_block(self, block: SelfBlock, args: Sequence = ()):
        """Evaluator protocol (used by _BlockWhileTrue: and friends)."""
        return self._call_block_sync(block, list(args))

    def reset_measurements(self) -> None:
        self.cycles = 0
        self.instructions = 0
        self.send_hits = self.send_misses = self.send_megamorphic = 0
        self.send_pic_hits = 0

    @property
    def compiled_code_bytes(self) -> int:
        return self.code_bytes

    def aggregate_compile_stats(self) -> dict:
        """Sum the compiler's effort/effect counters over every body
        this runtime compiled (methods and blocks) — the evidence for
        "how many sends were inlined, how many checks deleted"."""
        totals: dict = {}
        for _, code in self._method_code.values():
            for key, value in code.compile_stats.items():
                totals[key] = totals.get(key, 0) + value
        for code in self._block_code.values():
            for key, value in code.compile_stats.items():
                totals[key] = totals.get(key, 0) + value
        return totals

    # ------------------------------------------------------------------
    # Compilation (the JIT half)
    # ------------------------------------------------------------------

    def _compile_method(self, code_node, receiver_map, selector: str) -> Code:
        key_map = receiver_map.map_id if self.config.customize else 0
        key = (id(code_node), key_map)
        cached = self._method_code.get(key)
        if cached is not None:
            return cached[1]
        started = time.perf_counter()
        graph = compile_code(
            self.universe, self.config, code_node, receiver_map,
            selector=selector, annotations=self.annotations,
        )
        compiled = generate(graph, self.model)
        self.compile_seconds += time.perf_counter() - started
        self._method_code[key] = (code_node, compiled)
        self.code_bytes += compiled.size_bytes
        self.methods_compiled += 1
        return compiled

    def _compile_block(self, block: SelfBlock, receiver_map) -> Code:
        key_map = receiver_map.map_id if self.config.customize else 0
        key = (block.code.block_id, key_map)
        cached = self._block_code.get(key)
        if cached is not None:
            return cached
        template = self._block_templates.get(block.code.block_id)
        started = time.perf_counter()
        graph = compile_code(
            self.universe, self.config, block.code, receiver_map,
            selector=f"<block#{block.code.block_id}>", is_block=True,
            block_template=template, annotations=self.annotations,
        )
        compiled = generate(graph, self.model)
        self.compile_seconds += time.perf_counter() - started
        self._block_code[key] = compiled
        self.code_bytes += compiled.size_bytes
        self.methods_compiled += 1
        return compiled

    # ------------------------------------------------------------------
    # Synchronous call helpers (re-entrant run segments)
    # ------------------------------------------------------------------

    def _send_sync(self, receiver, selector: str, args: list):
        if selector.startswith("_"):
            return self._run_primitive_send(receiver, selector, args)
        if type(receiver) is SelfBlock and selector == block_value_selector(len(args)):
            return self._call_block_sync(receiver, args)
        found = lookup_slot(self.universe, receiver, selector)
        if found is None:
            raise MessageNotUnderstood(selector, self.universe.print_string(receiver))
        holder, slot = found
        if slot.kind == CONSTANT:
            value = slot.value
            if isinstance(value, SelfMethod):
                code = self._compile_method(
                    value.code, self.universe.map_of(receiver), selector
                )
                self.cycles += self.model.frame_cycles
                return self._run_code(code, receiver, args, home=None)
            return value
        if slot.kind == DATA:
            self.cycles += self.model.slot_cycles
            return holder.get_data(slot.offset)
        if slot.kind == ASSIGNMENT:
            self.cycles += self.model.slot_cycles
            holder.set_data(slot.offset, args[0])
            return receiver
        raise VMError(f"unexpected slot kind {slot.kind}")

    def _call_block_sync(self, block: SelfBlock, args: list):
        home = block.home
        if not isinstance(home, Frame):
            raise VMError("a block from a foreign evaluator reached the VM")
        method_home = home
        while method_home.home is not None:
            method_home = method_home.home
        if not method_home.alive:
            raise NonLocalReturnFromDeadActivation()
        receiver = block.captured_self if block.captured_self is not None else home.receiver
        code = self._compile_block(block, self.universe.map_of(receiver))
        self.cycles += self.model.frame_cycles
        return self._run_code(
            code, receiver, args, home=home, env_map=block.env_map
        )

    def _run_primitive_send(self, receiver, selector: str, args: list):
        from ..primitives.registry import lookup_primitive

        primitive = lookup_primitive(selector)
        if primitive is None:
            raise MessageNotUnderstood(selector, self.universe.print_string(receiver))
        fail_handler = None
        if selector.endswith("IfFail:") and selector != primitive.selector:
            fail_handler = args.pop()
        self.cycles += self.model.prim_call_cycles
        self.cycles += PRIMITIVE_WORK_CYCLES.get(primitive.selector, 4)
        try:
            return primitive.fn(self.universe, receiver, args)
        except PrimFailSignal as failure:
            if fail_handler is None:
                raise PrimitiveFailed(primitive.selector, failure.code) from None
            if isinstance(fail_handler, SelfBlock):
                handler_args = [failure.code] if fail_handler.arity == 1 else []
                return self._call_block_sync(fail_handler, handler_args)
            return fail_handler

    # ------------------------------------------------------------------
    # The interpreter loop
    # ------------------------------------------------------------------

    def _run_code(
        self,
        code: Code,
        receiver,
        args: Sequence,
        home: Optional[Frame],
        env_map: Optional[dict] = None,
    ):
        frame = Frame(code, receiver, home, ret_reg=-1, env_map=env_map)
        frame.regs[code.self_reg] = receiver
        for reg, value in zip(code.arg_regs, args):
            frame.regs[reg] = value
        base = len(self.frames)
        self.frames.append(frame)
        try:
            return self._loop(base)
        except _NonLocalUnwind as unwind:
            # The target frame lives below this run segment: unwind our
            # frames and re-raise for the outer segment.
            for dead in self.frames[base:]:
                dead.alive = False
            del self.frames[base:]
            raise

    def _loop(self, base: int):
        universe = self.universe
        model = self.model
        frames = self.frames
        while True:
            frame = frames[-1]
            insns = frame.code.insns
            regs = frame.regs
            pc = frame.pc
            while True:
                insn = insns[pc]
                opcode = insn[0]
                self.instructions += 1
                self.cycles += model.instruction_cycles(opcode)
                pc += 1

                if opcode == op.MOVE:
                    regs[insn[1]] = regs[insn[2]]
                elif opcode == op.LOADK:
                    regs[insn[1]] = frame.code.consts[insn[2]]
                elif opcode == op.CMP_LT:
                    if not (regs[insn[1]] < regs[insn[2]]):
                        pc = insn[3]
                elif opcode == op.CMP_LE:
                    if not (regs[insn[1]] <= regs[insn[2]]):
                        pc = insn[3]
                elif opcode == op.CMP_GT:
                    if not (regs[insn[1]] > regs[insn[2]]):
                        pc = insn[3]
                elif opcode == op.CMP_GE:
                    if not (regs[insn[1]] >= regs[insn[2]]):
                        pc = insn[3]
                elif opcode == op.CMP_EQ:
                    if not (regs[insn[1]] == regs[insn[2]]):
                        pc = insn[3]
                elif opcode == op.CMP_NE:
                    if not (regs[insn[1]] != regs[insn[2]]):
                        pc = insn[3]
                elif opcode == op.ADD_OV:
                    result = regs[insn[2]] + regs[insn[3]]
                    if fits_smallint(result):
                        regs[insn[1]] = result
                    else:
                        regs[insn[4]] = "overflowError"
                        pc = insn[5]
                elif opcode == op.SUB_OV:
                    result = regs[insn[2]] - regs[insn[3]]
                    if fits_smallint(result):
                        regs[insn[1]] = result
                    else:
                        regs[insn[4]] = "overflowError"
                        pc = insn[5]
                elif opcode == op.MUL_OV:
                    result = regs[insn[2]] * regs[insn[3]]
                    if fits_smallint(result):
                        regs[insn[1]] = result
                    else:
                        regs[insn[4]] = "overflowError"
                        pc = insn[5]
                elif opcode == op.DIV_OV:
                    divisor = regs[insn[3]]
                    if divisor == 0:
                        regs[insn[4]] = "divisionByZeroError"
                        pc = insn[5]
                    else:
                        result = regs[insn[2]] // divisor
                        if fits_smallint(result):
                            regs[insn[1]] = result
                        else:
                            regs[insn[4]] = "overflowError"
                            pc = insn[5]
                elif opcode == op.MOD_OV:
                    divisor = regs[insn[3]]
                    if divisor == 0:
                        regs[insn[4]] = "divisionByZeroError"
                        pc = insn[5]
                    else:
                        regs[insn[1]] = regs[insn[2]] % divisor
                elif opcode == op.ADD:
                    regs[insn[1]] = regs[insn[2]] + regs[insn[3]]
                elif opcode == op.SUB:
                    regs[insn[1]] = regs[insn[2]] - regs[insn[3]]
                elif opcode == op.MUL:
                    regs[insn[1]] = regs[insn[2]] * regs[insn[3]]
                elif opcode == op.DIV:
                    divisor = regs[insn[3]]
                    if divisor == 0:
                        raise PrimitiveFailed("_IntDiv:", "divisionByZeroError")
                    regs[insn[1]] = regs[insn[2]] // divisor
                elif opcode == op.MOD:
                    divisor = regs[insn[3]]
                    if divisor == 0:
                        raise PrimitiveFailed("_IntMod:", "divisionByZeroError")
                    regs[insn[1]] = regs[insn[2]] % divisor
                elif opcode == op.TYPETEST:
                    if universe.map_of(regs[insn[1]]) is not insn[2]:
                        pc = insn[3]
                elif opcode == op.BOUNDS:
                    vector = regs[insn[1]]
                    index = regs[insn[2]]
                    if (
                        type(index) is not int
                        or index < 0
                        or index >= len(vector.elements)
                    ):
                        pc = insn[3]
                elif opcode == op.ALOAD:
                    regs[insn[1]] = regs[insn[2]].elements[regs[insn[3]]]
                elif opcode == op.ASTORE:
                    regs[insn[1]].elements[regs[insn[2]]] = regs[insn[3]]
                elif opcode == op.ALEN:
                    regs[insn[1]] = len(regs[insn[2]].elements)
                elif opcode == op.LOADSLOT:
                    regs[insn[1]] = regs[insn[2]].data[insn[3]]
                elif opcode == op.STORESLOT:
                    regs[insn[1]].data[insn[2]] = regs[insn[3]]
                elif opcode == op.ENV_LOAD:
                    regs[insn[1]] = self._env_load(frame, insn[2])
                elif opcode == op.ENV_STORE:
                    self._env_store(frame, insn[1], regs[insn[2]])
                elif opcode == op.MAKE_BLOCK:
                    block_node, template = frame.code.consts[insn[2]]
                    self._block_templates.setdefault(block_node.block_id, template)
                    env_map = self._build_env_map(frame, template)
                    regs[insn[1]] = SelfBlock(
                        universe.block_map(block_node), block_node, frame,
                        env_map=env_map, captured_self=regs[insn[3]],
                    )
                elif opcode == op.JUMP:
                    pc = insn[1]
                elif opcode == op.SEND:
                    frame.pc = pc
                    pushed = self._execute_send(frame, insn)
                    if pushed:
                        break  # enter the callee frame
                elif opcode == op.PRIMCALL:
                    frame.pc = pc
                    self._execute_primcall(frame, insn)
                    pc = frame.pc
                elif opcode == op.RETURN:
                    value = regs[insn[1]]
                    frame.alive = False
                    frames.pop()
                    if len(frames) <= base:
                        return value
                    caller = frames[-1]
                    if frame.ret_reg >= 0:
                        caller.regs[frame.ret_reg] = value
                    break
                elif opcode == op.NLR:
                    value = regs[insn[1]]
                    target = frame
                    while target.home is not None:
                        target = target.home
                    if not target.alive:
                        raise NonLocalReturnFromDeadActivation()
                    self.cycles += model.nlr_cycles
                    # Unwind within this segment if possible.
                    try:
                        position = frames.index(target, base)
                    except ValueError:
                        frame.pc = pc
                        raise _NonLocalUnwind(target, value) from None
                    for dead in frames[position:]:
                        dead.alive = False
                    ret_reg = target.ret_reg
                    del frames[position:]
                    if len(frames) <= base:
                        return value
                    caller = frames[-1]
                    if ret_reg >= 0:
                        caller.regs[ret_reg] = value
                    break
                elif opcode == op.ERROR:
                    code_value = insn[2] if insn[2] is not None else regs[insn[3]]
                    raise PrimitiveFailed(insn[1], code_value)
                else:
                    raise VMError(f"bad opcode {opcode}")

    # ------------------------------------------------------------------
    # Sends
    # ------------------------------------------------------------------

    def _execute_send(self, frame: Frame, insn) -> bool:
        """Returns True when a callee frame was pushed."""
        universe = self.universe
        model = self.model
        dst, selector, recv_reg, arg_regs, site_index = insn[1:6]
        receiver = frame.regs[recv_reg]
        args = [frame.regs[r] for r in arg_regs]
        site = frame.code.ic_sites[site_index]
        receiver_map = universe.map_of(receiver)
        if site.cached_map_id == receiver_map.map_id:
            # Monomorphic inline-cache hit: the fast path of
            # Deutsch–Schiffman caching, which both ST-80 and SELF used.
            action = site.cached_action
            site.hits += 1
            self.send_hits += 1
            self.cycles += model.send_hit_cycles
        else:
            action = site.entries.get(receiver_map.map_id)
            if action is None:
                # Cold: full lookup (and possibly a compile).
                site.misses += 1
                self.send_misses += 1
                self.cycles += model.send_miss_cycles
                action = self._resolve_send(receiver, receiver_map, selector, len(args))
                site.entries[receiver_map.map_id] = action
            elif self.use_polymorphic_caches:
                # Extension: a polymorphic inline cache dispatches the
                # known receiver maps through a stub (§6.1's proposed
                # fix; PICs in the later literature).
                site.relinks += 1
                self.send_pic_hits += 1
                self.cycles += model.send_pic_hit_cycles
            else:
                # The site is polymorphic: the cache keeps relinking.
                # This is what makes the richards task-dispatch site
                # expensive (paper, section 6.1).
                site.relinks += 1
                self.send_megamorphic += 1
                self.cycles += model.send_megamorphic_cycles
            site.cached_map_id = receiver_map.map_id
            site.cached_action = action

        kind = action[0]
        if kind == "call":
            self.cycles += model.frame_cycles
            callee = Frame(action[1], receiver, None, ret_reg=dst)
            callee.regs[action[1].self_reg] = receiver
            for reg, value in zip(action[1].arg_regs, args):
                callee.regs[reg] = value
            self.frames.append(callee)
            return True
        if kind == "block":
            block = receiver
            home = block.home
            method_home = home
            while method_home.home is not None:
                method_home = method_home.home
            if not method_home.alive:
                raise NonLocalReturnFromDeadActivation()
            receiver2 = (
                block.captured_self if block.captured_self is not None
                else home.receiver
            )
            code = self._compile_block(block, universe.map_of(receiver2))
            self.cycles += model.frame_cycles
            callee = Frame(code, receiver2, home, ret_reg=dst, env_map=block.env_map)
            callee.regs[code.self_reg] = receiver2
            for reg, value in zip(code.arg_regs, args):
                callee.regs[reg] = value
            self.frames.append(callee)
            return True
        if kind == "data":
            holder = action[1] if action[1] is not None else receiver
            frame.regs[dst] = holder.data[action[2]]
            self.cycles += model.slot_cycles
            return False
        if kind == "assign":
            holder = action[1] if action[1] is not None else receiver
            holder.data[action[2]] = args[0]
            frame.regs[dst] = receiver
            self.cycles += model.slot_cycles
            return False
        if kind == "const":
            frame.regs[dst] = action[1]
            return False
        if kind == "prim":
            frame.regs[dst] = self._run_primitive_send(receiver, selector, args)
            return False
        raise VMError(f"bad send action {action!r}")

    def _resolve_send(self, receiver, receiver_map, selector: str, arity: int):
        if selector.startswith("_"):
            return ("prim",)
        if type(receiver) is SelfBlock and selector == block_value_selector(arity):
            return ("block",)
        found = lookup_slot(self.universe, receiver, selector)
        if found is None:
            raise MessageNotUnderstood(selector, self.universe.print_string(receiver))
        holder, slot = found
        holder_for_action = None if holder is receiver else holder
        if slot.kind == CONSTANT:
            value = slot.value
            if isinstance(value, SelfMethod):
                code = self._compile_method(value.code, receiver_map, selector)
                return ("call", code)
            return ("const", value)
        if slot.kind == DATA:
            return ("data", holder_for_action, slot.offset)
        if slot.kind == ASSIGNMENT:
            return ("assign", holder_for_action, slot.offset)
        raise VMError(f"unexpected slot kind {slot.kind}")

    # ------------------------------------------------------------------
    # Primitive calls and environments
    # ------------------------------------------------------------------

    def _execute_primcall(self, frame: Frame, insn) -> None:
        dst, primitive, recv_reg, arg_regs, err_reg, fail_target = insn[1:7]
        receiver = frame.regs[recv_reg]
        args = [frame.regs[r] for r in arg_regs]
        selector_name = primitive.selector
        if selector_name == "_Clone" or selector_name == "_NewVector:Filler:":
            # Allocation cost is a per-system constant: 1990 malloc for
            # the C baseline, a bump allocator for the SELF systems.
            self.cycles += self.model.alloc_cycles
            if selector_name == "_NewVector:Filler:" and type(args[0]) is int:
                self.cycles += int(args[0] * self.model.prim_per_element_cycles)
            elif isinstance(receiver, SelfVector):
                self.cycles += int(
                    len(receiver.elements) * self.model.prim_per_element_cycles
                )
        else:
            self.cycles += PRIMITIVE_WORK_CYCLES.get(selector_name, 4)
        try:
            frame.regs[dst] = primitive.fn(self.universe, receiver, args)
        except PrimFailSignal as failure:
            if fail_target is None or fail_target < 0:
                raise PrimitiveFailed(primitive.selector, failure.code) from None
            if err_reg >= 0:
                frame.regs[err_reg] = failure.code
            frame.pc = fail_target

    def _build_env_map(self, frame: Frame, template) -> dict:
        """Capture the closure's free-name -> env-key mapping.

        Passthrough entries ('*name') come from this frame's own closure
        mapping (we are block code creating a nested block).
        """
        env_map: dict = {}
        frame_map = frame.env_map
        for name, key in template.resolutions.items():
            if key is None:
                continue
            if key.startswith("*"):
                source = key[1:]
                if frame_map is not None and source in frame_map:
                    env_map[source] = frame_map[source]
                else:
                    env_map[source] = source
            else:
                env_map[name] = key
        return env_map

    def _env_load(self, frame: Frame, key: str):
        current: Optional[Frame] = frame
        if frame.env_map is not None and key in frame.env_map:
            # A free variable of this block: by construction it lives in
            # the home chain, never in this frame — start above, so a
            # recursive block's own (identically-keyed) locals cannot
            # shadow the instance the closure captured.
            key = frame.env_map[key]
            current = frame.home
        hops = 1
        while current is not None:
            env = current.env
            if env is not None and key in env:
                self.cycles += self.model.env_hop_cycles * hops
                return env[key]
            current = current.home
            hops += 1
        raise VMError(f"unresolved environment variable {key!r}")

    def _env_store(self, frame: Frame, key: str, value) -> None:
        current: Optional[Frame] = frame
        if frame.env_map is not None and key in frame.env_map:
            key = frame.env_map[key]
            current = frame.home
        hops = 1
        while current is not None:
            env = current.env
            if env is not None and key in env:
                self.cycles += self.model.env_hop_cycles * hops
                env[key] = value
                return
            current = current.home
            hops += 1
        raise VMError(f"unresolved environment variable {key!r}")
