"""Source emission for the translated tier: threaded stream -> Python.

:func:`emit_source` walks one predecoded, superinstruction-fused stream
(:func:`~.dispatch.predecode`'s output) and generates the source of one
specialized host function for the whole body.  Where the threaded loop
pays one indexed load plus one call per instruction, the translated
function is straight-line code: handler bodies are inlined in stream
order, and control flow is lowered to a dispatch-free jump-label scheme

::

    while True:
        if _l == 0:          # labels are threaded-stream indices
            ...straight-line handler bodies...
            _l = 12          # a taken branch: set the label,
            continue         # re-enter the chain
        elif _l == 12:
            ...

**Labels are threaded indices.**  The label set is ``{0}`` plus every
branch target plus the index after every suspending (SEND-family)
instruction, so ``frame.pc`` means the same thing in both
representations and the fallback PC mapping is the identity: a frame
suspended by a translated SEND can resume in the threaded loop (and
vice versa) at any activation boundary — this is what makes
invalidation's "live translated frames fall back to the predecoded
stream" contract trivially sound (docs/INTERNALS.md §12).

**Register moves are propagated, not executed.**  The compiler's
register allocator produces long chains of plain moves
(``regs[4] = regs[3]; regs[5] = regs[4]``); executing them one-for-one
would dominate the generated code.  The emitter instead keeps an
emission-time alias map — "the logical value of register *r* currently
lives in slot *p*" — substitutes every read through it, and *defers*
the stores.  Deferred stores materialize only where another tier (or
another frame) could observe ``regs`` physically: at taken branches and
block boundaries (filtered by a liveness analysis over the threaded
stream, so dead registers are never stored at all), and at every SEND
(the argument registers plus whatever is live at the resume point —
the callee's return value write, the cold send helpers, and a threaded
fallback resume all read ``regs`` directly).  Terminating exits
(RETURN, NLR, guest errors) flush nothing: the frame is dead or
unwinding and its registers are unobservable.

**Modeled counters** are compiled in only when requested.  With
``counters=True`` every instruction charges its precomputed static cost
(``_cyc += c; _n += k``) into locals flushed by a ``try/finally`` —
bit-identical to the threaded loop's accounting, including the fused
refund paths and exception exits.  With ``counters=False``
(``REPRO_MODELED_COUNTERS=0``) all accounting is elided from the
generated source: the modeled measurements of translated bodies become
meaningless, and the win is raw wall-clock.

**Constants** (IC sites, maps, block templates, primitive functions)
are not baked into the source; each is referenced as ``_K[i]`` and the
emitter returns the *paths* ``(stream_index, operand, ...)`` that
locate them in the threaded stream.  The same compiled factory is
therefore reusable across share clones (congruent re-predecoded
streams over the same ``insns`` list): only the cheap constant
extraction runs per clone.  Immutable literals (ints, strs, floats,
None, bools) are inlined directly.

The open-coded SEND probe duplicates only the monomorphic hit path;
the cold halves call :func:`~.dispatch._send_miss` and
:func:`~.dispatch._send_action` — the same functions the threaded
handler uses — so cache-miss, PIC, and every non-call action kind have
exactly one implementation.
"""

from __future__ import annotations

from ..objects.errors import (
    NonLocalReturnFromDeadActivation,
    PrimitiveFailed,
    VMError,
)
from ..objects.model import (
    SMALLINT_MAX,
    SMALLINT_MIN,
    BigInt,
    SelfBlock,
    SelfObject,
    SelfVector,
)
from ..primitives.registry import PrimFailSignal
from .dispatch import (
    _do_add,
    _do_add_ov,
    _do_alen,
    _do_aload,
    _do_astore,
    _do_bounds,
    _do_cmp_eq,
    _do_cmp_ge,
    _do_cmp_gt,
    _do_cmp_le,
    _do_cmp_lt,
    _do_cmp_ne,
    _do_div,
    _do_div_ov,
    _do_env_load,
    _do_env_store,
    _do_error,
    _do_jump,
    _do_loadk,
    _do_loadslot,
    _do_make_block,
    _do_mod,
    _do_mod_ov,
    _do_move,
    _do_mul,
    _do_mul_ov,
    _do_nlr,
    _do_primcall,
    _do_primcall_clone,
    _do_primcall_newvec,
    _do_return,
    _do_send,
    _do_storeslot,
    _do_sub,
    _do_sub_ov,
    _do_typetest,
    _f_addov_move,
    _f_bounds_aload,
    _f_bounds_astore,
    _f_loadk_addov,
    _f_loadk_move,
    _f_loadk_typetest,
    _f_loadslot_move,
    _f_move_jump,
    _f_move_loadk,
    _f_move_move,
    _f_move_move_move,
    _f_move_return,
    _f_move_send,
    _f_move_typetest,
    _f_subov_move,
    _f_typetest_bounds,
    _f_typetest_move,
    _f_typetest_send,
    _f_typetest_typetest,
    _send_action,
    _send_miss,
)
from .frame import Frame


class UnsupportedStream(Exception):
    """The stream contains something the emitter cannot lower; the
    translator marks the body untranslatable and the predecoded stream
    keeps running it."""


#: the exec() namespace every generated factory closes over
EMIT_GLOBALS = {
    "_Frame": Frame,
    "_new_frame": object.__new__,
    "_send_miss": _send_miss,
    "_send_action": _send_action,
    "_PrimFail": PrimFailSignal,
    "_PrimitiveFailed": PrimitiveFailed,
    "_BigInt": BigInt,
    "_SelfObject": SelfObject,
    "_SelfBlock": SelfBlock,
    "_SelfVector": SelfVector,
    "_DeadNLR": NonLocalReturnFromDeadActivation,
    "_VMError": VMError,
}

#: direct translated->translated calls deeper than this trampoline
#: back through the caller's inline loop (bounds host stack growth)
MAX_DIRECT_DEPTH = 64


def extract_constant(threaded, path):
    """Resolve one constant path against a (congruent) threaded stream."""
    obj = threaded[path[0]]
    for index in path[1:]:
        obj = obj[index]
    return obj


def _is_literal(value) -> bool:
    return (
        value is None
        or value is True
        or value is False
        or type(value) is int
        or type(value) is str
        or type(value) is float
    )


class _Ctx:
    """Emission state: output lines, indent depth, constant paths, and
    the move-propagation alias map.

    ``alias[r] == p`` means "the logical value of register ``r``
    currently lives in physical slot ``p``" — reads go through
    :meth:`rd`, plain moves through :meth:`defer_move` (which emits
    nothing), and real stores through :meth:`wr` (which first
    *materializes* any register whose value is physically backed by the
    slot about to be clobbered).  The invariant maintained throughout
    is that no alias key ever appears as an alias value, so the stores
    emitted by :meth:`flush` are independent of order.

    The alias map is *emission-time* state: conditional arms that
    rejoin the straight-line path must leave it exactly as they found
    it (callers :meth:`snapshot`/:meth:`restore` around arms that exit
    via ``goto``/``raise``).
    """

    __slots__ = (
        "threaded", "counters", "universe", "lines", "depth",
        "paths", "_path_index", "guards", "alias", "live_in",
        "profiling", "pic", "mru", "cur", "site_locals",
    )

    def __init__(self, threaded, counters: bool, universe=None,
                 live_in=None, profiling: bool = False,
                 pic: bool = False, mru: bool = True) -> None:
        self.threaded = threaded
        self.counters = counters
        #: emit profiler tick hooks (activation ticks at the trampoline,
        #: branch ticks at backward gotos) — same emission-time gating
        #: as ``counters``, so profiling off leaves the source untouched
        self.profiling = profiling
        #: open-code the dispatch ladder (PIC probe + megamorphic
        #: table) in SEND emission.  Only the raw-speed mode takes the
        #: lean path: with counters or profiling on, sends keep the
        #: pre-ladder emission (everything cold goes through
        #: ``_send_miss``) so modeled accounting stays bit-identical
        self.pic = pic
        #: MRU promotion in lean sends (REPRO_PIC_MRU): a megamorphic-
        #: table hit re-installs its row as the site's mono entry, so a
        #: skewed receiver distribution rides the one-compare mono
        #: probe between receiver changes instead of hashing the table
        #: on every send.  Lean mode only; affects no modeled number.
        self.mru = mru
        #: stream index of the instruction currently being emitted
        #: (maintained by emit_source's pass 1; a goto to ``<= cur`` is
        #: a backward branch)
        self.cur = -1
        #: when provided, type tests against well-known maps lower to
        #: host type checks and object-map probes to attribute loads
        #: (sound: the compile that planted the test recorded the
        #: well-known-map dependency, so the mutation that could break
        #: the specialization also retires this translation)
        self.universe = universe
        self.lines: list[str] = []
        self.depth = 0
        self.paths: list[tuple] = []
        self._path_index: dict[tuple, int] = {}
        #: (path, value) pairs a *reused* factory must re-verify: a
        #: well-known-map specialization bakes the map's identity into
        #: the source (no ``_K`` reference), so a congruent clone stream
        #: must carry the same object at that path to share the factory
        self.guards: list[tuple] = []
        self.alias: dict[int, int] = {}
        #: per-stream-index live register sets (threaded semantics),
        #: consulted when a control transfer forces deferred stores out
        self.live_in = live_in
        #: lean mode only: IC-site constants bound to function-entry
        #: locals (``_sN = _K[n]``) so each open-coded ladder probe
        #: skips the per-send constant-pool subscript.  Maps the
        #: constant path to the local's name; empty outside lean mode,
        #: keeping non-lean emission byte-identical to a PIC-off build.
        self.site_locals: dict[tuple, str] = {}

    def guard(self, path: tuple, value) -> None:
        self.guards.append((path, value))

    def w(self, text: str) -> None:
        self.lines.append("    " * self.depth + text)

    def konst(self, *path) -> str:
        index = self._path_index.get(path)
        if index is None:
            index = len(self.paths)
            self.paths.append(path)
            self._path_index[path] = index
        return f"_K[{index}]"

    def site_local(self, path: tuple) -> str:
        """The entry-hoisted local holding the IC site at ``path``."""
        expr = self.konst(*path)
        name = "_s" + expr[3:-1]
        self.site_locals[path] = name
        return name

    def operand(self, base: tuple, j: int) -> str:
        """An operand expression: inline literal or constant-pool slot."""
        value = extract_constant(self.threaded, base + (j,))
        if _is_literal(value):
            return repr(value)
        return self.konst(*(base + (j,)))

    # -- move propagation ---------------------------------------------------

    def rd(self, reg: int) -> str:
        """The expression reading logical register ``reg``."""
        return f"regs[{self.alias.get(reg, reg)}]"

    def wr(self, reg: int) -> str:
        """The lvalue for a real store to ``reg``; materializes every
        register whose deferred value is backed by this slot first.
        Call only after all read expressions of the statement are
        resolved (:meth:`rd` of the old ``reg`` must not see the drop).
        """
        alias = self.alias
        if alias:
            for q in [q for q, p in alias.items() if p == reg]:
                self.w(f"regs[{q}] = regs[{reg}]")
                del alias[q]
            alias.pop(reg, None)
        return f"regs[{reg}]"

    def defer_move(self, dst: int, src: int) -> None:
        """Record ``dst := src`` in the alias map; emits no store."""
        alias = self.alias
        for q in [q for q, p in alias.items() if p == dst]:
            self.w(f"regs[{q}] = regs[{dst}]")
            del alias[q]
        root = alias.get(src, src)
        if root == dst:
            alias.pop(dst, None)
        else:
            alias[dst] = root

    def flush(self, needed=None, clear: bool = False) -> None:
        """Materialize deferred stores (restricted to ``needed`` when
        given).  Order-independent by the keys-never-values invariant.
        """
        alias = self.alias
        if alias:
            for q in sorted(alias):
                if needed is None or q in needed:
                    self.w(f"regs[{q}] = regs[{alias[q]}]")
        if clear:
            self.alias = {}

    def snapshot(self) -> dict:
        return dict(self.alias)

    def restore(self, saved: dict) -> None:
        self.alias = saved

    # -----------------------------------------------------------------------

    def charge(self, insn) -> None:
        if self.counters:
            if insn[1]:
                self.w(f"_cyc += {insn[1]}; _n += {insn[2]}")
            else:
                self.w(f"_n += {insn[2]}")

    def refund(self, cycles: int) -> None:
        """Mirror :func:`~.dispatch._skip_second`: the first half of a
        fused pair branched away, refund the second half's pre-charge."""
        if self.counters:
            self.w(f"_cyc -= {cycles}; _n -= 1")

    def goto(self, target: int) -> None:
        # A taken control transfer is observable: the target block (in
        # either tier) reads registers physically, so deferred stores
        # of registers live there materialize on this path.  The alias
        # map itself is untouched — the fallthrough emission path
        # continues with its deferrals intact.
        self.flush(self.live_in[target])
        if self.profiling and 0 <= target <= self.cur:
            # A taken backward branch: the same deterministic tick the
            # threaded loop records for ``next_pc <= pc``.
            self.w("vm.profiler.tick_branch(frame)")
        self.w(f"_l = {target}")
        self.w("continue")


# ---------------------------------------------------------------------------
# Liveness over the threaded stream
# ---------------------------------------------------------------------------
# Each handler contributes an ordered tuple of *parts*
# ``(reads, writes, targets)``: the machine reads ``reads``, may
# transfer to any of ``targets`` (where that index's live-in set
# applies), and on fallthrough has performed ``writes``.  Folding the
# parts backward gives the instruction's live-in from its live-out.
# Reads are exact-or-over-approximated and writes under-approximated
# where edges differ (e.g. the overflow edge's error-register store is
# ignored), which only ever *grows* the live sets — flushing a dead
# register is wasted work, never wrong.


def _lv_move(i):
    return (((i[4],), (i[3],), ()),), True


def _lv_loadk(i):
    return (((), (i[3],), ()),), True


def _lv_cmp(i):
    return (((i[3], i[4]), (), (i[5],)),), True


def _lv_arith(i):
    return (((i[4], i[5]), (i[3],), ()),), True


def _lv_arith_ov(i):
    return (((i[4], i[5]), (), (i[7],)), ((), (i[3],), ())), True


def _lv_typetest(i):
    return (((i[3],), (), (i[5],)),), True


def _lv_bounds(i):
    return (((i[3], i[4]), (), (i[5],)),), True


def _lv_aload(i):
    return (((i[4], i[5]), (i[3],), ()),), True


def _lv_astore(i):
    return (((i[3], i[4], i[5]), (), ()),), True


def _lv_alen(i):
    return (((i[4],), (i[3],), ()),), True


def _lv_loadslot(i):
    return (((i[4],), (i[3],), ()),), True


def _lv_storeslot(i):
    return (((i[3], i[5]), (), ()),), True


def _lv_env_load(i):
    return (((), (i[3],), ()),), True


def _lv_env_store(i):
    return (((i[4],), (), ()),), True


def _lv_make_block(i):
    return (((i[6],), (i[3],), ()),), True


def _lv_jump(i):
    return (((), (), (i[3],)),), False


def _lv_return(i):
    return (((i[3],), (), ()),), False


def _lv_nlr(i):
    # Conservative fallthrough: the frame in fact dies or unwinds, but
    # treating the next slot as a successor only enlarges the live set.
    return (((i[3],), (), ()),), True


def _lv_error(i):
    reads = (i[5],) if i[4] is None else ()
    return ((reads, (), ()),), False


def _lv_send(i):
    return (((i[5],) + tuple(i[6]), (i[3],), ()),), True


def _lv_primcall(i):
    targets = (i[8],) if i[8] >= 0 else ()
    return (((i[5],) + tuple(i[6]), (), targets), ((), (i[3],), ())), True


def _lv_f_move_move(i):
    return (((i[4],), (i[3],), ()), ((i[6],), (i[5],), ())), True


def _lv_f_move_move_move(i):
    return (
        ((i[4],), (i[3],), ()),
        ((i[6],), (i[5],), ()),
        ((i[8],), (i[7],), ()),
    ), True


def _lv_f_move_loadk(i):
    return (((i[4],), (i[3],), ()), ((), (i[5],), ())), True


def _lv_f_loadk_move(i):
    return (((), (i[3],), ()), ((i[6],), (i[5],), ())), True


def _lv_f_move_typetest(i):
    return (((i[4],), (i[3],), ()), ((i[5],), (), (i[7],))), True


def _lv_f_loadk_typetest(i):
    return (((), (i[3],), ()), ((i[5],), (), (i[7],))), True


def _lv_f_typetest_move(i):
    return (((i[3],), (), (i[5],)), ((i[7],), (i[6],), ())), True


def _lv_f_typetest_typetest(i):
    return (((i[3],), (), (i[5],)), ((i[6],), (), (i[8],))), True


def _lv_f_typetest_bounds(i):
    return (((i[3],), (), (i[5],)), ((i[6], i[7]), (), (i[8],))), True


def _lv_f_bounds_aload(i):
    return (((i[3], i[4]), (), (i[5],)), ((i[7], i[8]), (i[6],), ())), True


def _lv_f_bounds_astore(i):
    return (((i[3], i[4]), (), (i[5],)), ((i[6], i[7], i[8]), (), ())), True


def _lv_f_move_jump(i):
    return (((i[4],), (i[3],), ()), ((), (), (i[5],))), False


def _lv_f_addov_move(i):
    return (
        ((i[4], i[5]), (), (i[7],)),
        ((), (i[3],), ()),
        ((i[9],), (i[8],), ()),
    ), True


def _lv_f_loadk_addov(i):
    return (
        ((), (i[3],), ()),
        ((i[6], i[7]), (), (i[9],)),
        ((), (i[5],), ()),
    ), True


def _lv_f_loadslot_move(i):
    return (((i[4],), (i[3],), ()), ((i[7],), (i[6],), ())), True


def _lv_f_move_return(i):
    return (((i[4],), (i[3],), ()), ((i[5],), (), ())), False


def _lv_f_move_send(i):
    e = i[5]
    return (
        ((i[4],), (i[3],), ()),
        ((e[5],) + tuple(e[6]), (e[3],), ()),
    ), True


def _lv_f_typetest_send(i):
    e = i[6]
    return (
        ((i[3],), (), (i[5],)),
        ((e[5],) + tuple(e[6]), (e[3],), ()),
    ), True


def _analyze_liveness(threaded):
    """Backward fixpoint of live registers per stream index.

    Returns ``live_in`` of length ``len(threaded) + 1`` (the sentinel
    tail entry is empty) consulted wherever a deferred store could
    become observable: the emitter stores a dead register *never*, a
    live one only at the control transfer that exposes it.
    """
    n = len(threaded)
    specs = []
    for insn in threaded:
        fn = _LIVE_SPECS.get(insn[0])
        if fn is None:
            raise UnsupportedStream(
                f"no liveness spec for handler {insn[0].__name__}"
            )
        specs.append(fn(insn))
    empty = frozenset()
    live_in = [empty] * (n + 1)
    changed = True
    while changed:
        changed = False
        for i in range(n - 1, -1, -1):
            parts, fall = specs[i]
            live = live_in[i + 1] if fall else empty
            for reads, writes, targets in reversed(parts):
                for t in targets:
                    live = live | live_in[t]
                if writes:
                    live = live.difference(writes)
                if reads:
                    live = live.union(reads)
            if live != live_in[i]:
                live_in[i] = live
                changed = True
    return live_in


# ---------------------------------------------------------------------------
# Shared lowering fragments (composed by the per-handler emitters)
# ---------------------------------------------------------------------------


def _loadk(c, base, dst, j):
    value = c.operand(base, j)
    c.w(f"{c.wr(dst)} = {value}")


def _cmp(c, sym, a, b, target):
    # ``not (a < b)`` rather than ``a >= b``: exact for unordered
    # operands (guest floats), mirroring the handler's conditional.
    a_e, b_e = c.rd(a), c.rd(b)
    c.w(f"if not ({a_e} {sym} {b_e}):")
    c.depth += 1
    c.goto(target)
    c.depth -= 1


#: well-known-map kinds whose instances are bare host values with a
#: dedicated singleton map: ``map_of(x) is <wk map>  <=>  type(x) is T``
_WK_HOST_TYPES = {
    "smallInt": "int",
    "bigInt": "_BigInt",
    "float": "float",
    "string": "str",
}

#: model classes that carry their map as an attribute, keyed by map
#: kind (a wrong guess only costs the ``_map_of`` fallback, never
#: correctness, so no reuse guard is needed for this form)
_ATTR_CLASSES = {"block": "_SelfBlock", "vector": "_SelfVector"}


def _map_mismatch(c, base, reg, map_j) -> str:
    """The condition for "``regs[reg]``'s map is not the tested map".

    Without a universe this is the handler's literal form.  With one,
    tests against the singleton well-known maps become host ``type``
    checks (guarded for factory reuse), and everything else probes the
    ``.map`` attribute directly with ``_map_of`` as the cold fallback —
    eliminating the per-test ``map_of`` call that dominates translated
    send-heavy profiles.
    """
    expr = c.rd(reg)
    uni = c.universe
    if uni is not None:
        path = base + (map_j,)
        tested = extract_constant(c.threaded, path)
        kind = getattr(tested, "kind", None)
        host_type = _WK_HOST_TYPES.get(kind)
        if host_type is not None and tested is getattr(
            uni, {"smallInt": "smallint_map", "bigInt": "bigint_map",
                  "float": "float_map", "string": "string_map"}[kind]
        ):
            c.guard(path, tested)
            return f"type({expr}) is not {host_type}"
        cls = _ATTR_CLASSES.get(kind, "_SelfObject")
        return (
            f"({expr}.map if {expr}.__class__ is {cls} "
            f"else _map_of({expr})) is not {c.operand(base, map_j)}"
        )
    return f"_map_of({expr}) is not {c.operand(base, map_j)}"


def _typetest(c, base, reg, map_j, target, refund_cycles=None):
    c.w(f"if {_map_mismatch(c, base, reg, map_j)}:")
    c.depth += 1
    if refund_cycles is not None:
        c.refund(refund_cycles)
    c.goto(target)
    c.depth -= 1


def _bounds(c, arr, idx, target, refund_cycles=None):
    idx_e, arr_e = c.rd(idx), c.rd(arr)
    c.w(f"_i = {idx_e}")
    c.w(
        f"if type(_i) is not int or _i < 0 "
        f"or _i >= len({arr_e}.elements):"
    )
    c.depth += 1
    if refund_cycles is not None:
        c.refund(refund_cycles)
    c.goto(target)
    c.depth -= 1


def _arith_ov(c, sym, dst, a, b, err, target, second=None, refund_cycles=None):
    """ADD_OV/SUB_OV/MUL_OV (optionally fused with a trailing MOVE)."""
    a_e, b_e = c.rd(a), c.rd(b)
    c.w(f"_t = {a_e} {sym} {b_e}")
    c.w(f"if {SMALLINT_MIN} <= _t <= {SMALLINT_MAX}:")
    c.depth += 1
    pre = c.snapshot()
    c.w(f"{c.wr(dst)} = _t")
    if second is not None:
        c.defer_move(second[0], second[1])
    c.depth -= 1
    post = c.snapshot()
    c.restore(pre)
    c.w("else:")
    c.depth += 1
    c.w(f"{c.wr(err)} = 'overflowError'")
    if refund_cycles is not None:
        c.refund(refund_cycles)
    c.goto(target)
    c.depth -= 1
    c.restore(post)


def _return_protocol(c, src):
    # The frame is finished: deferred stores die with it, only the
    # result register is read (substituted).  The caller's own
    # ``regs[ret_reg]`` write is physical in both tiers.
    src_e = c.rd(src)
    c.w(f"_t = {src_e}")
    c.w("frame.alive = False")
    c.w("_F.pop()")
    c.w("vm._ret_value = _t")
    c.w("if _F:")
    c.depth += 1
    c.w("_r = frame.ret_reg")
    c.w("if _r >= 0:")
    c.depth += 1
    # A frame at a run-segment boundary always has ret_reg -1, so this
    # never writes into an outer segment's frame (see _do_return).
    c.w("_F[-1].regs[_r] = _t")
    c.depth -= 2
    c.w("return -1")


def _send_core(c, insn, resume, base):
    """Open-code one SEND: monomorphic probe + inlined call action;
    every other outcome reuses the threaded handler's cold halves.

    A pushed callee is not bounced back to the runtime's outer loop:
    the tail trampoline direct-calls the callee's own translated
    function (depth-capped so the host stack stays bounded), and keeps
    re-dispatching whatever frame is on top until control returns to
    *this* frame — so a chain of hot translated sends runs entirely
    inside generated code.  Cold, retired, or over-deep callees fall
    out to the outer loop (``return -1``), which still counts their
    invocations and promotes them as usual.

    A send is where deferred moves become observable: the cold helpers
    read the argument registers physically, the callee's return writes
    ``regs[dst]`` physically, and a deopt fallback resumes the frame on
    the threaded stream — so everything live at the resume point (plus
    the arguments) is flushed here and the alias map starts empty on
    the far side.
    """
    dst, recv, arg_regs = insn[3], insn[5], insn[6]
    insn_k = c.konst(*base)
    recv_e = c.rd(recv)
    c.flush(c.live_in[resume].union(arg_regs), clear=True)
    # The dispatch ladder is open-coded only in raw-speed mode: with
    # counters or profiling on the cold half stays ``_send_miss`` so
    # the modeled accounting (and the emitted source) is identical to
    # a PIC-off build.
    lean = c.pic and not c.counters and not c.profiling
    if lean:
        site = c.site_local(base + (7,))
        c.w(f"_recv = {recv_e}")
    else:
        c.w(f"frame.pc = {resume}")
        c.w(f"_recv = {recv_e}")
        c.w(f"_site = {c.konst(*(base + (7,)))}")
        site = "_site"
    # map_of(SelfObject) is exactly ``value.map``; everything else
    # (ints, floats, blocks, vectors, ...) takes the cold call.
    c.w(
        "_rm = _recv.map if _recv.__class__ is _SelfObject "
        "else _map_of(_recv)"
    )

    def emit_call_body(set_pc):
        if set_pc:
            c.w(f"frame.pc = {resume}")
        if c.counters:
            c.w(f"_cyc += {insn[12]}")
        c.w("_code = _act[1]")
        # Frame fields spelled out inline (mirrors Frame.__init__):
        # the constructor call itself is measurable at send-heavy
        # call rates.
        c.w("_callee = _new_frame(_Frame)")
        c.w("_callee.code = _code")
        c.w("_callee.pc = 0")
        c.w("_callee.regs = _cregs = [None] * _code.reg_count")
        c.w("_callee.receiver = _recv")
        c.w("_ek = _code.env_keys")
        c.w("_callee.env = dict.fromkeys(_ek) if _ek else None")
        c.w("_callee.env_map = None")
        c.w("_callee.home = None")
        c.w(f"_callee.ret_reg = {dst}")
        c.w("_callee.alive = True")
        c.w("_cregs[_code.self_reg] = _recv")
        if arg_regs:
            c.w("_ar = _code.arg_regs")
            c.w(f"if len(_ar) == {len(arg_regs)}:")
            c.depth += 1
            for j, src in enumerate(arg_regs):
                c.w(f"_cregs[_ar[{j}]] = regs[{src}]")
            c.depth -= 1
            c.w("else:")
            c.depth += 1
            srcs = ", ".join(str(src) for src in arg_regs)
            c.w(f"for _a, _s in zip(_ar, ({srcs},)):")
            c.depth += 1
            c.w("_cregs[_a] = regs[_s]")
            c.depth -= 2
        c.w("_F.append(_callee)")
        c.w("_r = -1")

    if lean:
        # Wall-clock tier.  The hot probes — mono, shared megamorphic
        # table, bounded PIC — are pure loads and compares: no
        # accounting, no MRU rotation, and ``frame.pc`` is stored only
        # on the branches that can actually suspend this frame (a
        # pushed callee, a generic action, or the ``_send_miss`` cold
        # call).  The megamorphic table is probed *before* the PIC:
        # an overflowed site has ``pic = None``, so the table probe is
        # the common second rung on hostile workloads, while a
        # still-polymorphic site pays one extra None-test.  Probes
        # compare map *identity* (``cached_map`` / map-keyed tables),
        # skipping the ``map_id`` attribute load.  Ladder telemetry
        # (``mega_table_hits``) is counted by the interpreter tier
        # only; this path stays bare.
        #
        # Translation runs *after* warm-up, so a site that is already
        # megamorphic at emit time gets table-first emission with the
        # mono probe and the PIC arm compiled out entirely — the
        # ladder is one-way (only a wholesale flush nulls ``mega``,
        # and that path falls back to ``_send_miss``, which re-learns
        # and re-overflows).  The specialization bakes in this site's
        # state, so the factory is guarded on the site object: a share
        # clone with a colder site re-emits instead of reusing.
        site_obj = extract_constant(c.threaded, base + (7,))
        if getattr(site_obj, "mega", None) is not None:
            c.guard(base + (7,), site_obj)
            if c.mru:
                # MRU promotion keeps the mono probe even in
                # table-first emission: the table hit below re-installs
                # its row here, so a skewed distribution's dominant
                # receiver pays one identity compare per send and the
                # table is only consulted when the receiver changes.
                c.w(f"if {site}.cached_map is _rm:")
                c.depth += 1
                c.w(f"_act = {site}.cached_action")
                c.depth -= 1
                c.w("else:")
                c.depth += 1
            c.w(f"_mega = {site}.mega")
            c.w("if _mega is not None:")
            c.depth += 1
            c.w("try:")
            c.depth += 1
            c.w("_act = _mega[_rm]")
            c.depth -= 1
            c.w("except KeyError:")
            c.depth += 1
            c.w(f"frame.pc = {resume}")
            c.w(f"_act = _send_miss(vm, _recv, {site}, {insn_k})")
            c.depth -= 1
            if c.mru:
                c.w("else:")
                c.depth += 1
                c.w(f"{site}.cached_map_id = _rm.map_id")
                c.w(f"{site}.cached_map = _rm")
                c.w(f"{site}.cached_action = _act")
                c.depth -= 1
            c.depth -= 1
            c.w("else:")
            c.depth += 1
            c.w(f"frame.pc = {resume}")
            c.w(f"_act = _send_miss(vm, _recv, {site}, {insn_k})")
            c.depth -= 1
            if c.mru:
                c.depth -= 1
        else:
            c.w(f"if {site}.cached_map is _rm:")
            c.depth += 1
            c.w(f"_act = {site}.cached_action")
            c.depth -= 1
            c.w("else:")
            c.depth += 1
            c.w(f"_mega = {site}.mega")
            c.w("if _mega is not None:")
            c.depth += 1
            # ``try`` is free on the hit path (3.11+ zero-cost
            # exception ranges); a genuine table miss eats the handler
            # cost once and comes back installed.
            c.w("try:")
            c.depth += 1
            c.w("_act = _mega[_rm]")
            c.depth -= 1
            c.w("except KeyError:")
            c.depth += 1
            c.w(f"frame.pc = {resume}")
            c.w(f"_act = _send_miss(vm, _recv, {site}, {insn_k})")
            c.depth -= 1
            if c.mru:
                # MRU: promote the table hit into the mono entry.
                c.w("else:")
                c.depth += 1
                c.w(f"{site}.cached_map_id = _rm.map_id")
                c.w(f"{site}.cached_map = _rm")
                c.w(f"{site}.cached_action = _act")
                c.depth -= 1
            c.depth -= 1
            c.w("else:")
            c.depth += 1
            c.w("_act = None")
            c.w(f"_pic = {site}.pic")
            c.w("if _pic is not None:")
            c.depth += 1
            c.w("for _row in _pic:")
            c.depth += 1
            c.w("if _row[0] is _rm:")
            c.depth += 1
            c.w("_act = _row[1]")
            c.w("break")
            c.depth -= 3
            c.w("if _act is None:")
            c.depth += 1
            c.w(f"frame.pc = {resume}")
            c.w(f"_act = _send_miss(vm, _recv, {site}, {insn_k})")
            c.depth -= 3
        # Slot-access actions are spelled out so a megamorphic
        # accessor send never leaves generated code, and the constant
        # arm is tested first: on dispatch-bound workloads constant
        # and data slots outnumber method activations.  Slot arms
        # push no frame, so each falls straight through to the resume
        # point — no ``_r`` store, no trampoline test; only the call
        # and generic arms (which can suspend this frame) carry their
        # own trampoline.  A statement-position send's result register
        # is dead at the resume point, so the slot arms skip the store
        # entirely (the callee-return machinery of the 'call' arm and
        # the generic ``_send_action`` still write it — harmlessly).
        # (Modeled slot cycles are a counters-mode concern; this tier
        # measures wall clock only.)
        dst_live = dst in c.live_in[resume]
        c.w("if _act[0] == 'const':")
        c.depth += 1
        if dst_live:
            c.w(f"regs[{dst}] = _act[1]")
        else:
            c.w("pass")
        c.depth -= 1
        c.w("elif _act[0] == 'call':")
        c.depth += 1
        emit_call_body(set_pc=True)
        _trampoline(c)
        c.depth -= 1
        c.w("elif _act[0] == 'data':")
        c.depth += 1
        if dst_live:
            c.w("_h = _act[1]")
            c.w(f"regs[{dst}] = (_h if _h is not None else _recv)"
                ".data[_act[2]]")
        else:
            c.w("pass")
        c.depth -= 1
        if arg_regs:
            c.w("elif _act[0] == 'assign':")
            c.depth += 1
            c.w("_h = _act[1]")
            c.w("(_h if _h is not None else _recv)"
                f".data[_act[2]] = regs[{arg_regs[0]}]")
            if dst_live:
                c.w(f"regs[{dst}] = _recv")
            c.depth -= 1
        c.w("else:")
        c.depth += 1
        c.w(f"frame.pc = {resume}")
        c.w(
            f"_r = _send_action(vm, frame, regs, {insn_k}, {resume}, "
            f"_recv, _act)"
        )
        _trampoline(c)
        c.depth -= 1
        return
    else:
        c.w("if _site.cached_map_id == _rm.map_id:")
        c.depth += 1
        if c.counters:
            c.w("_site.hits += 1")
            c.w("vm.send_hits += 1")
            c.w(f"_cyc += {insn[8]}")
        c.w("_act = _site.cached_action")
        c.depth -= 1
        c.w("else:")
        c.depth += 1
        c.w(f"_act = _send_miss(vm, _recv, _site, {insn_k})")
        c.depth -= 1
        c.w("if _act[0] == 'call':")
        c.depth += 1
        emit_call_body(set_pc=False)
        c.depth -= 1
        c.w("else:")
        c.depth += 1
        c.w(
            f"_r = _send_action(vm, frame, regs, {insn_k}, {resume}, "
            f"_recv, _act)"
        )
        c.depth -= 1
    _trampoline(c)


def _trampoline(c):
    """The direct-dispatch trampoline after a SEND's action arms.

    -1 means "a frame above this one needs to run": dispatch it
    directly while it stays translated, until the top of the stack is
    this frame again (our callee returned; fall through to the resume
    point).  A direct-called frame returns -3 for an in-flight NLR
    (propagate to our own caller), -1 to ask for more dispatch, or a
    pc >= 0 when it *declined* a fused resume entry — that pc belongs
    to the callee's stream, so hand the whole stack back to the outer
    loop (-1) rather than interpreting it here.
    """
    c.w("while _r == -1:")
    c.depth += 1
    c.w("if _F[-1] is frame:")
    c.depth += 1
    c.w("break")
    c.depth -= 1
    c.w(f"if _d >= {MAX_DIRECT_DEPTH}:")
    c.depth += 1
    c.w("return -1")
    c.depth -= 1
    c.w("_nf = _F[-1]")
    c.w("_nfn = _nf.code.translated")
    c.w("if not _nfn:")
    c.depth += 1
    c.w("return -1")
    c.depth -= 1
    if c.profiling:
        # The direct call bypasses the outer loop, so its activation
        # tick is planted here — guarded on pc == 0 exactly like the
        # loop's own hook, because the depth-cap escalation path can
        # hand a *suspended* frame back to a shallower trampoline.
        c.w("if _nf.pc == 0:")
        c.depth += 1
        c.w("vm.profiler.tick_activation(_nf)")
        c.depth -= 1
    c.w("_r = _nfn(vm, _nf, _nf.regs, _d + 1)")
    c.w("if _r == -3:")
    c.depth += 1
    c.w("return -3")
    c.depth -= 1
    c.w("if _r >= 0:")
    c.depth += 1
    c.w("return -1")
    c.depth -= 1
    c.depth -= 1


def _primcall_core(c, insn, nxt, base, variant):
    """PRIMCALL and its allocation-costed variants (clone / newvec)."""
    dst, recv, arg_regs = insn[3], insn[5], insn[6]
    err, fail, selector = insn[7], insn[8], insn[9]
    args_expr = "[" + ", ".join(c.rd(r) for r in arg_regs) + "]"
    recv_expr = c.rd(recv)
    c.w(f"frame.pc = {nxt}")
    if c.counters and variant == "clone":
        c.w(f"_recv = {recv_expr}")
        recv_expr = "_recv"
        c.w("if isinstance(_recv, _SelfVector):")
        c.depth += 1
        c.w(f"_cyc += int(len(_recv.elements) * {insn[10]!r})")
        c.depth -= 1
    elif c.counters and variant == "newvec":
        c.w(f"_recv = {recv_expr}")
        c.w(f"_args = {args_expr}")
        recv_expr, args_expr = "_recv", "_args"
        c.w("if _args and type(_args[0]) is int:")
        c.depth += 1
        c.w(f"_cyc += int(_args[0] * {insn[10]!r})")
        c.depth -= 1
        c.w("elif isinstance(_recv, _SelfVector):")
        c.depth += 1
        c.w(f"_cyc += int(len(_recv.elements) * {insn[10]!r})")
        c.depth -= 1
    fn_k = c.konst(*(base + (4,)))
    # The fail edge sees registers as they were before the call (the
    # destination was never written), so the except arm is emitted
    # against the pre-store snapshot: its ``goto`` re-materializes
    # whatever the handler block reads — including a destination whose
    # pre-call value still lives in another slot.
    pre = c.snapshot()
    c.w("try:")
    c.depth += 1
    c.w(f"{c.wr(dst)} = {fn_k}(vm.universe, {recv_expr}, {args_expr})")
    c.depth -= 1
    post = c.snapshot()
    c.restore(pre)
    c.w("except _PrimFail as _e:")
    c.depth += 1
    if fail < 0:
        c.w(f"raise _PrimitiveFailed({selector!r}, _e.code) from None")
    else:
        if err >= 0:
            c.w(f"{c.wr(err)} = _e.code")
        c.goto(fail)
    c.depth -= 1
    c.restore(post)


# ---------------------------------------------------------------------------
# Per-handler emitters
# ---------------------------------------------------------------------------
# Signature: emitter(ctx, insn, i, nxt) -> bool (True when the lowering
# closed control flow: nothing falls through to the next stream slot).


def _em_move(c, insn, i, nxt):
    c.defer_move(insn[3], insn[4])


def _em_loadk(c, insn, i, nxt):
    _loadk(c, (i,), insn[3], 4)


def _make_cmp(sym):
    def _em(c, insn, i, nxt):
        _cmp(c, sym, insn[3], insn[4], insn[5])

    return _em


def _make_arith(sym):
    def _em(c, insn, i, nxt):
        a_e, b_e = c.rd(insn[4]), c.rd(insn[5])
        c.w(f"{c.wr(insn[3])} = {a_e} {sym} {b_e}")

    return _em


def _make_arith_ov(sym):
    def _em(c, insn, i, nxt):
        _arith_ov(c, sym, insn[3], insn[4], insn[5], insn[6], insn[7])

    return _em


def _em_div_ov(c, insn, i, nxt):
    b_e = c.rd(insn[5])
    c.w(f"_t = {b_e}")
    c.w("if _t == 0:")
    c.depth += 1
    pre = c.snapshot()
    c.w(f"{c.wr(insn[6])} = 'divisionByZeroError'")
    c.goto(insn[7])
    c.depth -= 1
    c.restore(pre)
    a_e = c.rd(insn[4])
    c.w(f"_q = {a_e} // _t")
    c.w(f"if {SMALLINT_MIN} <= _q <= {SMALLINT_MAX}:")
    c.depth += 1
    pre = c.snapshot()
    c.w(f"{c.wr(insn[3])} = _q")
    c.depth -= 1
    post = c.snapshot()
    c.restore(pre)
    c.w("else:")
    c.depth += 1
    c.w(f"{c.wr(insn[6])} = 'overflowError'")
    c.goto(insn[7])
    c.depth -= 1
    c.restore(post)


def _em_mod_ov(c, insn, i, nxt):
    b_e = c.rd(insn[5])
    c.w(f"_t = {b_e}")
    c.w("if _t == 0:")
    c.depth += 1
    pre = c.snapshot()
    c.w(f"{c.wr(insn[6])} = 'divisionByZeroError'")
    c.goto(insn[7])
    c.depth -= 1
    c.restore(pre)
    a_e = c.rd(insn[4])
    c.w(f"{c.wr(insn[3])} = {a_e} % _t")


def _make_div_mod(sym, selector):
    def _em(c, insn, i, nxt):
        b_e = c.rd(insn[5])
        c.w(f"_t = {b_e}")
        c.w("if _t == 0:")
        c.depth += 1
        c.w(f"raise _PrimitiveFailed({selector!r}, 'divisionByZeroError')")
        c.depth -= 1
        a_e = c.rd(insn[4])
        c.w(f"{c.wr(insn[3])} = {a_e} {sym} _t")

    return _em


def _em_typetest(c, insn, i, nxt):
    _typetest(c, (i,), insn[3], 4, insn[5])


def _em_bounds(c, insn, i, nxt):
    _bounds(c, insn[3], insn[4], insn[5])


def _em_aload(c, insn, i, nxt):
    arr_e, idx_e = c.rd(insn[4]), c.rd(insn[5])
    c.w(f"{c.wr(insn[3])} = {arr_e}.elements[{idx_e}]")


def _em_astore(c, insn, i, nxt):
    c.w(f"{c.rd(insn[3])}.elements[{c.rd(insn[4])}] = {c.rd(insn[5])}")


def _em_alen(c, insn, i, nxt):
    src_e = c.rd(insn[4])
    c.w(f"{c.wr(insn[3])} = len({src_e}.elements)")


def _em_loadslot(c, insn, i, nxt):
    obj_e = c.rd(insn[4])
    c.w(f"{c.wr(insn[3])} = {obj_e}.data[{c.operand((i,), 5)}]")


def _em_storeslot(c, insn, i, nxt):
    c.w(f"{c.rd(insn[3])}.data[{c.operand((i,), 4)}] = {c.rd(insn[5])}")


def _em_env_load(c, insn, i, nxt):
    key = c.operand((i,), 4)
    c.w(f"{c.wr(insn[3])} = vm._env_load(frame, {key})")


def _em_env_store(c, insn, i, nxt):
    val_e = c.rd(insn[4])
    c.w(f"vm._env_store(frame, {c.operand((i,), 3)}, {val_e})")


def _em_make_block(c, insn, i, nxt):
    node_k = c.konst(i, 4)
    template_k = c.konst(i, 5)
    src_e = c.rd(insn[6])
    c.w(
        f"{c.wr(insn[3])} = vm._make_block(frame, {node_k}, "
        f"{template_k}, {src_e})"
    )


def _em_jump(c, insn, i, nxt):
    c.goto(insn[3])
    return True


def _em_return(c, insn, i, nxt):
    _return_protocol(c, insn[3])
    return True


def _em_nlr(c, insn, i, nxt):
    # The frame ends here in every outcome (the unwind pops it, or a
    # missing target kills it at the segment boundary): no flush.
    src_e = c.rd(insn[3])
    c.w(f"_t = {src_e}")
    c.w("_h = frame")
    c.w("while _h.home is not None:")
    c.depth += 1
    c.w("_h = _h.home")
    c.depth -= 1
    c.w("if not _h.alive:")
    c.depth += 1
    c.w("raise _DeadNLR()")
    c.depth -= 1
    if c.counters:
        c.w(f"_cyc += {insn[4]}")
    c.w(f"vm._nlr = (_h, _t, {nxt})")
    c.w("return -3")
    return True


def _em_error(c, insn, i, nxt):
    code = insn[4]
    if code is None:
        c.w(f"raise _PrimitiveFailed({insn[3]!r}, {c.rd(insn[5])})")
    else:
        c.w(f"raise _PrimitiveFailed({insn[3]!r}, {code!r})")
    return True


def _em_send(c, insn, i, nxt):
    _send_core(c, insn, nxt, (i,))


def _make_primcall(variant):
    def _em(c, insn, i, nxt):
        _primcall_core(c, insn, nxt, (i,), variant)

    return _em


# -- fused pairs ------------------------------------------------------------


def _em_f_move_move(c, insn, i, nxt):
    c.defer_move(insn[3], insn[4])
    c.defer_move(insn[5], insn[6])


def _em_f_move_move_move(c, insn, i, nxt):
    c.defer_move(insn[3], insn[4])
    c.defer_move(insn[5], insn[6])
    c.defer_move(insn[7], insn[8])


def _em_f_move_loadk(c, insn, i, nxt):
    c.defer_move(insn[3], insn[4])
    _loadk(c, (i,), insn[5], 6)


def _em_f_loadk_move(c, insn, i, nxt):
    _loadk(c, (i,), insn[3], 4)
    c.defer_move(insn[5], insn[6])


def _em_f_move_typetest(c, insn, i, nxt):
    c.defer_move(insn[3], insn[4])
    _typetest(c, (i,), insn[5], 6, insn[7])


def _em_f_loadk_typetest(c, insn, i, nxt):
    _loadk(c, (i,), insn[3], 4)
    _typetest(c, (i,), insn[5], 6, insn[7])


def _em_f_typetest_move(c, insn, i, nxt):
    _typetest(c, (i,), insn[3], 4, insn[5], refund_cycles=insn[-1])
    c.defer_move(insn[6], insn[7])


def _em_f_typetest_typetest(c, insn, i, nxt):
    _typetest(c, (i,), insn[3], 4, insn[5], refund_cycles=insn[-1])
    _typetest(c, (i,), insn[6], 7, insn[8])


def _em_f_typetest_bounds(c, insn, i, nxt):
    _typetest(c, (i,), insn[3], 4, insn[5], refund_cycles=insn[-1])
    _bounds(c, insn[6], insn[7], insn[8])


def _em_f_bounds_aload(c, insn, i, nxt):
    _bounds(c, insn[3], insn[4], insn[5], refund_cycles=insn[-1])
    arr_e, idx_e = c.rd(insn[7]), c.rd(insn[8])
    c.w(f"{c.wr(insn[6])} = {arr_e}.elements[{idx_e}]")


def _em_f_bounds_astore(c, insn, i, nxt):
    _bounds(c, insn[3], insn[4], insn[5], refund_cycles=insn[-1])
    c.w(f"{c.rd(insn[6])}.elements[{c.rd(insn[7])}] = {c.rd(insn[8])}")


def _em_f_move_jump(c, insn, i, nxt):
    c.defer_move(insn[3], insn[4])
    c.goto(insn[5])
    return True


def _em_f_addov_move(c, insn, i, nxt):
    _arith_ov(
        c, "+", insn[3], insn[4], insn[5], insn[6], insn[7],
        second=(insn[8], insn[9]), refund_cycles=insn[-1],
    )


def _em_f_subov_move(c, insn, i, nxt):
    _arith_ov(
        c, "-", insn[3], insn[4], insn[5], insn[6], insn[7],
        second=(insn[8], insn[9]), refund_cycles=insn[-1],
    )


def _em_f_loadk_addov(c, insn, i, nxt):
    _loadk(c, (i,), insn[3], 4)
    _arith_ov(c, "+", insn[5], insn[6], insn[7], insn[8], insn[9])


def _em_f_loadslot_move(c, insn, i, nxt):
    obj_e = c.rd(insn[4])
    c.w(f"{c.wr(insn[3])} = {obj_e}.data[{c.operand((i,), 5)}]")
    c.defer_move(insn[6], insn[7])


def _em_f_move_return(c, insn, i, nxt):
    c.defer_move(insn[3], insn[4])
    _return_protocol(c, insn[5])
    return True


def _em_f_move_send(c, insn, i, nxt):
    c.defer_move(insn[3], insn[4])
    _send_core(c, insn[5], nxt, (i, 5))


def _em_f_typetest_send(c, insn, i, nxt):
    # The embedded SEND's static cost (insn[6][1]) is the refund when
    # the type test branches away (mirrors _f_typetest_send).
    _typetest(c, (i,), insn[3], 4, insn[5], refund_cycles=insn[6][1])
    _send_core(c, insn[6], nxt, (i, 6))


_EMITTERS = {
    _do_move: _em_move,
    _do_loadk: _em_loadk,
    _do_cmp_lt: _make_cmp("<"),
    _do_cmp_le: _make_cmp("<="),
    _do_cmp_gt: _make_cmp(">"),
    _do_cmp_ge: _make_cmp(">="),
    _do_cmp_eq: _make_cmp("=="),
    _do_cmp_ne: _make_cmp("!="),
    _do_add_ov: _make_arith_ov("+"),
    _do_sub_ov: _make_arith_ov("-"),
    _do_mul_ov: _make_arith_ov("*"),
    _do_div_ov: _em_div_ov,
    _do_mod_ov: _em_mod_ov,
    _do_add: _make_arith("+"),
    _do_sub: _make_arith("-"),
    _do_mul: _make_arith("*"),
    _do_div: _make_div_mod("//", "_IntDiv:"),
    _do_mod: _make_div_mod("%", "_IntMod:"),
    _do_typetest: _em_typetest,
    _do_bounds: _em_bounds,
    _do_aload: _em_aload,
    _do_astore: _em_astore,
    _do_alen: _em_alen,
    _do_loadslot: _em_loadslot,
    _do_storeslot: _em_storeslot,
    _do_env_load: _em_env_load,
    _do_env_store: _em_env_store,
    _do_make_block: _em_make_block,
    _do_jump: _em_jump,
    _do_return: _em_return,
    _do_nlr: _em_nlr,
    _do_error: _em_error,
    _do_send: _em_send,
    _do_primcall: _make_primcall("plain"),
    _do_primcall_clone: _make_primcall("clone"),
    _do_primcall_newvec: _make_primcall("newvec"),
    _f_move_move: _em_f_move_move,
    _f_move_move_move: _em_f_move_move_move,
    _f_move_loadk: _em_f_move_loadk,
    _f_loadk_move: _em_f_loadk_move,
    _f_move_typetest: _em_f_move_typetest,
    _f_loadk_typetest: _em_f_loadk_typetest,
    _f_typetest_move: _em_f_typetest_move,
    _f_typetest_typetest: _em_f_typetest_typetest,
    _f_typetest_bounds: _em_f_typetest_bounds,
    _f_bounds_aload: _em_f_bounds_aload,
    _f_bounds_astore: _em_f_bounds_astore,
    _f_move_jump: _em_f_move_jump,
    _f_addov_move: _em_f_addov_move,
    _f_subov_move: _em_f_subov_move,
    _f_loadk_addov: _em_f_loadk_addov,
    _f_loadslot_move: _em_f_loadslot_move,
    _f_move_return: _em_f_move_return,
    _f_move_send: _em_f_move_send,
    _f_typetest_send: _em_f_typetest_send,
}

_LIVE_SPECS = {
    _do_move: _lv_move,
    _do_loadk: _lv_loadk,
    _do_cmp_lt: _lv_cmp,
    _do_cmp_le: _lv_cmp,
    _do_cmp_gt: _lv_cmp,
    _do_cmp_ge: _lv_cmp,
    _do_cmp_eq: _lv_cmp,
    _do_cmp_ne: _lv_cmp,
    _do_add_ov: _lv_arith_ov,
    _do_sub_ov: _lv_arith_ov,
    _do_mul_ov: _lv_arith_ov,
    _do_div_ov: _lv_arith_ov,
    _do_mod_ov: _lv_arith_ov,
    _do_add: _lv_arith,
    _do_sub: _lv_arith,
    _do_mul: _lv_arith,
    _do_div: _lv_arith,
    _do_mod: _lv_arith,
    _do_typetest: _lv_typetest,
    _do_bounds: _lv_bounds,
    _do_aload: _lv_aload,
    _do_astore: _lv_astore,
    _do_alen: _lv_alen,
    _do_loadslot: _lv_loadslot,
    _do_storeslot: _lv_storeslot,
    _do_env_load: _lv_env_load,
    _do_env_store: _lv_env_store,
    _do_make_block: _lv_make_block,
    _do_jump: _lv_jump,
    _do_return: _lv_return,
    _do_nlr: _lv_nlr,
    _do_error: _lv_error,
    _do_send: _lv_send,
    _do_primcall: _lv_primcall,
    _do_primcall_clone: _lv_primcall,
    _do_primcall_newvec: _lv_primcall,
    _f_move_move: _lv_f_move_move,
    _f_move_move_move: _lv_f_move_move_move,
    _f_move_loadk: _lv_f_move_loadk,
    _f_loadk_move: _lv_f_loadk_move,
    _f_move_typetest: _lv_f_move_typetest,
    _f_loadk_typetest: _lv_f_loadk_typetest,
    _f_typetest_move: _lv_f_typetest_move,
    _f_typetest_typetest: _lv_f_typetest_typetest,
    _f_typetest_bounds: _lv_f_typetest_bounds,
    _f_bounds_aload: _lv_f_bounds_aload,
    _f_bounds_astore: _lv_f_bounds_astore,
    _f_move_jump: _lv_f_move_jump,
    _f_addov_move: _lv_f_addov_move,
    _f_subov_move: _lv_f_addov_move,
    _f_loadk_addov: _lv_f_loadk_addov,
    _f_loadslot_move: _lv_f_loadslot_move,
    _f_move_return: _lv_f_move_return,
    _f_move_send: _lv_f_move_send,
    _f_typetest_send: _lv_f_typetest_send,
}

assert set(_LIVE_SPECS) == set(_EMITTERS), "liveness specs out of sync"

#: handler -> operand positions holding branch targets (stream indices)
_TARGET_POSITIONS = {
    _do_cmp_lt: (5,), _do_cmp_le: (5,), _do_cmp_gt: (5,),
    _do_cmp_ge: (5,), _do_cmp_eq: (5,), _do_cmp_ne: (5,),
    _do_add_ov: (7,), _do_sub_ov: (7,), _do_mul_ov: (7,),
    _do_div_ov: (7,), _do_mod_ov: (7,),
    _do_typetest: (5,), _do_bounds: (5,), _do_jump: (3,),
    _f_move_typetest: (7,), _f_loadk_typetest: (7,),
    _f_typetest_move: (5,), _f_typetest_typetest: (5, 8),
    _f_typetest_bounds: (5, 8),
    _f_bounds_aload: (5,), _f_bounds_astore: (5,),
    _f_move_jump: (5,),
    _f_addov_move: (7,), _f_subov_move: (7,), _f_loadk_addov: (9,),
    _f_typetest_send: (5,),
}

#: handlers that suspend the frame (a callee may be pushed); the frame
#: resumes at the following stream index, which must head a label
_SUSPENDING_HANDLERS = {_do_send, _f_move_send, _f_typetest_send}

#: primcall family: operand 8 is the fail target (or -1 for none)
_PRIMCALL_HANDLERS = {_do_primcall, _do_primcall_clone, _do_primcall_newvec}


def _collect_labels(threaded) -> tuple[set[int], set[int]]:
    """``(labels, resumes)``: dispatch labels (entry + branch targets)
    and the resume indices after suspending SEND-family instructions.

    A resume index that is *also* a branch target stays a dispatch
    label; the rest are fused into their leaf — the send's trampoline
    falls through into the resume code physically, and the rare outer
    re-entry there declines into the threaded tier instead.
    """
    labels = {0}
    resumes = set()
    for i, insn in enumerate(threaded):
        handler = insn[0]
        for pos in _TARGET_POSITIONS.get(handler, ()):
            labels.add(insn[pos])
        if handler in _PRIMCALL_HANDLERS and insn[8] >= 0:
            labels.add(insn[8])
        if handler in _SUSPENDING_HANDLERS:
            resumes.add(i + 1)
    return labels, resumes - labels


def emit_source(
    threaded, counters: bool, universe=None, profiling: bool = False,
    pic: bool = False, mru: bool = True,
) -> tuple:
    """Generate the factory source for one threaded stream.

    Returns ``(source, paths, guards)``: ``source`` defines
    ``_factory(_K)`` returning the translated
    ``fn(vm, frame, regs, _d=0)``, ``paths`` are the
    constant-extraction paths whose values (in order) form the ``_K``
    tuple — see :func:`extract_constant` — and ``guards`` are
    ``(path, value)`` identity checks a congruent clone stream must
    satisfy before reusing the compiled factory (well-known-map
    specializations bake those identities into the source).

    Label dispatch is a **balanced comparison tree** over the sorted
    label set, not a flat ``elif`` chain: heavily split bodies (the
    paper's extended message splitting multiplies branch targets) reach
    hundreds of labels, and a linear scan per taken branch would eat
    the translation win.  The tree costs ``log2(len(labels))`` integer
    compares per transition; leaves hold the straight-line blocks in
    stream order.
    """
    if not threaded:
        raise UnsupportedStream("empty threaded stream")
    labels, resumes = _collect_labels(threaded)
    size = len(threaded)
    if any(t < 0 or t >= size for t in labels | resumes):
        raise UnsupportedStream("branch target outside the stream")
    live_in = _analyze_liveness(threaded)

    # Pass 1: lower each label's block (label up to the next label, in
    # stream order) into its own line buffer at relative depth 0.  A
    # dispatch entry carries no alias state, so each block starts with
    # an empty alias map; falling through into the next label flushes
    # whatever is live there.
    c = _Ctx(
        threaded, counters, universe, live_in, profiling=profiling, pic=pic,
        mru=mru,
    )
    blocks: dict[int, list[str]] = {}
    closed = True
    for i, insn in enumerate(threaded):
        if i in labels:
            if not closed:
                # Fallthrough into the label: emitted while ``cur`` is
                # still the previous index, so it reads as the forward
                # transfer it is (never a branch tick).
                c.goto(i)
            c.lines = blocks[i] = []
            c.depth = 0
            c.alias = {}
            closed = False
        elif closed:
            # Dead slot: not a branch target and unreachable by
            # fallthrough — nothing can enter it in either tier.
            continue
        emitter = _EMITTERS.get(insn[0])
        if emitter is None:
            raise UnsupportedStream(
                f"no emitter for handler {insn[0].__name__}"
            )
        c.cur = i
        c.charge(insn)
        closed = bool(emitter(c, insn, i, i + 1))
    if not closed:
        raise UnsupportedStream("stream does not end in a terminator")

    # Pass 2: assemble — prologue, then the comparison tree.  Every
    # block ends in continue/return/raise, so the tree is the entire
    # loop body.
    out: list[str] = []
    ordered = sorted(blocks)

    def w(depth: int, text: str) -> None:
        out.append("    " * depth + text)

    def build(lo: int, hi: int, depth: int) -> None:
        if hi - lo == 1:
            for line in blocks[ordered[lo]]:
                out.append("    " * depth + line)
            return
        mid = (lo + hi) // 2
        w(depth, f"if _l < {ordered[mid]}:")
        build(lo, mid, depth + 1)
        w(depth, "else:")
        build(mid, hi, depth + 1)

    w(0, "def _factory(_K):")
    label_literal = ", ".join(str(l) for l in ordered)
    w(1, f"_LBL = frozenset(({label_literal},))")
    if resumes:
        resume_literal = ", ".join(str(r) for r in sorted(resumes))
        w(1, f"_RES = frozenset(({resume_literal},))")
    w(1, "def _translated(vm, frame, regs, _d=0):")
    w(2, "_map_of = vm._map_of")
    w(2, "_F = vm.frames")
    # Lean-mode IC sites: bound once per activation so every
    # open-coded ladder probe is a plain local load (empty otherwise).
    for name in sorted(
        c.site_locals.values(), key=lambda n: int(n[2:])
    ):
        w(2, f"{name} = _K[{name[2:]}]")
    w(2, "_l = frame.pc")
    # Entry pc must head a block: the tree narrows by comparisons only,
    # so an off-label pc must not silently run the wrong block.  A
    # resume point fused into the middle of a leaf has no dispatch
    # label; that (rare) re-entry is declined — the outer loop
    # continues the activation on the predecoded stream at the same pc
    # (identity mapping).  Anything else is corrupted frame state.
    # ``_l and`` first: fresh activations (pc 0, always a label) skip
    # the set membership test entirely.
    w(2, "if _l and _l not in _LBL:")
    if resumes:
        w(3, "if _l in _RES:")
        w(4, "return _l")
    w(3, "raise _VMError('translated entry at non-label pc %r' % (_l,))")
    body = 2
    if counters:
        w(2, "_cyc = 0")
        w(2, "_n = 0")
        w(2, "try:")
        body = 3
    w(body, "while True:")
    build(0, len(ordered), body + 1)
    if counters:
        w(2, "finally:")
        w(3, "vm.cycles += _cyc")
        w(3, "vm.instructions += _n")
    w(1, "return _translated")
    return "\n".join(out) + "\n", tuple(c.paths), tuple(c.guards)
