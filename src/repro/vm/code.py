"""Compiled bytecode objects and inline-cache sites."""

from __future__ import annotations

from typing import Optional


class InlineCacheSite:
    """One send site's inline cache.

    Tracks the actions per receiver map and the miss count; after
    ``megamorphic_threshold`` distinct maps the site is megamorphic and
    every send pays most of a lookup (this is the effect behind the
    paper's richards anomaly, section 6.1).
    """

    __slots__ = (
        "selector", "entries", "cached_map_id", "cached_map",
        "cached_action", "pic", "mega", "misses", "hits", "relinks",
        "owner", "index",
    )

    def __init__(self, selector: str) -> None:
        self.selector = selector
        #: resolution cache (all actions ever resolved at this site)
        self.entries: dict[int, object] = {}
        #: the single inline-cache entry (monomorphic, as in the era)
        self.cached_map_id = -1
        #: the cached map *object* (``REPRO_PIC=1`` only): the lean
        #: translated probe compares map identity, skipping the
        #: ``map_id`` attribute load; maintained alongside
        #: ``cached_map_id`` on every relink and cleared by every flush
        self.cached_map = None
        self.cached_action = None
        #: bounded polymorphic inline cache (``REPRO_PIC=1``): a list of
        #: ``(map, action, dep_map_ids)`` rows probed linearly (by map
        #: identity) after the monomorphic entry misses; ``None`` while
        #: the site is monomorphic or the PIC tier is off
        self.pic = None
        #: the megamorphic tier: a per-selector dispatch table shared
        #: across every overflowed site of the owning runtime
        #: (``map -> action``, keyed by map identity); ``None`` until
        #: the PIC overflows
        self.mega = None
        self.misses = 0
        self.hits = 0
        self.relinks = 0
        #: stable site identity for profiling — the owning body's name
        #: and this site's position in it, stamped by Code.__init__ so
        #: share clones (fresh site objects over the same body)
        #: aggregate under one (owner, index, selector) key
        self.owner = ""
        self.index = -1

    @property
    def polymorphic(self) -> bool:
        return len(self.entries) > 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<IC {self.selector!r} {len(self.entries)} maps "
            f"h{self.hits}/m{self.misses}/r{self.relinks}>"
        )


class Code:
    """One compiled activation body (method or block) in bytecode."""

    __slots__ = (
        "name",
        "insns",
        "threaded",
        "consts",
        "reg_count",
        "self_reg",
        "arg_regs",
        "env_keys",
        "ic_sites",
        "size_bytes",
        "is_block",
        "graph_stats",
        "compile_stats",
        "config_name",
        "map_dependent",
        "dep_keys",
        "disk_key",
        "retired",
        "translated",
        "invocations",
        "tier",
    )

    def __init__(
        self,
        name: str,
        insns: list,
        consts: list,
        reg_count: int,
        self_reg: int,
        arg_regs: tuple[int, ...],
        env_keys: frozenset,
        ic_sites: list[InlineCacheSite],
        size_bytes: int,
        is_block: bool,
        graph_stats=None,
        compile_stats=None,
        config_name: str = "",
        threaded=None,
        map_dependent: bool = True,
    ) -> None:
        self.name = name
        self.insns = insns
        #: the predecoded, superinstruction-fused stream the VM actually
        #: executes (see :mod:`.dispatch`); ``insns`` is kept as the
        #: architectural listing for tests, sizing, and disassembly.
        self.threaded = threaded
        self.consts = consts
        self.reg_count = reg_count
        self.self_reg = self_reg
        self.arg_regs = arg_regs
        self.env_keys = env_keys
        self.ic_sites = ic_sites
        for position, site in enumerate(ic_sites):
            site.owner = name
            site.index = position
        self.size_bytes = size_bytes
        self.is_block = is_block
        self.graph_stats = graph_stats
        self.compile_stats = compile_stats or {}
        self.config_name = config_name
        #: customization taint from the compiler: False only when no
        #: compile-time decision consulted the receiver map, so this
        #: body may be shared (cloned) across receiver maps.
        self.map_dependent = map_dependent
        #: world facts this compile assumed (frozenset of dependency
        #: keys, filled by compile_with_tiers); None until compiled
        self.dep_keys = None
        #: persistent code-cache key when this body was loaded from or
        #: stored to disk (for dependency-driven eviction)
        self.disk_key = None
        #: set by invalidation: this body's assumptions were broken and
        #: it has been removed from the caches that served it
        self.retired = False
        #: the translated-tier entry: ``None`` (not yet translated),
        #: a callable ``fn(vm, frame, regs) -> sentinel`` (the fourth
        #: tier — see :mod:`.translate`), or ``False`` (translation
        #: failed or was retired by invalidation; never retry, every
        #: activation falls back to the predecoded stream).  Labels in
        #: the translated function are threaded-stream indices, so
        #: ``frame.pc`` is valid in both representations — the fallback
        #: PC mapping is the identity.
        self.translated = None
        #: fresh activations observed by the dispatch loop (drives
        #: promotion past ``REPRO_TRANSLATE_THRESHOLD``)
        self.invocations = 0
        #: the compile tier that produced this body ("optimizing" or
        #: "pessimistic", stamped by compile_with_tiers); the profiler
        #: attributes ticks per tier through it.  A translated body is
        #: recognized by ``translated`` being a callable, and the
        #: interpreter tier never builds a Code at all.
        self.tier = "optimizing"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Code {self.name!r} {len(self.insns)} insns, "
            f"{self.size_bytes} bytes, {self.reg_count} regs>"
        )

    def disassemble(self) -> str:
        """Human-readable instruction listing (for tests and examples)."""
        from .opcodes import op_name

        lines = []
        for index, insn in enumerate(self.insns):
            operands = " ".join(repr(x) for x in insn[1:])
            lines.append(f"{index:4}: {op_name(insn[0]):<10} {operands}")
        return "\n".join(lines)

    def disassemble_threaded(self) -> str:
        """Listing of the predecoded/fused stream the VM executes."""
        from .dispatch import disassemble_threaded

        return disassemble_threaded(self.threaded)
