"""Token-threaded dispatch: predecoded instructions and superinstructions.

The VM used to rediscover every opcode with a long ``if/elif`` walk and
call :meth:`CostModel.instruction_cycles` once per executed instruction.
This module translates each :class:`~.code.Code` object's tuple
instructions — once, at code-install time — into a *predecoded stream*
where

* element 0 of every instruction is the per-opcode **handler function**
  itself (direct threading: dispatch is one indexed load plus one call),
* constant-pool indices are resolved to the actual objects (constants,
  block templates, inline-cache sites, primitive functions),
* the static cost-model cycles and the architectural instruction count
  are precomputed (elements 1 and 2), so the hot loop adds two ints per
  dispatch instead of consulting the cost model.

A peephole pass fuses hot adjacent pairs (``MOVE``+``MOVE`` chains,
``LOADK``+``ADD_OV``, type tests feeding bounds checks, compare-into-
branch forms are already single instructions) into **superinstructions**
whose modeled cycle count and instruction count are defined as exactly
the sum of their parts — ``runtime.cycles``, ``runtime.instructions``
and ``code_bytes`` stay bit-identical to the unfused stream; the win is
pure host wall-clock.

Handler protocol::

    handler(vm, frame, regs, insn, pc) -> next_pc

``pc`` is the index of the *following* predecoded instruction.  A
handler returns the next index, or a negative sentinel:

* ``REDISPATCH`` (-1): the frame stack changed (a callee was pushed or
  the current frame returned); the outer loop re-examines ``frames[-1]``
  or finishes the run segment.
* ``NLR_SIGNAL`` (-3): a non-local return is in flight; the outer loop
  (which knows the segment base) unwinds or re-raises.

Fusion correctness: an instruction is only absorbed as the *second*
half of a superinstruction when no branch targets it, and a suspending
instruction (``SEND``) is never the *first* half — resuming the frame
after the callee returns would skip the second half.
"""

from __future__ import annotations

from ..objects.errors import (
    NonLocalReturnFromDeadActivation,
    PrimitiveFailed,
    VMError,
)
from ..objects.model import SMALLINT_MAX, SMALLINT_MIN, SelfBlock, SelfVector
from ..primitives.registry import PrimFailSignal
from ..robustness import faults
from . import opcodes as op
from .frame import Frame

#: sentinel: the frame stack changed; re-dispatch from ``frames[-1]``.
REDISPATCH = -1
#: sentinel: a non-local return is unwinding (``vm._nlr`` holds it).
NLR_SIGNAL = -3


# ---------------------------------------------------------------------------
# Single-opcode handlers
# ---------------------------------------------------------------------------
# Operand layout starts at index 3: (handler, cycles, count, *operands).


def _do_move(vm, frame, regs, insn, pc):
    regs[insn[3]] = regs[insn[4]]
    return pc


def _do_loadk(vm, frame, regs, insn, pc):
    regs[insn[3]] = insn[4]
    return pc


def _do_cmp_lt(vm, frame, regs, insn, pc):
    return pc if regs[insn[3]] < regs[insn[4]] else insn[5]


def _do_cmp_le(vm, frame, regs, insn, pc):
    return pc if regs[insn[3]] <= regs[insn[4]] else insn[5]


def _do_cmp_gt(vm, frame, regs, insn, pc):
    return pc if regs[insn[3]] > regs[insn[4]] else insn[5]


def _do_cmp_ge(vm, frame, regs, insn, pc):
    return pc if regs[insn[3]] >= regs[insn[4]] else insn[5]


def _do_cmp_eq(vm, frame, regs, insn, pc):
    return pc if regs[insn[3]] == regs[insn[4]] else insn[5]


def _do_cmp_ne(vm, frame, regs, insn, pc):
    return pc if regs[insn[3]] != regs[insn[4]] else insn[5]


def _do_add_ov(vm, frame, regs, insn, pc):
    result = regs[insn[4]] + regs[insn[5]]
    if SMALLINT_MIN <= result <= SMALLINT_MAX:
        regs[insn[3]] = result
        return pc
    regs[insn[6]] = "overflowError"
    return insn[7]


def _do_sub_ov(vm, frame, regs, insn, pc):
    result = regs[insn[4]] - regs[insn[5]]
    if SMALLINT_MIN <= result <= SMALLINT_MAX:
        regs[insn[3]] = result
        return pc
    regs[insn[6]] = "overflowError"
    return insn[7]


def _do_mul_ov(vm, frame, regs, insn, pc):
    result = regs[insn[4]] * regs[insn[5]]
    if SMALLINT_MIN <= result <= SMALLINT_MAX:
        regs[insn[3]] = result
        return pc
    regs[insn[6]] = "overflowError"
    return insn[7]


def _do_div_ov(vm, frame, regs, insn, pc):
    divisor = regs[insn[5]]
    if divisor == 0:
        regs[insn[6]] = "divisionByZeroError"
        return insn[7]
    result = regs[insn[4]] // divisor
    if SMALLINT_MIN <= result <= SMALLINT_MAX:
        regs[insn[3]] = result
        return pc
    regs[insn[6]] = "overflowError"
    return insn[7]


def _do_mod_ov(vm, frame, regs, insn, pc):
    divisor = regs[insn[5]]
    if divisor == 0:
        regs[insn[6]] = "divisionByZeroError"
        return insn[7]
    regs[insn[3]] = regs[insn[4]] % divisor
    return pc


def _do_add(vm, frame, regs, insn, pc):
    regs[insn[3]] = regs[insn[4]] + regs[insn[5]]
    return pc


def _do_sub(vm, frame, regs, insn, pc):
    regs[insn[3]] = regs[insn[4]] - regs[insn[5]]
    return pc


def _do_mul(vm, frame, regs, insn, pc):
    regs[insn[3]] = regs[insn[4]] * regs[insn[5]]
    return pc


def _do_div(vm, frame, regs, insn, pc):
    divisor = regs[insn[5]]
    if divisor == 0:
        raise PrimitiveFailed("_IntDiv:", "divisionByZeroError")
    regs[insn[3]] = regs[insn[4]] // divisor
    return pc


def _do_mod(vm, frame, regs, insn, pc):
    divisor = regs[insn[5]]
    if divisor == 0:
        raise PrimitiveFailed("_IntMod:", "divisionByZeroError")
    regs[insn[3]] = regs[insn[4]] % divisor
    return pc


def _do_typetest(vm, frame, regs, insn, pc):
    return pc if vm._map_of(regs[insn[3]]) is insn[4] else insn[5]


def _do_bounds(vm, frame, regs, insn, pc):
    vector = regs[insn[3]]
    index = regs[insn[4]]
    if type(index) is not int or index < 0 or index >= len(vector.elements):
        return insn[5]
    return pc


def _do_aload(vm, frame, regs, insn, pc):
    regs[insn[3]] = regs[insn[4]].elements[regs[insn[5]]]
    return pc


def _do_astore(vm, frame, regs, insn, pc):
    regs[insn[3]].elements[regs[insn[4]]] = regs[insn[5]]
    return pc


def _do_alen(vm, frame, regs, insn, pc):
    regs[insn[3]] = len(regs[insn[4]].elements)
    return pc


def _do_loadslot(vm, frame, regs, insn, pc):
    regs[insn[3]] = regs[insn[4]].data[insn[5]]
    return pc


def _do_storeslot(vm, frame, regs, insn, pc):
    regs[insn[3]].data[insn[4]] = regs[insn[5]]
    return pc


def _do_env_load(vm, frame, regs, insn, pc):
    regs[insn[3]] = vm._env_load(frame, insn[4])
    return pc


def _do_env_store(vm, frame, regs, insn, pc):
    vm._env_store(frame, insn[3], regs[insn[4]])
    return pc


def _do_make_block(vm, frame, regs, insn, pc):
    # insn: (..., dst, block_node, template, self_reg)
    regs[insn[3]] = vm._make_block(frame, insn[4], insn[5], regs[insn[6]])
    return pc


def _do_jump(vm, frame, regs, insn, pc):
    return insn[3]


def _do_send(vm, frame, regs, insn, pc):
    # insn: (..., dst, selector, recv_reg, arg_regs, site,
    #        hit_cyc, miss_cyc, mega_cyc, pic_cyc, frame_cyc, slot_cyc)
    #
    # Split into probe + _send_miss + _send_action so the translation
    # tier (vm/emit.py) can open-code the monomorphic probe and reuse
    # the cold halves verbatim instead of duplicating their logic.
    frame.pc = pc
    receiver = regs[insn[5]]
    site = insn[7]
    receiver_map = vm._map_of(receiver)
    if site.cached_map_id == receiver_map.map_id:
        # Monomorphic inline-cache hit: the fast path of
        # Deutsch–Schiffman caching, which both ST-80 and SELF used.
        site.hits += 1
        vm.send_hits += 1
        vm.cycles += insn[8]
        action = site.cached_action
    else:
        # The dispatch ladder (REPRO_PIC=1): bounded PIC probe, then
        # the per-selector megamorphic table, then the cold half.  Rows
        # and tables key on map *identity* (cheaper than the map-id
        # attribute load in the lean translated probe; equivalent,
        # since map ids are one per Map).  With the ladder off both
        # tiers are None and this is two loads.
        action = None
        pic = site.pic
        if pic is not None:
            for row in pic:
                if row[0] is receiver_map:
                    action = _pic_hit(
                        vm, site, insn, receiver_map, row[1], "pic"
                    )
                    break
        elif site.mega is not None:
            action = site.mega.get(receiver_map)
            if action is not None:
                action = _pic_hit(
                    vm, site, insn, receiver_map, action, "mega"
                )
        if action is None:
            action = _send_miss(vm, receiver, site, insn)
    return _send_action(vm, frame, regs, insn, pc, receiver, action)


def _pic_hit(vm, site, insn, receiver_map, action, event):
    """A bounded-PIC row or megamorphic-table hit.

    The accounting is deliberately identical to ``_send_miss``'s warm
    (entries-hit) branch: the modeled numbers cannot tell the real
    dispatch ladder from the modeled relink it replaces, which is what
    keeps the goldens bit-identical under ``REPRO_PIC=1``.
    """
    if event == "mega":
        vm.mega_table_hits += 1
    site.relinks += 1
    if vm.use_polymorphic_caches:
        vm.send_pic_hits += 1
        vm.cycles += insn[11]
    else:
        vm.send_megamorphic += 1
        vm.cycles += insn[10]
        event = "relink"
    map_id = receiver_map.map_id
    site.entries[map_id] = action
    site.cached_map_id = map_id
    site.cached_map = receiver_map
    site.cached_action = action
    profiler = vm.profiler
    if profiler is not None:
        profiler.note_ic(site, event)
    return action


def _send_miss(vm, receiver, site, insn):
    """The out-of-line half of SEND: the monomorphic cache missed."""
    map_id = vm._map_of(receiver).map_id
    action = site.entries.get(map_id)
    if action is None:
        # Cold: full lookup (and possibly a compile).
        site.misses += 1
        vm.send_misses += 1
        vm.cycles += insn[9]
        action = vm._resolve_send(
            receiver, vm._map_of(receiver), insn[4], len(insn[6])
        )
        site.entries[map_id] = action
        event = "miss"
    elif vm.use_polymorphic_caches:
        # Extension: a polymorphic inline cache dispatches the
        # known receiver maps through a stub (§6.1's proposed
        # fix; PICs in the later literature).
        site.relinks += 1
        vm.send_pic_hits += 1
        vm.cycles += insn[11]
        event = "pic"
    else:
        # The site is polymorphic: the cache keeps relinking.
        # This is what makes the richards task-dispatch site
        # expensive (paper, section 6.1).
        site.relinks += 1
        vm.send_megamorphic += 1
        vm.cycles += insn[10]
        event = "relink"
    if vm.pic_enabled:
        receiver_map = vm._map_of(receiver)
        _pic_note(vm, site, receiver_map, map_id, action)
        site.cached_map = receiver_map
    site.cached_map_id = map_id
    site.cached_action = action
    # IC lifecycle telemetry rides the cold path only: the monomorphic
    # hit above never reaches here, and with profiling off this is one
    # attribute load per miss.  Both tiers share this helper, so the
    # translated tier needs no lifecycle hooks of its own.
    profiler = vm.profiler
    if profiler is not None:
        profiler.note_ic(site, event)
    return action


def _pic_note(vm, site, receiver_map, map_id, action):
    """Grow the dispatch ladder after a resolve/relink (REPRO_PIC=1).

    A site that turns polymorphic gets a bounded PIC; a PIC that would
    exceed ``vm.pic_depth`` spills into the runtime's per-selector
    megamorphic table (shared across every overflowed site, so hostile
    polymorphism warms it once).  Each row carries the map ids its
    lookup consulted — targeted invalidation retires exactly those rows.
    """
    mega = site.mega
    if mega is not None:
        if receiver_map not in mega:
            mega[receiver_map] = action
            vm.mega_deps.setdefault(site.selector, {})[map_id] = \
                vm._dispatch_deps(receiver_map, site.selector, action)
        return
    pic = site.pic
    if pic is None:
        if len(site.entries) < 2:
            return  # still monomorphic: the single inline entry suffices
        site.pic = [(receiver_map, action,
                     vm._dispatch_deps(receiver_map, site.selector, action))]
        return
    for row in pic:
        if row[0] is receiver_map:
            return
    if len(pic) >= vm.pic_depth:
        if not vm.mega_table_enabled:
            return  # bounded PIC only: extra maps keep relinking
        vm.mega_transitions += 1
        table = vm.mega_tables.setdefault(site.selector, {})
        deps = vm.mega_deps.setdefault(site.selector, {})
        for rmap, raction, rdeps in pic:
            if rmap not in table:
                table[rmap] = raction
                deps[rmap.map_id] = rdeps
        table[receiver_map] = action
        deps[map_id] = vm._dispatch_deps(receiver_map, site.selector, action)
        site.mega = table
        site.pic = None
        return
    pic.append((receiver_map, action,
                vm._dispatch_deps(receiver_map, site.selector, action)))


def _send_action(vm, frame, regs, insn, pc, receiver, action):
    """Perform one resolved send action; returns the next pc (or a
    negative sentinel when a callee frame was pushed)."""
    kind = action[0]
    if kind == "call":
        vm.cycles += insn[12]
        code = action[1]
        callee = Frame(code, receiver, None, insn[3])
        cregs = callee.regs
        cregs[code.self_reg] = receiver
        for reg, src in zip(code.arg_regs, insn[6]):
            cregs[reg] = regs[src]
        vm.frames.append(callee)
        return REDISPATCH
    if kind == "data":
        holder = action[1] if action[1] is not None else receiver
        regs[insn[3]] = holder.data[action[2]]
        vm.cycles += insn[13]
        return pc
    if kind == "const":
        regs[insn[3]] = action[1]
        return pc
    if kind == "assign":
        holder = action[1] if action[1] is not None else receiver
        holder.data[action[2]] = regs[insn[6][0]]
        regs[insn[3]] = receiver
        vm.cycles += insn[13]
        return pc
    if kind == "block":
        return vm._send_block(regs, insn, receiver, pc)
    if kind == "prim":
        regs[insn[3]] = vm._run_primitive_send(
            receiver, insn[4], [regs[r] for r in insn[6]]
        )
        return pc
    if kind == "interp":
        # The callee degraded to the interpreter tier: run it
        # synchronously (its execution is not charged modeled cycles).
        regs[insn[3]] = vm._run_interpreted(
            action[1], receiver, [regs[r] for r in insn[6]]
        )
        return pc
    raise VMError(f"bad send action {action!r}")


def _do_primcall(vm, frame, regs, insn, pc):
    # insn: (..., dst, fn, recv_reg, arg_regs, err_reg, fail_target, selector)
    # Static cycles (prim_call_cycles + the per-primitive work table
    # entry) are already baked into insn[1] by the predecoder.
    frame.pc = pc
    try:
        regs[insn[3]] = insn[4](
            vm.universe, regs[insn[5]], [regs[r] for r in insn[6]]
        )
    except PrimFailSignal as failure:
        return _primcall_failure(regs, insn, failure)
    return pc


def _do_primcall_clone(vm, frame, regs, insn, pc):
    # _Clone: allocation cost is a per-system constant (baked into
    # insn[1]); cloning a vector additionally pays per element.
    frame.pc = pc
    receiver = regs[insn[5]]
    if isinstance(receiver, SelfVector):
        vm.cycles += int(len(receiver.elements) * insn[10])
    try:
        regs[insn[3]] = insn[4](vm.universe, receiver, [regs[r] for r in insn[6]])
    except PrimFailSignal as failure:
        return _primcall_failure(regs, insn, failure)
    return pc


def _do_primcall_newvec(vm, frame, regs, insn, pc):
    # _NewVector:Filler: pays per requested element.
    frame.pc = pc
    receiver = regs[insn[5]]
    args = [regs[r] for r in insn[6]]
    if args and type(args[0]) is int:
        vm.cycles += int(args[0] * insn[10])
    elif isinstance(receiver, SelfVector):
        vm.cycles += int(len(receiver.elements) * insn[10])
    try:
        regs[insn[3]] = insn[4](vm.universe, receiver, args)
    except PrimFailSignal as failure:
        return _primcall_failure(regs, insn, failure)
    return pc


def _primcall_failure(regs, insn, failure):
    fail_target = insn[8]
    if fail_target < 0:
        raise PrimitiveFailed(insn[9], failure.code) from None
    err_reg = insn[7]
    if err_reg >= 0:
        regs[err_reg] = failure.code
    return fail_target


def _do_return(vm, frame, regs, insn, pc):
    value = regs[insn[3]]
    frame.alive = False
    frames = vm.frames
    frames.pop()
    vm._ret_value = value
    if frames:
        ret_reg = frame.ret_reg
        if ret_reg >= 0:
            # A frame at a run-segment boundary always has ret_reg -1,
            # so this never writes into an outer segment's frame.
            frames[-1].regs[ret_reg] = value
    return REDISPATCH


def _do_nlr(vm, frame, regs, insn, pc):
    # insn: (..., src, nlr_cycles)
    value = regs[insn[3]]
    target = frame
    while target.home is not None:
        target = target.home
    if not target.alive:
        raise NonLocalReturnFromDeadActivation()
    vm.cycles += insn[4]
    vm._nlr = (target, value, pc)
    return NLR_SIGNAL


def _do_error(vm, frame, regs, insn, pc):
    # insn: (..., prim_name, code_or_None, err_reg)
    code = insn[4]
    if code is None:
        code = regs[insn[5]]
    raise PrimitiveFailed(insn[3], code)


# ---------------------------------------------------------------------------
# Superinstruction handlers
# ---------------------------------------------------------------------------
# Fused operand layouts are the concatenation of the two halves'
# single-instruction layouts (still starting at index 3); the modeled
# cycle count (insn[1]) and instruction count (insn[2]) are the sums of
# the parts, so the cost model cannot observe fusion.


def _f_move_move(vm, frame, regs, insn, pc):
    regs[insn[3]] = regs[insn[4]]
    regs[insn[5]] = regs[insn[6]]
    return pc


def _f_move_move_move(vm, frame, regs, insn, pc):
    regs[insn[3]] = regs[insn[4]]
    regs[insn[5]] = regs[insn[6]]
    regs[insn[7]] = regs[insn[8]]
    return pc


def _f_move_loadk(vm, frame, regs, insn, pc):
    regs[insn[3]] = regs[insn[4]]
    regs[insn[5]] = insn[6]
    return pc


def _f_loadk_move(vm, frame, regs, insn, pc):
    regs[insn[3]] = insn[4]
    regs[insn[5]] = regs[insn[6]]
    return pc


def _f_move_typetest(vm, frame, regs, insn, pc):
    regs[insn[3]] = regs[insn[4]]
    return pc if vm._map_of(regs[insn[5]]) is insn[6] else insn[7]


def _f_loadk_typetest(vm, frame, regs, insn, pc):
    regs[insn[3]] = insn[4]
    return pc if vm._map_of(regs[insn[5]]) is insn[6] else insn[7]


def _skip_second(vm, insn):
    """The first half branched away: the architectural stream never
    executed the second half, so refund its pre-charged cost.  (The
    outer loop charges the fused sum before dispatch; this runs only on
    the out-of-line path, keeping the fallthrough path charge-free.)"""
    vm.cycles -= insn[-1]
    vm.instructions -= 1


def _f_typetest_move(vm, frame, regs, insn, pc):
    if vm._map_of(regs[insn[3]]) is not insn[4]:
        _skip_second(vm, insn)
        return insn[5]
    regs[insn[6]] = regs[insn[7]]
    return pc


def _f_typetest_typetest(vm, frame, regs, insn, pc):
    if vm._map_of(regs[insn[3]]) is not insn[4]:
        _skip_second(vm, insn)
        return insn[5]
    return pc if vm._map_of(regs[insn[6]]) is insn[7] else insn[8]


def _f_typetest_bounds(vm, frame, regs, insn, pc):
    if vm._map_of(regs[insn[3]]) is not insn[4]:
        _skip_second(vm, insn)
        return insn[5]
    vector = regs[insn[6]]
    index = regs[insn[7]]
    if type(index) is not int or index < 0 or index >= len(vector.elements):
        return insn[8]
    return pc


def _f_bounds_aload(vm, frame, regs, insn, pc):
    vector = regs[insn[3]]
    index = regs[insn[4]]
    if type(index) is not int or index < 0 or index >= len(vector.elements):
        _skip_second(vm, insn)
        return insn[5]
    regs[insn[6]] = regs[insn[7]].elements[regs[insn[8]]]
    return pc


def _f_bounds_astore(vm, frame, regs, insn, pc):
    vector = regs[insn[3]]
    index = regs[insn[4]]
    if type(index) is not int or index < 0 or index >= len(vector.elements):
        _skip_second(vm, insn)
        return insn[5]
    regs[insn[6]].elements[regs[insn[7]]] = regs[insn[8]]
    return pc


def _f_move_jump(vm, frame, regs, insn, pc):
    regs[insn[3]] = regs[insn[4]]
    return insn[5]


def _f_addov_move(vm, frame, regs, insn, pc):
    result = regs[insn[4]] + regs[insn[5]]
    if SMALLINT_MIN <= result <= SMALLINT_MAX:
        regs[insn[3]] = result
        regs[insn[8]] = regs[insn[9]]
        return pc
    regs[insn[6]] = "overflowError"
    _skip_second(vm, insn)
    return insn[7]


def _f_subov_move(vm, frame, regs, insn, pc):
    result = regs[insn[4]] - regs[insn[5]]
    if SMALLINT_MIN <= result <= SMALLINT_MAX:
        regs[insn[3]] = result
        regs[insn[8]] = regs[insn[9]]
        return pc
    regs[insn[6]] = "overflowError"
    _skip_second(vm, insn)
    return insn[7]


def _f_loadk_addov(vm, frame, regs, insn, pc):
    regs[insn[3]] = insn[4]
    result = regs[insn[6]] + regs[insn[7]]
    if SMALLINT_MIN <= result <= SMALLINT_MAX:
        regs[insn[5]] = result
        return pc
    regs[insn[8]] = "overflowError"
    return insn[9]


def _f_loadslot_move(vm, frame, regs, insn, pc):
    regs[insn[3]] = regs[insn[4]].data[insn[5]]
    regs[insn[6]] = regs[insn[7]]
    return pc


def _f_move_return(vm, frame, regs, insn, pc):
    regs[insn[3]] = regs[insn[4]]
    value = regs[insn[5]]
    frame.alive = False
    frames = vm.frames
    frames.pop()
    vm._ret_value = value
    if frames:
        ret_reg = frame.ret_reg
        if ret_reg >= 0:
            frames[-1].regs[ret_reg] = value
    return REDISPATCH


def _f_move_send(vm, frame, regs, insn, pc):
    # (..., dst, src, <embedded SEND tuple>)
    regs[insn[3]] = regs[insn[4]]
    return _do_send(vm, frame, regs, insn[5], pc)


def _f_typetest_send(vm, frame, regs, insn, pc):
    if vm._map_of(regs[insn[3]]) is not insn[4]:
        # Refund the embedded SEND's pre-charged static cost.
        vm.cycles -= insn[6][1]
        vm.instructions -= 1
        return insn[5]
    return _do_send(vm, frame, regs, insn[6], pc)


# ---------------------------------------------------------------------------
# Predecoding
# ---------------------------------------------------------------------------

_SIMPLE_HANDLERS = {
    op.MOVE: _do_move,
    op.CMP_LT: _do_cmp_lt,
    op.CMP_LE: _do_cmp_le,
    op.CMP_GT: _do_cmp_gt,
    op.CMP_GE: _do_cmp_ge,
    op.CMP_EQ: _do_cmp_eq,
    op.CMP_NE: _do_cmp_ne,
    op.ADD_OV: _do_add_ov,
    op.SUB_OV: _do_sub_ov,
    op.MUL_OV: _do_mul_ov,
    op.DIV_OV: _do_div_ov,
    op.MOD_OV: _do_mod_ov,
    op.ADD: _do_add,
    op.SUB: _do_sub,
    op.MUL: _do_mul,
    op.DIV: _do_div,
    op.MOD: _do_mod,
    op.TYPETEST: _do_typetest,
    op.BOUNDS: _do_bounds,
    op.ALOAD: _do_aload,
    op.ASTORE: _do_astore,
    op.ALEN: _do_alen,
    op.LOADSLOT: _do_loadslot,
    op.STORESLOT: _do_storeslot,
    op.ENV_LOAD: _do_env_load,
    op.ENV_STORE: _do_env_store,
    op.JUMP: _do_jump,
    op.RETURN: _do_return,
}

#: (first opcode, second opcode) -> fused handler.  Chosen from dynamic
#: pair frequencies over the benchmark suite: MOVE+MOVE alone is ~25% of
#: executed transitions, MOVE+TYPETEST ~11%, TYPETEST+MOVE ~7%.
_PAIR_RULES = {
    (op.MOVE, op.MOVE): _f_move_move,
    (op.MOVE, op.LOADK): _f_move_loadk,
    (op.LOADK, op.MOVE): _f_loadk_move,
    (op.MOVE, op.TYPETEST): _f_move_typetest,
    (op.LOADK, op.TYPETEST): _f_loadk_typetest,
    (op.TYPETEST, op.MOVE): _f_typetest_move,
    (op.TYPETEST, op.TYPETEST): _f_typetest_typetest,
    (op.TYPETEST, op.BOUNDS): _f_typetest_bounds,
    (op.BOUNDS, op.ALOAD): _f_bounds_aload,
    (op.BOUNDS, op.ASTORE): _f_bounds_astore,
    (op.MOVE, op.JUMP): _f_move_jump,
    (op.ADD_OV, op.MOVE): _f_addov_move,
    (op.SUB_OV, op.MOVE): _f_subov_move,
    (op.LOADK, op.ADD_OV): _f_loadk_addov,
    (op.LOADSLOT, op.MOVE): _f_loadslot_move,
    (op.MOVE, op.RETURN): _f_move_return,
    (op.MOVE, op.SEND): _f_move_send,
    (op.TYPETEST, op.SEND): _f_typetest_send,
}

#: rules whose second half keeps its own full predecoded tuple embedded
#: (the fused handler tail-calls the second half's handler).
_EMBED_SECOND = {_f_move_send, _f_typetest_send}

#: rules whose *first* half can branch away (failed type test, failed
#: bounds check, overflow).  The architectural stream never executes the
#: second half on that path, so the predecoder appends the second half's
#: static cycle cost as the final operand and the handler refunds it
#: (see :func:`_skip_second`).
_REFUND_SECOND = {
    _f_typetest_move, _f_typetest_typetest, _f_typetest_bounds,
    _f_bounds_aload, _f_bounds_astore, _f_addov_move, _f_subov_move,
}


def predecode(insns, consts, ic_sites, model):
    """Translate a code object's tuple instructions into the threaded
    stream executed by :meth:`Runtime._loop`.

    Returns a list of predecoded tuples.  Branch targets are remapped to
    indices in the new stream; fusion never absorbs a branch target, so
    every target still heads an instruction.
    """
    cycle_table = model.static_cycle_table()
    n = len(insns)
    corrupted = faults.ENABLED and faults.hit(faults.SITE_VM_PREDECODE)

    targets = set()
    for insn in insns:
        pos = op.BRANCH_OPERANDS.get(insn[0])
        if pos is not None:
            target = insn[pos]
            if isinstance(target, int) and target >= 0:
                targets.add(target)

    # Phase 1: greedy left-to-right segmentation into superinstructions.
    segments = []  # (old_index, length, fused handler or None)
    i = 0
    while i < n:
        opcode = insns[i][0]
        if (
            opcode == op.MOVE
            and i + 2 < n
            and insns[i + 1][0] == op.MOVE
            and insns[i + 2][0] == op.MOVE
            and i + 1 not in targets
            and i + 2 not in targets
        ):
            segments.append((i, 3, _f_move_move_move))
            i += 3
            continue
        rule = None
        if i + 1 < n and i + 1 not in targets and opcode not in op.SUSPENDING:
            rule = _PAIR_RULES.get((opcode, insns[i + 1][0]))
        if rule is not None:
            segments.append((i, 2, rule))
            i += 2
        else:
            segments.append((i, 1, None))
            i += 1

    # Phase 2: old index -> new index, for branch-target remapping.
    remap = {old: new for new, (old, _, _) in enumerate(segments)}
    if corrupted:
        # Corrupt mode: the target-translation table is trashed; any
        # branch below fails remapping (caught at code installation).
        remap = {}

    # Phase 3: emit.
    def decode_one(insn):
        opcode = insn[0]
        cycles = cycle_table[opcode]
        handler = _SIMPLE_HANDLERS.get(opcode)
        if handler is not None:
            operands = list(insn[1:])
            pos = op.BRANCH_OPERANDS.get(opcode)
            if pos is not None:
                operands[pos - 1] = remap[insn[pos]]
            return (handler, cycles, 1, *operands)
        if opcode == op.LOADK:
            return (_do_loadk, cycles, 1, insn[1], consts[insn[2]])
        if opcode == op.TYPETEST:  # pragma: no cover - in _SIMPLE_HANDLERS
            raise VMError("unreachable")
        if opcode == op.MAKE_BLOCK:
            block_node, template = consts[insn[2]]
            return (_do_make_block, cycles, 1, insn[1], block_node, template, insn[3])
        if opcode == op.SEND:
            dst, selector, recv, arg_regs, site_index = insn[1:6]
            return (
                _do_send, cycles, 1, dst, selector, recv, arg_regs,
                ic_sites[site_index],
                model.send_hit_cycles, model.send_miss_cycles,
                model.send_megamorphic_cycles, model.send_pic_hit_cycles,
                model.frame_cycles, model.slot_cycles,
            )
        if opcode == op.PRIMCALL:
            from .cost import PRIMITIVE_WORK_CYCLES

            dst, primitive, recv, arg_regs, err_reg, fail_target = insn[1:7]
            selector = primitive.selector
            fail_target = remap[fail_target] if (
                fail_target is not None and fail_target >= 0
            ) else -1
            if selector == "_Clone" or selector == "_NewVector:Filler:":
                handler = (
                    _do_primcall_clone if selector == "_Clone"
                    else _do_primcall_newvec
                )
                cycles += model.alloc_cycles
                return (
                    handler, cycles, 1, dst, primitive.fn, recv, arg_regs,
                    err_reg, fail_target, selector,
                    model.prim_per_element_cycles,
                )
            cycles += PRIMITIVE_WORK_CYCLES.get(selector, 4)
            return (
                _do_primcall, cycles, 1, dst, primitive.fn, recv, arg_regs,
                err_reg, fail_target, selector,
            )
        if opcode == op.NLR:
            return (_do_nlr, cycles, 1, insn[1], model.nlr_cycles)
        if opcode == op.ERROR:
            return (_do_error, cycles, 1, insn[1], insn[2], insn[3])
        raise VMError(f"cannot predecode opcode {op.op_name(opcode)}")

    out = []
    for old, length, fused in segments:
        parts = [decode_one(insns[old + k]) for k in range(length)]
        if fused is None:
            out.append(parts[0])
            continue
        cycles = sum(p[1] for p in parts)
        count = sum(p[2] for p in parts)
        if fused in _EMBED_SECOND:
            out.append((fused, cycles, count, *parts[0][3:], parts[1]))
        else:
            operands = [x for p in parts for x in p[3:]]
            if fused in _REFUND_SECOND:
                operands.append(parts[1][1])
            out.append((fused, cycles, count, *operands))
    return out


def superinstruction_stats(threaded) -> dict:
    """Fusion accounting for one predecoded stream.

    ``slots`` counts threaded tuples; a slot whose architectural
    instruction count (``insn[2]``) exceeds one is a fused
    superinstruction, and each extra counted instruction is one slot
    the fusion absorbed.
    """
    fused = 0
    absorbed = 0
    for insn in threaded:
        count = insn[2]
        if count > 1:
            fused += 1
            absorbed += count - 1
    return {"slots": len(threaded), "fused": fused, "absorbed": absorbed}


def disassemble_threaded(threaded) -> str:
    """Human-readable listing of a predecoded stream (debugging aid)."""
    lines = []
    for index, insn in enumerate(threaded):
        name = insn[0].__name__.lstrip("_")
        operands = " ".join(repr(x) for x in insn[3:])
        lines.append(
            f"{index:4}: {name:<22} cyc={insn[1]:<3} n={insn[2]} {operands}"
        )
    return "\n".join(lines)
