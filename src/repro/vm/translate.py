"""The translation tier: hot bodies run as specialized host functions.

Fourth (fastest) rung of the execution ladder — translated above
optimizing above pessimistic above interpreter.  The dispatch loop
promotes a :class:`~.code.Code` body here once it has seen
``REPRO_TRANSLATE_THRESHOLD`` fresh activations (default 16; ``0``
disables the tier): :meth:`Translator.translate` emits one specialized
Python function for the whole predecoded stream (:mod:`.emit`),
``compile()``s it, and installs the result in ``code.translated``.

Contracts the tier keeps:

* **Fallback is always safe.**  Labels in the translated function are
  threaded-stream indices, so ``frame.pc`` is valid in both tiers and
  the deopt PC mapping is the identity.  When invalidation retires a
  translation (``code.translated = False``), live frames simply resume
  on the predecoded stream at their next activation boundary; the
  dispatch loop counts those entries (``translate.fallback_entries``).
* **Never persisted.**  The persistent code cache stores bytecode
  streams only; a cache-hit load arrives with ``translated = None`` and
  re-translates lazily once it gets hot again.
* **Failure is contained.**  Any exception during emission or
  ``compile()`` — including the ``vm.translate.emit`` fault-injection
  site — marks the body untranslatable (``False``: never retried),
  increments ``translate.emit_failed``, records a recovery-log
  degradation back to the optimizing tier, and execution continues on
  the predecoded stream with identical semantics.
* **Emission cost is accounted separately.**  Host seconds spent
  emitting and compiling accumulate in ``translate.emit_seconds``,
  never in the modeled ``compile_seconds``.

Share clones re-predecode the same ``insns`` list into congruent
streams, so the compiled factory is cached per ``insns`` identity and
reused across clones (``translate.reused``): only the constant
extraction (IC sites, maps, templates) runs per clone.
"""

from __future__ import annotations

import time
from typing import Optional

from ..robustness import faults
from ..robustness.recovery import TIER_OPTIMIZING, TIER_TRANSLATED
from .emit import EMIT_GLOBALS, emit_source, extract_constant


class _FactoryEntry:
    """One emitted+compiled factory, keyed by ``id(code.insns)``.

    ``insns`` is held strongly: the cache key is an ``id()``, which the
    host may reuse once the original list is collected.
    """

    __slots__ = ("insns", "n_threaded", "factory", "paths", "guards")

    def __init__(self, insns, n_threaded, factory, paths, guards) -> None:
        self.insns = insns
        self.n_threaded = n_threaded
        self.factory = factory
        self.paths = paths
        #: well-known-map identities baked into the source; a clone may
        #: reuse the factory only when its stream carries the same
        #: objects at these paths (see :func:`~.emit.emit_source`)
        self.guards = guards


class Translator:
    """Per-runtime translation service (owned by ``Runtime``)."""

    __slots__ = (
        "runtime", "counters", "profiling", "pic", "mru", "_factories",
    )

    def __init__(
        self, runtime, counters: bool, profiling: bool = False,
        pic: bool = False, mru: bool = True,
    ) -> None:
        self.runtime = runtime
        #: compile modeled-counter accounting into the generated source
        #: (REPRO_MODELED_COUNTERS; off = raw wall-clock mode)
        self.counters = counters
        #: compile profiler tick hooks into the generated source, the
        #: same emission-time pattern as ``counters``: with profiling
        #: off the emitted source is byte-identical to before the
        #: profiler existed (the zero-overhead-off guarantee)
        self.profiling = profiling
        #: open-code the dispatch ladder (PIC probe + megamorphic table)
        #: in generated sends (REPRO_PIC); off keeps the emission
        #: byte-identical to a build without the ladder
        self.pic = pic
        #: MRU promotion in lean sends (REPRO_PIC_MRU; see vm/emit.py)
        self.mru = mru
        self._factories: dict[int, _FactoryEntry] = {}

    def translate(self, code) -> Optional[object]:
        """Translate ``code`` in place; returns the installed function,
        or None when translation failed (the body is then marked
        untranslatable and never retried)."""
        stats = self.runtime.translate_stats
        started = time.perf_counter()
        try:
            fn = self._build(code)
        except Exception as error:
            stats["emit_seconds"] += time.perf_counter() - started
            stats["emit_failed"] += 1
            code.translated = False
            self.runtime.recovery.record(
                stage="translate",
                selector=code.name,
                from_tier=TIER_TRANSLATED,
                to_tier=TIER_OPTIMIZING,
                error=error,
            )
            return None
        stats["emit_seconds"] += time.perf_counter() - started
        stats["translated"] += 1
        code.translated = fn
        tracer = self.runtime.tracer
        if tracer.enabled:
            from ..obs.trace import CAT_RUNTIME

            tracer.event(
                "translate",
                category=CAT_RUNTIME,
                selector=code.name,
                slots=len(code.threaded),
                counters=self.counters,
            )
        return fn

    def _build(self, code):
        corrupted = faults.ENABLED and faults.hit(faults.SITE_VM_TRANSLATE)
        key = id(code.insns)
        entry = self._factories.get(key)
        if (
            entry is not None
            and entry.insns is code.insns
            and entry.n_threaded == len(code.threaded)
            and all(
                extract_constant(code.threaded, p) is v
                for p, v in entry.guards
            )
            and not corrupted
        ):
            # A share clone of an already-translated body: same insns,
            # congruent re-predecoded stream — reuse the compiled
            # factory, extract this clone's constants.
            self.runtime.translate_stats["reused"] += 1
            factory, paths = entry.factory, entry.paths
        else:
            source, paths, guards = emit_source(
                code.threaded, self.counters, self.runtime.universe,
                profiling=self.profiling, pic=self.pic, mru=self.mru,
            )
            if corrupted:
                # Injected wild write mid-emission: the source is
                # truncated and trashed, so compile() below rejects it
                # and containment marks the body untranslatable.
                source = source[: len(source) // 2] + "\n<corrupted>\n"
            host_code = compile(source, f"<translated {code.name}>", "exec")
            namespace = dict(EMIT_GLOBALS)
            exec(host_code, namespace)
            factory = namespace["_factory"]
            self._factories[key] = _FactoryEntry(
                code.insns, len(code.threaded), factory, paths, guards
            )
        consts = tuple(extract_constant(code.threaded, p) for p in paths)
        return factory(consts)
