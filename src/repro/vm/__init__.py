"""The bytecode backend: codegen, VM, inline caches, and cost models."""

from .code import Code, InlineCacheSite
from .codegen import generate
from .cost import (
    MODELS,
    NEW_SELF_MODEL,
    OLD_SELF_89_MODEL,
    OLD_SELF_90_MODEL,
    PRIMITIVE_WORK_CYCLES,
    ST80_MODEL,
    STATIC_MODEL,
    CostModel,
    model_for,
)
from .runtime import Frame, Runtime

__all__ = [
    "Code",
    "CostModel",
    "Frame",
    "InlineCacheSite",
    "MODELS",
    "NEW_SELF_MODEL",
    "OLD_SELF_89_MODEL",
    "OLD_SELF_90_MODEL",
    "PRIMITIVE_WORK_CYCLES",
    "Runtime",
    "ST80_MODEL",
    "STATIC_MODEL",
    "generate",
    "model_for",
]
