"""Lowering the control-flow graph to register bytecode.

The layout is trace-based: each node's port-0 (common/true/success)
successor is placed immediately after it whenever possible, so the hot
path through a compiled loop is a straight run of instructions with all
failure handling out of line — mirroring how the SELF compiler laid out
SPARC code.

Escaping locals (captured by materialized blocks) do not get registers:
reads and writes go through the frame's named environment, with scratch
registers inserted around each instruction that touches them.
"""

from __future__ import annotations

from typing import Optional

from ..compiler.result import CompiledGraph
from ..objects.errors import CodegenError
from ..robustness import faults
from ..ir import nodes as ir
from . import opcodes as op
from .code import Code, InlineCacheSite
from .cost import CostModel
from .dispatch import predecode

_ARITH_OPS = {"add": op.ADD, "sub": op.SUB, "mul": op.MUL, "div": op.DIV, "mod": op.MOD}
_ARITH_OV_OPS = {
    "add": op.ADD_OV, "sub": op.SUB_OV, "mul": op.MUL_OV,
    "div": op.DIV_OV, "mod": op.MOD_OV,
}
_CMP_OPS = {
    "<": op.CMP_LT, "<=": op.CMP_LE, ">": op.CMP_GT,
    ">=": op.CMP_GE, "==": op.CMP_EQ, "!=": op.CMP_NE,
}


def generate(graph: CompiledGraph, model: CostModel) -> Code:
    return _Codegen(graph, model).run()


class _Codegen:
    def __init__(self, graph: CompiledGraph, model: CostModel) -> None:
        self.graph = graph
        self.model = model
        self.regs: dict[str, int] = {}
        self.escaping = graph.escaping  # flat var -> env key
        self.insns: list[list] = []
        self.labels: dict[int, int] = {}  # id(node) -> insn index
        self.fixups: list[tuple[int, int, ir.IRNode]] = []
        self.consts: list = []
        self.const_index: dict = {}
        self.ic_sites: list[InlineCacheSite] = []
        self._scratch = 0
        self.env_keys = frozenset(graph.escaping.values())

    # -- registers and constants --------------------------------------------------

    def reg(self, var: str) -> int:
        index = self.regs.get(var)
        if index is None:
            index = len(self.regs)
            self.regs[var] = index
        return index

    def scratch_reg(self) -> int:
        self._scratch += 1
        return self.reg(f"%scratch{self._scratch}")

    def const(self, value) -> int:
        key = (type(value).__name__, id(value))
        index = self.const_index.get(key)
        if index is None:
            index = len(self.consts)
            self.consts.append(value)
            self.const_index[key] = index
        return index

    # -- escaping-variable plumbing ----------------------------------------------

    def read(self, var: str) -> int:
        """Register holding ``var``'s value (loading from env if needed)."""
        key = self.escaping.get(var)
        if key is None:
            return self.reg(var)
        scratch = self.scratch_reg()
        self.insns.append([op.ENV_LOAD, scratch, key])
        return scratch

    def write(self, var: str, emit_op) -> None:
        """Emit ``emit_op(dst_reg)``; spill to env if ``var`` escapes."""
        key = self.escaping.get(var)
        if key is None:
            emit_op(self.reg(var))
            return
        scratch = self.scratch_reg()
        emit_op(scratch)
        self.insns.append([op.ENV_STORE, key, scratch])

    # -- driver ---------------------------------------------------------------------

    def run(self) -> Code:
        # Prologue: arguments that escape into blocks live in the frame
        # environment; spill them from their incoming registers first.
        for var in self.graph.arg_vars:
            key = self.escaping.get(var)
            if key is not None:
                self.insns.append([op.ENV_STORE, key, self.reg(var)])
        order = self._layout_order()
        for index, node in enumerate(order):
            self.labels[id(node)] = len(self.insns)
            next_node = order[index + 1] if index + 1 < len(order) else None
            self._emit_node(node, next_node)
        self._apply_fixups()
        if faults.ENABLED and faults.hit(faults.SITE_VM_CODEGEN):
            # Corrupt mode: a jump to a nonexistent instruction.  The
            # predecode target remap below must reject the stream.
            self.insns.append([op.JUMP, len(self.insns) + 1])
        size = sum(self.model.instruction_bytes(i[0]) for i in self.insns)
        size += self.model.method_overhead_bytes
        insns = [tuple(i) for i in self.insns]
        self_reg = self.reg(self.graph.self_var)
        arg_regs = tuple(self.reg(v) for v in self.graph.arg_vars)
        # The peephole/predecode pass: resolve pools, bake static cycles,
        # and fuse hot adjacent pairs.  Sizing above uses the unfused
        # stream, so ``size_bytes`` is independent of fusion.
        threaded = predecode(insns, self.consts, self.ic_sites, self.model)
        return Code(
            name=self.graph.selector or "<doit>",
            insns=insns,
            consts=self.consts,
            reg_count=len(self.regs),
            self_reg=self_reg,
            arg_regs=arg_regs,
            env_keys=self.env_keys,
            ic_sites=self.ic_sites,
            size_bytes=size,
            is_block=self.graph.is_block,
            graph_stats=self.graph.stats,
            compile_stats=self.graph.compile_stats,
            config_name=self.graph.config_name,
            threaded=threaded,
            map_dependent=self.graph.map_dependent,
        )

    def _layout_order(self) -> list[ir.IRNode]:
        order: list[ir.IRNode] = []
        visited: set[int] = set()
        work: list[ir.IRNode] = [self.graph.start]
        while work:
            node: Optional[ir.IRNode] = work.pop()
            while node is not None and id(node) not in visited:
                visited.add(id(node))
                order.append(node)
                successors = node.successors
                if len(successors) == 2 and successors[1] is not None:
                    work.append(successors[1])
                node = successors[0] if successors else None
        return order

    def _jump_to(self, target: ir.IRNode, next_node: Optional[ir.IRNode]) -> None:
        if target is next_node:
            return
        index = len(self.insns)
        self.insns.append([op.JUMP, -1])
        self.fixups.append((index, 1, target))

    def _branch_operand(self, index: int, pos: int, target: ir.IRNode) -> None:
        self.fixups.append((index, pos, target))

    def _apply_fixups(self) -> None:
        for index, pos, target in self.fixups:
            label = self.labels.get(id(target))
            if label is None:
                raise CodegenError(f"jump to un-emitted node {target!r}")
            self.insns[index][pos] = label

    # -- per-node emission --------------------------------------------------------

    def _emit_node(self, node: ir.IRNode, next_node: Optional[ir.IRNode]) -> None:
        t = type(node)
        if t in (ir.StartNode, ir.MergeNode, ir.LoopHeadNode):
            pass  # pure labels
        elif t is ir.ConstNode:
            kidx = self.const(node.value)
            self.write(node.dst, lambda dst: self.insns.append([op.LOADK, dst, kidx]))
        elif t is ir.MoveNode:
            src = self.read(node.src)
            self.write(node.dst, lambda dst: self.insns.append([op.MOVE, dst, src]))
        elif t is ir.ArithNode:
            x = self.read(node.x)
            y = self.read(node.y)
            opcode = _ARITH_OPS[node.op]
            self.write(node.dst, lambda dst: self.insns.append([opcode, dst, x, y]))
        elif t is ir.ArithOvNode:
            self._emit_arith_ov(node)
        elif t is ir.CompareBranchNode:
            x = self.read(node.x)
            y = self.read(node.y)
            index = len(self.insns)
            self.insns.append([_CMP_OPS[node.op], x, y, -1])
            self._branch_operand(index, 3, node.successors[1])
        elif t is ir.TypeTestNode:
            var = self.read(node.var)
            index = len(self.insns)
            self.insns.append([op.TYPETEST, var, node.map, -1])
            self._branch_operand(index, 3, node.successors[1])
        elif t is ir.BoundsCheckNode:
            arr = self.read(node.arr)
            idx = self.read(node.idx)
            index = len(self.insns)
            self.insns.append([op.BOUNDS, arr, idx, -1])
            self._branch_operand(index, 3, node.successors[1])
        elif t is ir.ArrayLoadNode:
            arr = self.read(node.arr)
            idx = self.read(node.idx)
            self.write(node.dst, lambda dst: self.insns.append([op.ALOAD, dst, arr, idx]))
        elif t is ir.ArrayStoreNode:
            arr = self.read(node.arr)
            idx = self.read(node.idx)
            src = self.read(node.src)
            self.insns.append([op.ASTORE, arr, idx, src])
        elif t is ir.ArrayLengthNode:
            arr = self.read(node.arr)
            self.write(node.dst, lambda dst: self.insns.append([op.ALEN, dst, arr]))
        elif t is ir.LoadSlotNode:
            obj = self.read(node.obj)
            self.write(
                node.dst,
                lambda dst: self.insns.append([op.LOADSLOT, dst, obj, node.offset]),
            )
        elif t is ir.StoreSlotNode:
            obj = self.read(node.obj)
            src = self.read(node.src)
            self.insns.append([op.STORESLOT, obj, node.offset, src])
        elif t is ir.EnvLoadNode:
            self.write(
                node.dst,
                lambda dst: self.insns.append([op.ENV_LOAD, dst, node.name]),
            )
        elif t is ir.EnvStoreNode:
            src = self.read(node.src)
            self.insns.append([op.ENV_STORE, node.name, src])
        elif t is ir.MakeBlockNode:
            kidx = self.const((node.block, node.template))
            self_reg = self.read(node.self_var)
            self.write(
                node.dst,
                lambda dst: self.insns.append([op.MAKE_BLOCK, dst, kidx, self_reg]),
            )
        elif t is ir.SendNode:
            recv = self.read(node.recv)
            args = tuple(self.read(a) for a in node.args)
            site = len(self.ic_sites)
            self.ic_sites.append(InlineCacheSite(node.selector))
            self.write(
                node.dst,
                lambda dst: self.insns.append(
                    [op.SEND, dst, node.selector, recv, args, site]
                ),
            )
        elif t is ir.PrimCallNode:
            self._emit_prim_call(node)
        elif t is ir.ReturnNode:
            src = self.read(node.src)
            self.insns.append([op.RETURN, src])
            return  # terminal: no fallthrough
        elif t is ir.NlrReturnNode:
            src = self.read(node.src)
            self.insns.append([op.NLR, src])
            return
        elif t is ir.ErrorNode:
            if node.code.startswith("%"):
                err = self.read(node.code)
                self.insns.append([op.ERROR, node.primitive, None, err])
            else:
                self.insns.append([op.ERROR, node.primitive, node.code, -1])
            return
        else:
            raise CodegenError(f"cannot lower {node!r}")
        if node.successors:
            self._jump_to(node.successors[0], next_node)

    def _emit_arith_ov(self, node: ir.ArithOvNode) -> None:
        x = self.read(node.x)
        y = self.read(node.y)
        opcode = _ARITH_OV_OPS[node.op]
        err = self.reg(node.err_dst) if node.err_dst else self.reg("%err")
        if node.dst in self.escaping:
            scratch = self.scratch_reg()
            index = len(self.insns)
            self.insns.append([opcode, scratch, x, y, err, -1])
            self._branch_operand(index, 5, node.successors[1])
            self.insns.append([op.ENV_STORE, self.escaping[node.dst], scratch])
        else:
            index = len(self.insns)
            self.insns.append([opcode, self.reg(node.dst), x, y, err, -1])
            self._branch_operand(index, 5, node.successors[1])

    def _emit_prim_call(self, node: ir.PrimCallNode) -> None:
        from ..primitives.registry import lookup_primitive

        primitive = lookup_primitive(node.selector)
        if primitive is None:
            raise CodegenError(f"unknown primitive {node.selector!r}")
        recv = self.read(node.recv)
        args = tuple(self.read(a) for a in node.args)
        err = self.reg(node.err_dst) if node.err_dst else -1
        if node.has_failure_port:
            index = len(self.insns)
            self.write(
                node.dst,
                lambda dst: self.insns.append(
                    [op.PRIMCALL, dst, primitive, recv, args, err, -1]
                ),
            )
            # The branch operand position depends on whether a spill was
            # inserted after the PRIMCALL; find the PRIMCALL instruction.
            for i in range(len(self.insns) - 1, -1, -1):
                if self.insns[i][0] == op.PRIMCALL:
                    self._branch_operand(i, 6, node.successors[1])
                    break
        else:
            self.write(
                node.dst,
                lambda dst: self.insns.append(
                    [op.PRIMCALL, dst, primitive, recv, args, err, -1]
                ),
            )
