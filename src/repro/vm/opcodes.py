"""Bytecode opcodes for the register VM.

Instructions are Python tuples ``(op, ...operands)``.  Register operands
are integers indexing the frame's register file; constants, maps,
selectors, and block templates live in per-code constant pools.

Branching instructions encode the *failure/false* target; the
success/true path falls through (codegen lays the common path out as a
straight line, like the trace the paper's diagrams show).
"""

from __future__ import annotations

# Data movement
MOVE = 1          # (MOVE, dst, src)
LOADK = 2         # (LOADK, dst, const_index)

# Raw arithmetic (no checks — the paper's bare instructions)
ADD = 10          # (ADD, dst, a, b)
SUB = 11
MUL = 12
DIV = 13
MOD = 14

# Checked arithmetic: on overflow (or zero divisor) store the failure
# code string into err and jump to target.
ADD_OV = 20       # (ADD_OV, dst, a, b, err, target)
SUB_OV = 21
MUL_OV = 22
DIV_OV = 23
MOD_OV = 24

# Compare-and-branch: jump to target when the comparison is FALSE.
CMP_LT = 30       # (CMP_LT, a, b, target)
CMP_LE = 31
CMP_GT = 32
CMP_GE = 33
CMP_EQ = 34
CMP_NE = 35

# Type test: jump to target when the value's map is NOT the tested map.
TYPETEST = 40     # (TYPETEST, reg, map_index, target)

# Arrays
BOUNDS = 50       # (BOUNDS, arr, idx, target)  jump when out of bounds
ALOAD = 51        # (ALOAD, dst, arr, idx)
ASTORE = 52       # (ASTORE, arr, idx, src)
ALEN = 53         # (ALEN, dst, arr)

# Slots
LOADSLOT = 60     # (LOADSLOT, dst, obj, offset)
STORESLOT = 61    # (STORESLOT, obj, offset, src)

# Environment (escaping locals; name-keyed, walks the home chain)
ENV_LOAD = 70     # (ENV_LOAD, dst, name)
ENV_STORE = 71    # (ENV_STORE, name, src)

# Closures
MAKE_BLOCK = 80   # (MAKE_BLOCK, dst, template_index)

# Calls
SEND = 90         # (SEND, dst, selector_index, recv, args_tuple, site)
PRIMCALL = 91     # (PRIMCALL, dst, prim_index, recv, args_tuple, err, target|-1)

# Control
JUMP = 100        # (JUMP, target)
RETURN = 101      # (RETURN, src)
NLR = 102         # (NLR, src)
ERROR = 103       # (ERROR, prim_name, code)

NAMES = {
    value: name
    for name, value in list(globals().items())
    if isinstance(value, int) and not name.startswith("_")
}


def op_name(op: int) -> str:
    return NAMES.get(op, f"op{op}")


# ---------------------------------------------------------------------------
# Encoding metadata (used by the predecoder in :mod:`.dispatch`)
# ---------------------------------------------------------------------------

#: operand position holding a jump target, per branching opcode.  The
#: target is an instruction index into the same code object's stream.
BRANCH_OPERANDS = {
    CMP_LT: 3, CMP_LE: 3, CMP_GT: 3, CMP_GE: 3, CMP_EQ: 3, CMP_NE: 3,
    ADD_OV: 5, SUB_OV: 5, MUL_OV: 5, DIV_OV: 5, MOD_OV: 5,
    TYPETEST: 3,
    BOUNDS: 3,
    JUMP: 1,
    PRIMCALL: 6,   # failure target, or -1 when the primitive cannot fail
}

#: opcodes that never continue to the textually-next instruction; an
#: instruction stream position after one of these is only reachable as a
#: branch target.
NO_FALLTHROUGH = frozenset({JUMP, RETURN, NLR, ERROR})

#: opcodes that may suspend the current frame mid-instruction (a callee
#: frame is pushed and this frame later resumes at ``frame.pc``).  They
#: can never be the *first* half of a fused superinstruction: resuming
#: after the call would skip the second half.
SUSPENDING = frozenset({SEND})
