"""Activation frames and the non-local-return unwind signal.

These live in their own module (rather than :mod:`.runtime`) so the
threaded-dispatch handlers in :mod:`.dispatch` can construct frames
without a circular import: ``runtime`` imports ``codegen`` imports
``dispatch`` imports this.
"""

from __future__ import annotations

from typing import Optional


class Frame:
    """One activation: registers plus the named environment."""

    __slots__ = (
        "code", "pc", "regs", "receiver", "env", "env_map", "home",
        "ret_reg", "alive",
    )

    def __init__(
        self,
        code,
        receiver,
        home: Optional["Frame"],
        ret_reg: int,
        env_map: Optional[dict] = None,
    ) -> None:
        self.code = code
        self.pc = 0
        self.regs = [None] * code.reg_count
        self.receiver = receiver
        self.env = dict.fromkeys(code.env_keys) if code.env_keys else None
        #: block frames: free-name -> concrete env key of the creating
        #: frame (captured at closure creation)
        self.env_map = env_map
        self.home = home
        self.ret_reg = ret_reg
        self.alive = True


class NonLocalUnwind(Exception):
    """Internal: a ^ in block code is unwinding to its home frame."""

    __slots__ = ("target", "value")

    def __init__(self, target: Frame, value) -> None:
        self.target = target
        self.value = value
        super().__init__("non-local return")
