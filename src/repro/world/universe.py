"""The Universe: per-world canonical maps, singletons, and value services.

Each :class:`~repro.world.bootstrap.World` owns one Universe so tests can
build fully isolated guest worlds.  The Universe knows how to map any
runtime value to its map (hidden class), owns the ``nil``/``true``/
``false`` singletons, creates the per-block-literal maps, and collects
guest output from the printing primitives.
"""

from __future__ import annotations

from typing import Optional

from ..lang.ast_nodes import BlockNode
from ..objects.maps import Map
from ..objects.model import BigInt, SelfBlock, SelfObject, SelfVector


class Universe:
    """Value services shared by the interpreter, compiler, and VM."""

    def __init__(self) -> None:
        # Canonical maps for unboxed/special values.  Bootstrap replaces
        # these with versions that carry parent slots to the traits
        # objects; ``map_of`` always consults the current attribute.
        self.smallint_map = Map("smallInt", kind="smallInt")
        self.bigint_map = Map("bigInt", kind="bigInt")
        self.float_map = Map("float", kind="float")
        self.string_map = Map("string", kind="string")
        self.vector_map = Map("vector", kind="vector")
        self.nil_map = Map("nil", kind="nil")
        self.true_map = Map("true", kind="boolean")
        self.false_map = Map("false", kind="boolean")

        self.nil_object = SelfObject(self.nil_map)
        self.true_object = SelfObject(self.true_map)
        self.false_object = SelfObject(self.false_map)

        #: Per-block-literal maps, keyed by ``BlockNode.block_id``.  A
        #: block literal's map identifies its code, which is what lets
        #: the compiler treat blocks as statically-known values.
        self._block_maps: dict[int, Map] = {}
        #: Shared parent object for all block maps (traits block); set
        #: during bootstrap, applied lazily to new block maps.
        self.block_traits: Optional[SelfObject] = None

        #: Output collected from _Print / _PrintLine.
        self.output: list[str] = []

        #: The active evaluator (interpreter or VM) — lets loop-ish
        #: primitives such as _BlockWhileTrue: call back into guest code.
        self.evaluator = None

        #: Bumped whenever slots are added to existing objects so that
        #: per-map lookup caches (filled before the change) are discarded.
        self.lookup_epoch = 0

    # -- booleans -------------------------------------------------------------

    def boolean(self, flag: bool) -> SelfObject:
        return self.true_object if flag else self.false_object

    def is_true(self, value) -> bool:
        return value is self.true_object

    def is_false(self, value) -> bool:
        return value is self.false_object

    # -- map dispatch ----------------------------------------------------------

    def map_of(self, value) -> Map:
        """The map (hidden class) of any runtime value."""
        t = type(value)
        if t is int:
            return self.smallint_map
        if t is SelfObject:
            return value.map
        if t is SelfVector:
            return value.map
        if t is SelfBlock:
            return value.map
        if t is BigInt:
            return self.bigint_map
        if t is float:
            return self.float_map
        if t is str:
            return self.string_map
        if t is bool:
            raise TypeError("host bool leaked into the guest world")
        raise TypeError(f"not a guest value: {value!r}")

    def block_map(self, node: BlockNode) -> Map:
        """The unique map for a block literal (created on first use)."""
        existing = self._block_maps.get(node.block_id)
        if existing is not None:
            return existing
        parents = {}
        if self.block_traits is not None:
            parents["parent"] = self.block_traits
        new_map = Map.build(f"block#{node.block_id}", parents=parents, kind="block")
        self._block_maps[node.block_id] = new_map
        return new_map

    def set_block_traits(self, traits: SelfObject) -> None:
        """Install the parent for all block maps (bootstrap only)."""
        self.block_traits = traits
        rebuilt = {}
        for block_id, old in self._block_maps.items():
            rebuilt[block_id] = Map.build(old.name, parents={"parent": traits}, kind="block")
        self._block_maps = rebuilt

    # -- printing ---------------------------------------------------------------

    def write_output(self, text: str) -> None:
        self.output.append(text)

    def take_output(self) -> str:
        text = "".join(self.output)
        self.output.clear()
        return text

    def print_string(self, value) -> str:
        """A host-side printable rendering of any guest value."""
        if value is self.nil_object:
            return "nil"
        if value is self.true_object:
            return "true"
        if value is self.false_object:
            return "false"
        t = type(value)
        if t is int:
            return str(value)
        if t is BigInt:
            return str(value.value)
        if t is float:
            return repr(value)
        if t is str:
            return value
        if t is SelfVector:
            inner = ", ".join(self.print_string(e) for e in value.elements)
            return f"({inner})"
        if t is SelfBlock:
            return f"a block/{value.arity}"
        if t is SelfObject:
            return f"a {value.map.name}" if value.map.name else "an object"
        return repr(value)
