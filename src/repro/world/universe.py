"""The Universe: per-world canonical maps, singletons, and value services.

Each :class:`~repro.world.bootstrap.World` owns one Universe so tests can
build fully isolated guest worlds.  The Universe knows how to map any
runtime value to its map (hidden class), owns the ``nil``/``true``/
``false`` singletons, creates the per-block-literal maps, and collects
guest output from the printing primitives.
"""

from __future__ import annotations

import itertools
import weakref
from typing import Optional

#: process-wide counter behind the default universe ids ("u0", "u1", …)
_universe_ids = itertools.count()

from ..lang.ast_nodes import BlockNode
from ..objects.maps import CONSTANT, DATA, ASSIGNMENT, Map, Slot
from ..objects.model import BigInt, SelfBlock, SelfObject, SelfVector
from .deps import DependencyRegistry, const_key, shape_key, well_known_key


class Universe:
    """Value services shared by the interpreter, compiler, and VM."""

    def __init__(self, universe_id: Optional[str] = None) -> None:
        #: stable tenant identity for scoped metrics
        #: (:meth:`repro.obs.metrics.MetricsRegistry.scoped`); pass an
        #: explicit id when the default process-ordered "uN" would not
        #: be deterministic (e.g. worlds built in worker processes)
        self.universe_id = (
            universe_id if universe_id is not None
            else f"u{next(_universe_ids)}"
        )
        # Canonical maps for unboxed/special values.  Bootstrap replaces
        # these with versions that carry parent slots to the traits
        # objects; ``map_of`` always consults the current attribute.
        self.smallint_map = Map("smallInt", kind="smallInt")
        self.bigint_map = Map("bigInt", kind="bigInt")
        self.float_map = Map("float", kind="float")
        self.string_map = Map("string", kind="string")
        self.vector_map = Map("vector", kind="vector")
        self.nil_map = Map("nil", kind="nil")
        self.true_map = Map("true", kind="boolean")
        self.false_map = Map("false", kind="boolean")

        self.nil_object = SelfObject(self.nil_map)
        self.true_object = SelfObject(self.true_map)
        self.false_object = SelfObject(self.false_map)

        #: Per-block-literal maps, keyed by ``BlockNode.block_id``.  A
        #: block literal's map identifies its code, which is what lets
        #: the compiler treat blocks as statically-known values.
        self._block_maps: dict[int, Map] = {}
        #: Shared parent object for all block maps (traits block); set
        #: during bootstrap, applied lazily to new block maps.
        self.block_traits: Optional[SelfObject] = None

        #: Output collected from _Print / _PrintLine.
        self.output: list[str] = []

        #: The active evaluator (interpreter or VM) — lets loop-ish
        #: primitives such as _BlockWhileTrue: call back into guest code.
        self.evaluator = None

        #: Bumped whenever slots are added to existing objects so that
        #: per-map lookup caches (filled before the change) are discarded.
        self.lookup_epoch = 0

        #: The dependency registry: compile-time assumptions -> compiled
        #: artifacts.  Mutation entry points below fire invalidation
        #: through it (see :mod:`repro.robustness.invalidate`).
        self.deps = DependencyRegistry()
        #: Every live Runtime executing against this universe (weak, so
        #: a discarded runtime doesn't pin its code caches).
        self.runtimes: "weakref.WeakSet" = weakref.WeakSet()

    # -- booleans -------------------------------------------------------------

    def boolean(self, flag: bool) -> SelfObject:
        return self.true_object if flag else self.false_object

    def is_true(self, value) -> bool:
        return value is self.true_object

    def is_false(self, value) -> bool:
        return value is self.false_object

    # -- map dispatch ----------------------------------------------------------

    def map_of(self, value) -> Map:
        """The map (hidden class) of any runtime value."""
        t = type(value)
        if t is int:
            return self.smallint_map
        if t is SelfObject:
            return value.map
        if t is SelfVector:
            return value.map
        if t is SelfBlock:
            return value.map
        if t is BigInt:
            return self.bigint_map
        if t is float:
            return self.float_map
        if t is str:
            return self.string_map
        if t is bool:
            raise TypeError("host bool leaked into the guest world")
        raise TypeError(f"not a guest value: {value!r}")

    def block_map(self, node: BlockNode) -> Map:
        """The unique map for a block literal (created on first use)."""
        existing = self._block_maps.get(node.block_id)
        if existing is not None:
            return existing
        parents = {}
        if self.block_traits is not None:
            parents["parent"] = self.block_traits
        new_map = Map.build(f"block#{node.block_id}", parents=parents, kind="block")
        self._block_maps[node.block_id] = new_map
        return new_map

    def set_block_traits(self, traits: SelfObject) -> None:
        """Install the parent for all block maps (bootstrap only)."""
        self.block_traits = traits
        rebuilt = {}
        for block_id, old in self._block_maps.items():
            rebuilt[block_id] = Map.build(old.name, parents={"parent": traits}, kind="block")
        self._block_maps = rebuilt

    # -- world mutation ---------------------------------------------------------
    #
    # The only supported ways to change an already-visible object's
    # layout or constant slots.  Each builds the replacement map, swaps
    # it in, and fires dependency-tracked invalidation keyed on the
    # *old* map (maps are immutable — it is the old map's id that
    # compiled code assumed).

    #: well-known (map attribute, singleton attribute) pairs whose map
    #: identity compiled type prediction may have baked in
    _WELL_KNOWN_SINGLETONS = (
        ("nil_map", "nil_object"),
        ("true_map", "true_object"),
        ("false_map", "false_object"),
    )

    def add_slot(
        self,
        obj,
        name: str,
        value=None,
        *,
        is_parent: bool = False,
        data: bool = False,
    ) -> None:
        """Add (or replace) one slot on ``obj``, invalidating dependents.

        ``data=True`` adds a mutable data slot (plus its assignment
        twin) initialized to ``value``; otherwise a constant slot.
        """
        old_map = self.map_of(obj)
        if data:
            offset = old_map.data_size
            new_slots = [
                Slot(name, DATA, offset=offset),
                Slot(name + ":", ASSIGNMENT, offset=offset),
            ]
            new_map = old_map.with_added_slots(new_slots)
            obj.data.extend([None] * (new_map.data_size - len(obj.data)))
            obj.set_data(offset, self.nil_object if value is None else value)
        else:
            new_map = old_map.with_added_slots(
                [Slot(name, CONSTANT, value=value, is_parent=is_parent)]
            )
        self.apply_map_change(obj, new_map, reason=f"add_slot {name}")

    def remove_slot(self, obj, name: str) -> None:
        """Remove one slot from ``obj``, invalidating dependents."""
        old_map = self.map_of(obj)
        new_map = old_map.with_removed_slot(name)
        self.apply_map_change(obj, new_map, reason=f"remove_slot {name}")

    def set_constant_slot(self, obj, name: str, value) -> None:
        """Replace the value of a constant slot, invalidating dependents.

        A non-parent constant fires only its own ``const`` key; a parent
        slot's value changes the reachable lookup world, so the shape
        key fires too.
        """
        old_map = self.map_of(obj)
        slot = old_map.own_slot(name)
        new_map = old_map.with_replaced_constant(name, value)
        keys = {const_key(old_map, name)}
        if slot is not None and slot.is_parent:
            keys.add(shape_key(old_map))
        self.apply_map_change(
            obj, new_map, reason=f"set_constant_slot {name}", keys=keys
        )

    def reclassify(self, obj, prototype) -> None:
        """Give ``obj`` the map of ``prototype`` (object reclassification).

        The object keeps its data vector, padded with nil to the new
        layout's size; slots the new map doesn't know about become
        unreachable.
        """
        old_map = self.map_of(obj)
        new_map = self.map_of(prototype)
        if len(obj.data) < new_map.data_size:
            obj.data.extend(
                [self.nil_object] * (new_map.data_size - len(obj.data))
            )
        self.apply_map_change(obj, new_map, reason="reclassify")

    def apply_map_change(self, obj, new_map: Map, reason: str, keys=None) -> None:
        """Swap ``obj``'s map and fire invalidation for the old one.

        The generic entry every mutation funnels through (bootstrap's
        ``add_slots`` included).  ``keys`` defaults to the old map's
        shape key; extra keys (constant slots, well-known identities)
        are unioned in.
        """
        old_map = self.map_of(obj)
        fire_keys = set(keys) if keys is not None else {shape_key(old_map)}
        obj.map = new_map
        for map_attr, obj_attr in self._WELL_KNOWN_SINGLETONS:
            if obj is getattr(self, obj_attr):
                setattr(self, map_attr, new_map)
                fire_keys.add(well_known_key(map_attr))
                fire_keys.add(shape_key(old_map))
        from ..robustness.invalidate import fire

        fire(self, fire_keys, reason=reason)

    # -- forking ----------------------------------------------------------------

    def fork(self, universe_id: Optional[str] = None) -> "Universe":
        """A fully isolated twin of this universe (see :func:`fork_universe`)."""
        twin, _clone = fork_universe(self, universe_id)
        return twin

    # -- printing ---------------------------------------------------------------

    def write_output(self, text: str) -> None:
        self.output.append(text)

    def take_output(self) -> str:
        text = "".join(self.output)
        self.output.clear()
        return text

    def print_string(self, value) -> str:
        """A host-side printable rendering of any guest value."""
        if value is self.nil_object:
            return "nil"
        if value is self.true_object:
            return "true"
        if value is self.false_object:
            return "false"
        t = type(value)
        if t is int:
            return str(value)
        if t is BigInt:
            return str(value.value)
        if t is float:
            return repr(value)
        if t is str:
            return value
        if t is SelfVector:
            inner = ", ".join(self.print_string(e) for e in value.elements)
            return f"({inner})"
        if t is SelfBlock:
            return f"a block/{value.arity}"
        if t is SelfObject:
            return f"a {value.map.name}" if value.map.name else "an object"
        return repr(value)


# ---------------------------------------------------------------------------
# Zygote forking
# ---------------------------------------------------------------------------

def fork_universe(parent: Universe, universe_id: Optional[str] = None):
    """Fork ``parent`` into an isolated twin universe.

    Returns ``(twin, clone)`` where ``clone`` maps any value from the
    parent's object graph into the twin's (memoized, so sharing and
    cycles in the parent are preserved in the twin).  The clone rules:

    * **Maps** are always twinned (fresh ``map_id``, fresh lookup
      caches) via :meth:`Map.forked` — compiled code, inline caches, and
      the per-map lookup caches all key on map identity, so sharing a
      map across universes would alias dispatch state between tenants.
      Unchanged :class:`Slot` descriptors *are* shared (copy-on-write:
      a mutation in either universe builds a fresh map, never edits one
      in place).
    * **SelfObject / SelfVector / SelfBlock** instances are deep-cloned
      (mutable data surfaces must not alias).
    * **Immutable values** — ints, floats, strings, :class:`BigInt`,
      :class:`SelfMethod` (and the AST it holds), ``None`` — are shared.

    The twin starts with a fresh dependency registry, empty runtime
    set, epoch 0, and no collected output: mutation in one universe can
    never retire code or flush caches in the other.
    """
    twin = Universe(universe_id)
    obj_memo: dict[int, object] = {}
    map_memo: dict[int, Map] = {}
    # Pin every original we memoize by id() so the id cannot be reused
    # by a new object while the fork is still walking the graph.
    keepalive: list = []

    def clone_map(m: Map) -> Map:
        existing = map_memo.get(id(m))
        if existing is not None:
            return existing

        def register(t: Map) -> None:
            map_memo[id(m)] = t
            keepalive.append(m)

        return m.forked(clone, register)

    def clone(value):
        t = type(value)
        if t is SelfObject:
            existing = obj_memo.get(id(value))
            if existing is not None:
                return existing
            dup = SelfObject.__new__(SelfObject)
            obj_memo[id(value)] = dup
            keepalive.append(value)
            dup.map = clone_map(value.map)
            dup.data = [clone(v) for v in value.data]
            return dup
        if t is SelfVector:
            existing = obj_memo.get(id(value))
            if existing is not None:
                return existing
            dup = SelfVector.__new__(SelfVector)
            obj_memo[id(value)] = dup
            keepalive.append(value)
            dup.map = clone_map(value.map)
            dup.elements = [clone(v) for v in value.elements]
            return dup
        if t is SelfBlock:
            existing = obj_memo.get(id(value))
            if existing is not None:
                return existing
            dup = SelfBlock.__new__(SelfBlock)
            obj_memo[id(value)] = dup
            keepalive.append(value)
            dup.map = clone_map(value.map)
            dup.code = value.code
            dup.home = value.home
            dup.env_map = value.env_map
            dup.captured_self = clone(value.captured_self)
            return dup
        # ints, floats, strings, BigInt, SelfMethod, Map-free hosts,
        # and None are immutable (or host-side descriptors): share.
        return value

    # Canonical maps and singletons, through the same memo so that e.g.
    # ``twin.nil_object.map is twin.nil_map`` holds exactly when it does
    # in the parent.
    twin.smallint_map = clone_map(parent.smallint_map)
    twin.bigint_map = clone_map(parent.bigint_map)
    twin.float_map = clone_map(parent.float_map)
    twin.string_map = clone_map(parent.string_map)
    twin.vector_map = clone_map(parent.vector_map)
    twin.nil_map = clone_map(parent.nil_map)
    twin.true_map = clone_map(parent.true_map)
    twin.false_map = clone_map(parent.false_map)
    twin.nil_object = clone(parent.nil_object)
    twin.true_object = clone(parent.true_object)
    twin.false_object = clone(parent.false_object)
    twin._block_maps = {
        block_id: clone_map(m) for block_id, m in parent._block_maps.items()
    }
    if parent.block_traits is not None:
        twin.block_traits = clone(parent.block_traits)
    del keepalive
    return twin, clone
