"""The dependency registry: compile-time assumptions -> dependent artifacts.

Every layer that caches a decision made against the mutable world — a
compiled :class:`~repro.vm.code.Code` body, a cross-map share clone, a
persistent code-cache entry, an inline-cache line, a per-map lookup
cache — owes its validity to facts about that world.  This module names
those facts as **dependency keys** and keeps the edges from each key to
the artifacts that assumed it, so a world mutation
(:meth:`~repro.world.universe.Universe.add_slot` and friends) can retire
exactly the artifacts whose assumptions broke.

Dependency kinds (the key tuples):

* ``("shape", map_id)`` — the structural layout of one map: which slots
  exist, their kinds, offsets, and parent-ness.  Broken by adding or
  removing a slot, or by reclassifying the object that owned the map.
  Recorded whenever compile-time or runtime lookup *consults* a map —
  including misses, since a later shadowing slot changes the result.
* ``("const", map_id, name)`` — the value held by one constant slot.
  Broken by :meth:`set_constant_slot`.  Recorded when a lookup actually
  reads the slot's value (method inlining, constant folding).
* ``("wk", attr)`` — the identity of a well-known universe map
  (``smallint_map`` … ``false_map``).  Broken when a mutation replaces
  the map of one of the singletons backing those attributes.  Recorded
  by type prediction, which tests against these maps by identity.
* ``("lookup", map_id, selector)`` — a runtime lookup result cached in
  an inline-cache line or a per-map lookup cache.  Registered against a
  per-universe :class:`LookupCachesDependent` so invalidation knows the
  runtime caches contain a result derived from the mutated map.

Keys are plain tuples, maps are identified by ``map_id`` (maps are
immutable: a mutation *replaces* an object's map, and the old id is what
fires).  Registration is pure host bookkeeping on cold paths — it never
touches the modeled measurements.
"""

from __future__ import annotations

import weakref
from typing import Iterable, Optional

# -- key constructors -------------------------------------------------------

DEP_SHAPE = "shape"
DEP_CONST = "const"
DEP_WELL_KNOWN = "wk"
DEP_LOOKUP = "lookup"


def shape_key(map) -> tuple:
    return (DEP_SHAPE, map.map_id)


def const_key(map, name: str) -> tuple:
    return (DEP_CONST, map.map_id, name)


def well_known_key(attr: str) -> tuple:
    return (DEP_WELL_KNOWN, attr)


def lookup_key(map, selector: str) -> tuple:
    return (DEP_LOOKUP, map.map_id, selector)


class DepTracker:
    """Collects the dependency keys of one compilation attempt.

    Installed as ``registry.active`` for the duration of a
    ``compile_with_tiers`` ladder; the compile-time lookup machinery
    (:mod:`repro.compiler.clookup`) and the type-prediction paths in the
    engine record every world fact they consult.  Trackers nest (block
    compiles triggered while another tracker is active get their own).
    """

    __slots__ = ("keys",)

    def __init__(self) -> None:
        self.keys: set[tuple] = set()

    def map_shape(self, map) -> None:
        self.keys.add((DEP_SHAPE, map.map_id))

    def constant_slot(self, map, name: str) -> None:
        self.keys.add((DEP_CONST, map.map_id, name))

    def well_known(self, attr: str, map) -> None:
        self.keys.add((DEP_WELL_KNOWN, attr))
        self.keys.add((DEP_SHAPE, map.map_id))

    def frozen(self) -> frozenset:
        return frozenset(self.keys)


class CodeDependency:
    """One compiled body (or share clone, or cache-hit load) and every
    cache cell that must forget it when an assumption breaks."""

    __slots__ = (
        "runtime_ref", "kind", "cache_key", "code", "code_node",
        "selector", "disk_key", "keys",
    )

    def __init__(
        self,
        runtime,
        kind: str,  # "method" | "block"
        cache_key: tuple,
        code,
        code_node,
        selector: str,
        disk_key: Optional[str] = None,
    ) -> None:
        self.runtime_ref = weakref.ref(runtime)
        self.kind = kind
        self.cache_key = cache_key
        self.code = code
        self.code_node = code_node
        self.selector = selector
        self.disk_key = disk_key
        #: filled by the registry at registration time (for unregister)
        self.keys: frozenset = frozenset()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CodeDependency {self.kind} {self.selector!r} {len(self.keys)} keys>"


class LookupCachesDependent:
    """Marker target: the universe's runtime lookup caches (per-map
    caches and every registered runtime's inline caches) hold a result
    derived from the keyed map.  One instance per universe."""

    __slots__ = ("keys",)

    def __init__(self) -> None:
        self.keys: frozenset = frozenset()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<LookupCachesDependent>"


class DependencyRegistry:
    """Edges from dependency keys to the artifacts that assumed them.

    Owned by one :class:`~repro.world.universe.Universe`.  ``active`` is
    the tracker of the compilation currently in flight (or None); the
    runtime-lookup side registers directly via :meth:`note_lookup`.
    """

    def __init__(self) -> None:
        self._edges: dict[tuple, set] = {}
        #: tracker stack (block compiles can nest inside method compiles)
        self._trackers: list[DepTracker] = []
        self.active: Optional[DepTracker] = None
        self._lookup_target = LookupCachesDependent()
        #: keys the lookup target is already registered under (dedup)
        self._lookup_keys: set[tuple] = set()
        self.stats = {
            "edges": 0,
            "targets": 0,
            "invalidations": 0,
            "codes_retired": 0,
            "codecache_invalidated": 0,
            "share_canonical_dropped": 0,
            "ic_flushes": 0,
            "frames_deoptimized": 0,
            "epoch_bumps": 0,
            "reoptimized": 0,
        }

    def reset_stats(self) -> None:
        """Zero every counter (bootstrap calls this once the world is up)."""
        for key in self.stats:
            self.stats[key] = 0

    # -- tracker stack -----------------------------------------------------

    def push_tracker(self) -> DepTracker:
        tracker = DepTracker()
        self._trackers.append(tracker)
        self.active = tracker
        return tracker

    def pop_tracker(self) -> DepTracker:
        tracker = self._trackers.pop()
        self.active = self._trackers[-1] if self._trackers else None
        return tracker

    # -- registration ------------------------------------------------------

    def register(self, keys: Iterable[tuple], target) -> None:
        """Register ``target`` under every key in ``keys``."""
        keyset = frozenset(keys)
        if not keyset:
            return
        target.keys = keyset
        for key in keyset:
            bucket = self._edges.get(key)
            if bucket is None:
                bucket = set()
                self._edges[key] = bucket
            bucket.add(target)
            self.stats["edges"] += 1
        self.stats["targets"] += 1

    def note_lookup(self, consulted_maps, found) -> None:
        """A cold runtime lookup filled a cache line somewhere.

        ``consulted_maps`` are every map the breadth-first search
        visited; ``found`` is the ``(holder_map, slot)`` pair of the
        result (or None for a cached miss).  The universe's lookup
        caches become dependent on all of them.
        """
        target = self._lookup_target
        fresh = []
        for map in consulted_maps:
            key = (DEP_SHAPE, map.map_id)
            if key not in self._lookup_keys:
                self._lookup_keys.add(key)
                fresh.append(key)
        if found is not None:
            holder_map, slot = found
            if slot.kind == "constant":
                key = (DEP_CONST, holder_map.map_id, slot.name)
                if key not in self._lookup_keys:
                    self._lookup_keys.add(key)
                    fresh.append(key)
        for key in fresh:
            bucket = self._edges.get(key)
            if bucket is None:
                bucket = set()
                self._edges[key] = bucket
            bucket.add(target)
            self.stats["edges"] += 1

    # -- queries -----------------------------------------------------------

    def targets_for(self, keys: Iterable[tuple]) -> set:
        """Every registered target depending on any of ``keys``."""
        out: set = set()
        for key in keys:
            bucket = self._edges.get(key)
            if bucket:
                out.update(bucket)
        return out

    def unregister(self, target) -> None:
        """Drop ``target`` from every key it was registered under."""
        for key in target.keys:
            bucket = self._edges.get(key)
            if bucket is not None:
                bucket.discard(target)
                if not bucket:
                    del self._edges[key]
        if isinstance(target, LookupCachesDependent):
            self._lookup_keys.clear()
            target.keys = frozenset()

    def edge_count(self) -> int:
        return sum(len(bucket) for bucket in self._edges.values())

    def __len__(self) -> int:
        return len(self._edges)
