"""World bootstrap: wiring the lobby, traits, and the core library.

A :class:`World` is a complete, isolated guest universe:

* the **lobby** — the global namespace object every method can reach
  through its receiver's parent chain;
* the **traits** objects — shared behaviour for integers, floats,
  strings, vectors, blocks, booleans, and plain objects ("clonable");
* the **core library** from :mod:`repro.world.corelib`, written in the
  guest language and added slot-by-slot with the reference interpreter
  evaluating the initializers.

The parent graph is a simple chain::

    <value> -> traits <kind> -> traits clonable -> lobby

so a small integer understands ``+`` (traits integer), ``printLine``
(traits clonable), and can name globals like ``vector`` (lobby).
"""

from __future__ import annotations

from typing import Optional

from ..interp.interpreter import Interpreter
from ..lang.parser import parse_doit, parse_expression, parse_slot_list
from ..objects.maps import Map, Slot
from ..objects.model import SelfObject, SelfVector
from ..world import corelib
from .objects_builder import compile_slot_decls
from .universe import Universe, fork_universe


class World:
    """A complete guest world: universe + lobby + core library."""

    def __init__(self, universe_id=None) -> None:
        self.universe = Universe(universe_id)
        universe = self.universe

        # Stage 1: the lobby with the universal constants.
        self.lobby = SelfObject(Map.build("lobby"))
        self.nil_object = universe.nil_object
        self.true_object = universe.true_object
        self.false_object = universe.false_object

        self.interpreter = Interpreter(universe, self.lobby)

        self._install_constants(
            self.lobby,
            {
                "nil": universe.nil_object,
                "true": universe.true_object,
                "false": universe.false_object,
            },
        )
        # The lobby names itself so parent-less code can say ``lobby``.
        self._install_constants(self.lobby, {"lobby": self.lobby})

        # Stage 2: the traits skeleton (empty objects, parent-chained).
        self.traits_clonable = self._new_traits("clonable", parent=self.lobby)
        self.traits_integer = self._new_traits("integer", parent=self.traits_clonable)
        self.traits_float = self._new_traits("float", parent=self.traits_clonable)
        self.traits_string = self._new_traits("string", parent=self.traits_clonable)
        self.traits_vector = self._new_traits("vector", parent=self.traits_clonable)
        self.traits_block = self._new_traits("block", parent=self.traits_clonable)
        self.traits_boolean = self._new_traits("boolean", parent=self.traits_clonable)

        traits = SelfObject(
            Map.build(
                "traits",
                constants={
                    "clonable": self.traits_clonable,
                    "integer": self.traits_integer,
                    "float": self.traits_float,
                    "string": self.traits_string,
                    "vector": self.traits_vector,
                    "block": self.traits_block,
                    "boolean": self.traits_boolean,
                },
            )
        )
        self.traits = traits
        self._install_constants(self.lobby, {"traits": traits})

        # Stage 3: re-parent the canonical maps onto the traits.
        universe.smallint_map = Map.build(
            "smallInt", parents={"parent": self.traits_integer}, kind="smallInt"
        )
        universe.bigint_map = Map.build(
            "bigInt", parents={"parent": self.traits_integer}, kind="bigInt"
        )
        universe.float_map = Map.build(
            "float", parents={"parent": self.traits_float}, kind="float"
        )
        universe.string_map = Map.build(
            "string", parents={"parent": self.traits_string}, kind="string"
        )
        universe.vector_map = Map.build(
            "vector", parents={"parent": self.traits_vector}, kind="vector"
        )
        universe.nil_map = Map.build(
            "nil", parents={"parent": self.traits_clonable}, kind="nil"
        )
        universe.true_map = Map.build(
            "true", parents={"parent": self.traits_boolean}, kind="boolean"
        )
        universe.false_map = Map.build(
            "false", parents={"parent": self.traits_boolean}, kind="boolean"
        )
        universe.nil_object.map = universe.nil_map
        universe.true_object.map = universe.true_map
        universe.false_object.map = universe.false_map
        universe.set_block_traits(self.traits_block)

        # Stage 4: the vector prototype global.
        self.vector_prototype = SelfVector(universe.vector_map, [])
        self._install_constants(self.lobby, {"vector": self.vector_prototype})

        # Stage 5: the core library, in guest source.
        for attribute, source in corelib.CORELIB_LAYERS:
            self.add_slots(source, to=getattr(self, attribute))

        # Keep the universe's canonical boolean/nil maps in sync with the
        # singletons (add_slots replaced their maps).
        universe.nil_map = universe.nil_object.map
        universe.true_map = universe.true_object.map
        universe.false_map = universe.false_object.map

        # Bootstrap mutated the world dozens of times against an empty
        # dependency registry; zero the counters so invalidation metrics
        # reflect post-boot mutations only.
        universe.deps.reset_stats()

    # -- zygote forking -----------------------------------------------------------

    def fork(self, universe_id: Optional[str] = None) -> "World":
        """Fork this warm world into an isolated twin (zygote pattern).

        Instead of re-running the five bootstrap stages (the expensive
        part is interpreting the core library), the twin is produced by
        one memoized walk of the already-built object graph: every map
        is twinned with a fresh identity, every mutable object is
        deep-cloned, and every immutable value (methods included) is
        shared.  The twin has its own universe, dependency registry,
        and lookup epoch, so mutation in either world can never retire
        code, flush caches, or alias state in the other.
        """
        twin = World.__new__(World)
        universe, clone = fork_universe(self.universe, universe_id)
        twin.universe = universe
        twin.lobby = clone(self.lobby)
        twin.nil_object = universe.nil_object
        twin.true_object = universe.true_object
        twin.false_object = universe.false_object
        twin.interpreter = Interpreter(universe, twin.lobby)
        twin.traits_clonable = clone(self.traits_clonable)
        twin.traits_integer = clone(self.traits_integer)
        twin.traits_float = clone(self.traits_float)
        twin.traits_string = clone(self.traits_string)
        twin.traits_vector = clone(self.traits_vector)
        twin.traits_block = clone(self.traits_block)
        twin.traits_boolean = clone(self.traits_boolean)
        twin.traits = clone(self.traits)
        twin.vector_prototype = clone(self.vector_prototype)
        return twin

    # -- construction helpers -----------------------------------------------------

    def _new_traits(self, name: str, parent: SelfObject) -> SelfObject:
        return SelfObject(
            Map.build(f"traits {name}", parents={"parent": parent})
        )

    def _install_constants(self, target: SelfObject, constants: dict) -> None:
        slots = [Slot(name, "constant", value=value) for name, value in constants.items()]
        self.universe.apply_map_change(
            target, target.map.with_added_slots(slots), reason="install_constants"
        )

    # -- public API ------------------------------------------------------------------

    def add_slots(self, source: str, to: Optional[object] = None) -> None:
        """Parse slot declarations and add them to ``to`` (default: lobby).

        Initializer expressions are evaluated by the reference
        interpreter with the target object as the receiver, so they can
        reference the target's existing slots and, through its parents,
        the lobby globals.
        """
        target = to if to is not None else self.lobby
        decls = parse_slot_list(source)
        target_map = self.universe.map_of(target)
        holder_name = target_map.name

        def eval_expr(expr, slot_name=""):
            from ..lang.ast_nodes import MethodNode, ObjectLiteralNode
            from .objects_builder import build_object

            if isinstance(expr, ObjectLiteralNode):
                # Name the prototype's map after its slot, so tools and
                # static annotations can address it ("quickBench", ...).
                return build_object(
                    self.universe, expr, eval_expr, name=slot_name
                )
            wrapper = MethodNode((), [], [expr])
            return self.interpreter.eval_doit(wrapper, receiver=target)

        if not isinstance(target, SelfObject):
            raise TypeError("can only add slots to slot objects")
        # Install declaration by declaration, so later initializers can
        # reference slots declared earlier in the same source (the
        # common "derived = (| parent* = base |)" pattern).
        for decl in decls:
            slots, data_inits = compile_slot_decls(
                [decl],
                eval_expr,
                name=holder_name,
                first_data_offset=self.universe.map_of(target).data_size,
            )
            new_map = self.universe.map_of(target).with_added_slots(slots)
            self.universe.apply_map_change(target, new_map, reason="add_slots")
            target.data.extend([None] * (target.map.data_size - len(target.data)))
            for offset, init in data_inits:
                value = self.universe.nil_object if init is None else eval_expr(init)
                target.set_data(offset, value)

    def add_slots_from(self, path, to: Optional[object] = None) -> None:
        """Load slot declarations from a guest source file (.self)."""
        with open(path, "r", encoding="utf-8") as handle:
            self.add_slots(handle.read(), to=to)

    def eval(self, source: str, receiver: Optional[object] = None):
        """Parse and interpret a "do-it" (``| locals |`` + statements)."""
        doit = parse_doit(source)
        return self.interpreter.eval_doit(doit, receiver=receiver)

    def eval_expression(self, source: str, receiver: Optional[object] = None):
        """Parse and interpret a single expression."""
        expr = parse_expression(source)
        from ..lang.ast_nodes import MethodNode

        wrapper = MethodNode((), [], [expr])
        return self.interpreter.eval_doit(wrapper, receiver=receiver)

    def get_global(self, name: str):
        """Read a constant slot straight off the lobby."""
        slot = self.universe.map_of(self.lobby).own_slot(name)
        if slot is None:
            raise KeyError(name)
        return slot.value

    # -- convenience -----------------------------------------------------------------

    @property
    def nil(self):
        return self.universe.nil_object

    def boolean(self, flag: bool):
        return self.universe.boolean(flag)
