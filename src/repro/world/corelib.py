"""The standard library, written in the guest language itself.

Everything here is deliberately SELF-like: control structures are
user-defined methods over blocks, arithmetic is defined on ``traits
integer`` in terms of the robust ``_Int*`` primitives with failure
blocks that promote to arbitrary precision, and booleans implement
``ifTrue:False:`` as ordinary (per-object) methods.  None of this is
special-cased by the evaluators beyond block invocation — which is what
forces the compiler to *earn* its performance by inlining these methods,
exactly as in the paper.
"""

# -- shared behaviour for every object ---------------------------------------

CLONABLE_SOURCE = """|
  clone       = ( _Clone ).
  print       = ( _Print ).
  printLine   = ( _PrintLine ).
  printString = ( _PrintString ).
  == x  = ( _Eq: x ).
  = x   = ( _Eq: x ).
  != x  = ( (self = x) not ).
  isNil = ( false ).
  value = ( self ).
  value: v = ( self ).
  yourself = ( self ).
|"""

# ``value`` on non-blocks returning self lets code treat plain values and
# thunks uniformly (a SELF idiom the paper's examples rely on).

NIL_SOURCE = """|
  isNil = ( true ).
|"""

# -- booleans ------------------------------------------------------------------

TRUE_SOURCE = """|
  ifTrue: t          = ( t value ).
  ifFalse: f         = ( nil ).
  ifTrue: t False: f = ( t value ).
  ifFalse: f True: t = ( t value ).
  not    = ( false ).
  and: b = ( b value ).
  or: b  = ( true ).
|"""

FALSE_SOURCE = """|
  ifTrue: t          = ( nil ).
  ifFalse: f         = ( f value ).
  ifTrue: t False: f = ( f value ).
  ifFalse: f True: t = ( f value ).
  not    = ( true ).
  and: b = ( false ).
  or: b  = ( b value ).
|"""

# -- integers -------------------------------------------------------------------
#
# Each operator first tries the fast small-integer primitive; the failure
# block retries in arbitrary precision (covering both overflow and BigInt
# operands), which is how SELF integers silently promote.

INTEGER_SOURCE = """|
  + n  = ( _IntAdd: n IfFail: [ | :e | _BigAdd: n ] ).
  - n  = ( _IntSub: n IfFail: [ | :e | _BigSub: n ] ).
  * n  = ( _IntMul: n IfFail: [ | :e | _BigMul: n ] ).
  / n  = ( _IntDiv: n IfFail: [ | :e | _BigDiv: n ] ).
  % n  = ( _IntMod: n IfFail: [ | :e | _BigMod: n ] ).
  < n  = ( _IntLT: n IfFail: [ | :e | _BigLT: n ] ).
  <= n = ( _IntLE: n IfFail: [ | :e | _BigLE: n ] ).
  > n  = ( _IntGT: n IfFail: [ | :e | _BigGT: n ] ).
  >= n = ( _IntGE: n IfFail: [ | :e | _BigGE: n ] ).
  = n  = ( _IntEQ: n IfFail: [ | :e | _BigEQ: n IfFail: [ | :e2 | false ] ] ).
  != n = ( (self = n) not ).

  negate  = ( 0 - self ).
  abs     = ( self < 0 ifTrue: [ negate ] False: [ self ] ).
  min: n  = ( self < n ifTrue: [ self ] False: [ n ] ).
  max: n  = ( self > n ifTrue: [ self ] False: [ n ] ).
  between: lo And: hi = ( (lo <= self) and: [ self <= hi ] ).
  even    = ( (self % 2) = 0 ).
  odd     = ( (self % 2) != 0 ).
  succ    = ( self + 1 ).
  pred    = ( self - 1 ).
  asFloat = ( _IntAsFloat ).
  asInteger = ( self ).
  bitAnd: n = ( _IntAnd: n ).
  bitOr: n  = ( _IntOr: n ).
  bitXor: n = ( _IntXor: n ).
  bitShiftLeft: n  = ( _IntShl: n ).
  bitShiftRight: n = ( _IntShr: n ).

  "User-defined control structures: iteration is built from whileTrue:
   on blocks, which the optimizing compiler inlines into real loops."
  upTo: end Do: blk = ( | i |
    i: self.
    [ i < end ] whileTrue: [ blk value: i. i: i + 1 ].
    self ).
  to: end Do: blk = ( | i |
    i: self.
    [ i <= end ] whileTrue: [ blk value: i. i: i + 1 ].
    self ).
  to: end By: step Do: blk = ( | i |
    i: self.
    [ i <= end ] whileTrue: [ blk value: i. i: i + step ].
    self ).
  downTo: end Do: blk = ( | i |
    i: self.
    [ i >= end ] whileTrue: [ blk value: i. i: i - 1 ].
    self ).
  timesRepeat: blk = ( | i |
    i: 0.
    [ i < self ] whileTrue: [ blk value. i: i + 1 ].
    self ).
|"""

# -- floats ---------------------------------------------------------------------

FLOAT_SOURCE = """|
  + n  = ( _FltAdd: n ).
  - n  = ( _FltSub: n ).
  * n  = ( _FltMul: n ).
  / n  = ( _FltDiv: n ).
  < n  = ( _FltLT: n ).
  <= n = ( _FltLE: n ).
  > n  = ( _FltGT: n ).
  >= n = ( _FltGE: n ).
  = n  = ( _FltEQ: n IfFail: [ | :e | false ] ).
  != n = ( (self = n) not ).
  negate   = ( 0.0 - self ).
  abs      = ( self < 0.0 ifTrue: [ negate ] False: [ self ] ).
  min: n   = ( self < n ifTrue: [ self ] False: [ n ] ).
  max: n   = ( self > n ifTrue: [ self ] False: [ n ] ).
  truncate = ( _FltTruncate ).
  asFloat  = ( self ).
|"""

# -- blocks ----------------------------------------------------------------------
#
# Block invocation (the ``value`` family) is handled by the evaluators;
# here live only the loop protocols.  The primitive fallback re-enters
# the evaluator, so these stay correct even when nothing is inlined.

BLOCK_SOURCE = """|
  whileTrue: body  = ( _BlockWhileTrue: body ).
  whileFalse: body = ( _BlockWhileFalse: body ).
  whileTrue  = ( self whileTrue: [ nil ] ).
  whileFalse = ( self whileFalse: [ nil ] ).
  repeat = ( [ true ] whileTrue: [ self value ]. nil ).
|"""

# -- vectors ----------------------------------------------------------------------

VECTOR_SOURCE = """|
  at: i        = ( _VectorAt: i ).
  at: i Put: v = ( _VectorAt: i Put: v ).
  size         = ( _VectorSize ).
  isEmpty      = ( size = 0 ).
  copySize: n  = ( _NewVector: n Filler: nil ).
  copySize: n FillingWith: v = ( _NewVector: n Filler: v ).
  firstIndex   = ( 0 ).
  lastIndex    = ( size - 1 ).
  first        = ( at: 0 ).
  last         = ( at: size - 1 ).
  atAllPut: v = ( | i |
    i: 0.
    [ i < size ] whileTrue: [ at: i Put: v. i: i + 1 ].
    self ).
  do: blk = ( | i. n |
    i: 0.
    n: size.
    [ i < n ] whileTrue: [ blk value: (at: i). i: i + 1 ].
    self ).
  doIndexes: blk = ( | i. n |
    i: 0.
    n: size.
    [ i < n ] whileTrue: [ blk value: i. i: i + 1 ].
    self ).
  from: s To: e Do: blk = ( | i |
    i: s.
    [ i < e ] whileTrue: [ blk value: (at: i). i: i + 1 ].
    self ).
  copy = ( clone ).

  "higher-order protocol, all built on the user-defined loops"
  collect: blk = ( | out. i. n |
    n: size.
    out: (copySize: n).
    i: 0.
    [ i < n ] whileTrue: [ out at: i Put: (blk value: (at: i)). i: i + 1 ].
    out ).
  select: blk = ( | kept. count. i. n. out |
    n: size.
    kept: (copySize: n).
    count: 0.
    i: 0.
    [ i < n ] whileTrue: [
      (blk value: (at: i)) ifTrue: [
        kept at: count Put: (at: i).
        count: count + 1 ].
      i: i + 1 ].
    out: (copySize: count).
    i: 0.
    [ i < count ] whileTrue: [ out at: i Put: (kept at: i). i: i + 1 ].
    out ).
  inject: start Into: blk = ( | acc. i. n |
    acc: start.
    n: size.
    i: 0.
    [ i < n ] whileTrue: [ acc: (blk value: acc With: (at: i)). i: i + 1 ].
    acc ).
  detect: blk IfNone: noneBlk = ( | i. n |
    n: size.
    i: 0.
    [ i < n ] whileTrue: [
      (blk value: (at: i)) ifTrue: [ ^ at: i ].
      i: i + 1 ].
    noneBlk value ).
  anySatisfy: blk = ( detect: blk IfNone: [ ^ false ]. true ).
  allSatisfy: blk = ( detect: [ | :e | (blk value: e) not ] IfNone: [ ^ true ]. false ).
  includes: x = ( anySatisfy: [ | :e | e = x ] ).
  indexOf: x = ( | i. n |
    n: size.
    i: 0.
    [ i < n ] whileTrue: [
      (at: i) = x ifTrue: [ ^ i ].
      i: i + 1 ].
    -1 ).
  reverse = ( | out. i. n |
    n: size.
    out: (copySize: n).
    i: 0.
    [ i < n ] whileTrue: [ out at: (n - 1 - i) Put: (at: i). i: i + 1 ].
    out ).
  sum = ( inject: 0 Into: [ | :a :e | a + e ] ).
  maxElement = ( inject: (at: 0) Into: [ | :a :e | a max: e ] ).
  minElement = ( inject: (at: 0) Into: [ | :a :e | a min: e ] ).
  sorted = ( | out |
    out: copy.
    out quicksortFrom: 0 To: out size - 1.
    out ).
  quicksortFrom: lo To: hi = ( | i. j. pivot. t |
    lo >= hi ifTrue: [ ^ self ].
    i: lo.
    j: hi.
    pivot: (at: (lo + hi) / 2).
    [ i <= j ] whileTrue: [
      [ (at: i) < pivot ] whileTrue: [ i: i + 1 ].
      [ pivot < (at: j) ] whileTrue: [ j: j - 1 ].
      i <= j ifTrue: [
        t: (at: i).
        at: i Put: (at: j).
        at: j Put: t.
        i: i + 1.
        j: j - 1 ] ].
    lo < j ifTrue: [ quicksortFrom: lo To: j ].
    i < hi ifTrue: [ quicksortFrom: i To: hi ].
    self ).
|"""

# -- strings -----------------------------------------------------------------------

STRING_SOURCE = """|
  size    = ( _StringSize ).
  , other = ( _StringConcat: other ).
  isEmpty = ( size = 0 ).
|"""

#: (attribute on World, source) pairs applied by the bootstrap, in order.
CORELIB_LAYERS = [
    ("traits_clonable", CLONABLE_SOURCE),
    ("nil_object", NIL_SOURCE),
    ("true_object", TRUE_SOURCE),
    ("false_object", FALSE_SOURCE),
    ("traits_integer", INTEGER_SOURCE),
    ("traits_float", FLOAT_SOURCE),
    ("traits_block", BLOCK_SOURCE),
    ("traits_vector", VECTOR_SOURCE),
    ("traits_string", STRING_SOURCE),
]
