"""World construction: universe, lookup, bootstrap, and the core library."""

from .bootstrap import World
from .lookup import lookup_slot
from .universe import Universe

__all__ = ["Universe", "World", "lookup_slot"]
