"""Message lookup through the parent graph.

SELF lookup searches the receiver's own slots, then its parents'
(breadth-first by inheritance depth).  Finding the selector in two
different objects at the same (shallowest) depth is an
:class:`~repro.objects.errors.AmbiguousLookup` error; a match at a
shallower depth shadows deeper ones.

The result of a lookup is a ``(holder, slot)`` pair — ``holder`` is the
object that physically owns the slot, which matters for *data* slots
found in a parent: reading/writing goes to the parent's storage (shared
state), exactly as in SELF.

Results are cached per map, since every object with the same map has the
same (constant) parents.  The caches are invalidated wholesale when the
bootstrap replaces an object's map, by virtue of new maps starting with
empty caches.
"""

from __future__ import annotations

from typing import Optional

from ..objects.errors import AmbiguousLookup
from ..objects.maps import Slot
from ..objects.model import SelfObject
from .universe import Universe

LookupResult = Optional[tuple[object, Slot]]

#: sentinel distinguishing "never looked up" from a cached negative
#: result, so the hot path costs one dict probe instead of two
_MISS = object()


def lookup_slot(universe: Universe, receiver, selector: str) -> LookupResult:
    """Find ``selector`` in ``receiver`` or its parents; None if absent."""
    receiver_map = universe.map_of(receiver)
    cache = receiver_map._lookup_cache
    if receiver_map._cache_epoch != universe.lookup_epoch:
        cache.clear()
        receiver_map._lookup_deps.clear()
        receiver_map._cache_epoch = universe.lookup_epoch
    cached = cache.get(selector, _MISS)
    if cached is not _MISS:
        if cached is None:
            return None
        holder, slot = cached
        # Own data slots belong to the receiver itself, not to the
        # prototype the cache was filled from.
        if holder is _SELF_HOLDER:
            return receiver, slot
        return holder, slot

    result, consulted_ids = _search(universe, receiver, selector)
    receiver_map._lookup_deps[selector] = consulted_ids
    if result is None:
        cache[selector] = None
        return None
    holder, slot = result
    if holder is receiver:
        cache[selector] = (_SELF_HOLDER, slot)
    else:
        cache[selector] = (holder, slot)
    return holder, slot


class _SelfHolderToken:
    """Cache marker: the slot lives in the receiver itself."""

    __repr__ = lambda self: "<self-holder>"  # pragma: no cover


_SELF_HOLDER = _SelfHolderToken()


def _search(
    universe: Universe, receiver, selector: str
) -> tuple[LookupResult, frozenset]:
    """Breadth-first search by inheritance depth with ambiguity detection.

    Cold path only (results are cached per map), so it also registers
    the universe's lookup caches as dependent on every map it consults
    — including maps it *missed* in, since a later slot added there
    would shadow the found one.  Returns the result together with the
    consulted map ids, which the caller records as the lookup's
    invalidation scope (PIC rows retire against it).
    """
    visited: set[int] = set()
    frontier: list[object] = [receiver]
    consulted: list[object] = []
    result: LookupResult = None
    while frontier:
        matches: list[tuple[object, Slot]] = []
        next_frontier: list[object] = []
        for obj in frontier:
            if id(obj) in visited:
                continue
            visited.add(id(obj))
            obj_map = universe.map_of(obj)
            consulted.append(obj_map)
            slot = obj_map.own_slot(selector)
            if slot is not None:
                matches.append((obj, slot))
                continue  # a match shadows this object's parents
            for parent_slot in obj_map.parent_slots():
                parent = _parent_value(obj, parent_slot)
                if parent is not None and id(parent) not in visited:
                    next_frontier.append(parent)
        if matches:
            unique_slots = {id(slot) for _, slot in matches}
            if len(unique_slots) > 1 or len(matches) > 1:
                first = matches[0]
                if any(m[0] is not first[0] for m in matches[1:]):
                    raise AmbiguousLookup(selector)
            result = matches[0]
            break
        frontier = next_frontier
    found = None
    if result is not None:
        found = (universe.map_of(result[0]), result[1])
    universe.deps.note_lookup(consulted, found)
    return result, frozenset(m.map_id for m in consulted)


def cached_lookup_deps(
    universe: Universe, receiver_map, selector: str
) -> Optional[frozenset]:
    """The consulted-map ids of the last lookup of ``selector`` through
    ``receiver_map``, or None when no current-epoch lookup is cached.
    """
    if receiver_map._cache_epoch != universe.lookup_epoch:
        return None
    return receiver_map._lookup_deps.get(selector)


def _parent_value(obj, parent_slot: Slot):
    """The object a parent slot refers to (constant or data parent)."""
    if parent_slot.kind == "constant":
        return parent_slot.value
    if parent_slot.kind == "data" and isinstance(obj, SelfObject):
        return obj.get_data(parent_slot.offset)
    return None
