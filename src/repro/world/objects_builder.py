"""Building guest objects from slot declarations.

Used by the interpreter (object literals in expressions) and by
:meth:`World.add_slots` (extending well-known objects during bootstrap
and benchmark setup).

Semantics follow SELF: constant, parent, and method slot initializers are
evaluated *once* per literal (the map is shared by every evaluation of
the same literal); data slot initializers are re-evaluated for each new
object, so ``(| pos <- 0 |)`` objects don't share state.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..lang.ast_nodes import MethodNode, ObjectLiteralNode, SlotDecl
from ..objects.errors import ReproInternalError
from ..objects.maps import ASSIGNMENT, CONSTANT, DATA, Map, Slot
from ..objects.model import SelfMethod, SelfObject
from .universe import Universe

#: evaluates an initializer expression; receives the slot name being
#: initialized so nested object literals can get named maps
EvalFn = Callable[[object, str], object]


def build_object(
    universe: Universe,
    literal: ObjectLiteralNode,
    eval_expr: EvalFn,
    name: str = "",
) -> SelfObject:
    """Instantiate an object literal node (with per-node map caching)."""
    cache = getattr(universe, "_literal_maps", None)
    if cache is None:
        cache = {}
        universe._literal_maps = cache
    cached = cache.get(literal)
    if cached is None:
        slots, data_inits = compile_slot_decls(
            literal.slots, eval_expr, name=name, first_data_offset=0
        )
        new_map = Map(name or f"objectLiteral@{literal.line}", slots)
        cache[literal] = (new_map, data_inits)
    else:
        new_map, data_inits = cached
    data = [None] * new_map.data_size
    for offset, init in data_inits:
        data[offset] = universe.nil_object if init is None else eval_expr(init, "")
    return SelfObject(new_map, data)


def compile_slot_decls(
    decls,
    eval_expr: EvalFn,
    name: str = "",
    first_data_offset: int = 0,
) -> tuple[list[Slot], list[tuple[int, Optional[object]]]]:
    """Turn :class:`SlotDecl` items into map slots.

    Returns ``(slots, data_inits)`` where ``data_inits`` pairs each data
    slot offset with its (unevaluated) initializer AST, for per-instance
    evaluation by the caller.
    """
    slots: list[Slot] = []
    data_inits: list[tuple[int, Optional[object]]] = []
    offset = first_data_offset
    for decl in decls:
        if decl.kind == "constant":
            slots.append(Slot(decl.name, CONSTANT, value=eval_expr(decl.value, decl.name)))
        elif decl.kind == "parent":
            slots.append(
                Slot(decl.name, CONSTANT, value=eval_expr(decl.value, decl.name),
                     is_parent=True)
            )
        elif decl.kind == "method":
            if not isinstance(decl.value, MethodNode):
                raise ReproInternalError(f"method slot {decl.name!r} has no body")
            method = SelfMethod(decl.name, decl.value, holder_name=name)
            slots.append(Slot(decl.name, CONSTANT, value=method))
        elif decl.kind == "data":
            slots.append(Slot(decl.name, DATA, offset=offset))
            slots.append(Slot(decl.name + ":", ASSIGNMENT, offset=offset))
            data_inits.append((offset, decl.value))
            offset += 1
        else:
            raise ReproInternalError(f"unknown slot kind {decl.kind!r}")
    return slots, data_inits
