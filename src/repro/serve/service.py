"""The multi-tenant service: admission, scheduling, degradation.

One :class:`Service` owns a :class:`~.zygote.Zygote`, a bounded global
admission queue, and a table of :class:`Tenant` records.  Scheduling is
deliberately synchronous and FIFO — requests run in exactly the order
they were admitted — because the tenant-isolation proof
(``repro.tools.serve_stress``) compares a clean tenant's modeled
counters bit-for-bit against a solo run, and any nondeterministic
interleaving would make that comparison meaningless.  Hard isolation
comes from the VM layers (forked universes, scoped faults, scoped
recovery logs), not from the scheduler.

Admission control, in order:

1. **Shed** — a full queue (``max_queue_depth``) rejects the request
   with a typed ``shed`` response instead of queueing or erroring;
   queue depth stays bounded by construction.
2. **Overload** — queue depth crossing ``overload_threshold`` flips
   every tenant runtime into degraded mode
   (:meth:`Runtime.set_degraded`): pessimistic compiles, sharing off,
   translation promotion suppressed.  Hysteresis: overload ends only
   once depth falls to half the threshold, and the runtimes then drop
   their degraded bodies to reoptimize.
3. **Quarantine** — the per-tenant circuit breaker (see
   :mod:`.supervisor`) rejects requests from a tripped tenant with a
   ``quarantined`` response; re-admission discards the tenant's
   universe and forks a fresh one from the zygote (same universe id,
   bumped ``generation``, so metrics keep aggregating per tenant).

Everything lands in one :class:`~repro.obs.metrics.MetricsRegistry`:
the ``serve.*`` family for service-level counters, and per-tenant
:class:`ScopedView` families (``<universe-id>/vm.*`` …) collected from
each runtime on :meth:`Service.metrics_snapshot`.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass
from typing import Optional

from ..obs.metrics import MetricsRegistry, collect_runtime
from ..vm.runtime import Runtime
from .supervisor import (
    CircuitBreaker,
    DEADLINE,
    GUEST_ERROR,
    OK,
    Supervisor,
    SupervisorPolicy,
)
from .zygote import Zygote

#: Response.status values beyond the supervisor outcomes
SHED = "shed"
QUARANTINED = "quarantined"


@dataclass
class ServiceConfig:
    """Admission-control knobs."""

    #: admission queue capacity; requests beyond it are shed
    max_queue_depth: int = 64
    #: queue depth at which overload mode begins (must be < capacity,
    #: or the valve could never open before shedding starts)
    overload_threshold: int = 32

    def __post_init__(self) -> None:
        if self.max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1")
        if not (0 < self.overload_threshold <= self.max_queue_depth):
            raise ValueError(
                "overload_threshold must be in 1..max_queue_depth"
            )


@dataclass(frozen=True)
class Request:
    """One admitted unit of guest work."""

    request_id: int
    tenant_id: str
    source: str


@dataclass
class Response:
    """What the service says about one request."""

    request_id: int
    tenant_id: str
    #: ok | error | deadline | fault | shed | quarantined
    status: str
    #: printed form of the result (ok only)
    value: Optional[str] = None
    #: guest output captured during the request (ok / error)
    output: str = ""
    error_kind: str = ""
    detail: str = ""
    retries: int = 0
    #: which incarnation of the tenant served this (bumps on re-admission)
    generation: int = 0

    def to_record(self) -> dict:
        return {
            "request_id": self.request_id,
            "tenant": self.tenant_id,
            "status": self.status,
            "value": self.value,
            "output": self.output,
            "error_kind": self.error_kind,
            "detail": self.detail,
            "retries": self.retries,
            "generation": self.generation,
        }


@dataclass
class Tenant:
    """One admitted tenant: a forked runtime plus its breaker."""

    tenant_id: str
    runtime: Runtime
    breaker: CircuitBreaker
    #: incremented each time quarantine re-admission replaces the
    #: universe with a fresh fork.  The universe id stays equal to the
    #: tenant id across generations so scoped metrics, fault plans, and
    #: recovery records keep addressing the same tenant.
    generation: int = 0
    requests_served: int = 0

    @property
    def quarantined(self) -> bool:
        return self.breaker.open


class Service:
    """The long-running multi-tenant host."""

    def __init__(
        self,
        zygote: Optional[Zygote] = None,
        policy: Optional[SupervisorPolicy] = None,
        config: Optional[ServiceConfig] = None,
        registry: Optional[MetricsRegistry] = None,
        tenant_setup: tuple = (),
    ) -> None:
        self.zygote = zygote or Zygote()
        self.policy = policy or SupervisorPolicy()
        self.config = config or ServiceConfig()
        self.registry = registry or MetricsRegistry()
        #: slot-declaration sources applied to every tenant fork (the
        #: tenant "image"); applied again on quarantine re-admission so
        #: a re-admitted tenant comes back with its methods intact
        self.tenant_setup = tuple(tenant_setup)
        self.supervisor = Supervisor(self.policy)
        self.tenants: dict[str, Tenant] = {}
        self.queue: deque[Request] = deque()
        self.overloaded = False
        self._request_ids = itertools.count(1)

    # -- tenants ----------------------------------------------------------

    def tenant(self, tenant_id: str) -> Tenant:
        """The tenant record, forked from the zygote on first contact."""
        tenant = self.tenants.get(tenant_id)
        if tenant is None:
            tenant = Tenant(
                tenant_id=tenant_id,
                runtime=self._fork_runtime(tenant_id),
                breaker=CircuitBreaker(
                    self.policy.failure_threshold,
                    self.policy.quarantine_requests,
                ),
            )
            self.tenants[tenant_id] = tenant
            self.registry.counter("serve.tenants").inc()
        return tenant

    def _fork_runtime(self, tenant_id: str) -> Runtime:
        runtime = self.zygote.make_runtime(tenant_id)
        for source in self.tenant_setup:
            runtime.world.add_slots(source)
        self.registry.counter("serve.forks").inc()
        if self.overloaded:
            # Born into overload: start degraded like everyone else.
            runtime.set_degraded(True)
        return runtime

    def _readmit(self, tenant: Tenant) -> None:
        """Replace a quarantined tenant's universe with a fresh fork."""
        old = tenant.runtime
        old.kill_frames()
        old.universe.runtimes.discard(old)
        tenant.runtime = self._fork_runtime(tenant.tenant_id)
        tenant.generation += 1
        self.registry.counter("serve.readmissions").inc()

    # -- admission --------------------------------------------------------

    def submit(self, tenant_id: str, source: str) -> Optional[Response]:
        """Admit one request.

        Returns a ``shed`` response when the queue is full, else None
        (the request is queued; its response comes from :meth:`drain`
        or :meth:`run_once`).
        """
        metrics = self.registry
        metrics.counter("serve.requests").inc()
        request_id = next(self._request_ids)
        if len(self.queue) >= self.config.max_queue_depth:
            metrics.counter("serve.shed").inc()
            return Response(
                request_id=request_id,
                tenant_id=tenant_id,
                status=SHED,
                detail=(
                    f"admission queue full "
                    f"(depth {len(self.queue)})"
                ),
            )
        self.queue.append(Request(request_id, tenant_id, source))
        self._update_overload()
        return None

    def _update_overload(self) -> None:
        depth = len(self.queue)
        metrics = self.registry
        metrics.gauge("serve.queue_depth").set(depth)
        if not self.overloaded and depth >= self.config.overload_threshold:
            self.overloaded = True
            metrics.counter("serve.overload_entered").inc()
            for tenant in self.tenants.values():
                tenant.runtime.set_degraded(True)
        elif self.overloaded and depth <= self.config.overload_threshold // 2:
            self.overloaded = False
            metrics.counter("serve.overload_exited").inc()
            for tenant in self.tenants.values():
                tenant.runtime.set_degraded(False)

    # -- execution --------------------------------------------------------

    def run_once(self) -> Optional[Response]:
        """Serve the oldest queued request (None when idle)."""
        if not self.queue:
            return None
        request = self.queue.popleft()
        self._update_overload()
        return self._process(request)

    def drain(self) -> list[Response]:
        """Serve everything queued, FIFO."""
        responses = []
        while self.queue:
            response = self.run_once()
            if response is not None:
                responses.append(response)
        return responses

    def call(self, tenant_id: str, source: str) -> Response:
        """Submit + serve immediately (the simple synchronous API)."""
        shed = self.submit(tenant_id, source)
        if shed is not None:
            return shed
        response = self.run_once()
        assert response is not None
        return response

    def _process(self, request: Request) -> Response:
        metrics = self.registry
        tenant = self.tenant(request.tenant_id)
        gate = tenant.breaker.admit()
        if gate == CircuitBreaker.REJECT:
            metrics.counter("serve.quarantine_rejections").inc()
            return Response(
                request_id=request.request_id,
                tenant_id=tenant.tenant_id,
                status=QUARANTINED,
                detail=(
                    f"tenant quarantined "
                    f"({tenant.breaker.cooldown} admissions remaining)"
                ),
                generation=tenant.generation,
            )
        if gate == CircuitBreaker.READMIT:
            self._readmit(tenant)
        runtime = tenant.runtime
        outcome = self.supervisor.run(
            runtime, lambda: runtime.run(request.source)
        )
        tenant.requests_served += 1
        if outcome.retries:
            metrics.counter("serve.retries").inc(outcome.retries)
        if outcome.status == OK:
            tenant.breaker.record_success()
            metrics.counter("serve.completed").inc()
            value = runtime.universe.print_string(outcome.value)
        else:
            value = None
            if outcome.status == GUEST_ERROR:
                # The tenant's own bug: a normal response, never a
                # breaker strike (bad guest code can't self-quarantine).
                metrics.counter("serve.guest_errors").inc()
            else:
                metrics.counter(
                    "serve.deadline_exceeded"
                    if outcome.status == DEADLINE
                    else "serve.faults"
                ).inc()
                if tenant.breaker.record_failure():
                    metrics.counter("serve.quarantines").inc()
        return Response(
            request_id=request.request_id,
            tenant_id=tenant.tenant_id,
            status=outcome.status,
            value=value,
            output=runtime.universe.take_output(),
            error_kind=outcome.error_kind,
            detail=outcome.detail,
            retries=outcome.retries,
            generation=tenant.generation,
        )

    # -- observability ----------------------------------------------------

    def metrics_snapshot(self) -> dict:
        """Service counters plus every tenant's scoped runtime metrics.

        Runtime counters are cumulative, so each snapshot collects them
        into a *fresh* registry scoped per universe id — repeated
        snapshots never double-count.  The ``serve.*`` family (owned by
        this service's registry) is merged in as-is.
        """
        per_tenant = MetricsRegistry()
        for tenant in self.tenants.values():
            collect_runtime(
                per_tenant.scoped(tenant.runtime.universe.universe_id),
                tenant.runtime,
            )
        snapshot = self.registry.snapshot()
        snapshot.update(per_tenant.snapshot())
        return snapshot

    def recovery_records(self) -> list[dict]:
        """Every tenant's recovery log, universe-stamped, in tenant order."""
        records = []
        for tenant_id in sorted(self.tenants):
            records.extend(
                self.tenants[tenant_id].runtime.recovery.to_scoped_records()
            )
        return records
