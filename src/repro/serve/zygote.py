"""The zygote: bootstrap once, fork per tenant.

Bootstrapping a :class:`~repro.world.bootstrap.World` interprets the
whole core library (stage 5) — milliseconds of work that is identical
for every tenant.  The zygote pays it exactly once, stays warm and
immutable, and admits each tenant as a memoized graph fork
(:meth:`World.fork`): every map twinned with a fresh identity, every
mutable object cloned, immutables shared.  Fork cost is tracked here
so the service can prove the ≥10x speedup the design claims (the
``serve-fork`` bench kind in ``BENCH_history.jsonl``).

The persistent code cache (``REPRO_CODE_CACHE``) is opened once by the
zygote and handed to tenants behind a
:class:`~repro.compiler.codecache.ReadOnlyCodeCache` facade: loads are
shared fleet-wide (the compile key is structural, so a fork's twin maps
hit entries written against the zygote's maps), while a tenant's
invalidation-driven evicts are swallowed — one tenant mutating its
world must never delete disk entries the others still load through.
"""

from __future__ import annotations

import time
from typing import Optional

from ..compiler.codecache import ReadOnlyCodeCache, cache_from_env
from ..compiler.config import NEW_SELF, CompilerConfig
from ..vm.runtime import Runtime
from ..world.bootstrap import World


class Zygote:
    """One warm world plus the shared code cache; tenants fork from it.

    The zygote's own world is never handed to a tenant and never
    executes guest code after bootstrap, so there is no path by which
    tenant state can leak back into it (the stress harness verifies
    this with the zygote's dependency-registry stats staying zero).
    """

    def __init__(
        self,
        universe_id: str = "zygote",
        world: Optional[World] = None,
    ) -> None:
        started = time.perf_counter()
        self.world = world if world is not None else World(universe_id)
        #: seconds the cold bootstrap took (0.0 when a pre-built world
        #: was injected — the caller timed it, not us)
        self.bootstrap_seconds = (
            time.perf_counter() - started if world is None else 0.0
        )
        #: the writable process-wide cache (None unless REPRO_CODE_CACHE
        #: is set); tenants see it through a read-only facade
        self.shared_cache = cache_from_env()
        self.forks = 0
        self.fork_seconds = 0.0

    def fork(self, universe_id: str) -> World:
        """An isolated twin world for one tenant (timed)."""
        started = time.perf_counter()
        world = self.world.fork(universe_id=universe_id)
        self.fork_seconds += time.perf_counter() - started
        self.forks += 1
        return world

    def make_runtime(
        self,
        universe_id: str,
        config: CompilerConfig = NEW_SELF,
        use_polymorphic_caches: bool = True,
    ) -> Runtime:
        """Fork a world and wrap it in a tenant Runtime.

        The runtime's code cache is replaced with the zygote's shared
        cache behind the read-only facade (or None when no cache is
        configured — never a private writable one, which would defeat
        the fleet-wide amortization the facade exists for).
        """
        world = self.fork(universe_id)
        runtime = Runtime(
            world, config, use_polymorphic_caches=use_polymorphic_caches
        )
        runtime.code_cache = (
            ReadOnlyCodeCache(self.shared_cache)
            if self.shared_cache is not None
            else None
        )
        return runtime

    def stats(self) -> dict:
        return {
            "bootstrap_seconds": self.bootstrap_seconds,
            "forks": self.forks,
            "fork_seconds": self.fork_seconds,
            "mean_fork_seconds": (
                self.fork_seconds / self.forks if self.forks else 0.0
            ),
        }


def measure_fork_speedup(boots: int = 3, forks: int = 10) -> dict:
    """Fork-vs-bootstrap throughput (the ``serve-fork`` bench).

    Bootstraps ``boots`` cold worlds and forks ``forks`` tenants from
    one zygote, comparing the *minimum* of each (minimum is the right
    statistic for a latency floor: noise only ever adds).
    """
    boot_times = []
    for i in range(max(1, boots)):
        started = time.perf_counter()
        World(f"bench-cold-{i}")
        boot_times.append(time.perf_counter() - started)
    zygote = Zygote(universe_id="bench-zygote")
    fork_times = []
    for i in range(max(1, forks)):
        started = time.perf_counter()
        zygote.fork(f"bench-fork-{i}")
        fork_times.append(time.perf_counter() - started)
    bootstrap_s = min(boot_times)
    fork_s = min(fork_times)
    return {
        "bootstrap_seconds": bootstrap_s,
        "fork_seconds": fork_s,
        "fork_speedup": bootstrap_s / fork_s if fork_s > 0 else float("inf"),
        "boots": len(boot_times),
        "forks": len(fork_times),
    }
