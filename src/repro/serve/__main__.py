"""CLI for the multi-tenant service: ``python -m repro.serve``.

Modes:

* ``--demo`` (default when stdin is a TTY) — admit a few tenants, run
  a sample workload through the full supervision stack, print the
  metrics snapshot.
* ``--stdin`` — JSON-lines request loop: each input line is
  ``{"tenant": "...", "source": "..."}``; each output line is the
  response record.  A line ``{"cmd": "metrics"}`` emits the snapshot.
* ``--bench-fork`` — measure zygote-fork vs. cold-bootstrap latency
  (the ``serve-fork`` bench kind), optionally appending to
  ``BENCH_history.jsonl`` and asserting a minimum speedup for CI.
"""

from __future__ import annotations

import argparse
import json
import sys

from .service import Service, ServiceConfig
from .supervisor import SupervisorPolicy
from .zygote import measure_fork_speedup


def _bench_fork(args: argparse.Namespace) -> int:
    payload = measure_fork_speedup(boots=args.boots, forks=args.forks)
    print(
        "serve-fork: bootstrap {:.2f} ms, fork {:.3f} ms, speedup {:.1f}x"
        .format(
            payload["bootstrap_seconds"] * 1e3,
            payload["fork_seconds"] * 1e3,
            payload["fork_speedup"],
        )
    )
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
    if args.history:
        from ..bench.history import append_history, format_delta

        entry, previous = append_history(
            args.history, "serve-fork",
            {
                "fork_speedup": payload["fork_speedup"],
                "fork_seconds": payload["fork_seconds"],
                "bootstrap_seconds": payload["bootstrap_seconds"],
            },
        )
        print(format_delta(entry, previous))
    if (
        args.assert_fork_speedup is not None
        and payload["fork_speedup"] < args.assert_fork_speedup
    ):
        print(
            f"FAIL: fork speedup {payload['fork_speedup']:.1f}x below "
            f"required {args.assert_fork_speedup:.1f}x",
            file=sys.stderr,
        )
        return 1
    return 0


def _make_service(args: argparse.Namespace) -> Service:
    return Service(
        policy=SupervisorPolicy(
            deadline_s=args.deadline_s,
            fuel=args.fuel,
            max_retries=args.max_retries,
        ),
        config=ServiceConfig(
            max_queue_depth=args.max_queue_depth,
            overload_threshold=args.overload_threshold,
        ),
    )


def _demo(args: argparse.Namespace) -> int:
    service = _make_service(args)
    workload = [
        ("alice", "3 + 4"),
        ("bob", "10 * 10 + 1"),
        ("alice", "3 < 4 ifTrue: [ 111 ] False: [ 222 ]"),
        ("bob", "3 zork"),
        ("carol", "1 + 2 + 3 + 4"),
    ]
    for tenant, source in workload:
        response = service.call(tenant, source)
        print(json.dumps(response.to_record(), sort_keys=True))
    print(json.dumps(
        {"metrics": service.metrics_snapshot()}, sort_keys=True
    ))
    return 0


def _serve_stdin(args: argparse.Namespace) -> int:
    service = _make_service(args)
    for line in sys.stdin:
        line = line.strip()
        if not line:
            continue
        try:
            message = json.loads(line)
        except json.JSONDecodeError as error:
            print(json.dumps({"status": "bad-request", "detail": str(error)}))
            continue
        if message.get("cmd") == "metrics":
            print(json.dumps(
                {"metrics": service.metrics_snapshot()}, sort_keys=True
            ))
            continue
        tenant = message.get("tenant", "default")
        source = message.get("source", "")
        response = service.call(tenant, source)
        print(json.dumps(response.to_record(), sort_keys=True))
        sys.stdout.flush()
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Multi-tenant zygote VM service",
    )
    parser.add_argument(
        "--bench-fork", action="store_true",
        help="measure fork-vs-bootstrap latency and exit",
    )
    parser.add_argument(
        "--boots", type=int, default=3,
        help="cold bootstraps to sample (bench-fork)",
    )
    parser.add_argument(
        "--forks", type=int, default=10,
        help="zygote forks to sample (bench-fork)",
    )
    parser.add_argument(
        "--history", default="",
        help="append the bench result to this BENCH_history.jsonl",
    )
    parser.add_argument(
        "--json", default="", help="write the bench payload to this file"
    )
    parser.add_argument(
        "--assert-fork-speedup", type=float, default=None,
        help="exit nonzero unless fork speedup meets this bound",
    )
    parser.add_argument(
        "--demo", action="store_true", help="run the demo workload"
    )
    parser.add_argument(
        "--stdin", action="store_true",
        help="serve JSON-lines requests from stdin",
    )
    parser.add_argument("--deadline-s", type=float, default=None)
    parser.add_argument("--fuel", type=int, default=None)
    parser.add_argument("--max-retries", type=int, default=2)
    parser.add_argument("--max-queue-depth", type=int, default=64)
    parser.add_argument("--overload-threshold", type=int, default=32)
    args = parser.parse_args(argv)

    if args.bench_fork:
        return _bench_fork(args)
    if args.stdin:
        return _serve_stdin(args)
    return _demo(args)


if __name__ == "__main__":
    sys.exit(main())
