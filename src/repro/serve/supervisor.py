"""Per-request supervision: deadlines, fuel, retries, circuit breaking.

The supervisor generalizes the PR 2 compile watchdog from "one compile
may not run away" to "one *request* may not run away": every request
executes under an :class:`~repro.robustness.tiers.ExecutionBudget`
(wall-clock deadline + modeled-cycle fuel) checked by the dispatch loop
at frame-switch granularity.  A blown budget raises
:class:`~repro.objects.errors.DeadlineExceeded`, which propagates out
of the loop *without* unwinding the frame stack — the supervisor calls
:meth:`Runtime.kill_frames` so the tenant runtime is reusable for the
next request (and any closure that captured a killed activation gets
``NonLocalReturnFromDeadActivation``, not a wild resume).

Failure taxonomy, coarsest cut first:

* **guest errors** (:class:`~repro.objects.errors.SelfError`) — the
  tenant's own bug (doesNotUnderstand, primitive failure…).  Returned
  as an ``error`` outcome; never retried, never counted against the
  circuit breaker — a tenant cannot quarantine itself by writing bad
  guest code.
* **deadlines** (:class:`DeadlineExceeded`) — deterministic given the
  fuel bound, so retrying is pointless; returned as ``deadline`` and
  counted as a failure (a tenant that *keeps* blowing its budget is
  quarantined).
* **internal faults** (:class:`~repro.objects.errors.ReproInternalError`,
  notably :class:`InjectedFault` escaping a containment seam) —
  presumed transient: retried up to ``max_retries`` times with
  exponential backoff (a transient nth-hit fault does not re-fire, so
  the retry normally succeeds).  Exhausted retries return ``fault`` and
  count against the breaker.

The :class:`CircuitBreaker` trips after ``failure_threshold``
*consecutive* failures; a tripped tenant's requests are rejected for
the next ``quarantine_requests`` admission attempts (a deterministic
countdown — no wall clock, so the stress harness can replay it), after
which the service re-admits the tenant on a **fresh zygote fork**,
discarding whatever state the faults may have corrupted.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional

from ..objects.errors import (
    DeadlineExceeded,
    ReproInternalError,
    SelfError,
)
from ..robustness import faults
from ..robustness.tiers import ExecutionBudget

#: Outcome.status values
OK = "ok"
GUEST_ERROR = "error"
DEADLINE = "deadline"
FAULT = "fault"


@dataclass
class SupervisorPolicy:
    """Knobs for one service's supervision (shared by all tenants)."""

    #: per-request wall-clock deadline in seconds (None = unbounded)
    deadline_s: Optional[float] = None
    #: per-request modeled-cycle fuel (None = unbounded).  Fuel is the
    #: deterministic budget: the same request blows it at the same
    #: cycle on every run, which the isolation proof relies on.
    fuel: Optional[int] = None
    #: additional attempts after a transient internal fault
    max_retries: int = 2
    #: backoff base in seconds (attempt n sleeps base * 2**n); the
    #: default 0.0 keeps tests and the stress harness instant
    backoff_base_s: float = 0.0
    #: consecutive failures before the breaker trips
    failure_threshold: int = 3
    #: admission attempts a quarantined tenant sits out before being
    #: re-admitted on a fresh fork
    quarantine_requests: int = 2


@dataclass
class Outcome:
    """What supervised execution of one request produced."""

    status: str
    value: object = None
    error_kind: str = ""
    detail: str = ""
    retries: int = 0
    killed_frames: int = 0


class CircuitBreaker:
    """Consecutive-failure breaker for one tenant.

    Deliberately clockless: quarantine is measured in *admission
    attempts*, not seconds, so breaker behavior is bit-reproducible
    under the chaos seed matrix.
    """

    __slots__ = (
        "failure_threshold", "quarantine_requests",
        "consecutive_failures", "open", "cooldown", "trips",
    )

    def __init__(
        self, failure_threshold: int, quarantine_requests: int
    ) -> None:
        self.failure_threshold = max(1, failure_threshold)
        self.quarantine_requests = max(1, quarantine_requests)
        self.consecutive_failures = 0
        self.open = False
        self.cooldown = 0
        self.trips = 0

    ADMIT = "admit"
    REJECT = "reject"
    READMIT = "readmit"

    def admit(self) -> str:
        """Gate one admission attempt.

        ``admit`` — closed, run normally; ``reject`` — quarantined,
        shed this request; ``readmit`` — quarantine served, the caller
        must rebuild the tenant on a fresh fork and then run.
        """
        if not self.open:
            return self.ADMIT
        if self.cooldown > 0:
            self.cooldown -= 1
            return self.REJECT
        self.open = False
        return self.READMIT

    def record_success(self) -> None:
        self.consecutive_failures = 0

    def record_failure(self) -> bool:
        """Count one failure; returns True when this one trips the
        breaker (the tenant enters quarantine)."""
        self.consecutive_failures += 1
        if self.consecutive_failures < self.failure_threshold:
            return False
        self.open = True
        self.cooldown = self.quarantine_requests
        self.trips += 1
        self.consecutive_failures = 0
        return True


class Supervisor:
    """Runs request thunks against tenant runtimes under the policy."""

    __slots__ = ("policy",)

    def __init__(self, policy: Optional[SupervisorPolicy] = None) -> None:
        self.policy = policy or SupervisorPolicy()

    def _budget(self, runtime) -> Optional[ExecutionBudget]:
        policy = self.policy
        if policy.deadline_s is None and policy.fuel is None:
            return None
        # Fuel is an absolute ceiling on runtime.cycles (the loop ticks
        # with the running total), so arm it relative to where the
        # tenant's counter stands now.
        fuel = (
            runtime.cycles + policy.fuel if policy.fuel is not None else None
        )
        return ExecutionBudget(seconds=policy.deadline_s, fuel=fuel)

    def run(self, runtime, thunk: Callable[[], object]) -> Outcome:
        """Execute ``thunk`` (which drives ``runtime``) supervised.

        Every fault-site hit inside the thunk is attributed to the
        tenant's universe (:func:`faults.scoped_to`), so scoped fault
        plans aimed at one tenant can never fire from — or have their
        nth-hit position consumed by — another tenant's traffic.
        """
        policy = self.policy
        retries = 0
        while True:
            runtime.execution_budget = self._budget(runtime)
            try:
                with faults.scoped_to(runtime.universe.universe_id):
                    value = thunk()
            except DeadlineExceeded as error:
                killed = runtime.kill_frames()
                return Outcome(
                    DEADLINE,
                    error_kind=type(error).__name__,
                    detail=str(error),
                    retries=retries,
                    killed_frames=killed,
                )
            except (ReproInternalError, RecursionError) as error:
                # RecursionError: guest recursion on the interpreter
                # tier nests host frames; if it outruns the fuel toll
                # it is still an internal fault, not a crash.
                killed = runtime.kill_frames()
                if retries < policy.max_retries:
                    if policy.backoff_base_s > 0:
                        time.sleep(policy.backoff_base_s * (2 ** retries))
                    retries += 1
                    continue
                return Outcome(
                    FAULT,
                    error_kind=type(error).__name__,
                    detail=str(error),
                    retries=retries,
                    killed_frames=killed,
                )
            except SelfError as error:
                killed = runtime.kill_frames()
                return Outcome(
                    GUEST_ERROR,
                    error_kind=type(error).__name__,
                    detail=str(error),
                    retries=retries,
                    killed_frames=killed,
                )
            else:
                return Outcome(OK, value=value, retries=retries)
            finally:
                runtime.execution_budget = None
