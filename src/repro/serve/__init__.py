"""Multi-tenant serving: one warm zygote world, many isolated tenants.

``python -m repro.serve`` hosts a long-running VM service.  The design
stacks three robustness layers on top of the execution ladder:

* **Zygote fork** (:mod:`.zygote`) — one world is bootstrapped warm,
  then every tenant is admitted as a cheap memoized fork
  (:meth:`repro.world.bootstrap.World.fork`) instead of a cold
  bootstrap.  The persistent code cache is shared read-only across
  tenants (:class:`repro.compiler.codecache.ReadOnlyCodeCache`), and
  every map in a fork has a fresh identity, so per-tenant invalidation
  (:mod:`repro.world.deps`) retires only the mutating tenant's code.
* **Supervision** (:mod:`.supervisor`) — each request runs under an
  :class:`repro.robustness.tiers.ExecutionBudget` (wall-clock deadline
  + modeled-cycle fuel), with retry-with-backoff for transient injected
  faults and a per-tenant circuit breaker that quarantines a tenant
  after repeated internal failures.  Re-admission after quarantine
  discards the suspect universe and forks a fresh one from the zygote.
* **Graceful degradation** (:mod:`.service`) — admission is a bounded
  queue that sheds load with a typed response instead of erroring, and
  sustained depth flips every tenant runtime into overload mode
  (:meth:`repro.vm.runtime.Runtime.set_degraded`): pessimistic
  compiles, no sharing, no translation promotion — strictly less
  compile work per request until the queue drains.

Everything is observable through a ``serve.*`` metrics family plus
per-tenant :class:`repro.obs.metrics.ScopedView` counters, and every
tenant's :class:`repro.robustness.recovery.RecoveryLog` is scoped to
its universe id.  The isolation proof lives in
``repro.tools.serve_stress``: a clean tenant co-scheduled with a
fault-injected one produces bit-identical results and modeled counters
to a solo run.
"""

from .service import Request, Response, Service, ServiceConfig, Tenant
from .supervisor import CircuitBreaker, Outcome, Supervisor, SupervisorPolicy
from .zygote import Zygote, measure_fork_speedup

__all__ = [
    "CircuitBreaker",
    "Outcome",
    "Request",
    "Response",
    "Service",
    "ServiceConfig",
    "Supervisor",
    "SupervisorPolicy",
    "Tenant",
    "Zygote",
    "measure_fork_speedup",
]
