"""Seeded, weighted random SELF-program generator.

A generated :class:`Program` is a pair of artifacts the differential
oracle can feed to any evaluator:

* a **setup** slot list (``setup_source``) declaring a handful of
  prototype objects (data slots, methods, a ``parent*`` link to
  ``traits clonable`` so method bodies can reach the lobby) plus a few
  lobby-level recursive/NLR method templates;
* a sequence of **probe do-its** (``probe_sources``), each a one-line
  program whose printed answer the oracle compares across systems.

The grammar is weighted: a :class:`Profile` assigns an integer weight
to every probe kind (arithmetic, floats, strings, vectors, blocks,
non-local returns, user control structures, method calls, recursion,
world mutation, reclassification, primitive-failure blocks, bigint
promotion), so a workload can be tuned from "arithmetic-heavy" to
"mutation-heavy" without touching the generator.  A **size budget**
bounds the number of probes and the statement count per probe.

Safety invariants the grammar maintains by construction — these are
what make "zero divergences expected" a meaningful oracle:

* **termination** — every loop has literal bounds (≤ ``max_loop``,
  nesting ≤ 2) and every recursive template structurally decreases to
  a literal base case, so generated programs cannot hang the VM (the
  compile watchdog separately guards compile-time hangs);
* **bounded integers** — the generator tracks a conservative magnitude
  for every integer expression and inserts ``% 9973`` reductions before
  a product can exceed ``2^27``, so arithmetic stays inside the
  small-integer range unless the ``bigint`` probe kind deliberately
  overflows (which marks the program dynamic-only);
* **mutation at activation boundaries** — world-mutation primitives
  (``_SetSlot:``/``_AddSlot:``/``_RemoveSlot:``/``_AddParentSlot:``/
  ``_Reclassify:``) appear only as standalone mutation probes that send
  no messages to an already-mutated object, because optimized code on
  the live frame legitimately keeps running until the next activation
  boundary (INTERNALS.md §11) — a read in the same do-it is *allowed*
  to see the old world, so comparing it against the interpreter would
  report false divergences;
* **static-safety tracking** — probe kinds whose semantics the
  trusting static config is documented not to preserve (primitive
  failure on ill-typed operands, bigint promotion, type-changing slot
  mutation; see DESIGN.md's substitution table) set a dynamic-only
  feature flag, and the oracle excludes the ``static`` config for such
  programs exactly as ``tests/integration/test_differential.py`` does.

Determinism: every draw comes from one ``random.Random(seed)``; the
same ``(seed, profile, size)`` triple always yields byte-identical
sources.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence

#: integer expressions are kept below this magnitude (smallint max is
#: 2^30 - 1; the slack absorbs additive growth in loop accumulators)
MAG_LIMIT = 1 << 27
#: the modulus used to re-bound a product that could overflow
MOD = 9973

#: features that exclude the trusting ``static`` config from a
#: program's oracle matrix (guest-visible dynamic-typing semantics);
#: reclassification is here because it nil-pads the target's data
#: vector, so later assignable-slot reads can feed ill-typed values to
#: primitives — exactly the substitution the static config elides
#: "float" is dynamic-only because the static config trusts integer
#: type predictions on comparison/arith selectors: a float flowing into
#: a deep composition the analyzer cannot prove float-typed is exactly
#: the ill-typed-operand UB the substitution table carves out (simple
#: literal float snippets survive, but the fuzzer generates compositions)
DYNAMIC_ONLY_FEATURES = frozenset(
    {"prim-fail", "bigint", "type-change", "reclassify", "float"}
)


# ---------------------------------------------------------------------------
# Expression trees
# ---------------------------------------------------------------------------


class Expr:
    """One generated expression: interleaved text parts and children.

    ``parts`` has exactly ``len(children) + 1`` strings; rendering
    alternates them.  Composite expressions are built fully
    parenthesized so rendering never depends on precedence.  ``mag`` is
    a conservative bound on the absolute value of integer-sorted
    expressions (0 for other sorts).
    """

    __slots__ = ("sort", "parts", "children", "mag", "feature")

    def __init__(
        self,
        sort: str,
        parts: Sequence[str],
        children: Sequence["Expr"] = (),
        mag: int = 0,
        feature: Optional[str] = None,
    ) -> None:
        assert len(parts) == len(children) + 1, (parts, children)
        self.sort = sort
        self.parts = tuple(parts)
        self.children = tuple(children)
        self.mag = mag
        self.feature = feature

    def render(self) -> str:
        out = [self.parts[0]]
        for child, part in zip(self.children, self.parts[1:]):
            out.append(child.render())
            out.append(part)
        return "".join(out)

    def literal_fallback(self) -> Optional["Expr"]:
        """The simplest same-sort stand-in (None when there isn't one)."""
        return _SORT_FALLBACKS.get(self.sort)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Expr({self.sort}, {self.render()!r})"


def lit(sort: str, text: str, mag: int = 0) -> Expr:
    return Expr(sort, (text,), (), mag)


def int_lit(value: int) -> Expr:
    if value < 0:
        return Expr("int", (f"(0 - {-value})",), (), abs(value))
    return lit("int", str(value), value)


_SORT_FALLBACKS = {
    "int": int_lit(1),
    "float": lit("float", "1.0"),
    "bool": lit("bool", "true"),
    "str": lit("str", "'s'"),
    "nil": lit("nil", "nil"),
}


def wrap(sort: str, before: str, child: Expr, after: str,
         mag: int = 0, feature: Optional[str] = None) -> Expr:
    return Expr(sort, (before, after), (child,), mag, feature)


def binop(sort: str, left: Expr, op: str, right: Expr, mag: int) -> Expr:
    return Expr(sort, ("(", f" {op} ", ")"), (left, right), mag)


def keyword(sort: str, recv_text: str, parts: Sequence[str],
            args: Sequence[Expr], mag: int = 0,
            feature: Optional[str] = None) -> Expr:
    """``(recv sel: a1 Sel2: a2)`` with rendered receiver text."""
    assert len(parts) == len(args)
    pieces = [f"({recv_text} {parts[0]} "]
    for part in parts[1:]:
        pieces.append(f" {part} ")
    pieces.append(")")
    return Expr(sort, pieces, args, mag, feature)


# ---------------------------------------------------------------------------
# Probes and setup objects
# ---------------------------------------------------------------------------


class Probe:
    """One probe do-it: local declarations, statements, a result."""

    __slots__ = ("locals", "stmts", "result", "features", "kind")

    def __init__(
        self,
        kind: str,
        locals_: Sequence[tuple] = (),
        stmts: Sequence[Expr] = (),
        result: Optional[Expr] = None,
        features: Sequence[str] = (),
    ) -> None:
        self.kind = kind
        self.locals = list(locals_)  # (name, init-literal-text or None)
        self.stmts = list(stmts)
        self.result = result if result is not None else int_lit(1)
        self.features = set(features)

    def render(self) -> str:
        pieces = []
        if self.locals:
            decls = ". ".join(
                f"{name} <- {init}" if init is not None else name
                for name, init in self.locals
            )
            pieces.append(f"| {decls} | ")
        body = [s.render() for s in self.stmts] + [self.result.render()]
        pieces.append(". ".join(body))
        return "".join(pieces)

    def replace(self, stmts=None, result=None) -> "Probe":
        clone = Probe(self.kind, self.locals, self.stmts, self.result,
                      self.features)
        if stmts is not None:
            clone.stmts = list(stmts)
        if result is not None:
            clone.result = result
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Probe({self.kind}, {self.render()!r})"


@dataclass
class SlotSpec:
    """One slot of a setup object (or of the lobby)."""

    name: str  # "w" for data, "mSel0: a With: b" for methods
    source: str  # full declaration body, e.g. "3" or "( w * a )"
    kind: str  # "const" | "assignable" | "method" | "parent"
    sort: str = "int"
    mag: int = 0

    def render(self) -> str:
        if self.kind == "assignable":
            return f"{self.name} <- {self.source}"
        if self.kind == "parent":
            return f"{self.name}* = {self.source}"
        if self.kind == "method":
            return f"{self.name} = ( {self.source} )"
        return f"{self.name} = {self.source}"


@dataclass
class ObjectSpec:
    """One named prototype object installed on the lobby."""

    name: str
    slots: list = field(default_factory=list)

    def render(self) -> str:
        inner = ". ".join(slot.render() for slot in self.slots)
        return f"{self.name} = (| {inner} |)."


@dataclass
class Program:
    """A generated program: setup objects + lobby methods + probes."""

    seed: int
    profile: str
    size: int
    objects: list = field(default_factory=list)
    lobby_methods: list = field(default_factory=list)  # SlotSpec
    probes: list = field(default_factory=list)

    @property
    def features(self) -> set:
        out = set()
        for probe in self.probes:
            out |= probe.features
        return out

    @property
    def static_safe(self) -> bool:
        return not (self.features & DYNAMIC_ONLY_FEATURES)

    @property
    def setup_source(self) -> str:
        lines = ["|"]
        for obj in self.objects:
            lines.append(f"  {obj.render()}")
        for method in self.lobby_methods:
            lines.append(f"  {method.render()}.")
        lines.append("|")
        return "\n".join(lines)

    @property
    def probe_sources(self) -> list:
        return [probe.render() for probe in self.probes]

    @property
    def pid(self) -> str:
        digest = hashlib.sha256(
            "\0".join([self.setup_source] + self.probe_sources).encode()
        )
        return digest.hexdigest()[:12]

    def replace(self, probes=None, objects=None, lobby_methods=None) -> "Program":
        return Program(
            seed=self.seed,
            profile=self.profile,
            size=self.size,
            objects=list(self.objects if objects is None else objects),
            lobby_methods=list(
                self.lobby_methods if lobby_methods is None else lobby_methods
            ),
            probes=list(self.probes if probes is None else probes),
        )


# ---------------------------------------------------------------------------
# Grammar-weight profiles
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Profile:
    """Integer weights per probe kind plus structural knobs."""

    name: str
    weights: dict
    expr_depth: int = 3
    max_loop: int = 10
    max_vector: int = 6

    def weighted_kinds(self) -> tuple:
        kinds = tuple(k for k, w in self.weights.items() if w > 0)
        weights = tuple(self.weights[k] for k in kinds)
        return kinds, weights


PROFILES = {
    "mixed": Profile(
        name="mixed",
        weights={
            "arith": 10, "float": 5, "string": 4, "bool": 5, "vector": 8,
            "control": 9, "block": 7, "nlr": 6, "method": 9, "recursion": 4,
            "mutation": 7, "reclassify": 2, "merge": 4,
            "prim-fail": 2, "bigint": 2,
        },
    ),
    "arith": Profile(
        name="arith",
        weights={
            "arith": 14, "bool": 5, "control": 10, "merge": 3,
            "block": 4, "method": 5, "recursion": 3, "vector": 4,
            "string": 2, "nlr": 2,
            # no mutation, no dynamic-only kinds (floats included):
            # every program is static-safe, so the static config joins
            # its matrix
            "float": 0, "mutation": 0, "reclassify": 0,
            "prim-fail": 0, "bigint": 0,
        },
    ),
    "mutation": Profile(
        name="mutation",
        weights={
            "mutation": 14, "reclassify": 4, "method": 10, "arith": 5,
            "vector": 4, "control": 4, "block": 3, "nlr": 3, "merge": 2,
            "float": 2, "string": 2, "recursion": 2,
            "prim-fail": 1, "bigint": 1,
        },
    ),
    "control": Profile(
        name="control",
        weights={
            "control": 14, "block": 9, "nlr": 8, "recursion": 6,
            "arith": 6, "bool": 4, "vector": 5, "method": 6, "merge": 4,
            "float": 2, "string": 2,
            "mutation": 0, "reclassify": 0, "prim-fail": 0, "bigint": 0,
        },
    ),
    "poly": Profile(
        name="poly",
        weights={
            # N receiver classes sharing one selector: the "poly" kind
            # drives a single vector-indexed send site across every
            # setup object's map, walking the dispatch ladder (mono ->
            # PIC -> megamorphic table under REPRO_PIC=1); a light
            # mutation weight mixes in map transitions so ladder flushes
            # get exercised too
            "poly": 14, "method": 6, "vector": 4, "control": 4,
            "arith": 4, "block": 2, "merge": 2, "bool": 2,
            "recursion": 1, "string": 1, "nlr": 1, "mutation": 2,
            "float": 0, "reclassify": 0, "prim-fail": 0, "bigint": 0,
        },
    ),
}


# ---------------------------------------------------------------------------
# Object / world model (what the generator believes the world looks like)
# ---------------------------------------------------------------------------


@dataclass
class _Slot:
    kind: str  # "const" | "assignable" | "method" | "parent"
    sort: str = "int"
    mag: int = 0
    arity: int = 0
    removable: bool = False  # only generator-added slots may be removed


class _ObjModel:
    """The generator's view of one setup object's current slots."""

    __slots__ = ("name", "slots")

    def __init__(self, name: str) -> None:
        self.name = name
        self.slots: dict = {}

    def data_slots(self, sort: Optional[str] = None) -> list:
        return [
            (n, s) for n, s in sorted(self.slots.items())
            if s.kind in ("const", "assignable")
            and (sort is None or s.sort == sort)
        ]

    def methods(self) -> list:
        return [
            (n, s) for n, s in sorted(self.slots.items())
            if s.kind == "method"
        ]

    def clone_model(self, name: str) -> "_ObjModel":
        twin = _ObjModel(name)
        twin.slots = {k: v for k, v in self.slots.items()}
        return twin


# ---------------------------------------------------------------------------
# Mutation palette (shared with tools/mutation_stress.py)
# ---------------------------------------------------------------------------


class MutationPalette:
    """A deterministic stream of world-mutation statements.

    Works over a set of :class:`_ObjModel` views and keeps them in sync
    with every statement it emits, so later draws only reference slots
    that actually exist.  ``repro.tools.mutation_stress`` drives this
    directly; the random generator draws from it for mutation probes.
    """

    def __init__(self, models: Sequence[_ObjModel], rng: random.Random) -> None:
        self.models = list(models)
        self.rng = rng
        self._fresh = 0

    def _pick(self) -> _ObjModel:
        return self.models[self.rng.randrange(len(self.models))]

    def _fresh_name(self, stem: str) -> str:
        self._fresh += 1
        return f"{stem}{self._fresh}"

    def draw(self, allow_type_change: bool = False) -> tuple:
        """One mutation statement: ``(source, feature-or-None)``.

        The statement sends no message to the object it mutates beyond
        the mutation primitive itself, so it is safe to run on a frame
        compiled against the pre-mutation world (INTERNALS.md §11).
        """
        rng = self.rng
        obj = self._pick()
        roll = rng.randrange(8)
        if roll == 0:
            # rewrite a constant slot (type-preserving unless asked)
            consts = [(n, s) for n, s in obj.data_slots("int")
                      if s.kind == "const"]
            if consts:
                name, slot = consts[rng.randrange(len(consts))]
                if allow_type_change and rng.randrange(4) == 0:
                    slot.sort = "str"
                    slot.mag = 0
                    return (f"{obj.name} _SetSlot: '{name}' Value: 'mut'",
                            "type-change")
                value = rng.randrange(1, 50)
                slot.mag = value
                return (f"{obj.name} _SetSlot: '{name}' Value: {value}", None)
        if roll == 1:
            # graft a parent slot pointing at another object
            others = [m for m in self.models if m is not obj]
            grafts = [n for n, s in obj.slots.items() if s.kind == "parent"
                      and s.removable]
            if others and not grafts:
                donor = others[rng.randrange(len(others))]
                name = self._fresh_name("px")
                obj.slots[name] = _Slot("parent", sort="obj", removable=True)
                return (
                    f"{obj.name} _AddParentSlot: '{name}' Value: {donor.name}",
                    None,
                )
        if roll == 2:
            # drop a generator-added slot (never a seed slot)
            added = [n for n, s in sorted(obj.slots.items()) if s.removable]
            if added:
                name = added[rng.randrange(len(added))]
                del obj.slots[name]
                return (f"{obj.name} _RemoveSlot: '{name}'", None)
        if roll == 3:
            value = rng.randrange(100)
            name = self._fresh_name("dd")
            obj.slots[name] = _Slot("assignable", "int", value, removable=True)
            return (f"{obj.name} _AddDataSlot: '{name}' Value: {value}", None)
        # default: add a fresh constant slot
        value = rng.randrange(100)
        name = self._fresh_name("tag")
        obj.slots[name] = _Slot("const", "int", value, removable=True)
        return (f"{obj.name} _AddSlot: '{name}' Value: {value}", None)

    def stream(self) -> Iterator[str]:
        """An endless statement stream (mutation_stress's driver)."""
        while True:
            yield self.draw()[0]


# ---------------------------------------------------------------------------
# The generator
# ---------------------------------------------------------------------------


class _Gen:
    def __init__(self, seed: int, profile: Profile, size: int) -> None:
        self.rng = random.Random(seed)
        self.profile = profile
        self.size = max(2, size)
        #: profiles with zero float weight stay float-free everywhere
        #: (floats are dynamic-only: the static config trusts integer
        #: type predictions), so their programs can be static-safe
        self.allow_float = profile.weights.get("float", 0) > 0
        self.models: list = []
        self.lobby: dict = {}  # selector -> _Slot (lobby methods)
        self.objects: list = []
        self.lobby_methods: list = []
        self.palette: Optional[MutationPalette] = None
        #: probe-local environment, reset per probe:
        #: name -> (sort, mag) for locals; vectors map name -> length
        self.locals: dict = {}
        self.vectors: dict = {}
        self.loop_vars: list = []
        #: features accumulated while generating the current probe's
        #: expressions (e.g. "float" from any float subexpression)
        self.feat: set = set()

    # -- setup generation ---------------------------------------------------

    def build_setup(self) -> None:
        count = 2 + (self.size // 8)
        cap = 4
        if self.profile.weights.get("poly", 0) > 0:
            # the dispatch ladder only overflows into the megamorphic
            # table when the fan-out beats the PIC depth, so the poly
            # profile builds more receiver prototypes
            count += 4
            cap = 8
        for index in range(min(count, cap)):
            self._build_object(f"ob{chr(ord('a') + index)}")
        if self.profile.weights.get("poly", 0) > 0:
            self._add_shared_selector()
        self._build_lobby_methods()
        self.palette = MutationPalette(self.models, self.rng)

    def _add_shared_selector(self) -> None:
        """Give every setup object the same unary selector with a
        per-object body, so one send site can fan out across all of
        their maps."""
        rng = self.rng
        for spec, model in zip(self.objects, self.models):
            data = model.data_slots("int")
            if data and rng.randrange(2) == 0:
                name, slot = data[rng.randrange(len(data))]
                bump = rng.randrange(1, 40)
                body = f"({name} + {bump})"
                mag = slot.mag + bump
            else:
                mag = rng.randrange(1, 40)
                body = str(mag)
            spec.slots.append(SlotSpec("fzTag", body, "method", "int", mag))
            model.slots["fzTag"] = _Slot("method", "int", mag)

    def _build_object(self, name: str) -> None:
        rng = self.rng
        model = _ObjModel(name)
        slots = [SlotSpec("parent", "traits clonable", "parent")]
        data_names = []
        for dslot in range(rng.randrange(2, 4)):
            sname = f"{'whkqz'[dslot]}{name[-1]}"
            value = rng.randrange(1, 40)
            kind = "assignable" if rng.randrange(3) == 0 else "const"
            slots.append(SlotSpec(sname, str(value), kind, "int", value))
            model.slots[sname] = _Slot(kind, "int", value)
            data_names.append(sname)
        for mslot in range(rng.randrange(1, 3)):
            sel, spec, slot = self._build_method(name, mslot, data_names, model)
            slots.append(spec)
            model.slots[sel] = slot
        self.objects.append(ObjectSpec(name, slots))
        self.models.append(model)

    def _build_method(self, obj_name: str, index: int,
                      data_names: list, model: _ObjModel):
        """One method slot over the object's own data slots."""
        rng = self.rng
        arity = rng.randrange(3)
        params = ["a", "b"][:arity]
        # the body may reference own data slots and the params; callers
        # pass arbitrary bounded expressions, so params carry the worst
        # case magnitude (forces % reductions on any product over them)
        env = {p: ("int", MAG_LIMIT) for p in params}
        for dname in data_names:
            env[dname] = ("int", model.slots[dname].mag)
        shape = rng.randrange(4)
        suffix = f"{obj_name[-1]}{index}"
        if shape == 0 and arity >= 1:
            # guard + early (non-local) return
            limit = rng.randrange(5, 25)
            body = (f"a < {limit} ifTrue: [ ^ {limit} ]. "
                    f"{self._method_expr(env)}")
            sel = f"mg{suffix}: a"
            return f"mg{suffix}:", SlotSpec(sel, body, "method", "int", 0), \
                _Slot("method", "int", MAG_LIMIT, arity=1)
        if shape == 1:
            # bounded loop accumulation (modular: the accumulator must
            # not creep toward smallint max over the iterations)
            top = rng.randrange(3, self.profile.max_loop + 1)
            loop_env = {k: v for k, v in env.items() if k != "b"}
            body = (f"| s <- 0 | 1 to: {top} Do: [ | :i | "
                    f"s: ((s + {self._method_expr(loop_env, extra={'i': ('int', top)})})"
                    f" % {MOD}) ]. s")
            sel = f"ml{suffix}" + (": a" if arity >= 1 else "")
            return sel.split(":")[0] + (":" if arity >= 1 else ""), \
                SlotSpec(sel, body, "method", "int", 0), \
                _Slot("method", "int", MAG_LIMIT, arity=1 if arity >= 1 else 0)
        if shape == 2 and arity == 2:
            sel = f"mp{suffix}: a With: b"
            body = self._method_expr(env)
            return f"mp{suffix}:With:", SlotSpec(sel, body, "method", "int", 0), \
                _Slot("method", "int", MAG_LIMIT, arity=2)
        # plain expression over the data slots
        sel = f"me{suffix}" + (": a" if arity >= 1 else "")
        body = self._method_expr(env)
        return sel.split(":")[0] + (":" if arity >= 1 else ""), \
            SlotSpec(sel, body, "method", "int", 0), \
            _Slot("method", "int", MAG_LIMIT, arity=1 if arity >= 1 else 0)

    def _method_expr(self, env: dict, extra: Optional[dict] = None) -> str:
        """A small fully-parenthesized int expression over ``env``."""
        rng = self.rng
        names = sorted(env) + sorted(extra or {})
        pool = {**env, **(extra or {})}

        def term():
            if names and rng.randrange(3) != 0:
                return names[rng.randrange(len(names))]
            return str(rng.randrange(1, 20))

        a, b = term(), term()
        op = rng.choice(["+", "-", "*", "max:", "min:", "bitAnd:"])
        expr = f"({a} {op} {b})"
        if op == "*":
            mag_a = pool.get(a, ("int", int(a) if a.isdigit() else 99))[1]
            mag_b = pool.get(b, ("int", int(b) if b.isdigit() else 99))[1]
            if mag_a * mag_b > MAG_LIMIT:
                expr = f"({expr} % {MOD})"
        if rng.randrange(3) == 0:
            expr = f"({expr} + {term()})"
        return expr

    def _build_lobby_methods(self) -> None:
        rng = self.rng
        templates = rng.sample(
            ["fib", "sumdown", "evenodd", "find", "sumtil"],
            k=min(2 + self.size // 12, 4),
        )
        for index, kind in enumerate(templates):
            tag = f"{index}"
            if kind == "fib":
                sel = f"fzFib{tag}:"
                self.lobby_methods.append(SlotSpec(
                    f"fzFib{tag}: n",
                    f"n < 2 ifTrue: [ ^ n ]. "
                    f"(fzFib{tag}: n - 1) + (fzFib{tag}: n - 2)",
                    "method",
                ))
                self.lobby[sel] = _Slot("method", "int", 100, arity=1)
            elif kind == "sumdown":
                sel = f"fzSum{tag}:"
                self.lobby_methods.append(SlotSpec(
                    f"fzSum{tag}: n",
                    f"n <= 0 ifTrue: [ ^ 0 ]. n + (fzSum{tag}: n - 1)",
                    "method",
                ))
                self.lobby[sel] = _Slot("method", "int", 500, arity=1)
            elif kind == "evenodd":
                self.lobby_methods.append(SlotSpec(
                    f"fzEven{tag}: n",
                    f"n = 0 ifTrue: [ ^ true ]. fzOdd{tag}: n - 1",
                    "method",
                ))
                self.lobby_methods.append(SlotSpec(
                    f"fzOdd{tag}: n",
                    f"n = 0 ifTrue: [ ^ false ]. fzEven{tag}: n - 1",
                    "method",
                ))
                self.lobby[f"fzEven{tag}:"] = _Slot(
                    "method", "bool", arity=1)
            elif kind == "find":
                limit = rng.randrange(3, 30)
                self.lobby_methods.append(SlotSpec(
                    f"fzFind{tag}: v",
                    f"v do: [ | :e | e > {limit} ifTrue: [ ^ e ] ]. 0 - 1",
                    "method",
                ))
                self.lobby[f"fzFind{tag}:"] = _Slot(
                    "method", "int", MAG_LIMIT, arity=1)
            elif kind == "sumtil":
                cap = rng.randrange(10, 60)
                self.lobby_methods.append(SlotSpec(
                    f"fzTil{tag}: n",
                    f"| s <- 0 | 1 to: {cap} Do: [ | :i | s: s + i. "
                    f"s > n ifTrue: [ ^ s ] ]. s",
                    "method",
                ))
                self.lobby[f"fzTil{tag}:"] = _Slot(
                    "method", "int", 2000, arity=1)

    # -- expression generation ----------------------------------------------

    def _int_sources(self) -> list:
        """(render-text, mag) atoms currently in scope with int sort."""
        atoms = []
        for name, (sort, mag) in sorted(self.locals.items()):
            if sort == "int":
                atoms.append((name, mag))
        for name in self.loop_vars:
            atoms.append((name, self.profile.max_loop))
        for model in self.models:
            for sname, slot in model.data_slots("int"):
                atoms.append((f"({model.name} {sname})", max(slot.mag, 99)))
        return atoms

    def int_expr(self, depth: int) -> Expr:
        rng = self.rng
        if depth <= 0 or rng.randrange(4) == 0:
            atoms = self._int_sources()
            if atoms and rng.randrange(2) == 0:
                text, mag = atoms[rng.randrange(len(atoms))]
                return lit("int", text, mag)
            return int_lit(rng.randrange(0, 50))
        roll = rng.randrange(10)
        if roll < 4:
            left = self.int_expr(depth - 1)
            right = self.int_expr(depth - 1)
            op = rng.choice(["+", "-", "*", "min:", "max:"])
            if op == "*":
                mag = left.mag * right.mag
                product = binop("int", left, "*", right, mag)
                if mag > MAG_LIMIT:
                    return binop("int", product, "%", int_lit(MOD), MOD)
                return product
            if op in ("min:", "max:"):
                return binop("int", left, op, right,
                             max(left.mag, right.mag))
            return binop("int", left, op, right, left.mag + right.mag)
        if roll == 4:
            # division / modulo by a nonzero literal
            left = self.int_expr(depth - 1)
            op = rng.choice(["/", "%"])
            div = int_lit(rng.randrange(1, 97))
            mag = left.mag if op == "/" else div.mag
            return binop("int", left, op, div, mag)
        if roll == 5:
            inner = self.int_expr(depth - 1)
            return wrap("int", "(", inner, " abs)", inner.mag)
        if roll == 6:
            cond = self.bool_expr(depth - 1)
            a = self.int_expr(depth - 1)
            b = self.int_expr(depth - 1)
            return Expr(
                "int",
                ("(", " ifTrue: [ ", " ] False: [ ", " ])"),
                (cond, a, b),
                max(a.mag, b.mag),
            )
        if roll == 7:
            arg = self.int_expr(depth - 1)
            shift = int_lit(self.rng.randrange(0, 4))
            return binop("int", arg, "bitShiftRight:", shift, arg.mag)
        if roll == 8:
            inner = self.int_expr(depth - 1)
            factor = int_lit(rng.randrange(1, 9))
            body = binop("int", lit("int", "x", inner.mag), "+", factor,
                         inner.mag + factor.mag)
            return Expr(
                "int",
                ("([ | :x | ", " ] value: ", ")"),
                (body, inner),
                inner.mag + factor.mag,
            )
        call = self._method_call_expr(depth)
        if call is not None:
            return call
        return int_lit(rng.randrange(0, 50))

    def _method_call_expr(self, depth: int) -> Optional[Expr]:
        """A call to a generated setup-object or lobby method."""
        rng = self.rng
        candidates = []
        for model in self.models:
            for sel, slot in model.methods():
                if slot.sort == "int":
                    candidates.append((model.name, sel, slot))
        for sel, slot in sorted(self.lobby.items()):
            if slot.sort == "int" and sel.startswith(("fzFib", "fzSum", "fzTil")):
                candidates.append(("", sel, slot))
        if not candidates:
            return None
        recv, sel, slot = candidates[rng.randrange(len(candidates))]
        parts = sel.split(":")[:-1] if ":" in sel else []
        if recv == "":
            # lobby recursion templates take one small literal argument
            arg = int_lit(rng.randrange(0, 10 if "Fib" in sel else 15))
            return keyword("int", "", [sel.split(":")[0] + ":"], [arg],
                           mag=MAG_LIMIT)
        if not parts:
            return lit("int", f"({recv} {sel})", MAG_LIMIT)
        arg_exprs = [self.int_expr(max(depth - 2, 0)) for _ in parts]
        sel_parts = [f"{parts[0]}:"] + [f"{p}:" for p in parts[1:]]
        return keyword("int", recv, sel_parts, arg_exprs, mag=MAG_LIMIT)

    def bool_expr(self, depth: int) -> Expr:
        rng = self.rng
        roll = rng.randrange(8)
        if roll < 3 or depth <= 0:
            left = self.int_expr(max(depth - 1, 0))
            right = self.int_expr(max(depth - 1, 0))
            op = rng.choice(["<", "<=", ">", ">=", "=", "!="])
            return binop("bool", left, op, right, 0)
        if roll == 3:
            inner = self.int_expr(depth - 1)
            sel = rng.choice(["even", "odd"])
            return wrap("bool", "(", inner, f" {sel})")
        if roll == 4:
            inner = self.bool_expr(depth - 1)
            return wrap("bool", "(", inner, " not)")
        if roll == 5:
            left = self.bool_expr(depth - 1)
            right = self.bool_expr(depth - 1)
            op = rng.choice(["and:", "or:"])
            return Expr("bool", ("(", f" {op} [ ", " ])"), (left, right))
        if roll == 6:
            mid = self.int_expr(depth - 1)
            lo = int_lit(rng.randrange(0, 10))
            hi = int_lit(rng.randrange(10, 99))
            return Expr(
                "bool", ("(", " between: ", " And: ", ")"), (mid, lo, hi)
            )
        if self.allow_float:
            left = self.float_expr(depth - 1)
            right = self.float_expr(depth - 1)
        else:
            left = self.int_expr(max(depth - 1, 0))
            right = self.int_expr(max(depth - 1, 0))
        op = rng.choice(["<", "<=", ">", ">="])
        return binop("bool", left, op, right, 0)

    def float_expr(self, depth: int) -> Expr:
        rng = self.rng
        self.feat.add("float")
        if depth <= 0 or rng.randrange(3) == 0:
            for name, (sort, _mag) in sorted(self.locals.items()):
                if sort == "float" and rng.randrange(2) == 0:
                    return lit("float", name)
            return lit("float", f"{rng.randrange(0, 200) / 10:.1f}")
        roll = rng.randrange(5)
        if roll < 3:
            left = self.float_expr(depth - 1)
            right = self.float_expr(depth - 1)
            op = rng.choice(["+", "-", "*"])
            return binop("float", left, op, right, 0)
        if roll == 3:
            inner = self.int_expr(depth - 1)
            return wrap("float", "(", inner, " asFloat)")
        left = self.float_expr(depth - 1)
        right = self.float_expr(depth - 1)
        op = rng.choice(["min:", "max:"])
        return binop("float", left, op, right, 0)

    def str_expr(self, depth: int) -> Expr:
        rng = self.rng
        if depth <= 0 or rng.randrange(3) == 0:
            text = "".join(
                rng.choice("abcdefgh") for _ in range(rng.randrange(1, 4))
            )
            return lit("str", f"'{text}'")
        if rng.randrange(2) == 0:
            left = self.str_expr(depth - 1)
            right = self.str_expr(depth - 1)
            return binop("str", left, ",", right, 0)
        inner = self.int_expr(depth - 1)
        return wrap("str", "(", inner, " printString)")

    # -- probe kinds ----------------------------------------------------------

    def _reset_probe_env(self) -> None:
        self.locals = {}
        self.vectors = {}
        self.loop_vars = []
        self.feat = set()

    def probe_arith(self) -> Probe:
        return Probe("arith", result=self.int_expr(self.profile.expr_depth))

    def probe_float(self) -> Probe:
        rng = self.rng
        if rng.randrange(3) == 0:
            inner = self.float_expr(self.profile.expr_depth - 1)
            return Probe("float", result=wrap("int", "(", inner, " truncate)"))
        return Probe("float", result=self.float_expr(self.profile.expr_depth))

    def probe_string(self) -> Probe:
        return Probe("string", result=self.str_expr(self.profile.expr_depth))

    def probe_bool(self) -> Probe:
        return Probe("bool", result=self.bool_expr(self.profile.expr_depth))

    def probe_merge(self) -> Probe:
        """The extended-splitting shape: a merge of two sorts, then a
        sort-indifferent message over the merged value."""
        cond = self.bool_expr(1)
        a = self.int_expr(1)
        # without floats the merge degenerates to int|int — still a
        # path merge, just not a sort merge
        b = self.float_expr(1) if self.allow_float else self.int_expr(1)
        stmt = Expr(
            "nil",
            ("", " ifTrue: [ x: ", " ] False: [ x: ", " ]"),
            (cond, a, b),
        )
        # the collapse must not go through a type-predicted selector:
        # ``size`` on a *statically unknown* merged value compiles to
        # the trusting vector primitive under the static config, and a
        # runtime string there is an ill-typed-operand crash the
        # substitution table does not protect — ``printString`` alone
        # is prediction-free, so it stays safe in every config
        result = lit("str", "(x printString)")
        return Probe("merge", locals_=[("x", None)], stmts=[stmt],
                     result=result)

    def probe_vector(self) -> Probe:
        rng = self.rng
        length = rng.randrange(2, self.profile.max_vector + 1)
        self.locals["s"] = ("int", 0)
        stmts = [lit("nil", f"v: (vector copySize: {length} FillingWith: 0)")]
        for index in rng.sample(range(length), k=rng.randrange(1, length + 1)):
            value = self.int_expr(1)
            stmts.append(Expr(
                "nil", (f"v at: {index} Put: ", ""), (value,), 0
            ))
        kind = rng.randrange(6)
        if kind == 0:
            result = lit("int", "(v sum)", MAG_LIMIT)
        elif kind == 1:
            result = lit("int", f"((v at: {rng.randrange(length)}) + v size)",
                         MAG_LIMIT)
        elif kind == 2:
            result = lit("int", "(v reverse sum)", MAG_LIMIT)
        elif kind == 3:
            needle = self.int_expr(0)
            result = Expr("bool", ("(v includes: ", ")"), (needle,))
        elif kind == 4:
            body = binop("int", lit("int", "acc", MAG_LIMIT), "+",
                         lit("int", "e", MAG_LIMIT), MAG_LIMIT)
            result = Expr(
                "int",
                ("(v inject: 0 Into: [ | :acc. :e | ", " ])"),
                (body,),
                MAG_LIMIT,
            )
        else:
            stmts.append(lit("nil", "v do: [ | :e | s: s + e ]"))
            result = lit("int", "s", MAG_LIMIT)
        return Probe("vector", locals_=[("v", None), ("s", "0")],
                     stmts=stmts, result=result)

    def probe_control(self) -> Probe:
        """Loop accumulation over the user control structures.

        Every accumulation is modular (``% 99730``) so the accumulator —
        which the loop body may itself reference — can never creep
        toward the small-integer ceiling no matter what the body draws.
        """
        rng = self.rng
        top = rng.randrange(2, self.profile.max_loop + 1)
        cap = MOD * 10
        self.locals["s"] = ("int", cap)
        kind = rng.randrange(5)
        if kind == 0:
            self.loop_vars.append("i")
            body = self.int_expr(1)
            self.loop_vars.pop()
            stmt = Expr(
                "nil",
                (f"1 to: {top} Do: [ | :i | s: ((s + ", f") % {cap}) ]"),
                (body,),
            )
        elif kind == 1:
            self.loop_vars.append("i")
            body = self.int_expr(1)
            self.loop_vars.pop()
            step = rng.randrange(1, 4)
            stmt = Expr(
                "nil",
                (f"1 to: {top * 3} By: {step} Do: "
                 f"[ | :i | s: ((s + ", f") % {cap}) ]"),
                (body,),
            )
        elif kind == 2:
            self.loop_vars.append("i")
            body = self.int_expr(1)
            self.loop_vars.pop()
            stmt = Expr(
                "nil",
                (f"{top} downTo: 1 Do: [ | :i | s: ((s + ", f") % {cap}) ]"),
                (body,),
            )
        elif kind == 3:
            body = self.int_expr(1)
            stmt = Expr(
                "nil",
                (f"{top} timesRepeat: [ s: ((s + ", f") % {cap}) ]"),
                (body,),
            )
        else:
            self.locals["n"] = ("int", top)
            body = self.int_expr(1)
            stmt = Expr(
                "nil",
                ("[ n > 0 ] whileTrue: [ s: ((s + ", f") % {cap}). n: n - 1 ]"),
                (body,),
            )
            return Probe(
                "control",
                locals_=[("s", "0"), ("n", str(top))],
                stmts=[stmt],
                result=lit("int", "s", cap),
            )
        return Probe("control", locals_=[("s", "0")], stmts=[stmt],
                     result=lit("int", "s", cap))

    def probe_block(self) -> Probe:
        rng = self.rng
        kind = rng.randrange(3)
        if kind == 0:
            # one block, applied twice with different arguments; the
            # argument can be any bounded expression, so reduce it
            # before the product
            factor = int_lit(rng.randrange(1, 9))
            body = binop("int", lit("int", f"(x % {MOD})", MOD), "*",
                         factor, MOD * 8)
            a1 = self.int_expr(1)
            a2 = self.int_expr(1)
            stmt = Expr("nil", ("b: [ | :x | ", " ]"), (body,))
            result = Expr(
                "int", ("((b value: ", ") + (b value: ", "))"),
                (a1, a2), MAG_LIMIT,
            )
            return Probe("block", locals_=[("b", None)], stmts=[stmt],
                         result=result)
        if kind == 1:
            # closure capturing a mutable local
            init = rng.randrange(0, 20)
            bump = self.int_expr(1)
            stmt1 = lit("nil", f"b: [ a + {rng.randrange(1, 9)} ]")
            stmt2 = Expr("nil", ("a: (a + ", ")"), (bump,))
            return Probe(
                "block",
                locals_=[("a", str(init)), ("b", None)],
                stmts=[stmt1, stmt2],
                result=lit("int", "(b value)", MAG_LIMIT),
            )
        # block-returning-block (the closure-identity shape)
        n1 = int_lit(rng.randrange(1, 9))
        n2 = int_lit(rng.randrange(1, 9))
        stmt = lit("nil", "make: [ | :n | [ n * 10 ] ]")
        result = Expr(
            "int",
            ("(((make value: ", ") value) + ((make value: ", ") value))"),
            (n1, n2), 200,
        )
        return Probe("block", locals_=[("make", None)], stmts=[stmt],
                     result=result)

    def probe_nlr(self) -> Probe:
        rng = self.rng
        finders = [s for s in self.lobby if s.startswith("fzFind")]
        tils = [s for s in self.lobby if s.startswith("fzTil")]
        guards = []
        for model in self.models:
            for sel, slot in model.methods():
                if sel.startswith("mg"):
                    guards.append((model.name, sel))
        choices = (["find"] if finders else []) + (["til"] if tils else []) \
            + (["guard"] if guards else [])
        if not choices:
            return self.probe_control()
        kind = rng.choice(choices)
        if kind == "find":
            sel = finders[rng.randrange(len(finders))]
            length = rng.randrange(2, 6)
            stmts = [lit("nil", f"v: (vector copySize: {length} FillingWith: 0)")]
            for index in range(length):
                stmts.append(Expr(
                    "nil", (f"v at: {index} Put: ", ""),
                    (self.int_expr(1),),
                ))
            result = lit("int", f"({sel.split(':')[0]}: v)", MAG_LIMIT)
            return Probe("nlr", locals_=[("v", None)], stmts=stmts,
                         result=result)
        if kind == "til":
            sel = tils[rng.randrange(len(tils))]
            arg = self.int_expr(1)
            result = keyword("int", "", [sel.split(":")[0] + ":"], [arg],
                             mag=2000)
            return Probe("nlr", result=result)
        recv, sel = guards[rng.randrange(len(guards))]
        arg = self.int_expr(1)
        result = keyword("int", recv, [sel], [arg], mag=MAG_LIMIT)
        return Probe("nlr", result=result)

    def probe_method(self) -> Probe:
        call = self._method_call_expr(self.profile.expr_depth)
        if call is None:
            return self.probe_arith()
        if self.rng.randrange(3) == 0:
            extra = self.int_expr(1)
            call = binop("int", call, "+", extra, MAG_LIMIT)
        return Probe("method", result=call)

    def probe_poly(self) -> Probe:
        """One send site visiting many receiver maps.

        A vector of setup objects is walked in a loop sending the
        shared ``fzTag`` selector, so the *same* IC site sees a tunable
        receiver fan-out (2 up to every setup object) — the workload
        that pushes a site mono -> PIC -> megamorphic table.
        """
        rng = self.rng
        tagged = [m.name for m in self.models if "fzTag" in m.slots]
        if len(tagged) < 2:
            return self.probe_method()
        length = rng.randrange(2, len(tagged) + 1)
        names = tagged[:length]
        passes = rng.randrange(3, 7)
        stmts = [lit(
            "nil", f"v: (vector copySize: {length} FillingWith: 0)"
        )]
        for index, name in enumerate(names):
            stmts.append(lit("nil", f"v at: {index} Put: {name}"))
        stmts.append(lit(
            "nil",
            f"1 to: {length * passes} Do: [ | :i | "
            f"s: ((s + ((v at: (i % {length})) fzTag)) % {MOD}) ]",
        ))
        return Probe("poly", locals_=[("v", None), ("s", "0")],
                     stmts=stmts, result=lit("int", "s", MOD))

    def probe_recursion(self) -> Probe:
        rng = self.rng
        evens = [s for s in self.lobby if s.startswith("fzEven")]
        if evens and rng.randrange(2) == 0:
            sel = evens[rng.randrange(len(evens))]
            arg = int_lit(rng.randrange(0, 16))
            return Probe("recursion", result=keyword(
                "bool", "", [sel], [arg]))
        call = self._method_call_expr(1)
        if call is None:
            return self.probe_arith()
        return Probe("recursion", result=call)

    def probe_mutation(self) -> Probe:
        """A standalone mutation probe (one to three statements).

        Only mutation statements and a trailing literal appear: sends to
        an object mutated earlier in the same do-it would legitimately
        run pre-mutation code until the next activation boundary
        (INTERNALS.md §11), so the grammar never generates them.
        """
        rng = self.rng
        allow_change = self.profile.weights.get("mutation", 0) >= 10
        stmts = []
        features = ["mutation"]
        for _ in range(rng.randrange(1, 3)):
            source, feature = self.palette.draw(allow_type_change=allow_change)
            stmts.append(lit("nil", source))
            if feature:
                features.append(feature)
        final, feature = self.palette.draw(allow_type_change=allow_change)
        if feature:
            features.append(feature)
        return Probe("mutation", stmts=stmts, result=lit("obj", final),
                     features=features)

    def probe_reclassify(self) -> Probe:
        rng = self.rng
        if len(self.models) < 2:
            return self.probe_mutation()
        target, proto = rng.sample(self.models, k=2)
        # the generator's model tracks the slot swap so later probes only
        # reference slots the reclassified object actually has; the
        # target keeps its *old* data vector nil-padded, so assignable
        # slots under the new map hold values of unknown sort — mark
        # them so the expression pool won't treat them as integers
        target.slots = {
            k: (_Slot("assignable", "any") if v.kind == "assignable" else v)
            for k, v in proto.slots.items()
        }
        return Probe(
            "reclassify",
            result=lit("obj", f"{target.name} _Reclassify: {proto.name}"),
            features=["mutation", "reclassify"],
        )

    def probe_prim_fail(self) -> Probe:
        """Explicit primitive-failure blocks (dynamic-only)."""
        rng = self.rng
        kind = rng.randrange(4)
        if kind == 0:
            arg = self.int_expr(1)
            result = Expr(
                "str", ("(", " _IntAdd: 'x' IfFail: [ | :e | e ])"), (arg,)
            )
        elif kind == 1:
            arg = self.int_expr(1)
            result = Expr(
                "str", ("(", " _IntDiv: 0 IfFail: [ | :e | e ])"), (arg,)
            )
        elif kind == 2:
            fallback = int_lit(rng.randrange(50))
            arg = self.int_expr(1)
            result = Expr(
                "int", ("(", " _IntMul: 'y' IfFail: [ | :e | ", " ])"),
                (arg, fallback), fallback.mag,
            )
        else:
            result = lit("str", "(3 _IntShl: 'z' IfFail: [ | :e | e ])")
        return Probe("prim-fail", result=result, features=["prim-fail"])

    def probe_bigint(self) -> Probe:
        """Overflow promotion and demotion (dynamic-only)."""
        rng = self.rng
        base = 1073741823  # smallint max
        kind = rng.randrange(3)
        if kind == 0:
            bump = self.int_expr(1)
            result = Expr("int", (f"({base} + ", ")"), (bump,))
        elif kind == 1:
            bump = int_lit(rng.randrange(1, 99))
            result = Expr(
                "int", (f"(({base} + ", f") - {base})"), (bump,), bump.mag
            )
        else:
            factor = rng.randrange(100000, 200000)
            result = lit("int", f"(({factor} * {factor}) / {factor})", factor)
        return Probe("bigint", result=result, features=["bigint"])

    KINDS = {
        "arith": probe_arith,
        "float": probe_float,
        "string": probe_string,
        "bool": probe_bool,
        "merge": probe_merge,
        "vector": probe_vector,
        "control": probe_control,
        "block": probe_block,
        "nlr": probe_nlr,
        "method": probe_method,
        "poly": probe_poly,
        "recursion": probe_recursion,
        "mutation": probe_mutation,
        "reclassify": probe_reclassify,
        "prim-fail": probe_prim_fail,
        "bigint": probe_bigint,
    }

    def build_probes(self) -> list:
        kinds, weights = self.profile.weighted_kinds()
        probes = []
        for _ in range(self.size):
            self._reset_probe_env()
            kind = self.rng.choices(kinds, weights=weights, k=1)[0]
            probe = self.KINDS[kind](self)
            probe.features |= self.feat
            probes.append(probe)
        return probes


def generate(seed: int, profile: str = "mixed", size: int = 12) -> Program:
    """Generate one program from ``(seed, profile, size)``.

    ``size`` is the probe budget; setup complexity scales mildly with
    it.  The same triple always produces byte-identical sources.
    """
    prof = PROFILES[profile] if isinstance(profile, str) else profile
    gen = _Gen(seed, prof, size)
    gen.build_setup()
    probes = gen.build_probes()
    return Program(
        seed=seed,
        profile=prof.name,
        size=size,
        objects=gen.objects,
        lobby_methods=gen.lobby_methods,
        probes=probes,
    )


# ---------------------------------------------------------------------------
# The mutation-stress kit (tools/mutation_stress.py sources this)
# ---------------------------------------------------------------------------


@dataclass
class StressKit:
    """Setup + probe pool + mutation stream for the stress driver."""

    setup_source: str
    probes: tuple
    models: tuple

    def mutation_stream(self, rng: random.Random) -> Iterator[str]:
        """An endless deterministic stream of mutation do-its.

        Fresh model copies per stream: two streams with equal-seeded
        RNGs yield identical statements.
        """
        models = tuple(m.clone_model(m.name) for m in self.models)
        return MutationPalette(models, rng).stream()


def stress_kit() -> StressKit:
    """The canonical mutation-stress workload, built from the grammar.

    Deterministic (seed 0 everywhere): the same shapes the historical
    hard-coded ``SETUP``/``PROBES`` literals described — a mutable
    arithmetic object, a pick-probe object, and a graft donor — now
    expressed as :class:`ObjectSpec`/:class:`Probe` values so the fuzz
    generator and the stress driver share one grammar.
    """
    shape = ObjectSpec("shape", [
        SlotSpec("w", "3", "const", "int", 3),
        SlotSpec("h", "4", "const", "int", 4),
        SlotSpec("area", "w * h", "method", "int"),
        SlotSpec("perim", "(w + h) * 2", "method", "int"),
    ])
    probe_obj = ObjectSpec("probe", [
        SlotSpec("pick", "1", "method", "int"),
    ])
    extras = ObjectSpec("extras", [
        SlotSpec("bonus", "100", "method", "int"),
    ])

    shape_model = _ObjModel("shape")
    shape_model.slots = {
        "w": _Slot("const", "int", 3),
        "h": _Slot("const", "int", 4),
        "area": _Slot("method", "int", 2500),
        "perim": _Slot("method", "int", 200),
    }
    probe_model = _ObjModel("probe")
    probe_model.slots = {"pick": _Slot("method", "int", 100)}
    extras_model = _ObjModel("extras")
    extras_model.slots = {"bonus": _Slot("method", "int", 100)}

    setup_lines = ["|"]
    for obj in (shape, probe_obj, extras):
        setup_lines.append(f"  {obj.render()}")
    setup_lines.append("|")

    probes = (
        Probe("method", result=lit("int", "shape area", 2500)),
        Probe("method", result=lit("int", "shape perim", 200)),
        Probe("arith", result=binop(
            "int", lit("int", "shape area", 2500), "+",
            lit("int", "shape perim", 200), 2700)),
        Probe(
            "control",
            locals_=[("s", "0")],
            stmts=[Expr("nil",
                        ("1 to: 8 Do: [ | :i | s: s + ", " ]"),
                        (lit("int", "(shape area)", 2500),))],
            result=lit("int", "s", 20000),
        ),
        Probe(
            "vector",
            locals_=[("v", None)],
            stmts=[
                lit("nil", "v: (vector copySize: 2)"),
                lit("nil", "v at: 0 Put: shape"),
            ],
            result=lit("int", "(v at: 0) perim", 200),
        ),
        Probe("method", result=lit("int", "probe pick", 100)),
    )
    return StressKit(
        setup_source="\n".join(setup_lines),
        probes=probes,
        models=(shape_model, probe_model, extras_model),
    )
