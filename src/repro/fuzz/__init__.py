"""Differential fuzzing subsystem.

Three layers (INTERNALS.md §13):

* :mod:`repro.fuzz.gen` — a seeded, weighted random SELF-program
  generator (setup objects + probe do-its) with tunable grammar-weight
  profiles and a size budget;
* :mod:`repro.fuzz.oracle` — a differential harness running each
  program on the reference AST interpreter and across the system-config
  × cache-layer × translation × tier matrix, classifying divergences,
  crashes, hangs, and recovery-log anomalies;
* :mod:`repro.fuzz.shrink` — a deterministic delta-debugging reducer
  producing minimal repro files under ``corpus/``.

CLI: ``python -m repro.tools.fuzz``.
"""

from .gen import PROFILES, Program, generate  # noqa: F401
from .oracle import (  # noqa: F401
    Cell,
    CellReport,
    Oracle,
    ProgramReport,
    cells_for_program,
    full_matrix,
)
from .shrink import (  # noqa: F401
    ReproProgram,
    load_repro,
    save_repro,
    shrink,
)
