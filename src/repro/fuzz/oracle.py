"""The differential oracle: reference semantics vs the full matrix.

The reference AST interpreter defines the language; every VM
configuration, at every tier, under every caching layer, must produce
the same observable answer for every probe of a generated program.
The oracle runs one :class:`~repro.fuzz.gen.Program` through the
reference interpreter once, then replays it in each matrix **cell** and
compares every intermediate answer:

======================  ====================================================
axis                    values
======================  ====================================================
``config``              ``newself`` / ``oldself`` / ``st80`` / ``static``
                        (``static`` only for ``Program.static_safe``)
``share``               code sharing on / off (``REPRO_SHARE_CODE``)
``cache``               persistent code cache off / cold / warm
                        (``REPRO_CODE_CACHE``; *warm* runs a populate pass
                        into a fresh directory, then measures a second
                        fresh world against the now-populated cache)
``translate``           translation tier off / forced
                        (``REPRO_TRANSLATE_THRESHOLD`` 0 / 1)
``tier``                ``full`` ladder, or ``interp`` — a persistent
                        raise-mode fault on ``compiler.engine`` degrades
                        every compile to the tier interpreter, exercising
                        the whole recovery path
``world``               ``fresh`` (cold bootstrap) or ``fork`` — the guest
                        world is a zygote fork (the serve layer's tenant
                        admission path), pinning forked-universe execution
                        to the reference answers
======================  ====================================================

A cell's outcome is classified as one of:

* ``agree`` — every probe matched the reference;
* ``divergence`` — some probe's answer differed (guest errors count as
  answers: both sides must fail with the same error kind);
* ``crash`` — a host-level or internal error escaped the runtime;
* ``hang`` — the compile watchdog fired (:class:`CompileTimeout`);
* ``recovery-anomaly`` — answers matched but the recovery log recorded
  a degradation whose cause was neither a guest error, the pre-existing
  ``BudgetExhausted`` safety valve, nor a fault this cell armed itself.

Fault interplay: the oracle saves the ambient
:func:`repro.robustness.faults.installed_plans`, arms its own plans
(fresh hit counters per cell, so shrinking re-runs are deterministic),
and restores the ambient installation afterwards.  The registered
``fuzz.probe.result`` site sits on the cell-side observation of each
probe: a corrupt-mode plan perturbs one observed answer (the planted
divergence the acceptance test shrinks), a raise-mode plan surfaces as
a crash.
"""

from __future__ import annotations

import itertools
import os
from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..compiler.config import PRESETS
from ..objects.errors import CompileTimeout, SelfError
from ..obs.metrics import MetricsRegistry, collect_runtime
from ..robustness import faults
from ..robustness.faults import SITE_FUZZ_PROBE, FaultPlan
from ..vm.runtime import Runtime
from ..world.bootstrap import World
from .gen import Program

#: the baseline cell every program is checked against
BASELINE = ("newself", True, "off", "off", "full")

CLASSIFICATIONS = (
    "agree", "divergence", "crash", "hang", "recovery-anomaly",
)

#: recovery-log error kinds that are expected without any armed fault:
#: guest errors surface identically at every tier (the ladder does not
#: contain them, but nested compiles legitimately degrade on them) and
#: BudgetExhausted is the pre-existing node-budget safety valve.
_BENIGN_ERROR_KINDS = frozenset({
    "MessageNotUnderstood", "PrimitiveFailed", "GuestError",
    "AmbiguousLookup", "WrongBlockArity", "SlotExists",
    "NonLocalReturnFromDeadActivation", "SelfParseError",
    "BudgetExhausted",
})


@dataclass(frozen=True)
class Cell:
    """One point of the differential matrix."""

    config: str  # a PRESETS key
    share: bool = True
    cache: str = "off"  # "off" | "cold" | "warm"
    translate: str = "off"  # "off" | "forced"
    tier: str = "full"  # "full" | "interp"
    pic: str = "off"  # "off" | "on" (REPRO_PIC dispatch ladder)
    world: str = "fresh"  # "fresh" | "fork" (zygote-forked guest world)

    def __post_init__(self) -> None:
        if self.config not in PRESETS:
            raise ValueError(f"unknown config {self.config!r}")
        if self.cache not in ("off", "cold", "warm"):
            raise ValueError(f"unknown cache state {self.cache!r}")
        if self.translate not in ("off", "forced"):
            raise ValueError(f"unknown translate state {self.translate!r}")
        if self.tier not in ("full", "interp"):
            raise ValueError(f"unknown tier {self.tier!r}")
        if self.pic not in ("off", "on"):
            raise ValueError(f"unknown pic state {self.pic!r}")
        if self.world not in ("fresh", "fork"):
            raise ValueError(f"unknown world state {self.world!r}")

    @property
    def key(self) -> str:
        """Five "/"-segments, plus optional ``pic=on`` / ``world=fork``
        suffixes — an old (pre-ladder, pre-fork) five-part key
        round-trips unchanged."""
        share = "share" if self.share else "noshare"
        base = (f"{self.config}/{share}/cache={self.cache}"
                f"/translate={self.translate}/{self.tier}")
        if self.pic == "on":
            base = f"{base}/pic=on"
        if self.world == "fork":
            base = f"{base}/world=fork"
        return base

    @classmethod
    def from_key(cls, key: str) -> "Cell":
        """Inverse of :attr:`key` (accepts 5-part keys plus suffixes)."""
        try:
            parts = key.split("/")
            pic, world = "off", "fresh"
            while len(parts) > 5:
                prefix, _, value = parts.pop().partition("=")
                if prefix == "pic" and value in ("off", "on"):
                    pic = value
                elif prefix == "world" and value in ("fresh", "fork"):
                    world = value
                else:
                    raise ValueError(key)
            config, share, cache, translate, tier = parts
            return cls(
                config=config,
                share=share == "share",
                cache=cache.split("=", 1)[1],
                translate=translate.split("=", 1)[1],
                tier=tier,
                pic=pic,
                world=world,
            )
        except (ValueError, IndexError):
            raise ValueError(f"malformed cell key {key!r}") from None


def full_matrix() -> tuple:
    """Every cell: 4 configs × 2 share × 3 cache × 2 translate on the
    full ladder, one interpreter-tier cell per config, two
    dispatch-ladder (``REPRO_PIC=1``) cells per config — interpreted
    and translated — pinning PIC/megamorphic-table dispatch to the
    reference answers, and one zygote-forked-world cell per config
    (the serve layer's tenant admission path) (64 total)."""
    cells = []
    for config in ("newself", "oldself", "st80", "static"):
        for share, cache, translate in itertools.product(
            (True, False), ("off", "cold", "warm"), ("off", "forced")
        ):
            cells.append(Cell(config, share, cache, translate, "full"))
        cells.append(Cell(config, tier="interp"))
        cells.append(Cell(config, pic="on"))
        cells.append(Cell(config, translate="forced", pic="on"))
        cells.append(Cell(config, world="fork"))
    return tuple(cells)


def cells_for_program(program: Program, index: int,
                      per_program: int = 3) -> tuple:
    """The baseline cell plus ``per_program`` round-robin picks.

    Sampling walks the full matrix with stride 1 from an offset derived
    from ``index``, so a run of N programs covers every cell roughly
    ``N * per_program / 64`` times while each single program stays
    cheap.  Cells the program excludes (``static`` for dynamic-only
    programs) are skipped, not replaced.
    """
    matrix = [c for c in full_matrix()
              if program.static_safe or c.config != "static"]
    picks = [Cell(*BASELINE)]
    for step in range(per_program):
        cell = matrix[(index * per_program + step) % len(matrix)]
        if cell not in picks:
            picks.append(cell)
    if program.static_safe:
        # static cells are only reachable through static-safe programs,
        # and those come at fixed profile strides — linear striding over
        # the shared offset provably misses some static cells, so they
        # get their own round-robin pick
        static_cells = [c for c in matrix if c.config == "static"]
        cell = static_cells[index % len(static_cells)]
        if cell not in picks:
            picks.append(cell)
    return tuple(picks)


@dataclass
class CellReport:
    """The outcome of one program in one cell."""

    cell: str
    classification: str
    probe_index: Optional[int] = None
    expected: Optional[str] = None
    observed: Optional[str] = None
    detail: str = ""
    recovery_total: int = 0
    recovery_summary: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.classification == "agree"

    def to_record(self) -> dict:
        return {
            "cell": self.cell,
            "classification": self.classification,
            "probe_index": self.probe_index,
            "expected": self.expected,
            "observed": self.observed,
            "detail": self.detail,
            "recovery_total": self.recovery_total,
            "recovery_summary": dict(self.recovery_summary),
        }


@dataclass
class ProgramReport:
    """All cell outcomes for one program."""

    pid: str
    seed: int
    profile: str
    static_safe: bool
    cells: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(cell.ok for cell in self.cells)

    def failures(self) -> list:
        return [cell for cell in self.cells if not cell.ok]

    def to_record(self) -> dict:
        return {
            "pid": self.pid,
            "seed": self.seed,
            "profile": self.profile,
            "static_safe": self.static_safe,
            "cells": [cell.to_record() for cell in self.cells],
        }


#: env knobs the oracle pins per cell (everything else is inherited)
_CELL_ENV = ("REPRO_SHARE_CODE", "REPRO_CODE_CACHE",
             "REPRO_TRANSLATE_THRESHOLD", "REPRO_PIC")

#: the plan that forces the interpreter tier: every optimizing *and*
#: pessimistic compile hits the engine seam and degrades
_INTERP_PLAN = FaultPlan("compiler.engine", "raise", nth=1, persistent=True)


class Oracle:
    """Runs programs through the reference and the matrix.

    ``cache_root`` hosts per-cell persistent code cache directories
    (required for ``cache != "off"`` cells).  ``plans`` are armed —
    with fresh hit counters — for every measured cell run, which is how
    the acceptance test plants its deliberate fault.
    """

    def __init__(self, cache_root: Optional[str] = None,
                 plans: Sequence[FaultPlan] = ()) -> None:
        self.cache_root = cache_root
        self.plans = tuple(plans)
        #: obs metrics aggregated across every measured cell run
        self.metrics = MetricsRegistry()
        self._cache_serial = 0
        #: warm world shared by every ``world=fork`` cell (bootstrapped
        #: lazily, forked per run — the zygote itself never executes a
        #: probe, so no cell can pollute another through it)
        self._zygote: Optional[World] = None

    def _guest_world(self, cell: Cell) -> World:
        """The world a measured cell runs in (fresh or zygote-forked)."""
        if cell.world == "fork":
            if self._zygote is None:
                self._zygote = World("fuzz-zygote")
            return self._zygote.fork()
        return World()

    # -- reference ----------------------------------------------------------

    def reference_run(self, program: Program) -> list:
        """The reference interpreter's answer for every probe."""
        world = World()
        world.add_slots(program.setup_source)
        return [
            self._observe(world, lambda src=src: world.eval(src))
            for src in program.probe_sources
        ]

    @staticmethod
    def _observe(world, thunk) -> str:
        """One observed answer: a rendered value or a guest error kind."""
        try:
            return world.universe.print_string(thunk())
        except SelfError as err:
            return f"<guest:{type(err).__name__}>"

    # -- one cell -----------------------------------------------------------

    def _cache_dir(self, program: Program, cell: Cell) -> str:
        if self.cache_root is None:
            raise ValueError(
                f"cell {cell.key} needs a persistent cache directory; "
                f"construct Oracle(cache_root=...)"
            )
        self._cache_serial += 1
        name = f"{program.pid}-{self._cache_serial}"
        path = os.path.join(self.cache_root, name)
        os.makedirs(path, exist_ok=True)
        return path

    def run_cell(self, program: Program, cell: Cell,
                 expected: Optional[list] = None) -> CellReport:
        """Run ``program`` in ``cell`` and classify the outcome."""
        if expected is None:
            expected = self.reference_run(program)
        ambient = faults.installed_plans()
        saved = {key: os.environ.get(key) for key in _CELL_ENV}
        os.environ["REPRO_SHARE_CODE"] = "1" if cell.share else "0"
        os.environ["REPRO_CODE_CACHE"] = (
            self._cache_dir(program, cell) if cell.cache != "off" else ""
        )
        os.environ["REPRO_TRANSLATE_THRESHOLD"] = (
            "1" if cell.translate == "forced" else "0"
        )
        os.environ["REPRO_PIC"] = "1" if cell.pic == "on" else "0"
        plans = list(self.plans)
        if cell.tier == "interp":
            plans.append(_INTERP_PLAN)
        try:
            if cell.cache == "warm":
                # populate pass: same env (same cache dir), no faults,
                # results discarded — only the disk state matters
                faults.clear()
                try:
                    self._execute(program, cell)
                except Exception:
                    # a program that crashes in this cell crashes here
                    # too; let the measured pass classify it instead of
                    # escaping run_cell unreported
                    pass
            if plans:
                faults.install(plans)  # fresh hit counters every cell
            else:
                faults.clear()
            return self._measure(program, cell, expected)
        finally:
            for key, value in saved.items():
                if value is None:
                    os.environ.pop(key, None)
                else:
                    os.environ[key] = value
            if ambient:
                faults.install(ambient)
            else:
                faults.clear()

    def _execute(self, program: Program, cell: Cell):
        """Build a world+runtime under the current env and run through."""
        world = self._guest_world(cell)
        world.add_slots(program.setup_source)
        runtime = Runtime(world, PRESETS[cell.config])
        for src in program.probe_sources:
            self._observe(world, lambda src=src: runtime.run(src))
        return runtime

    def _measure(self, program: Program, cell: Cell,
                 expected: list) -> CellReport:
        armed = faults.ENABLED
        try:
            world = self._guest_world(cell)
            world.add_slots(program.setup_source)
            runtime = Runtime(world, PRESETS[cell.config])
        except CompileTimeout as err:
            return CellReport(cell.key, "hang", detail=str(err))
        except Exception as err:  # setup must never fail
            return CellReport(
                cell.key, "crash",
                detail=f"setup: {type(err).__name__}: {err}",
            )
        report = CellReport(cell.key, "agree")
        for index, src in enumerate(program.probe_sources):
            try:
                observed = self._observe(
                    world, lambda src=src: runtime.run(src)
                )
                if faults.ENABLED and faults.hit(SITE_FUZZ_PROBE):
                    # the planted corruption: a wild write to the
                    # observed answer, which the comparison must catch
                    observed = observed + "?!"
            except CompileTimeout as err:
                report = CellReport(
                    cell.key, "hang", probe_index=index, detail=str(err),
                )
                break
            except Exception as err:
                # InjectedFault raised at the probe seam, an internal
                # ReproInternalError that escaped containment, or a raw
                # host error (AttributeError, RecursionError, ...)
                report = CellReport(
                    cell.key, "crash", probe_index=index,
                    detail=f"{type(err).__name__}: {err}",
                )
                break
            if observed != expected[index]:
                report = CellReport(
                    cell.key, "divergence", probe_index=index,
                    expected=expected[index], observed=observed,
                )
                break
        collect_runtime(self.metrics, runtime)
        report.recovery_total = runtime.recovery.total
        report.recovery_summary = runtime.recovery.summary()
        if report.classification == "agree":
            anomaly = self._recovery_anomaly(runtime, armed)
            if anomaly is not None:
                report.classification = "recovery-anomaly"
                report.detail = anomaly
        return report

    @staticmethod
    def _recovery_anomaly(runtime, faults_armed: bool) -> Optional[str]:
        """The first unexplained degradation in the recovery log."""
        for event in runtime.recovery:
            if event.error_kind in _BENIGN_ERROR_KINDS:
                continue
            if event.error_kind == "InjectedFault" and faults_armed:
                continue
            if event.stage == "reoptimize":
                # promotions back up the ladder after a deopt storm are
                # policy, not failure
                continue
            if event.stage == "invalidate" and event.error_kind == "WorldMutation":
                # dependency-tracked invalidation doing its job when a
                # probe mutates the world — expected, not a degradation
                continue
            return (f"{event.stage} {event.selector}: "
                    f"{event.from_tier}->{event.to_tier} "
                    f"{event.error_kind}: {event.detail}")
        return None

    # -- whole programs -----------------------------------------------------

    def run_program(self, program: Program,
                    cells: Optional[Sequence[Cell]] = None,
                    index: int = 0, per_program: int = 3) -> ProgramReport:
        """Reference once, then each cell (sampled unless given)."""
        if cells is None:
            cells = cells_for_program(program, index, per_program)
        report = ProgramReport(
            pid=program.pid, seed=program.seed, profile=program.profile,
            static_safe=program.static_safe,
        )
        try:
            expected = self.reference_run(program)
        except Exception as err:
            report.cells.append(CellReport(
                "reference", "crash",
                detail=f"{type(err).__name__}: {err}",
            ))
            return report
        for cell in cells:
            if cell.config == "static" and not program.static_safe:
                continue
            report.cells.append(self.run_cell(program, cell, expected))
        return report
