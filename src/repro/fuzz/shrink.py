"""Deterministic delta-debugging reduction of failing programs.

Given a program and the matrix cell where the oracle classified it as
failing, :func:`shrink` greedily removes and simplifies parts of the
program, re-running the failing cell after every candidate edit and
keeping the edit only when the failure *category* is preserved (for
crashes, the leading error class in the detail must also match, so a
reduction cannot slide from one bug to an unrelated one).  Passes, to
a fixpoint:

1. **drop probes** — try keeping only the prefix up to the failing
   probe, then dropping each remaining probe;
2. **drop statements** — inside each surviving probe;
3. **drop setup** — each lobby method, each whole object, then each
   individual non-parent slot of surviving objects;
4. **simplify expressions** — replace a probe's result with any
   same-sort child or its literal fallback, repeatedly, walking
   composites down to atoms.

Everything is deterministic: the oracle re-arms its fault plans with
fresh hit counters per run, so a planted fault fires at the same probe
every time and the predicate is stable.

Shrunken repros are written to a ``corpus/`` directory as JSON
(schema ``repro-fuzz-repro/1``) holding the rendered sources, the cell,
the classification, and any fault-plan specs — everything
``python -m repro.tools.fuzz --replay`` (and the permanent regression
suite in ``tests/fuzz/test_corpus.py``) needs to re-run them.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from ..robustness.faults import FaultPlan
from .gen import ObjectSpec, Probe, Program
from .oracle import Cell, CellReport, Oracle

SCHEMA = "repro-fuzz-repro/1"


# ---------------------------------------------------------------------------
# The failure signature a reduction must preserve
# ---------------------------------------------------------------------------


def _signature(report: CellReport) -> Tuple[str, str]:
    """(classification, error-class) — the invariant under reduction."""
    if report.classification == "crash":
        return ("crash", report.detail.split(":", 1)[0])
    return (report.classification, "")


class _Predicate:
    """Re-runs the failing cell and checks the signature survives."""

    def __init__(self, oracle: Oracle, cell: Cell,
                 signature: Tuple[str, str]) -> None:
        self.oracle = oracle
        self.cell = cell
        self.signature = signature
        self.runs = 0
        self.last_report: Optional[CellReport] = None

    def still_fails(self, program) -> bool:
        self.runs += 1
        try:
            report = self.oracle.run_cell(program, self.cell)
        except Exception:
            # a candidate that breaks the harness itself is never kept
            return False
        if _signature(report) == self.signature:
            self.last_report = report
            return True
        return False


# ---------------------------------------------------------------------------
# Reduction passes
# ---------------------------------------------------------------------------


def _drop_probes(program: Program, pred: _Predicate) -> Program:
    # first try truncating to the failing probe (huge win when the
    # failure is at probe k of n)
    if pred.last_report is not None and pred.last_report.probe_index is not None:
        upto = pred.last_report.probe_index + 1
        if upto < len(program.probes):
            candidate = program.replace(probes=program.probes[:upto])
            if pred.still_fails(candidate):
                program = candidate
    index = len(program.probes) - 1
    while index >= 0 and len(program.probes) > 1:
        candidate = program.replace(
            probes=program.probes[:index] + program.probes[index + 1:]
        )
        if pred.still_fails(candidate):
            program = candidate
        index -= 1
    return program


def _drop_statements(program: Program, pred: _Predicate) -> Program:
    for pindex, probe in enumerate(list(program.probes)):
        sindex = len(probe.stmts) - 1
        while sindex >= 0:
            probe = program.probes[pindex]
            trimmed = probe.replace(
                stmts=probe.stmts[:sindex] + probe.stmts[sindex + 1:]
            )
            candidate = program.replace(
                probes=program.probes[:pindex] + [trimmed]
                + program.probes[pindex + 1:]
            )
            if pred.still_fails(candidate):
                program = candidate
            sindex -= 1
    return program


def _drop_setup(program: Program, pred: _Predicate) -> Program:
    index = len(program.lobby_methods) - 1
    while index >= 0:
        candidate = program.replace(
            lobby_methods=program.lobby_methods[:index]
            + program.lobby_methods[index + 1:]
        )
        if pred.still_fails(candidate):
            program = candidate
        index -= 1
    index = len(program.objects) - 1
    while index >= 0:
        candidate = program.replace(
            objects=program.objects[:index] + program.objects[index + 1:]
        )
        if pred.still_fails(candidate):
            program = candidate
        index -= 1
    # individual slots of surviving objects (parent* stays: method
    # bodies need the lobby)
    for oindex, obj in enumerate(list(program.objects)):
        sindex = len(obj.slots) - 1
        while sindex >= 0:
            obj = program.objects[oindex]
            slot = obj.slots[sindex]
            if slot.kind != "parent":
                trimmed = ObjectSpec(
                    obj.name, obj.slots[:sindex] + obj.slots[sindex + 1:]
                )
                candidate = program.replace(
                    objects=program.objects[:oindex] + [trimmed]
                    + program.objects[oindex + 1:]
                )
                if pred.still_fails(candidate):
                    program = candidate
            sindex -= 1
    return program


def _result_candidates(probe: Probe):
    expr = probe.result
    for child in expr.children:
        if child.sort == expr.sort:
            yield child
    fallback = expr.literal_fallback()
    if fallback is not None and fallback.render() != expr.render():
        yield fallback


def _simplify_results(program: Program, pred: _Predicate) -> Program:
    for pindex in range(len(program.probes)):
        progress = True
        while progress:
            progress = False
            probe = program.probes[pindex]
            for replacement in _result_candidates(probe):
                candidate = program.replace(
                    probes=program.probes[:pindex]
                    + [probe.replace(result=replacement)]
                    + program.probes[pindex + 1:]
                )
                if pred.still_fails(candidate):
                    program = candidate
                    progress = True
                    break
    return program


def _weight(program: Program) -> tuple:
    return (
        len(program.probes),
        sum(len(p.stmts) for p in program.probes),
        sum(len(o.slots) for o in program.objects)
        + len(program.lobby_methods),
        sum(len(s) for s in program.probe_sources),
    )


def shrink(program: Program, cell: Cell, oracle: Oracle,
           report: Optional[CellReport] = None,
           max_rounds: int = 4) -> Tuple[Program, CellReport, int]:
    """Reduce ``program`` while ``cell`` keeps failing the same way.

    Returns ``(shrunk, final_report, predicate_runs)``.  ``oracle``
    must be the instance that produced the failure (its fault plans are
    part of the failure's identity).  Raises ``ValueError`` if the
    program does not actually fail in ``cell``.
    """
    if report is None:
        report = oracle.run_cell(program, cell)
    if report.ok:
        raise ValueError(
            f"nothing to shrink: {cell.key} classified the program as agree"
        )
    pred = _Predicate(oracle, cell, _signature(report))
    pred.last_report = report
    for _ in range(max_rounds):
        before = _weight(program)
        program = _drop_probes(program, pred)
        program = _drop_statements(program, pred)
        program = _drop_setup(program, pred)
        program = _simplify_results(program, pred)
        if _weight(program) == before:
            break
    final = pred.last_report if pred.last_report is not None else report
    return program, final, pred.runs


# ---------------------------------------------------------------------------
# Corpus files
# ---------------------------------------------------------------------------


@dataclass
class ReproProgram:
    """A corpus repro reloaded from rendered sources.

    Duck-types the slice of :class:`~repro.fuzz.gen.Program` the oracle
    consumes (``setup_source`` / ``probe_sources`` / ``static_safe`` /
    ``pid``), so checked-in repros replay without regenerating.
    """

    setup_source: str
    probe_sources: list
    static_safe: bool
    seed: int = 0
    profile: str = "corpus"

    @property
    def pid(self) -> str:
        digest = hashlib.sha256(
            "\0".join([self.setup_source] + list(self.probe_sources)).encode()
        )
        return digest.hexdigest()[:12]


def plan_spec(plan: FaultPlan) -> str:
    return (f"{plan.site}:{plan.mode}:{plan.nth}"
            f"{'+' if plan.persistent else ''}")


def save_repro(program, cell: Cell, report: CellReport, corpus_dir: str,
               plans: Sequence[FaultPlan] = (),
               note: str = "") -> str:
    """Write one repro JSON under ``corpus_dir``; returns the path."""
    record = {
        "schema": SCHEMA,
        "id": program.pid,
        "note": note,
        "seed": getattr(program, "seed", 0),
        "profile": getattr(program, "profile", "corpus"),
        "static_safe": program.static_safe,
        "setup": program.setup_source,
        "probes": list(program.probe_sources),
        "cell": {
            "config": cell.config,
            "share": cell.share,
            "cache": cell.cache,
            "translate": cell.translate,
            "tier": cell.tier,
            "pic": cell.pic,
        },
        "classification": report.classification,
        "probe_index": report.probe_index,
        "expected": report.expected,
        "observed": report.observed,
        "detail": report.detail,
        "plans": [plan_spec(p) for p in plans],
    }
    os.makedirs(corpus_dir, exist_ok=True)
    path = os.path.join(corpus_dir, f"{program.pid}.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_repro(path: str) -> Tuple[ReproProgram, Cell, dict]:
    """Read one repro JSON back: (program, cell, full record)."""
    with open(path, "r", encoding="utf-8") as handle:
        record = json.load(handle)
    if record.get("schema") != SCHEMA:
        raise ValueError(
            f"{path}: unknown repro schema {record.get('schema')!r}"
        )
    program = ReproProgram(
        setup_source=record["setup"],
        probe_sources=list(record["probes"]),
        static_safe=bool(record.get("static_safe", False)),
        seed=int(record.get("seed", 0)),
        profile=record.get("profile", "corpus"),
    )
    cell = Cell(**record["cell"])
    return program, cell, record
