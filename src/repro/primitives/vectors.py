"""Vector (array) primitives: creation, sized access, bounds-checked I/O.

Indexing is zero-based (as in SELF's byte/object vectors).  ``_VectorAt:``
and ``_VectorAt:Put:`` are the robust primitives whose bounds checks the
compiler's range analysis tries to eliminate (paper, sections 3.2.3
and 7).
"""

from __future__ import annotations

from ..objects.model import SelfVector, fits_smallint
from .registry import (
    BAD_SIZE,
    BAD_TYPE,
    OUT_OF_BOUNDS,
    PrimFailSignal,
    Primitive,
    register,
)


def _vector_new(universe, receiver, args):
    size = args[0]
    if type(size) is not int or not fits_smallint(size):
        raise PrimFailSignal(BAD_TYPE)
    if size < 0:
        raise PrimFailSignal(BAD_SIZE)
    return SelfVector(universe.vector_map, [args[1]] * size)


def _vector_at(universe, receiver, args):
    if not isinstance(receiver, SelfVector):
        raise PrimFailSignal(BAD_TYPE)
    index = args[0]
    if type(index) is not int:
        raise PrimFailSignal(BAD_TYPE)
    if index < 0 or index >= len(receiver.elements):
        raise PrimFailSignal(OUT_OF_BOUNDS)
    return receiver.elements[index]


def _vector_at_put(universe, receiver, args):
    if not isinstance(receiver, SelfVector):
        raise PrimFailSignal(BAD_TYPE)
    index = args[0]
    if type(index) is not int:
        raise PrimFailSignal(BAD_TYPE)
    if index < 0 or index >= len(receiver.elements):
        raise PrimFailSignal(OUT_OF_BOUNDS)
    receiver.elements[index] = args[1]
    return receiver


def _vector_size(universe, receiver, args):
    if not isinstance(receiver, SelfVector):
        raise PrimFailSignal(BAD_TYPE)
    return len(receiver.elements)


def _register_all() -> None:
    register(
        Primitive("_NewVector:Filler:", _vector_new, arity=2, can_fail=True,
                  pure=False, result_kind="vector")
    )
    register(
        Primitive("_VectorAt:", _vector_at, arity=1, can_fail=True,
                  pure=False, result_kind="unknown")
    )
    register(
        Primitive("_VectorAt:Put:", _vector_at_put, arity=2, can_fail=True,
                  pure=False, result_kind="receiver")
    )
    register(
        Primitive("_VectorSize", _vector_size, arity=0, can_fail=True,
                  pure=False, result_kind="smallInt")
    )


_register_all()
