"""Integer primitives.

Two families:

* ``_Int*`` — the *tagged small integer* primitives.  These are the
  robust primitives the compiler inlines (paper, section 3.2.3): they
  fail with ``badTypeError`` unless both operands are small integers and
  with ``overflowError`` when the result leaves the 31-bit range.  The
  standard library builds ``+ - * / % < <= ...`` on top of them, passing
  failure blocks that retry in arbitrary precision.

* ``_Big*`` — arbitrary-precision fallbacks accepting any mix of small
  and big integers and normalizing results back into the small range
  when possible.  These are what the failure blocks call, so guest
  arithmetic silently promotes and demotes exactly like real SELF.

Division and modulo follow Smalltalk semantics (floor division; the
remainder has the sign of the divisor).
"""

from __future__ import annotations

from ..objects.model import BigInt, fits_smallint, guest_int_value, normalize_int
from .registry import (
    BAD_TYPE,
    DIVISION_BY_ZERO,
    OVERFLOW,
    PrimFailSignal,
    Primitive,
    register,
)


def _small_operands(receiver, argument) -> tuple[int, int]:
    """Both operands as small ints, or fail with badTypeError."""
    if (
        type(receiver) is int
        and type(argument) is int
        and fits_smallint(receiver)
        and fits_smallint(argument)
    ):
        return receiver, argument
    raise PrimFailSignal(BAD_TYPE)


def _checked(value: int) -> int:
    if fits_smallint(value):
        return value
    raise PrimFailSignal(OVERFLOW)


# -- small integer arithmetic -------------------------------------------------


def _int_add(universe, receiver, args):
    x, y = _small_operands(receiver, args[0])
    return _checked(x + y)


def _int_sub(universe, receiver, args):
    x, y = _small_operands(receiver, args[0])
    return _checked(x - y)


def _int_mul(universe, receiver, args):
    x, y = _small_operands(receiver, args[0])
    return _checked(x * y)


def _int_div(universe, receiver, args):
    x, y = _small_operands(receiver, args[0])
    if y == 0:
        raise PrimFailSignal(DIVISION_BY_ZERO)
    return _checked(x // y)


def _int_mod(universe, receiver, args):
    x, y = _small_operands(receiver, args[0])
    if y == 0:
        raise PrimFailSignal(DIVISION_BY_ZERO)
    return _checked(x % y)


# -- small integer comparisons ------------------------------------------------


def _int_lt(universe, receiver, args):
    x, y = _small_operands(receiver, args[0])
    return universe.boolean(x < y)


def _int_le(universe, receiver, args):
    x, y = _small_operands(receiver, args[0])
    return universe.boolean(x <= y)


def _int_gt(universe, receiver, args):
    x, y = _small_operands(receiver, args[0])
    return universe.boolean(x > y)


def _int_ge(universe, receiver, args):
    x, y = _small_operands(receiver, args[0])
    return universe.boolean(x >= y)


def _int_eq(universe, receiver, args):
    x, y = _small_operands(receiver, args[0])
    return universe.boolean(x == y)


def _int_ne(universe, receiver, args):
    x, y = _small_operands(receiver, args[0])
    return universe.boolean(x != y)


# -- bit operations (cannot overflow on small operands) ------------------------


def _int_and(universe, receiver, args):
    x, y = _small_operands(receiver, args[0])
    return x & y


def _int_or(universe, receiver, args):
    x, y = _small_operands(receiver, args[0])
    return x | y


def _int_xor(universe, receiver, args):
    x, y = _small_operands(receiver, args[0])
    return x ^ y


def _int_shl(universe, receiver, args):
    x, y = _small_operands(receiver, args[0])
    if y < 0 or y >= 31:
        raise PrimFailSignal(BAD_TYPE)
    return _checked(x << y)


def _int_shr(universe, receiver, args):
    x, y = _small_operands(receiver, args[0])
    if y < 0:
        raise PrimFailSignal(BAD_TYPE)
    return x >> y


# -- arbitrary-precision fallbacks ---------------------------------------------


def _big_operands(receiver, argument) -> tuple[int, int]:
    x = guest_int_value(receiver)
    y = guest_int_value(argument)
    if x is None or y is None:
        raise PrimFailSignal(BAD_TYPE)
    return x, y


def _big_add(universe, receiver, args):
    x, y = _big_operands(receiver, args[0])
    return normalize_int(x + y)


def _big_sub(universe, receiver, args):
    x, y = _big_operands(receiver, args[0])
    return normalize_int(x - y)


def _big_mul(universe, receiver, args):
    x, y = _big_operands(receiver, args[0])
    return normalize_int(x * y)


def _big_div(universe, receiver, args):
    x, y = _big_operands(receiver, args[0])
    if y == 0:
        raise PrimFailSignal(DIVISION_BY_ZERO)
    return normalize_int(x // y)


def _big_mod(universe, receiver, args):
    x, y = _big_operands(receiver, args[0])
    if y == 0:
        raise PrimFailSignal(DIVISION_BY_ZERO)
    return normalize_int(x % y)


def _big_lt(universe, receiver, args):
    x, y = _big_operands(receiver, args[0])
    return universe.boolean(x < y)


def _big_le(universe, receiver, args):
    x, y = _big_operands(receiver, args[0])
    return universe.boolean(x <= y)


def _big_gt(universe, receiver, args):
    x, y = _big_operands(receiver, args[0])
    return universe.boolean(x > y)


def _big_ge(universe, receiver, args):
    x, y = _big_operands(receiver, args[0])
    return universe.boolean(x >= y)


def _big_eq(universe, receiver, args):
    x, y = _big_operands(receiver, args[0])
    return universe.boolean(x == y)


def _big_ne(universe, receiver, args):
    x, y = _big_operands(receiver, args[0])
    return universe.boolean(x != y)


def _register_all() -> None:
    for selector, fn, kind in [
        ("_IntAdd:", _int_add, "smallInt"),
        ("_IntSub:", _int_sub, "smallInt"),
        ("_IntMul:", _int_mul, "smallInt"),
        ("_IntDiv:", _int_div, "smallInt"),
        ("_IntMod:", _int_mod, "smallInt"),
        ("_IntLT:", _int_lt, "boolean"),
        ("_IntLE:", _int_le, "boolean"),
        ("_IntGT:", _int_gt, "boolean"),
        ("_IntGE:", _int_ge, "boolean"),
        ("_IntEQ:", _int_eq, "boolean"),
        ("_IntNE:", _int_ne, "boolean"),
        ("_IntAnd:", _int_and, "smallInt"),
        ("_IntOr:", _int_or, "smallInt"),
        ("_IntXor:", _int_xor, "smallInt"),
        ("_IntShl:", _int_shl, "smallInt"),
        ("_IntShr:", _int_shr, "smallInt"),
    ]:
        register(Primitive(selector, fn, arity=1, can_fail=True, pure=True, result_kind=kind))
    for selector, fn, kind in [
        ("_BigAdd:", _big_add, "integer"),
        ("_BigSub:", _big_sub, "integer"),
        ("_BigMul:", _big_mul, "integer"),
        ("_BigDiv:", _big_div, "integer"),
        ("_BigMod:", _big_mod, "integer"),
        ("_BigLT:", _big_lt, "boolean"),
        ("_BigLE:", _big_le, "boolean"),
        ("_BigGT:", _big_gt, "boolean"),
        ("_BigGE:", _big_ge, "boolean"),
        ("_BigEQ:", _big_eq, "boolean"),
        ("_BigNE:", _big_ne, "boolean"),
    ]:
        register(Primitive(selector, fn, arity=1, can_fail=True, pure=True, result_kind=kind))


_register_all()
