"""Block-control primitives.

``_BlockWhileTrue:`` is the loop fallback used by ``traits block
whileTrue:`` when the compiler could *not* inline the loop (receiver or
body block not statically known).  It re-enters the active evaluator
(interpreter or VM) once per iteration, so even megamorphic loops run in
bounded host stack space.

The common case never reaches this primitive: the compiler recognizes
``[cond] whileTrue: [body]`` with statically-known blocks and builds a
loop in the control-flow graph directly (paper, section 5).
"""

from __future__ import annotations

from ..objects.model import SelfBlock
from .registry import BAD_TYPE, PrimFailSignal, Primitive, register


def _block_while_true(universe, receiver, args):
    body = args[0]
    evaluator = universe.evaluator
    if (
        not isinstance(receiver, SelfBlock)
        or not isinstance(body, SelfBlock)
        or receiver.arity != 0
        or body.arity != 0
        or evaluator is None
    ):
        raise PrimFailSignal(BAD_TYPE)
    while True:
        condition = evaluator.call_block(receiver, ())
        if condition is universe.true_object:
            evaluator.call_block(body, ())
        elif condition is universe.false_object:
            return universe.nil_object
        else:
            raise PrimFailSignal(BAD_TYPE)


def _block_while_false(universe, receiver, args):
    body = args[0]
    evaluator = universe.evaluator
    if (
        not isinstance(receiver, SelfBlock)
        or not isinstance(body, SelfBlock)
        or receiver.arity != 0
        or body.arity != 0
        or evaluator is None
    ):
        raise PrimFailSignal(BAD_TYPE)
    while True:
        condition = evaluator.call_block(receiver, ())
        if condition is universe.false_object:
            evaluator.call_block(body, ())
        elif condition is universe.true_object:
            return universe.nil_object
        else:
            raise PrimFailSignal(BAD_TYPE)


def _register_all() -> None:
    register(Primitive("_BlockWhileTrue:", _block_while_true, arity=1,
                       can_fail=True, pure=False, result_kind="nil"))
    register(Primitive("_BlockWhileFalse:", _block_while_false, arity=1,
                       can_fail=True, pure=False, result_kind="nil"))


_register_all()
