"""Robust primitive operations shared by the interpreter and the VM.

Importing this package registers every primitive family.
"""

from . import blocks, floats, integers, objects_prims, vectors  # noqa: F401  (registration)
from .registry import (
    BAD_SIZE,
    BAD_TYPE,
    DIVISION_BY_ZERO,
    OUT_OF_BOUNDS,
    OVERFLOW,
    PrimFailSignal,
    Primitive,
    all_primitives,
    has_failure_variant,
    lookup_primitive,
)

__all__ = [
    "BAD_SIZE",
    "BAD_TYPE",
    "DIVISION_BY_ZERO",
    "OUT_OF_BOUNDS",
    "OVERFLOW",
    "PrimFailSignal",
    "Primitive",
    "all_primitives",
    "has_failure_variant",
    "lookup_primitive",
]
