"""Object-level primitives: cloning, identity, printing, and errors."""

from __future__ import annotations

from ..objects.errors import GuestError
from ..objects.model import BigInt, SelfObject, SelfVector
from .registry import BAD_TYPE, PrimFailSignal, Primitive, register


def _clone(universe, receiver, args):
    """Shallow copy; the clone shares the receiver's map (hidden class)."""
    if isinstance(receiver, (SelfObject, SelfVector)):
        return receiver.clone()
    # Immutable values clone to themselves (ints, floats, strings, blocks).
    return receiver


def _identity_eq(universe, receiver, args):
    """Identity for heap objects, value identity for unboxed immediates."""
    other = args[0]
    if isinstance(receiver, (SelfObject, SelfVector)):
        return universe.boolean(receiver is other)
    if isinstance(receiver, BigInt):
        return universe.boolean(isinstance(other, BigInt) and receiver.value == other.value)
    if type(receiver) is int:
        return universe.boolean(type(other) is int and receiver == other)
    if isinstance(receiver, float):
        return universe.boolean(isinstance(other, float) and receiver == other)
    if isinstance(receiver, str):
        return universe.boolean(isinstance(other, str) and receiver == other)
    return universe.boolean(receiver is other)


def _identity_ne(universe, receiver, args):
    result = _identity_eq(universe, receiver, args)
    return universe.boolean(result is universe.false_object)


def _print_string(universe, receiver, args):
    return universe.print_string(receiver)


def _print(universe, receiver, args):
    universe.write_output(universe.print_string(receiver))
    return receiver


def _print_line(universe, receiver, args):
    universe.write_output(universe.print_string(receiver) + "\n")
    return receiver


def _error(universe, receiver, args):
    message = args[0]
    if not isinstance(message, str):
        message = universe.print_string(message)
    raise GuestError(message)


def _string_size(universe, receiver, args):
    if not isinstance(receiver, str):
        raise PrimFailSignal(BAD_TYPE)
    return len(receiver)


def _string_concat(universe, receiver, args):
    if not isinstance(receiver, str) or not isinstance(args[0], str):
        raise PrimFailSignal(BAD_TYPE)
    return receiver + args[0]


# -- world mutation ---------------------------------------------------------
#
# These route through the universe's mutation API (world/universe.py),
# so each one builds a new map, swaps it in, and fires dependency-
# tracked invalidation.  They exist so guest programs — and the chaos
# and mutation-stress suites — can mutate the world *mid-run*, while
# optimized code compiled against the old world is still cached (and
# possibly live on the frame stack).


def _slot_name(universe, value) -> str:
    if not isinstance(value, str):
        raise PrimFailSignal(BAD_TYPE)
    return value


def _add_slot(universe, receiver, args):
    if not isinstance(receiver, SelfObject):
        raise PrimFailSignal(BAD_TYPE)
    universe.add_slot(receiver, _slot_name(universe, args[0]), args[1])
    return receiver


def _add_data_slot(universe, receiver, args):
    if not isinstance(receiver, SelfObject):
        raise PrimFailSignal(BAD_TYPE)
    universe.add_slot(
        receiver, _slot_name(universe, args[0]), args[1], data=True
    )
    return receiver


def _add_parent_slot(universe, receiver, args):
    if not isinstance(receiver, SelfObject):
        raise PrimFailSignal(BAD_TYPE)
    universe.add_slot(
        receiver, _slot_name(universe, args[0]), args[1], is_parent=True
    )
    return receiver


def _remove_slot(universe, receiver, args):
    if not isinstance(receiver, SelfObject):
        raise PrimFailSignal(BAD_TYPE)
    name = _slot_name(universe, args[0])
    try:
        universe.remove_slot(receiver, name)
    except KeyError:
        raise GuestError(f"no slot named {name!r} to remove")
    return receiver


def _set_slot(universe, receiver, args):
    if not isinstance(receiver, SelfObject):
        raise PrimFailSignal(BAD_TYPE)
    name = _slot_name(universe, args[0])
    try:
        universe.set_constant_slot(receiver, name, args[1])
    except KeyError:
        raise GuestError(f"no constant slot named {name!r}")
    return receiver


def _reclassify(universe, receiver, args):
    if not isinstance(receiver, SelfObject) or not isinstance(args[0], SelfObject):
        raise PrimFailSignal(BAD_TYPE)
    universe.reclassify(receiver, args[0])
    return receiver


def _register_all() -> None:
    register(Primitive("_Clone", _clone, arity=0, can_fail=False,
                       pure=False, result_kind="receiver"))
    register(Primitive("_Eq:", _identity_eq, arity=1, can_fail=False,
                       pure=True, result_kind="boolean"))
    register(Primitive("_Ne:", _identity_ne, arity=1, can_fail=False,
                       pure=True, result_kind="boolean"))
    register(Primitive("_PrintString", _print_string, arity=0, can_fail=False,
                       pure=False, result_kind="string"))
    register(Primitive("_Print", _print, arity=0, can_fail=False,
                       pure=False, result_kind="receiver"))
    register(Primitive("_PrintLine", _print_line, arity=0, can_fail=False,
                       pure=False, result_kind="receiver"))
    register(Primitive("_Error:", _error, arity=1, can_fail=False,
                       pure=False, result_kind="unknown"))
    register(Primitive("_StringSize", _string_size, arity=0, can_fail=True,
                       pure=True, result_kind="smallInt"))
    register(Primitive("_StringConcat:", _string_concat, arity=1, can_fail=True,
                       pure=True, result_kind="string"))
    # World mutation: impure, never constant-folded, invalidation-firing.
    register(Primitive("_AddSlot:Value:", _add_slot, arity=2, can_fail=True,
                       pure=False, result_kind="receiver"))
    register(Primitive("_AddDataSlot:Value:", _add_data_slot, arity=2,
                       can_fail=True, pure=False, result_kind="receiver"))
    register(Primitive("_AddParentSlot:Value:", _add_parent_slot, arity=2,
                       can_fail=True, pure=False, result_kind="receiver"))
    register(Primitive("_RemoveSlot:", _remove_slot, arity=1, can_fail=True,
                       pure=False, result_kind="receiver"))
    register(Primitive("_SetSlot:Value:", _set_slot, arity=2, can_fail=True,
                       pure=False, result_kind="receiver"))
    register(Primitive("_Reclassify:", _reclassify, arity=1, can_fail=True,
                       pure=False, result_kind="receiver"))


_register_all()
