"""Object-level primitives: cloning, identity, printing, and errors."""

from __future__ import annotations

from ..objects.errors import GuestError
from ..objects.model import BigInt, SelfObject, SelfVector
from .registry import BAD_TYPE, PrimFailSignal, Primitive, register


def _clone(universe, receiver, args):
    """Shallow copy; the clone shares the receiver's map (hidden class)."""
    if isinstance(receiver, (SelfObject, SelfVector)):
        return receiver.clone()
    # Immutable values clone to themselves (ints, floats, strings, blocks).
    return receiver


def _identity_eq(universe, receiver, args):
    """Identity for heap objects, value identity for unboxed immediates."""
    other = args[0]
    if isinstance(receiver, (SelfObject, SelfVector)):
        return universe.boolean(receiver is other)
    if isinstance(receiver, BigInt):
        return universe.boolean(isinstance(other, BigInt) and receiver.value == other.value)
    if type(receiver) is int:
        return universe.boolean(type(other) is int and receiver == other)
    if isinstance(receiver, float):
        return universe.boolean(isinstance(other, float) and receiver == other)
    if isinstance(receiver, str):
        return universe.boolean(isinstance(other, str) and receiver == other)
    return universe.boolean(receiver is other)


def _identity_ne(universe, receiver, args):
    result = _identity_eq(universe, receiver, args)
    return universe.boolean(result is universe.false_object)


def _print_string(universe, receiver, args):
    return universe.print_string(receiver)


def _print(universe, receiver, args):
    universe.write_output(universe.print_string(receiver))
    return receiver


def _print_line(universe, receiver, args):
    universe.write_output(universe.print_string(receiver) + "\n")
    return receiver


def _error(universe, receiver, args):
    message = args[0]
    if not isinstance(message, str):
        message = universe.print_string(message)
    raise GuestError(message)


def _string_size(universe, receiver, args):
    if not isinstance(receiver, str):
        raise PrimFailSignal(BAD_TYPE)
    return len(receiver)


def _string_concat(universe, receiver, args):
    if not isinstance(receiver, str) or not isinstance(args[0], str):
        raise PrimFailSignal(BAD_TYPE)
    return receiver + args[0]


def _register_all() -> None:
    register(Primitive("_Clone", _clone, arity=0, can_fail=False,
                       pure=False, result_kind="receiver"))
    register(Primitive("_Eq:", _identity_eq, arity=1, can_fail=False,
                       pure=True, result_kind="boolean"))
    register(Primitive("_Ne:", _identity_ne, arity=1, can_fail=False,
                       pure=True, result_kind="boolean"))
    register(Primitive("_PrintString", _print_string, arity=0, can_fail=False,
                       pure=False, result_kind="string"))
    register(Primitive("_Print", _print, arity=0, can_fail=False,
                       pure=False, result_kind="receiver"))
    register(Primitive("_PrintLine", _print_line, arity=0, can_fail=False,
                       pure=False, result_kind="receiver"))
    register(Primitive("_Error:", _error, arity=1, can_fail=False,
                       pure=False, result_kind="unknown"))
    register(Primitive("_StringSize", _string_size, arity=0, can_fail=True,
                       pure=True, result_kind="smallInt"))
    register(Primitive("_StringConcat:", _string_concat, arity=1, can_fail=True,
                       pure=True, result_kind="string"))


_register_all()
