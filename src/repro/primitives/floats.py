"""Floating-point primitives.

The benchmark suites are integer programs, but the language is complete:
``_Flt*`` primitives mirror the ``_Int*`` family (robust type checks, no
overflow checks — IEEE arithmetic saturates to infinities instead of
failing, as in real SELF).
"""

from __future__ import annotations

from ..objects.model import guest_int_value
from .registry import BAD_TYPE, DIVISION_BY_ZERO, PrimFailSignal, Primitive, register


def _float_operands(receiver, argument) -> tuple[float, float]:
    if isinstance(receiver, float) and isinstance(argument, float):
        return receiver, argument
    raise PrimFailSignal(BAD_TYPE)


def _flt_add(universe, receiver, args):
    x, y = _float_operands(receiver, args[0])
    return x + y


def _flt_sub(universe, receiver, args):
    x, y = _float_operands(receiver, args[0])
    return x - y


def _flt_mul(universe, receiver, args):
    x, y = _float_operands(receiver, args[0])
    return x * y


def _flt_div(universe, receiver, args):
    x, y = _float_operands(receiver, args[0])
    if y == 0.0:
        raise PrimFailSignal(DIVISION_BY_ZERO)
    return x / y


def _flt_lt(universe, receiver, args):
    x, y = _float_operands(receiver, args[0])
    return universe.boolean(x < y)


def _flt_le(universe, receiver, args):
    x, y = _float_operands(receiver, args[0])
    return universe.boolean(x <= y)


def _flt_gt(universe, receiver, args):
    x, y = _float_operands(receiver, args[0])
    return universe.boolean(x > y)


def _flt_ge(universe, receiver, args):
    x, y = _float_operands(receiver, args[0])
    return universe.boolean(x >= y)


def _flt_eq(universe, receiver, args):
    x, y = _float_operands(receiver, args[0])
    return universe.boolean(x == y)


def _int_as_float(universe, receiver, args):
    value = guest_int_value(receiver)
    if value is None:
        raise PrimFailSignal(BAD_TYPE)
    return float(value)


def _flt_truncate(universe, receiver, args):
    if not isinstance(receiver, float):
        raise PrimFailSignal(BAD_TYPE)
    from ..objects.model import normalize_int

    return normalize_int(int(receiver))


def _register_all() -> None:
    for selector, fn, kind in [
        ("_FltAdd:", _flt_add, "float"),
        ("_FltSub:", _flt_sub, "float"),
        ("_FltMul:", _flt_mul, "float"),
        ("_FltDiv:", _flt_div, "float"),
        ("_FltLT:", _flt_lt, "boolean"),
        ("_FltLE:", _flt_le, "boolean"),
        ("_FltGT:", _flt_gt, "boolean"),
        ("_FltGE:", _flt_ge, "boolean"),
        ("_FltEQ:", _flt_eq, "boolean"),
    ]:
        register(Primitive(selector, fn, arity=1, can_fail=True, pure=True, result_kind=kind))
    register(Primitive("_IntAsFloat", _int_as_float, arity=0, can_fail=True,
                       pure=True, result_kind="float"))
    register(Primitive("_FltTruncate", _flt_truncate, arity=0, can_fail=True,
                       pure=True, result_kind="integer"))


_register_all()
