"""The primitive registry.

SELF primitives are *robust*: every primitive validates the types of its
receiver and arguments and checks for exceptional conditions (overflow,
divide-by-zero, out-of-bounds) before doing any work.  A failing
primitive invokes a *failure block* — either one the programmer supplied
via the ``IfFail:`` suffix, or a default handler that raises a
guest-level error.  The compiler's job (paper, section 3.2.3) is to prove
those checks redundant and delete them.

Primitive functions are host callables ``fn(universe, receiver, args)``
returning a guest value or raising :class:`PrimFailSignal` with a failure
code string.  They are shared between the reference interpreter and the
bytecode VM (used whenever a primitive is *not* inlined by the compiler,
and as the semantic oracle for the inlined expansions).
"""

from __future__ import annotations

from typing import Callable, Optional

# Failure codes, mirroring the error selectors real SELF passes to
# failure blocks.
BAD_TYPE = "badTypeError"
OVERFLOW = "overflowError"
DIVISION_BY_ZERO = "divisionByZeroError"
OUT_OF_BOUNDS = "outOfBoundsError"
BAD_SIZE = "badSizeError"


class PrimFailSignal(Exception):
    """Internal control-flow signal: a primitive failed with ``code``.

    Never escapes to embedding code; the interpreter and VM catch it and
    run the failure block (or the default failure handler).
    """

    __slots__ = ("code",)

    def __init__(self, code: str) -> None:
        self.code = code
        super().__init__(code)


class Primitive:
    """Descriptor for one primitive operation.

    Attributes:
        selector: the base selector, e.g. ``'_IntAdd:'`` (the ``IfFail:``
            variant is derived automatically).
        fn: the host implementation.
        arity: number of message arguments (excluding receiver and any
            failure block).
        can_fail: whether a failure block / default handler is reachable.
        pure: side-effect free — eligible for compile-time constant
            folding when all arguments are compile-time constants.
        result_kind: a coarse static result hint for the compiler's table
            of primitive result types (paper, end of section 3.2.3):
            one of ``'smallInt'``, ``'integer'`` (small or big),
            ``'boolean'``, ``'float'``, ``'vector'``, ``'string'``,
            ``'receiver'``, ``'nil'``, ``'unknown'``.
    """

    __slots__ = ("selector", "fn", "arity", "can_fail", "pure", "result_kind")

    def __init__(
        self,
        selector: str,
        fn: Callable,
        arity: int,
        can_fail: bool = True,
        pure: bool = False,
        result_kind: str = "unknown",
    ) -> None:
        self.selector = selector
        self.fn = fn
        self.arity = arity
        self.can_fail = can_fail
        self.pure = pure
        self.result_kind = result_kind

    @property
    def fail_selector(self) -> str:
        """The selector of the explicit-failure-block variant."""
        if self.selector.endswith(":"):
            return self.selector + "IfFail:"
        return self.selector + "IfFail:"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Primitive {self.selector}/{self.arity}>"


_REGISTRY: dict[str, Primitive] = {}


def register(primitive: Primitive) -> Primitive:
    if primitive.selector in _REGISTRY:
        raise ValueError(f"duplicate primitive {primitive.selector}")
    _REGISTRY[primitive.selector] = primitive
    return primitive


def lookup_primitive(selector: str) -> Optional[Primitive]:
    """Find the primitive for a send selector.

    Accepts both the base selector (``_IntAdd:``) and the failure-block
    variant (``_IntAdd:IfFail:``); returns ``None`` for unknown
    primitives (a guest-level error at send time).
    """
    primitive = _REGISTRY.get(selector)
    if primitive is not None:
        return primitive
    if selector.endswith("IfFail:"):
        base = selector[: -len("IfFail:")]
        primitive = _REGISTRY.get(base)
        if primitive is not None and primitive.can_fail:
            return primitive
        # Zero-argument primitives: '_Foo' + 'IfFail:' strips to '_Foo'
        # only when the base had a trailing colon; handle '_FooIfFail:'.
        if base.endswith(":"):
            primitive = _REGISTRY.get(base[:-1])
            if primitive is not None and primitive.can_fail and primitive.arity == 0:
                return primitive
    return None


def has_failure_variant(selector: str) -> bool:
    """Whether ``selector`` is the ``IfFail:`` form of a primitive."""
    return selector.endswith("IfFail:") and lookup_primitive(selector) is not None


def all_primitives() -> dict[str, Primitive]:
    return dict(_REGISTRY)
