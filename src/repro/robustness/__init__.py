"""Failure containment and graceful degradation.

The reproduction's compiler is built on optimistic assumptions —
predicted type tests, inlined primitives, split fronts — and the
production requirement is that no guest program, adversarial input, or
compiler defect may crash the runtime or silently corrupt a
measurement.  This package provides the three pieces of that story:

* :mod:`.faults` — a deterministic, seeded fault-injection framework
  with named sites planted through the compiler, VM backend, and bench
  cache (zero overhead when disabled);
* :mod:`.recovery` — the structured per-runtime recovery log every
  degradation is recorded in;
* :mod:`.tiers` — the tiered execution pipeline: optimizing compile →
  pessimistic compile → AST interpreter, plus the compile watchdog.

See docs/INTERNALS.md §8 for the failure model.
"""

from . import faults, recovery  # noqa: F401

# .tiers imports the compiler and VM backend, which themselves import
# .faults through this package — so it must load lazily to keep the
# import graph acyclic.


def __getattr__(name):
    if name == "tiers":
        from . import tiers

        return tiers
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
