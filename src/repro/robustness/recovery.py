"""The structured per-runtime recovery log.

Every degradation the tiered pipeline performs — optimizing compile
falling back to a pessimistic compile, a pessimistic compile falling
back to the AST interpreter — is recorded here instead of propagating
an exception to the guest program.  The log is deterministic (no
timestamps, no host state), so two runs of the same workload under the
same fault plan produce identical logs.

Schema (one :class:`RecoveryEvent` per degradation)::

    stage       what was being attempted ("compile", "compile-block")
    selector    the method or block being compiled
    from_tier   the tier that failed ("optimizing" | "pessimistic")
    to_tier     the tier execution degraded to
                ("pessimistic" | "interpreter")
    error_kind  exception class name, e.g. "InjectedFault"
    detail      str(exception)
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Iterator

#: the tier ladder, fastest first
TIER_OPTIMIZING = "optimizing"
TIER_PESSIMISTIC = "pessimistic"
TIER_INTERPRETER = "interpreter"

TIERS = (TIER_OPTIMIZING, TIER_PESSIMISTIC, TIER_INTERPRETER)


@dataclass(frozen=True)
class RecoveryEvent:
    stage: str
    selector: str
    from_tier: str
    to_tier: str
    error_kind: str
    detail: str

    def to_record(self) -> dict:
        return asdict(self)


class RecoveryLog:
    """Append-only log of degradations, owned by one Runtime.

    With a tracer attached, every degradation is mirrored as a
    ``tier-degrade`` trace event; the log itself stays deterministic.
    """

    def __init__(self, tracer=None) -> None:
        self.events: list[RecoveryEvent] = []
        if tracer is None:
            from ..obs.trace import NULL_TRACER

            tracer = NULL_TRACER
        self.tracer = tracer

    def record(
        self,
        stage: str,
        selector: str,
        from_tier: str,
        to_tier: str,
        error: BaseException,
    ) -> RecoveryEvent:
        event = RecoveryEvent(
            stage=stage,
            selector=selector,
            from_tier=from_tier,
            to_tier=to_tier,
            error_kind=type(error).__name__,
            detail=str(error),
        )
        self.events.append(event)
        if self.tracer.enabled:
            from ..obs.trace import CAT_ROBUSTNESS

            self.tracer.event(
                "tier-degrade",
                category=CAT_ROBUSTNESS,
                stage=stage,
                selector=selector,
                from_tier=from_tier,
                to_tier=to_tier,
                error=f"{event.error_kind}: {event.detail}",
            )
        return event

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[RecoveryEvent]:
        return iter(self.events)

    def degradations_to(self, tier: str) -> list[RecoveryEvent]:
        return [e for e in self.events if e.to_tier == tier]

    def to_records(self) -> list[dict]:
        """JSON-serializable form (for reports and the bench harness)."""
        return [e.to_record() for e in self.events]

    def summary(self) -> dict[str, int]:
        """Degradation counts keyed by ``from_tier->to_tier``."""
        counts: dict[str, int] = {}
        for event in self.events:
            key = f"{event.from_tier}->{event.to_tier}"
            counts[key] = counts.get(key, 0) + 1
        return counts
