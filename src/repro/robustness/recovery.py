"""The structured per-runtime recovery log.

Every degradation the tiered pipeline performs — optimizing compile
falling back to a pessimistic compile, a pessimistic compile falling
back to the AST interpreter, a caching layer rejecting an entry and
recompiling fresh, an invalidation forcing live frames down a tier —
is recorded here instead of propagating an exception to the guest
program.  The log is deterministic (no timestamps, no host state), so
two runs of the same workload under the same fault plan produce
identical logs.

The log is a **bounded ring**: long-lived serving runtimes under a
persistent fault would otherwise grow it without limit.  The newest
``REPRO_RECOVERY_LOG_LIMIT`` events (default 4096) are retained;
``dropped`` counts evictions and ``total`` counts every event ever
recorded, so "how many degradations happened" stays exact even after
the ring wraps.

Schema (one :class:`RecoveryEvent` per degradation)::

    stage       what was being attempted ("compile", "compile-block",
                "codecache-load", "codecache-store", "share-clone",
                "invalidate", "reoptimize")
    selector    the method or block being compiled
    from_tier   the tier (or layer) that failed
    to_tier     the tier execution degraded to
    error_kind  exception class name, e.g. "InjectedFault"
    detail      str(exception)
"""

from __future__ import annotations

import os
from collections import deque
from dataclasses import asdict, dataclass
from typing import Iterator

#: the tier ladder, fastest first.  "translated" is the raw-speed tier
#: (vm/translate.py): an optimizing-tier body whose handler stream has
#: additionally been compiled to one specialized host function; it
#: degrades back to "optimizing" (the predecoded stream of the same
#: body) on emission failure or invalidation.
TIER_TRANSLATED = "translated"
TIER_OPTIMIZING = "optimizing"
TIER_PESSIMISTIC = "pessimistic"
TIER_INTERPRETER = "interpreter"

TIERS = (TIER_TRANSLATED, TIER_OPTIMIZING, TIER_PESSIMISTIC, TIER_INTERPRETER)

#: default ring capacity (overridable per log or via the environment)
DEFAULT_LIMIT = 4096


def limit_from_env() -> int:
    raw = os.environ.get("REPRO_RECOVERY_LOG_LIMIT", "")
    return int(raw) if raw.strip() else DEFAULT_LIMIT


@dataclass(frozen=True)
class RecoveryEvent:
    stage: str
    selector: str
    from_tier: str
    to_tier: str
    error_kind: str
    detail: str

    def to_record(self) -> dict:
        return asdict(self)


class RecoveryLog:
    """Bounded ring of degradations, owned by one Runtime.

    With a tracer attached, every degradation is mirrored as a
    ``tier-degrade`` trace event; the log itself stays deterministic.
    """

    def __init__(self, tracer=None, limit: int = 0, scope: str = "") -> None:
        self.limit = limit if limit > 0 else limit_from_env()
        self.events: deque[RecoveryEvent] = deque(maxlen=self.limit)
        #: every event ever recorded (monotonic; unaffected by the ring)
        self.total = 0
        #: events evicted from the ring (total - len(events))
        self.dropped = 0
        #: the owning universe's id — every record this log emits is
        #: attributable to exactly one tenant (empty = unscoped)
        self.scope = scope
        if tracer is None:
            from ..obs.trace import NULL_TRACER

            tracer = NULL_TRACER
        self.tracer = tracer

    def note(
        self,
        stage: str,
        selector: str,
        from_tier: str,
        to_tier: str,
        error_kind: str,
        detail: str,
    ) -> RecoveryEvent:
        """Record a degradation from explicit parts (no exception object)."""
        event = RecoveryEvent(
            stage=stage,
            selector=selector,
            from_tier=from_tier,
            to_tier=to_tier,
            error_kind=error_kind,
            detail=detail,
        )
        if len(self.events) == self.limit:
            self.dropped += 1
        self.events.append(event)
        self.total += 1
        if self.tracer.enabled:
            from ..obs.trace import CAT_ROBUSTNESS

            self.tracer.event(
                "tier-degrade",
                category=CAT_ROBUSTNESS,
                stage=stage,
                selector=selector,
                from_tier=from_tier,
                to_tier=to_tier,
                error=f"{error_kind}: {detail}",
            )
        return event

    def record(
        self,
        stage: str,
        selector: str,
        from_tier: str,
        to_tier: str,
        error: BaseException,
    ) -> RecoveryEvent:
        return self.note(
            stage, selector, from_tier, to_tier,
            type(error).__name__, str(error),
        )

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[RecoveryEvent]:
        return iter(self.events)

    def degradations_to(self, tier: str) -> list[RecoveryEvent]:
        return [e for e in self.events if e.to_tier == tier]

    def to_records(self) -> list[dict]:
        """JSON-serializable form (for reports and the bench harness)."""
        return [e.to_record() for e in self.events]

    def to_scoped_records(self) -> list[dict]:
        """Like :meth:`to_records`, with the owning universe stamped on
        every record — a multi-tenant report can merge logs from many
        runtimes without losing attribution.  Separate from
        :meth:`to_records` so single-tenant record streams stay
        bit-identical across runs regardless of universe numbering."""
        return [
            dict(e.to_record(), universe=self.scope) for e in self.events
        ]

    def summary(self) -> dict[str, int]:
        """Degradation counts keyed by ``from_tier->to_tier``.

        Computed over the retained ring; after a wrap the per-edge
        counts cover the newest ``limit`` events (``dropped`` says how
        many are missing).
        """
        counts: dict[str, int] = {}
        for event in self.events:
            key = f"{event.from_tier}->{event.to_tier}"
            counts[key] = counts.get(key, 0) + 1
        return counts
