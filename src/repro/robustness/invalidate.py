"""Invalidation: retire everything a world mutation falsified.

:func:`fire` is the single entry point, called by the universe's
mutation API (:meth:`~repro.world.universe.Universe.apply_map_change`)
with the dependency keys the mutation broke.  The protocol, in order:

1. **Collect** every registered target depending on any fired key.
2. **Epoch bump** — ``universe.lookup_epoch`` invalidates every per-map
   runtime lookup cache lazily (they compare epochs on next probe).
3. **Inline-cache flush** — every IC site of every compiled body in
   every registered runtime is cleared *in place*.  Predecoded threaded
   streams reference their :class:`~repro.vm.code.InlineCacheSite`
   objects directly, so the flush reaches code currently executing in
   live frames without re-predecoding: the very next send through any
   site re-resolves against the mutated world.  (Wholesale, not
   per-edge: sound by construction, and mutations are rare events.)
4. **Code retirement** — each dependent compiled body is marked
   ``retired``, removed from its runtime's method/block/shared caches
   (so no *new* activation uses it), and its persistent code-cache
   entry, if any, is deleted from disk.
5. **Deopt of in-flight frames** — a retired body may still be running.
   Full mid-activation deoptimization (mapping a bytecode pc back to an
   AST activation) is not attempted: the flushed ICs already make every
   *dynamic* decision in those frames correct, and the frames are
   allowed to complete.  Their statically inlined/folded remainder is
   the documented soundness gap (docs/INTERNALS.md §11).  To keep the
   window bounded, the runtime enters a **deopt storm**: until every
   affected frame has returned, new compiles take the pessimistic tier
   (no speculative inlining against the world that just changed) and
   are marked provisional.
6. **Transparent reoptimization** — at the runtime's next top-level
   entry with no live frames, provisional bodies are dropped, ICs are
   flushed once more, and the storm ends; subsequent sends recompile at
   the optimizing tier against the settled world
   (:meth:`Runtime._maybe_reoptimize`).

Every step is host bookkeeping: with zero mutations :func:`fire` never
runs and all modeled measurements are bit-identical to a build without
this module.
"""

from __future__ import annotations

from typing import Iterable

from ..world.deps import CodeDependency, LookupCachesDependent
from .recovery import TIER_OPTIMIZING, TIER_PESSIMISTIC


def _row_retained(row, fired_map_ids) -> bool:
    """A PIC row survives a targeted flush only when its recorded
    lookup scope is known and disjoint from the fired maps."""
    rmap, _action, deps = row
    return (
        deps is not None
        and rmap.map_id not in fired_map_ids
        and not (deps & fired_map_ids)
    )


def _flush_site(site, fired_map_ids) -> None:
    site.entries.clear()
    site.cached_map_id = -1
    site.cached_map = None
    site.cached_action = None
    pic = site.pic
    if pic is not None:
        if fired_map_ids is None:
            site.pic = None
        else:
            site.pic = [
                row for row in pic if _row_retained(row, fired_map_ids)
            ] or None
    if site.mega is not None and fired_map_ids is None:
        site.mega = None


def _flush_ics(runtime, fired_map_ids=None) -> int:
    """Clear every inline-cache site the runtime could ever execute,
    including sites of already-retired bodies still held by live frames.

    ``fired_map_ids`` (a set of map ids every fired dependency key is
    scoped to) enables *targeted* retention on the dispatch ladder:
    entry caches still flush wholesale (they are re-seeded per send and
    resolution results may embed mutated values), but PIC rows and
    megamorphic-table rows whose recorded lookup scope is disjoint from
    the fired maps survive — mutating one receiver class must not cost
    the other N-1 classes their warm dispatch.  ``None`` (a keyless
    flush, or keys not scoped to maps) drops the whole ladder.
    """
    if fired_map_ids is None:
        runtime.mega_tables.clear()
        runtime.mega_deps.clear()
    else:
        for selector, table in runtime.mega_tables.items():
            deps = runtime.mega_deps.get(selector, {})
            for rmap in list(table):
                row_deps = deps.get(rmap.map_id)
                if (
                    row_deps is None
                    or rmap.map_id in fired_map_ids
                    or (row_deps & fired_map_ids)
                ):
                    del table[rmap]
                    deps.pop(rmap.map_id, None)
    flushed = 0
    for code in runtime.iter_compiled_codes():
        for site in getattr(code, "ic_sites", ()):
            _flush_site(site, fired_map_ids)
            flushed += 1
    for code in runtime._retired_live:
        for site in getattr(code, "ic_sites", ()):
            _flush_site(site, fired_map_ids)
            flushed += 1
    return flushed


def _action_dead(action, dead_code_ids: set) -> bool:
    return action[0] in ("call", "interp") and id(action[1]) in dead_code_ids


def _drop_retired_rows(runtime, dead_code_ids: set) -> None:
    """Second pass after code retirement: a retained PIC/table row must
    never dispatch a *new* activation into a body this fire retired
    (retirement runs after the flush, so the flush could not see it)."""
    for selector, table in runtime.mega_tables.items():
        deps = runtime.mega_deps.get(selector, {})
        for rmap, action in list(table.items()):
            if _action_dead(action, dead_code_ids):
                del table[rmap]
                deps.pop(rmap.map_id, None)
    for code in list(runtime.iter_compiled_codes()) + runtime._retired_live:
        for site in getattr(code, "ic_sites", ()):
            pic = site.pic
            if pic is not None:
                site.pic = [
                    row for row in pic
                    if not _action_dead(row[1], dead_code_ids)
                ] or None


def _retire_code(runtime, target: CodeDependency, stats: dict) -> bool:
    """Remove one dependent compiled body from every cache that serves it."""
    code = target.code
    code.retired = True
    profiler = getattr(runtime, "profiler", None)
    if profiler is not None:
        # Pin the body so its send-site counters stay attributable in
        # the profile after the caches below drop their references.
        profiler.note_retired(code)
    # The translation tier is retired through the same dependency edge:
    # ``False`` pins the body untranslatable, so live frames fall back
    # to the (IC-flushed) predecoded stream at their next activation
    # boundary and the dead body is never re-promoted.  A fresh compile
    # of the selector gets a fresh Code and earns translation anew.
    if code.translated:
        runtime.translate_stats["retired"] += 1
    code.translated = False
    retired = False
    if target.kind == "method":
        entry = runtime._method_code.get(target.cache_key)
        if entry is not None and entry[1] is code:
            del runtime._method_code[target.cache_key]
            stats["codes_retired"] += 1
            retired = True
    elif target.kind == "block":
        entry = runtime._block_code.get(target.cache_key)
        if entry is not None and entry[1] is code:
            del runtime._block_code[target.cache_key]
            stats["codes_retired"] += 1
            retired = True
    elif target.kind == "shared":
        entry = runtime._shared_method_code.get(target.cache_key)
        if entry is not None and entry[1] is code:
            del runtime._shared_method_code[target.cache_key]
            stats["share_canonical_dropped"] += 1
            retired = True
    if target.disk_key and runtime.code_cache is not None:
        if runtime.code_cache.evict(target.disk_key):
            stats["codecache_invalidated"] += 1
    return retired


def fire(universe, keys: Iterable[tuple], reason: str = "mutation") -> int:
    """Invalidate everything depending on ``keys``; returns the number
    of retired compiled bodies."""
    registry = universe.deps
    stats = registry.stats
    stats["invalidations"] += 1
    keyset = frozenset(keys)
    targets = registry.targets_for(keyset)

    # Per-map runtime lookup caches: lazily discarded on next probe.
    universe.lookup_epoch += 1
    stats["epoch_bumps"] += 1

    # Map scope of this fire, for targeted dispatch-ladder retention:
    # every key kind carries its map id second; any key that is not
    # map-scoped widens the flush back to wholesale (None).
    fired_map_ids: object = set()
    for key in keyset:
        if (
            key
            and key[0] in ("shape", "const", "lookup")
            and len(key) > 1
            and isinstance(key[1], int)
        ):
            fired_map_ids.add(key[1])
        else:
            fired_map_ids = None
            break

    runtimes = list(universe.runtimes)
    for runtime in runtimes:
        stats["ic_flushes"] += _flush_ics(runtime, fired_map_ids)

    retired_before = stats["codes_retired"]
    code_targets = [t for t in targets if isinstance(t, CodeDependency)]
    retired_per_runtime: dict[int, int] = {}
    for target in code_targets:
        runtime = target.runtime_ref()
        if runtime is not None and _retire_code(runtime, target, stats):
            key = id(runtime)
            retired_per_runtime[key] = retired_per_runtime.get(key, 0) + 1
        registry.unregister(target)
    for target in targets:
        if isinstance(target, LookupCachesDependent):
            registry.unregister(target)

    # Frames still executing a retired body: let them finish (their
    # dynamic decisions are correct through the flushed ICs) but force
    # pessimistic compiles until they do, and remember the bodies so a
    # *second* mutation can still reach their IC sites.
    retired_codes = {id(t.code): t for t in code_targets}
    for runtime in runtimes:
        live = [
            frame for frame in runtime.frames
            if id(frame.code) in retired_codes
        ]
        if live:
            stats["frames_deoptimized"] += len(live)
            runtime._deopt_storm = True
            for frame in live:
                if frame.code not in runtime._retired_live:
                    runtime._retired_live.append(frame.code)
        n_retired = retired_per_runtime.get(id(runtime), 0)
        if live or n_retired:
            # min(), not next(): target collection order follows the
            # registry's id-keyed sets, which vary with host address
            # layout — the recovery log must not.
            selector = (
                retired_codes[id(live[0].code)].selector if live
                else min(
                    t.selector for t in code_targets
                    if t.runtime_ref() is runtime
                )
            )
            runtime.recovery.note(
                stage="invalidate",
                selector=selector,
                from_tier=TIER_OPTIMIZING,
                to_tier=TIER_PESSIMISTIC,
                error_kind="WorldMutation",
                detail=(
                    f"{reason}: {n_retired} compiled body(ies) retired, "
                    f"{len(live)} live frame(s)"
                ),
            )
        if runtime.tracer.enabled:
            from ..obs.trace import CAT_ROBUSTNESS

            runtime.tracer.event(
                "invalidate",
                category=CAT_ROBUSTNESS,
                reason=reason,
                keys=len(keyset),
                targets=len(targets),
                live_frames=len(live),
            )

    if code_targets and fired_map_ids is not None:
        # Retirement ran after the flush: purge retained ladder rows
        # that would dispatch new activations into a just-retired body.
        dead_code_ids = {id(t.code) for t in code_targets}
        for runtime in runtimes:
            if runtime.pic_enabled:
                _drop_retired_rows(runtime, dead_code_ids)

    retired = stats["codes_retired"] - retired_before
    if code_targets:
        # Interned-lattice memo tables are never semantically stale
        # (pure structural memos), but a retirement wave is a natural
        # hygiene point to drop memos built for dead compilation units.
        from ..types.lattice import clear_caches

        clear_caches()
    return retired
