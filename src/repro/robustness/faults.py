"""Deterministic, seeded fault injection.

Named *sites* are planted at the seams of the compile pipeline and the
bench cache.  Each site is one line of the form::

    if faults.ENABLED and faults.hit(faults.SITE_X):
        <apply site-specific corruption>

``ENABLED`` is a module-level boolean that is ``False`` unless a plan
is installed, so a disabled build pays exactly one attribute read per
site — and no site sits on a per-instruction path (the hottest one,
``vm.predecode``, runs once per code installation).

A :class:`FaultPlan` names a site, a mode, and *when* to fire: the Nth
hit of that site within the process (1-based), optionally persisting
from that hit onward.  Everything is deterministic: the same plan
against the same workload fires at the same place every time, and a
*seed* merely derives the hit number reproducibly so CI can sweep a
seed matrix without enumerating hit counts by hand.

Modes:

* ``raise`` — raise :class:`~repro.objects.errors.InjectedFault` at the
  site (models a crash inside that phase);
* ``corrupt`` — ``hit()`` returns True and the site applies a
  site-specific corruption to its in-flight data (models a wild write
  that a later integrity check must catch).

Activation:

* programmatic — :func:`install`, :func:`clear`, or the
  :func:`injected` context manager (what the chaos tests use);
* environment — ``REPRO_FAULTS="site[:mode][:nth[+]]; ..."`` with an
  optional ``REPRO_FAULT_SEED`` (read once at import, for CLI runs).
"""

from __future__ import annotations

import hashlib
import os
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterable, Optional

from ..objects.errors import InjectedFault

# -- registered sites -------------------------------------------------------

SITE_COMPILER_ENGINE = "compiler.engine"
SITE_COMPILER_LOOPS = "compiler.loops"
SITE_VM_CODEGEN = "vm.codegen"
SITE_VM_PREDECODE = "vm.predecode"
SITE_BENCH_CACHE = "bench.cache"
#: the PR 4 caching layers: persistent code cache (read/write seams)
#: and the cross-map share-clone path.  Raise-mode fires degrade to a
#: fresh compile (recorded in the recovery log); corrupt-mode fires are
#: caught by the layers' own integrity checks.
SITE_CODECACHE_LOAD = "compiler.codecache.load"
SITE_CODECACHE_STORE = "compiler.codecache.store"
SITE_VM_SHARING = "vm.sharing.clone"
#: the translation tier's emission/compile() seam (vm/translate.py):
#: raise- and corrupt-mode fires are both contained by marking the body
#: untranslatable and falling back to the predecoded stream.
SITE_VM_TRANSLATE = "vm.translate.emit"
#: the differential-fuzzing oracle's answer-observation seam
#: (fuzz/oracle.py): a corrupt-mode fire perturbs the observed answer of
#: one probe — the one fault in the registry that is *supposed* to
#: produce a divergence, so the oracle's detection and the shrinker can
#: be exercised end to end.  Benchmarks never reach this site, so chaos
#: cells that arm it simply never fire.
SITE_FUZZ_PROBE = "fuzz.probe.result"

#: every site planted in the source tree (the chaos matrix iterates this)
ALL_SITES = (
    SITE_COMPILER_ENGINE,
    SITE_COMPILER_LOOPS,
    SITE_VM_CODEGEN,
    SITE_VM_PREDECODE,
    SITE_BENCH_CACHE,
    SITE_CODECACHE_LOAD,
    SITE_CODECACHE_STORE,
    SITE_VM_SHARING,
    SITE_VM_TRANSLATE,
    SITE_FUZZ_PROBE,
)

MODES = ("raise", "corrupt")

#: fast-path flag: sites check this before calling :func:`hit`
ENABLED = False


@dataclass(frozen=True)
class FaultPlan:
    """One armed fault: fire at ``site`` on the ``nth`` hit."""

    site: str
    mode: str = "raise"
    nth: int = 1
    #: fire on *every* hit from the nth onward (models a persistent
    #: defect rather than a transient one)
    persistent: bool = False
    #: restrict the plan to one universe: hits outside the scope are
    #: neither counted nor fired, so the nth-hit position is counted in
    #: the target tenant's own hit stream and another tenant's traffic
    #: can never consume (or trip) a fault aimed elsewhere.  The scope
    #: is selected with :func:`scoped_to`; "" means unscoped (ambient
    #: behavior, every hit counts).
    scope: str = ""

    def __post_init__(self) -> None:
        if self.site not in ALL_SITES:
            raise ValueError(
                f"unknown fault site {self.site!r}; registered: {ALL_SITES}"
            )
        if self.mode not in MODES:
            raise ValueError(f"unknown fault mode {self.mode!r}; known: {MODES}")
        if self.nth < 1:
            raise ValueError("nth is 1-based and must be >= 1")

    @classmethod
    def from_spec(cls, spec: str, seed: Optional[int] = None) -> "FaultPlan":
        """Parse ``site[:mode][:nth[+]]``.

        When ``nth`` is omitted it is derived deterministically from
        ``seed`` (default seed 0), so a CI seed sweep probes different
        hit positions without spelling them out.

        Malformed specs raise :class:`ValueError` naming the offending
        spec and what was wrong with it — a CI matrix entry with a typo
        must fail loudly at arm time, not silently arm nothing.
        """
        if not spec or not spec.strip():
            raise ValueError("empty fault spec")
        parts = [p.strip() for p in spec.strip().split(":")]
        if len(parts) > 3:
            raise ValueError(
                f"malformed fault spec {spec!r}: expected site[:mode][:nth[+]],"
                f" got {len(parts)} ':'-separated fields"
            )
        site = parts[0]
        if not site:
            raise ValueError(f"malformed fault spec {spec!r}: empty site")
        mode = parts[1] if len(parts) > 1 and parts[1] else "raise"
        persistent = False
        if len(parts) > 2 and parts[2]:
            raw = parts[2]
            if raw.endswith("+"):
                persistent = True
                raw = raw[:-1]
            try:
                nth = int(raw)
            except ValueError:
                raise ValueError(
                    f"malformed fault spec {spec!r}: nth must be an integer"
                    f" (optionally suffixed '+'), got {parts[2]!r}"
                ) from None
            if nth < 1:
                raise ValueError(
                    f"malformed fault spec {spec!r}: nth is 1-based and"
                    f" must be >= 1, got {nth}"
                )
        else:
            nth = derived_nth(site, 0 if seed is None else seed)
        return cls(site=site, mode=mode, nth=nth, persistent=persistent)


def derived_nth(site: str, seed: int, span: int = 8) -> int:
    """A deterministic hit number in ``1..span`` from (site, seed)."""
    digest = hashlib.sha256(f"{site}\0{seed}".encode()).digest()
    return int.from_bytes(digest[:4], "big") % span + 1


class _FaultState:
    """The armed plans plus per-site hit counters and a fired journal."""

    __slots__ = ("plans", "counters", "fired")

    def __init__(self, plans: Iterable[FaultPlan]) -> None:
        self.plans: dict[str, FaultPlan] = {}
        for plan in plans:
            if plan.site in self.plans:
                raise ValueError(f"duplicate plan for site {plan.site!r}")
            self.plans[plan.site] = plan
        self.counters: dict[str, int] = {}
        #: (site, hit index, mode) for every fault that actually fired
        self.fired: list[tuple[str, int, str]] = []


_STATE: Optional[_FaultState] = None

#: which universe's execution is currently on the stack (set by the
#: serving supervisor around each tenant request); "" = no scope active
_ACTIVE_SCOPE = ""


def current_scope() -> str:
    return _ACTIVE_SCOPE


@contextmanager
def scoped_to(universe_id: str):
    """Attribute every fault-site hit inside the block to one tenant.

    Scoped plans (``FaultPlan.scope``) only see hits made under a
    matching scope; unscoped plans are unaffected.  Nests (restores the
    previous scope on exit) so a supervisor can wrap nested runs.
    """
    global _ACTIVE_SCOPE
    previous = _ACTIVE_SCOPE
    _ACTIVE_SCOPE = universe_id
    try:
        yield
    finally:
        _ACTIVE_SCOPE = previous


def install(plans: Iterable[FaultPlan]) -> None:
    """Arm the given plans (replacing any previous installation)."""
    global _STATE, ENABLED
    _STATE = _FaultState(plans)
    ENABLED = bool(_STATE.plans)


def clear() -> None:
    """Disarm fault injection entirely (back to zero overhead)."""
    global _STATE, ENABLED
    _STATE = None
    ENABLED = False


def fired() -> list[tuple[str, int, str]]:
    """The journal of faults that actually fired since :func:`install`."""
    return list(_STATE.fired) if _STATE is not None else []


def installed_plans() -> tuple[FaultPlan, ...]:
    """The currently armed plans (empty when injection is disarmed).

    Lets a harness (the fuzz oracle) save the ambient installation,
    re-arm plans with fresh hit counters around each deterministic run,
    and restore the ambient state afterwards.
    """
    return tuple(_STATE.plans.values()) if _STATE is not None else ()


def hit_counts() -> dict[str, int]:
    """How many times each armed site has been reached."""
    return dict(_STATE.counters) if _STATE is not None else {}


@contextmanager
def injected(*plans: FaultPlan):
    """Arm ``plans`` for the duration of a with-block, then disarm."""
    install(plans)
    try:
        yield _STATE
    finally:
        clear()


def hit(site: str) -> bool:
    """Record one hit of ``site``; fire if the armed plan says so.

    Returns True when a ``corrupt``-mode fault fires (the caller applies
    its site-specific corruption), False when nothing fires; raises
    :class:`InjectedFault` when a ``raise``-mode fault fires.
    """
    state = _STATE
    if state is None:
        return False
    plan = state.plans.get(site)
    if plan is None:
        return False
    if plan.scope and plan.scope != _ACTIVE_SCOPE:
        return False
    count = state.counters.get(site, 0) + 1
    state.counters[site] = count
    if count != plan.nth and not (plan.persistent and count > plan.nth):
        return False
    state.fired.append((site, count, plan.mode))
    if plan.mode == "raise":
        raise InjectedFault(site, count)
    return True


def configure_from_env() -> None:
    """Arm plans from ``REPRO_FAULTS`` / ``REPRO_FAULT_SEED`` if set."""
    spec = os.environ.get("REPRO_FAULTS")
    if not spec:
        return
    seed = int(os.environ.get("REPRO_FAULT_SEED", "0"))
    plans = [
        FaultPlan.from_spec(part, seed)
        for part in spec.split(";")
        if part.strip()
    ]
    install(plans)


configure_from_env()
