"""The tiered execution pipeline: contain compiler faults by degrading.

The ladder, fastest tier first:

* **optimizing** — the runtime's configured compiler (splitting,
  iteration, prediction … whatever the system preset enables), plus the
  backend (codegen + predecode).
* **pessimistic** — the same conservative recompile the pre-existing
  ``BudgetExhausted`` safety valve uses: splitting and loop iteration
  off, one front.  It does strictly less speculative work, so a defect
  in the optimistic machinery (or an injected fault that fired once)
  does not recur.
* **interpreter** — the reference AST interpreter
  (:mod:`repro.interp.interpreter`), which defines the language
  semantics and shares none of the compile pipeline.  A method that
  cannot be compiled at all still runs — it just runs slowly, and its
  execution is not charged to the modeled cycle counters (measurements
  under active degradation are diagnostic, not comparable; the recovery
  log says so).

Every step down the ladder is recorded in the runtime's
:class:`~repro.robustness.recovery.RecoveryLog`.  Guest-level errors
(:class:`~repro.objects.errors.SelfError`) are *not* contained — a
guest bug must surface identically at every tier.

The **watchdog** bounds compilation beyond the node budget: the node
budget caps graph growth per attempt, while the watchdog caps wall
clock (and optionally total fuel) across everything a single compile
attempt does, including discarded loop-iteration trial graphs.  It
raises :class:`~repro.objects.errors.CompileTimeout`, which the ladder
contains like any other internal fault.

Interpreter-tier interop: a degraded method can receive and invoke
closures created by compiled code, and compiled code can invoke
closures created by a degraded method.  :class:`TierInterpreter`
routes VM-created blocks (whose home is a :class:`~repro.vm.frame.Frame`)
back into the runtime, and the runtime routes interpreter-created
blocks (whose home is an :class:`~repro.interp.interpreter.Activation`)
here.  A block whose *own* compilation degrades all the way down is
interpreted against its creating frame's environment through a bridge
activation.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Optional

from ..compiler.engine import BudgetExhausted, PESSIMISTIC_FALLBACK, compile_once
from ..interp.interpreter import Activation, Interpreter, _NonLocalReturn
from ..objects.errors import (
    CompileTimeout,
    NonLocalReturnFromDeadActivation,
    SelfError,
    WrongBlockArity,
)
from ..vm.codegen import generate
from ..vm.frame import NonLocalUnwind
from .recovery import TIER_INTERPRETER, TIER_OPTIMIZING, TIER_PESSIMISTIC


# ---------------------------------------------------------------------------
# The compile watchdog
# ---------------------------------------------------------------------------

#: wall-clock budget per compile attempt, seconds (<= 0 disables)
_DEFAULT_TIMEOUT_S = 10.0


class Watchdog:
    """Wall-clock (and optional fuel) bound on one compile attempt.

    ``tick`` is called from coarse checkpoints — every 256th IR node
    the compiler creates and every loop-analysis iteration — so the
    cost of an armed watchdog is one time query per few hundred nodes.
    """

    __slots__ = ("deadline", "fuel")

    def __init__(
        self, seconds: Optional[float] = None, fuel: Optional[int] = None
    ) -> None:
        self.deadline = (
            time.monotonic() + seconds if seconds is not None and seconds > 0
            else None
        )
        self.fuel = fuel

    def tick(self, amount: int = 1) -> None:
        if self.fuel is not None:
            self.fuel -= amount
            if self.fuel <= 0:
                raise CompileTimeout("fuel exhausted")
        if self.deadline is not None and time.monotonic() > self.deadline:
            raise CompileTimeout("wall clock")


def default_watchdog() -> Watchdog:
    """A watchdog from ``REPRO_COMPILE_TIMEOUT_S`` / ``REPRO_COMPILE_FUEL``."""
    seconds = float(os.environ.get("REPRO_COMPILE_TIMEOUT_S", _DEFAULT_TIMEOUT_S))
    fuel_raw = os.environ.get("REPRO_COMPILE_FUEL")
    fuel = int(fuel_raw) if fuel_raw else None
    return Watchdog(seconds=seconds, fuel=fuel)


# ---------------------------------------------------------------------------
# The execution budget (the watchdog, generalized to guest execution)
# ---------------------------------------------------------------------------


class ExecutionBudget:
    """Wall-clock and modeled-fuel bound on one guest request.

    The serving supervisor installs one of these on a tenant runtime
    (``runtime.execution_budget``) before a request; the dispatch loop
    calls :meth:`tick` at every frame switch with the modeled cycles
    spent so far.  Fuel is checked on every tick; the (comparatively
    expensive) monotonic-clock read only every ``_STRIDE`` ticks, so an
    armed budget costs one integer compare per frame switch.

    Granularity caveat: a body that loops without sending (pure
    primitive arithmetic in one frame) only reaches a checkpoint when
    it activates or returns — the fuel bound is exact per check, the
    wall bound is best-effort at frame-switch granularity.
    """

    __slots__ = ("deadline", "fuel", "_ticks", "interp_spent")

    _STRIDE = 64

    def __init__(
        self, seconds: Optional[float] = None, fuel: Optional[int] = None
    ) -> None:
        self.deadline = (
            time.monotonic() + seconds if seconds is not None and seconds > 0
            else None
        )
        #: modeled-cycle ceiling for the request (None = unbounded)
        self.fuel = fuel
        self._ticks = 0
        #: fuel charged by interpreter-tier sends (see :meth:`charge`)
        self.interp_spent = 0

    def tick(self, cycles_spent: int) -> None:
        from ..objects.errors import DeadlineExceeded

        if self.fuel is not None and cycles_spent > self.fuel:
            raise DeadlineExceeded(f"fuel ({cycles_spent} > {self.fuel} cycles)")
        if self.deadline is not None:
            self._ticks += 1
            if self._ticks >= self._STRIDE:
                self._ticks = 0
                if time.monotonic() > self.deadline:
                    raise DeadlineExceeded("wall clock")

    def charge(self, toll: int, base_cycles: int) -> None:
        """Interpreter-tier accounting: the AST tier never advances the
        runtime's modeled cycle counter, so without this a body fully
        degraded to the interpreter would burn fuel invisibly.  Each
        dynamic send pays a flat toll (:data:`INTERP_SEND_FUEL`) on top
        of whatever VM cycles (``base_cycles``) the request has already
        spent."""
        self.interp_spent += toll
        self.tick(base_cycles + self.interp_spent)

    def expired(self) -> bool:
        """Non-raising probe (used by the supervisor after a kill)."""
        return (
            self.deadline is not None and time.monotonic() > self.deadline
        )


#: fuel charged per interpreter-tier dynamic send.  Deliberately steep
#: relative to a compiled send: the AST tier also nests host stack
#: frames per activation, so the budget must bind well before the host
#: recursion limit does.
INTERP_SEND_FUEL = 64


# ---------------------------------------------------------------------------
# The ladder
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class InterpretedCode:
    """Marker installed in the runtime's code cache for a body that
    degraded to the interpreter tier: holds the AST to execute."""

    code: object  # CodeBody (MethodNode or BlockNode)
    selector: str
    is_block: bool = False


def pessimistic_config(config):
    """The conservative configuration of the BudgetExhausted path."""
    return config.but(**PESSIMISTIC_FALLBACK)


def compile_with_tiers(
    runtime,
    code_node,
    receiver_map,
    selector: str,
    is_block: bool = False,
    block_template=None,
    force_pessimistic: bool = False,
):
    """Compile down the tier ladder; never raise an internal error.

    Returns a :class:`~repro.vm.code.Code` from the optimizing or
    pessimistic tier, or an :class:`InterpretedCode` marker when both
    compile tiers failed.  Guest-level :class:`SelfError` exceptions
    propagate unchanged.

    Every world fact the compile consults is collected by a dependency
    tracker (see :mod:`repro.world.deps`) and attached to the finished
    body as ``dep_keys``, so a later mutation can retire exactly the
    code whose assumptions it broke.  ``force_pessimistic`` (a deopt
    storm is in progress — see :mod:`.invalidate`) skips the optimizing
    rung and the persistent cache.
    """
    stage = "compile-block" if is_block else "compile"
    tracer = getattr(runtime, "tracer", None)
    if tracer is None:
        from ..obs.trace import NULL_TRACER

        tracer = NULL_TRACER

    registry = runtime.universe.deps
    tracker = registry.push_tracker()
    # Customization itself is an assumption about the receiver's layout.
    tracker.map_shape(receiver_map)
    try:
        # The persistent cross-run cache fronts the whole ladder: a hit
        # is a finished optimizing-tier body.  Blocks (per-run
        # templates) and annotated compiles bypass the cache.  A fault
        # (injected or real) in the load path degrades to a fresh
        # compile and is recorded — never propagated.
        cache = getattr(runtime, "code_cache", None)
        # The dispatch ladder's fan-out oracle: with REPRO_PIC on, the
        # compiler refuses splitting/customization against selectors
        # whose observed receiver fan-out exceeds the PIC depth.  A
        # megamorphic-refused body must also skip the persistent cache:
        # its key does not encode the fan-out observation, so a cached
        # customized copy (or a cached refusal) could be served under
        # the opposite regime.
        pic_fanout = None
        pic_depth = 4
        if getattr(runtime, "pic_enabled", False):
            pic_fanout = runtime.observed_fanout()
            pic_depth = runtime.pic_depth
        refused = (
            pic_fanout is not None
            and pic_fanout.get(selector, 0) > pic_depth
        )
        cacheable = (
            cache is not None
            and not is_block
            and runtime.annotations is None
            and not force_pessimistic
            and not refused
        )
        if cacheable:
            try:
                cached = cache.load(
                    runtime.universe, runtime.config, runtime.model,
                    code_node, receiver_map, selector,
                )
            except Exception as error:  # noqa: BLE001 — containment boundary
                cached = None
                runtime.recovery.record(
                    "codecache-load", selector, "codecache", TIER_OPTIMIZING, error
                )
            if cached is not None:
                cached.dep_keys = frozenset(cached.dep_keys | tracker.frozen())
                return cached
        ladder = (
            (TIER_OPTIMIZING, runtime.config, TIER_PESSIMISTIC),
            (TIER_PESSIMISTIC, pessimistic_config(runtime.config), TIER_INTERPRETER),
        )
        if force_pessimistic:
            ladder = ladder[1:]
        for tier, config, next_tier in ladder:
            with tracer.span(
                "compile",
                selector=selector,
                receiver=getattr(receiver_map, "name", "?"),
                config=config.name,
                tier=tier,
                is_block=is_block,
            ) as compile_span:
                try:
                    graph = compile_once(
                        runtime.universe, config, code_node, receiver_map,
                        selector=selector, is_block=is_block,
                        block_template=block_template, annotations=runtime.annotations,
                        watchdog=default_watchdog(),
                        tracer=tracer,
                        fanout=pic_fanout, pic_depth=pic_depth,
                    )
                    with tracer.span("codegen", nodes=graph.stats.total):
                        compiled = generate(graph, runtime.model)
                    compile_span.set(outcome="ok", code_bytes=compiled.size_bytes)
                    compiled.dep_keys = tracker.frozen()
                    # Which rung produced this body — the profiler's
                    # per-tier attribution reads it (translated bodies
                    # are recognized by ``code.translated`` instead).
                    compiled.tier = tier
                    if cacheable and tier == TIER_OPTIMIZING:
                        try:
                            cache.store(
                                runtime.universe, runtime.config, runtime.model,
                                code_node, receiver_map, compiled,
                            )
                        except Exception as error:  # noqa: BLE001
                            runtime.recovery.record(
                                "codecache-store", selector,
                                "codecache", tier, error,
                            )
                    return compiled
                except SelfError:
                    raise  # a guest bug surfaces identically at every tier
                except BudgetExhausted as error:
                    compile_span.set(outcome=f"degraded to {next_tier}")
                    runtime.recovery.record(stage, selector, tier, next_tier, error)
                except Exception as error:  # noqa: BLE001 — the containment boundary
                    compile_span.set(outcome=f"degraded to {next_tier}")
                    runtime.recovery.record(stage, selector, tier, next_tier, error)
        return InterpretedCode(code_node, selector, is_block)
    finally:
        registry.pop_tracker()


# ---------------------------------------------------------------------------
# Interpreter-tier execution
# ---------------------------------------------------------------------------


class TierInterpreter(Interpreter):
    """The reference interpreter wired back into a Runtime.

    Blocks created by compiled code carry a :class:`Frame` home; the
    plain interpreter cannot invoke them, so this subclass routes them
    back to the owning runtime (which may in turn route an
    interpreter-created block back here — the two evaluators co-exist
    per closure, not per run).
    """

    def __init__(self, runtime) -> None:
        super().__init__(runtime.universe, runtime.world.lobby)
        self.runtime = runtime

    def send(self, receiver, selector, args=()):
        budget = self.runtime.execution_budget
        if budget is not None:
            budget.charge(INTERP_SEND_FUEL, self.runtime.cycles)
        return super().send(receiver, selector, args)

    def call_block(self, block, args):
        if isinstance(block.home, Activation):
            return super().call_block(block, args)
        return self.runtime._call_block_sync(block, list(args))


def _switched(runtime, thunk):
    """Run ``thunk`` with the tier interpreter as the active evaluator
    (so primitives that invoke blocks reach the routing bridge)."""
    interp = runtime.tier_interpreter
    universe = runtime.universe
    previous = universe.evaluator
    universe.evaluator = interp
    try:
        return thunk(interp)
    finally:
        universe.evaluator = previous


def run_interpreted_method(runtime, code_node, receiver, args, selector="<interpreted>"):
    """Execute a method body at the interpreter tier."""
    # Interpreter-tier bodies push no VM frame, so the dispatch loop's
    # activation hook never sees them — tick here instead.
    profiler = getattr(runtime, "profiler", None)
    if profiler is not None:
        profiler.tick_interp(selector)
    return _switched(
        runtime, lambda interp: interp.invoke_method(receiver, code_node, list(args))
    )


def call_foreign_block(runtime, block, args):
    """Invoke an interpreter-created closure that reached the VM."""
    return _switched(runtime, lambda interp: interp.call_block(block, list(args)))


class _EnvSlots:
    """Mapping view over a VM frame-environment chain.

    Exposes exactly the free names a block captured (its ``env_map``);
    reads and writes go through the runtime's environment walkers, so
    an interpreted block shares mutable state with the compiled frames
    around it.
    """

    __slots__ = ("_runtime", "_frame_view", "_names")

    def __init__(self, runtime, block) -> None:
        self._runtime = runtime
        self._frame_view = _FrameView(block.home, block.env_map)
        self._names = frozenset(block.env_map or ())

    def __contains__(self, name: str) -> bool:
        return name in self._names

    def __getitem__(self, name: str):
        return self._runtime._env_load(self._frame_view, name)

    def __setitem__(self, name: str, value) -> None:
        self._runtime._env_store(self._frame_view, name, value)


class _FrameView:
    """Just enough of a :class:`Frame` for the environment walkers."""

    __slots__ = ("home", "env_map", "env")

    def __init__(self, home, env_map) -> None:
        self.home = home
        self.env_map = env_map
        self.env = None


def run_interpreted_block(runtime, block, args):
    """Execute a VM-created block at the interpreter tier.

    The block's own body degraded past both compile tiers, but it was
    *created* by compiled code: its free variables live in the creating
    frame's environment and ``self`` comes from its home frame.  A
    bridge activation supplies both; a ``^`` inside the block is
    converted to the VM's non-local unwind toward its home frame.
    """
    if len(args) != block.arity:
        raise WrongBlockArity(block.arity, len(args))
    home_frame = block.home
    method_home = home_frame
    while method_home.home is not None:
        method_home = method_home.home
    if not method_home.alive:
        raise NonLocalReturnFromDeadActivation()
    receiver = (
        block.captured_self if block.captured_self is not None
        else home_frame.receiver
    )
    profiler = getattr(runtime, "profiler", None)
    if profiler is not None:
        profiler.tick_interp(f"<block#{block.code.block_id}>")

    def invoke(interp):
        root = Activation(receiver, block.code, _EnvSlots(runtime, block), None)
        slots = interp._fresh_slots(block.code, list(args))
        activation = Activation(receiver, block.code, slots, lexical_parent=root)
        try:
            return interp._run_body(activation)
        except _NonLocalReturn as nlr:
            if nlr.home is root:
                if not method_home.alive:
                    raise NonLocalReturnFromDeadActivation() from None
                raise NonLocalUnwind(method_home, nlr.value) from None
            raise

    return _switched(runtime, invoke)
