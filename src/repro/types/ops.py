"""Type transformers used by the compiler.

These implement the paper's analysis rules that *change* bindings:

* run-time type tests rebind the tested variable on each branch
  (success: intersection with the tested class; failure: set
  difference) — section 3.2.1;
* merges form merge types — section 4;
* loop heads *generalize* (values/subranges widen to their class type)
  to reach the fixed point quickly — section 5.1;
* loop tails match loop heads under the paper's *compatibility*
  predicate — section 5.2.
"""

from __future__ import annotations

from typing import Optional

from ..objects.maps import Map
from . import intervals
from .lattice import (
    EMPTY,
    INTERN_LIMIT,
    UNKNOWN,
    DifferenceType,
    IntRangeType,
    MapType,
    MergeType,
    SelfType,
    UnionType,
    ValueType,
    contains,
    disjoint,
    int_interval,
    make_difference,
    make_merge,
    make_union,
    register_memo_table,
)

_MISSING = object()

#: ``refine_to_map`` only consults the tested map (identity and kind),
#: never the universe, so ``(type, map)`` fully determines the result.
_REFINE_MEMO = register_memo_table("refine_to_map", {})


def refine_to_map(t: SelfType, map: Map, universe) -> SelfType:
    """The binding on the *success* branch of a map type test.

    Keeps any information narrower than the class: a merge of
    ``int[0..5]`` and unknown refined to the small-int map yields
    ``int[0..5]`` (the unknown constituent contributes the full class).
    Returns EMPTY when the branch is unreachable.
    """
    key = (t, map)
    cached = _REFINE_MEMO.get(key, _MISSING)
    if cached is not _MISSING:
        return cached
    result = _refine_to_map(t, map, universe)
    if len(_REFINE_MEMO) >= INTERN_LIMIT:
        _REFINE_MEMO.clear()
    _REFINE_MEMO[key] = result
    return result


def _refine_to_map(t: SelfType, map: Map, universe) -> SelfType:
    map_type = MapType(map)
    if contains(map_type, t):
        return t
    if isinstance(t, (UnionType, MergeType)):
        members = t.members if isinstance(t, UnionType) else t.constituents
        refined = [refine_to_map(member, map, universe) for member in members]
        if isinstance(t, MergeType):
            return make_merge([r for r in refined if r is not EMPTY])
        return make_union(refined)
    if isinstance(t, DifferenceType):
        base = refine_to_map(t.base, map, universe)
        result = make_difference(base, t.removed)
        return result
    if disjoint(t, map_type):
        return EMPTY
    # No exploitable structure (e.g. unknown): the test itself is the
    # information.
    if map.kind == "smallInt":
        return MapType(map)
    return map_type


def exclude_map(t: SelfType, map: Map, universe) -> SelfType:
    """The binding on the *failure* branch of a map type test."""
    return make_difference(t, MapType(map))


def merge_bindings(incoming: list[SelfType]) -> SelfType:
    """Combine bindings at an ordinary merge node (paper, section 4)."""
    first = incoming[0]
    for t in incoming[1:]:
        if t is not first and t != first:
            return make_merge(incoming)
    return first


#: Widening consults the universe (its small-int map, value singletons),
#: so the memo key carries the universe — results never leak between
#: isolated guest worlds built in one process.
_WIDEN_MEMO = register_memo_table("widen_for_loop_head", {})


def widen_for_loop_head(head: SelfType, tail: SelfType, universe) -> SelfType:
    key = (head, tail, universe)
    cached = _WIDEN_MEMO.get(key, _MISSING)
    if cached is not _MISSING:
        return cached
    result = _widen_for_loop_head(head, tail, universe)
    if len(_WIDEN_MEMO) >= INTERN_LIMIT:
        _WIDEN_MEMO.clear()
    _WIDEN_MEMO[key] = result
    return result


def _widen_for_loop_head(head: SelfType, tail: SelfType, universe) -> SelfType:
    """The loop-head generalization rule (paper, section 5.1).

    If the head and tail bindings are different value/subrange types
    *within the same class type*, generalize to the class type itself
    (so a counter initialized to 0 immediately becomes "integer" instead
    of iterating through every constant).  Otherwise form a merge type.

    Containment alone is not enough to keep the head binding: an unknown
    head that contains a class-typed tail still *sacrifices* the class —
    the paper iterates and forms the merge of the unknown type and the
    class type so the next round can split the loop (section 5.2).
    """
    if head == tail:
        return head
    if contains(head, tail):
        if loop_compatible(head, tail, universe):
            return head
        return make_merge([head, _generalized(tail, universe)])
    head_interval = int_interval(head, universe)
    tail_interval = int_interval(tail, universe)
    if head_interval is not None and tail_interval is not None:
        # Mild refinement over the paper's "generalize to the class
        # type": keep the sign when both bindings are non-negative.
        # This is what lets the bounds check of an upward-counting loop
        # over a known-size vector disappear (sieve, atAllPut) — the
        # loop condition supplies the upper bound, the sign the lower.
        if head_interval[0] >= 0 and tail_interval[0] >= 0:
            from ..objects.model import SMALLINT_MAX

            return IntRangeType(0, SMALLINT_MAX)
        return MapType(universe.smallint_map)
    head_map = _single_map(head, universe)
    tail_map = _single_map(tail, universe)
    if head_map is not None and head_map is tail_map:
        return MapType(head_map)
    # Widen pairwise: constituents that share a class generalize to the
    # class before merging, keeping merge types small.
    return make_merge([_generalized(head, universe), _generalized(tail, universe)])


def _single_map(t: SelfType, universe) -> Optional[Map]:
    from .lattice import as_map

    return as_map(t, universe)


def _generalized(t: SelfType, universe) -> SelfType:
    """Value/subrange types widen to their class type (loop heads only)."""
    if isinstance(t, IntRangeType):
        return MapType(universe.smallint_map)
    if isinstance(t, ValueType):
        # Boolean/nil/block singletons *are* their class; keep them.
        if t.map.kind in ("boolean", "nil", "block"):
            return t
        from ..objects.model import SelfVector
        from .lattice import VectorType

        if isinstance(t.value, SelfVector):
            # Keep the length: it is per-value class-like information.
            return VectorType(t.map, t.value.size)
        return MapType(t.map)
    if isinstance(t, MergeType):
        return make_merge([_generalized(c, universe) for c in t.constituents])
    if isinstance(t, UnionType):
        return make_union([_generalized(m, universe) for m in t.members])
    return t


_LOOP_COMPATIBLE_MEMO = register_memo_table("loop_compatible", {})


def loop_compatible(head: SelfType, tail: SelfType, universe) -> bool:
    key = (head, tail, universe)
    cached = _LOOP_COMPATIBLE_MEMO.get(key)
    if cached is not None:
        return cached is True
    result = _loop_compatible(head, tail, universe)
    if len(_LOOP_COMPATIBLE_MEMO) >= INTERN_LIMIT:
        _LOOP_COMPATIBLE_MEMO.clear()
    _LOOP_COMPATIBLE_MEMO[key] = result
    return result


def _loop_compatible(head: SelfType, tail: SelfType, universe) -> bool:
    """The paper's loop head/tail compatibility predicate (section 5.2).

    The head binding must contain the tail binding *and* must not
    sacrifice class information the tail has: an unknown head is not
    compatible with a class-typed tail — analysis iterates and forms a
    merge type instead, so splitting can later separate the classes.

    A *merge-typed* head, by contrast, retains its constituents'
    identities, so it is compatible with a class-typed tail whenever one
    of its constituents carries that class: the merge is precisely the
    representation from which splitting recovers the class later.
    """
    if not contains(head, tail):
        return False
    from .lattice import MergeType, UnionType, as_map

    tail_map = as_map(tail, universe)
    if tail_map is None:
        return True
    head_map = as_map(head, universe)
    if head_map is tail_map:
        return True
    if isinstance(head, (MergeType, UnionType)):
        members = head.constituents if isinstance(head, MergeType) else head.members
        return any(
            as_map(member, universe) is tail_map and contains(member, tail)
            for member in members
        )
    return False


def constant_fold_compare(
    op: str, a: SelfType, b: SelfType, universe
) -> Optional[bool]:
    """Decide an integer comparison from subranges alone, if possible.

    This is the paper's example of constant-folding a primitive whose
    arguments aren't constants (section 3.2.3): non-overlapping ranges
    decide ``<`` at compile time.
    """
    ia = int_interval(a, universe)
    ib = int_interval(b, universe)
    if ia is None or ib is None:
        return None
    if op == "<":
        return intervals.compare_lt(ia, ib)
    if op == "<=":
        return intervals.compare_le(ia, ib)
    if op == ">":
        return intervals.compare_lt(ib, ia)
    if op == ">=":
        return intervals.compare_le(ib, ia)
    if op == "==":
        return intervals.compare_eq(ia, ib)
    if op == "!=":
        result = intervals.compare_eq(ia, ib)
        return None if result is None else not result
    raise ValueError(f"unknown comparison {op!r}")


def refine_compare(
    op: str, a: SelfType, b: SelfType, taken: bool, universe
) -> tuple[SelfType, SelfType]:
    """Refined operand bindings on one branch of a compare-and-branch.

    Implements the subrange refinement rules of section 3.2.1 for all six
    comparison operators.  Non-integer operands pass through unchanged.
    Returns possibly-EMPTY types for unreachable branches.
    """
    ia = int_interval(a, universe)
    ib = int_interval(b, universe)
    if ia is None or ib is None:
        return a, b
    effective = op if taken else _negated(op)
    if effective == "<":
        ra, rb = intervals.refine_lt(ia, ib)
    elif effective == ">=":
        ra, rb = intervals.refine_ge(ia, ib)
    elif effective == "<=":
        ra, rb = intervals.refine_le(ia, ib)
    elif effective == ">":
        ra, rb = intervals.refine_gt(ia, ib)
    elif effective == "==":
        ra, rb = intervals.refine_eq(ia, ib)
    else:  # '!=' — only useful when one side is a constant at an endpoint
        ra, rb = ia, ib
        if ib[0] == ib[1]:
            if ia[0] == ib[0]:
                ra = intervals.make(ia[0] + 1, ia[1])
            elif ia[1] == ib[0]:
                ra = intervals.make(ia[0], ia[1] - 1)
        if ia[0] == ia[1]:
            if ib[0] == ia[0]:
                rb = intervals.make(ib[0] + 1, ib[1])
            elif ib[1] == ia[0]:
                rb = intervals.make(ib[0], ib[1] - 1)
    from .lattice import int_range_from_interval

    return (
        int_range_from_interval(ra) if ra is not None else EMPTY,
        int_range_from_interval(rb) if rb is not None else EMPTY,
    )


def _negated(op: str) -> str:
    return {"<": ">=", ">=": "<", "<=": ">", ">": "<=", "==": "!=", "!=": "=="}[op]
