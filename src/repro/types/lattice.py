"""The compile-time type system of the paper (section 3.1).

A type denotes a set of run-time values:

=================  ==========================================================
type               set denoted / static information
=================  ==========================================================
:class:`ValueType`      a singleton set — a compile-time constant
:class:`IntRangeType`   a contiguous range of small integers
:class:`MapType`        all values sharing one map — a "class type"
:class:`UnknownType`    all values (no information)
:class:`UnionType`      set union of member types
:class:`DifferenceType` set difference (failed type tests)
:class:`MergeType`      like a union, but it *remembers its constituents*
                        because the dilution came from a control-flow
                        merge — the hook extended splitting needs
:class:`EmptyType`      the empty set — an unreachable binding (the paper
                        keeps types non-empty; we use EMPTY to mark dead
                        compilation fronts instead)
=================  ==========================================================

Integer value types and the small-integer class type are treated as
extreme forms of subrange types, exactly as in the paper: an integer
constant ``k`` is ``IntRangeType(k, k)`` and the full range canonicalizes
to ``MapType(smallint)`` on construction, so there is exactly one
representation for each set.

All types are immutable and hashable.  Soundness contract: every
operation may *lose* precision but never *invent* it — ``contains`` only
answers True when provable, refinements always denote supersets of the
exact result set.

Types are **hash-consed**: each concrete class interns its instances in
a bounded table keyed by the same components its ``__eq__`` compares, so
equal types constructed through the same table epoch are the *same*
object and ``==`` degrades to ``is`` on the hot paths.  Equality stays
structural (identity is only a fast path), so clearing a full table can
never change an answer — it only costs re-allocations.  The tables hold
strong references, which keeps every ``id(...)``-derived key valid for
the lifetime of its entry.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from ..objects.maps import Map
from ..objects.model import BigInt, SelfBlock, SelfObject, SelfVector, fits_smallint
from . import intervals


# ---------------------------------------------------------------------------
# Interning / memoization machinery
# ---------------------------------------------------------------------------

#: Bound on every intern and memo table in the type system.  A table
#: that reaches the limit is cleared wholesale — correctness never
#: depends on a hit.
INTERN_LIMIT = 4096

_MISSING = object()

_INTERN_TABLES: dict[str, dict] = {}
_MEMO_TABLES: dict[str, dict] = {}


def _intern_table(name: str) -> dict:
    table: dict = {}
    _INTERN_TABLES[name] = table
    return table


def register_memo_table(name: str, table: dict) -> dict:
    """Register a memo table so tests can clear and size-check it."""
    _MEMO_TABLES[name] = table
    return table


def clear_caches() -> None:
    """Drop every intern and memo table (type-system wide).

    Purely a memory/test hook: subsequent queries recompute and repopulate.
    """
    for table in _INTERN_TABLES.values():
        table.clear()
    for table in _MEMO_TABLES.values():
        table.clear()
    intervals.clear_memos()


def cache_sizes() -> dict[str, int]:
    """Current entry counts of every intern/memo table (for tests)."""
    sizes = {name: len(table) for name, table in _INTERN_TABLES.items()}
    for name, table in _MEMO_TABLES.items():
        sizes[f"memo:{name}"] = len(table)
    return sizes


class SelfType:
    """Abstract base for compile-time types."""

    __slots__ = ()

    # Subclasses override; these defaults are conservative.

    def is_constant(self) -> bool:
        """Whether this type denotes exactly one value."""
        return False

    def constant_value(self):
        raise ValueError(f"{self!r} is not a compile-time constant")


class UnknownType(SelfType):
    """The set of all values — no static information."""

    __slots__ = ()
    _instance: Optional["UnknownType"] = None

    def __new__(cls) -> "UnknownType":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "?"


class EmptyType(SelfType):
    """The empty set — marks unreachable compilation fronts."""

    __slots__ = ()
    _instance: Optional["EmptyType"] = None

    def __new__(cls) -> "EmptyType":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "∅"


UNKNOWN = UnknownType()
EMPTY = EmptyType()


_MAP_TYPES = _intern_table("MapType")


class MapType(SelfType):
    """All values sharing one map — the paper's *class type*."""

    __slots__ = ("map", "_hash")

    def __new__(cls, map: Map) -> "MapType":
        key = id(map)
        cached = _MAP_TYPES.get(key)
        if cached is not None:
            return cached
        self = super().__new__(cls)
        self.map = map
        self._hash = hash(("MapType", key))
        if len(_MAP_TYPES) >= INTERN_LIMIT:
            _MAP_TYPES.clear()
        _MAP_TYPES[key] = self
        return self

    def __eq__(self, other) -> bool:
        return self is other or (isinstance(other, MapType) and other.map is self.map)

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return self.map.name


_INT_RANGES = _intern_table("IntRangeType")


class IntRangeType(SelfType):
    """A contiguous, non-full range of small integers (inclusive)."""

    __slots__ = ("lo", "hi", "_hash")

    def __new__(cls, lo: int, hi: int) -> "IntRangeType":
        if lo > hi:
            raise ValueError("empty integer range")
        key = (lo, hi)
        cached = _INT_RANGES.get(key)
        if cached is not None:
            return cached
        self = super().__new__(cls)
        self.lo = lo
        self.hi = hi
        self._hash = hash(("IntRangeType", lo, hi))
        if len(_INT_RANGES) >= INTERN_LIMIT:
            _INT_RANGES.clear()
        _INT_RANGES[key] = self
        return self

    @property
    def interval(self) -> intervals.Interval:
        return (self.lo, self.hi)

    def is_constant(self) -> bool:
        return self.lo == self.hi

    def constant_value(self):
        if self.lo != self.hi:
            raise ValueError(f"{self!r} is not a compile-time constant")
        return self.lo

    def __eq__(self, other) -> bool:
        return self is other or (
            isinstance(other, IntRangeType)
            and (other.lo, other.hi) == (self.lo, self.hi)
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        if self.lo == self.hi:
            return f"int={self.lo}"
        return f"int[{self.lo}..{self.hi}]"


_VALUE_TYPES = _intern_table("ValueType")


class ValueType(SelfType):
    """A singleton set: one specific (non-small-integer) value.

    Identity semantics follow the value kind: heap objects compare by
    identity, immutable immediates (floats, strings, BigInts) by value.
    Small-integer constants are *not* represented here — they
    canonicalize to one-element :class:`IntRangeType`s via
    :func:`type_of_constant`.
    """

    __slots__ = ("value", "map", "_vkey", "_hash")

    def __new__(cls, value, map: Map) -> "ValueType":
        if isinstance(value, (SelfObject, SelfVector, SelfBlock)):
            vkey = ("id", id(value))
        else:
            vkey = ("val", type(value).__name__, value)
        key = (vkey, id(map))
        cached = _VALUE_TYPES.get(key)
        if cached is not None:
            return cached
        self = super().__new__(cls)
        self.value = value
        self.map = map
        self._vkey = vkey
        self._hash = hash(("ValueType",) + vkey)
        if len(_VALUE_TYPES) >= INTERN_LIMIT:
            _VALUE_TYPES.clear()
        _VALUE_TYPES[key] = self
        return self

    def is_constant(self) -> bool:
        return True

    def constant_value(self):
        return self.value

    def _key(self):
        return self._vkey

    def __eq__(self, other) -> bool:
        return self is other or (
            isinstance(other, ValueType) and other._vkey == self._vkey
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"val:{self.map.name}"


_VECTOR_TYPES = _intern_table("VectorType")


class VectorType(SelfType):
    """All vectors — optionally of one statically-known length.

    A known length is what lets range analysis prove array bounds checks
    redundant (index subrange ⊆ ``[0, length)``), e.g. for the sieve and
    atAllPut benchmarks where the vector is created with a constant size.
    """

    __slots__ = ("map", "length", "_hash")

    def __new__(cls, map: Map, length: Optional[int] = None) -> "VectorType":
        key = (id(map), length)
        cached = _VECTOR_TYPES.get(key)
        if cached is not None:
            return cached
        self = super().__new__(cls)
        self.map = map
        self.length = length
        self._hash = hash(("VectorType", id(map), length))
        if len(_VECTOR_TYPES) >= INTERN_LIMIT:
            _VECTOR_TYPES.clear()
        _VECTOR_TYPES[key] = self
        return self

    def __eq__(self, other) -> bool:
        return self is other or (
            isinstance(other, VectorType)
            and other.map is self.map
            and other.length == self.length
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        if self.length is None:
            return "vector"
        return f"vector[{self.length}]"


_UNION_TYPES = _intern_table("UnionType")


class UnionType(SelfType):
    """Set union of several types (flattened, deduplicated, unordered)."""

    __slots__ = ("members", "_hash")

    def __new__(cls, members: frozenset) -> "UnionType":
        cached = _UNION_TYPES.get(members)
        if cached is not None:
            return cached
        self = super().__new__(cls)
        self.members = members
        self._hash = hash(("UnionType", members))
        if len(_UNION_TYPES) >= INTERN_LIMIT:
            _UNION_TYPES.clear()
        _UNION_TYPES[members] = self
        return self

    def __eq__(self, other) -> bool:
        return self is other or (
            isinstance(other, UnionType) and other.members == self.members
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        inner = " | ".join(sorted(repr(m) for m in self.members))
        return f"({inner})"


_DIFFERENCE_TYPES = _intern_table("DifferenceType")


class DifferenceType(SelfType):
    """``base`` minus ``removed`` — the failure branch of a type test."""

    __slots__ = ("base", "removed", "_hash")

    def __new__(cls, base: SelfType, removed: SelfType) -> "DifferenceType":
        key = (base, removed)
        cached = _DIFFERENCE_TYPES.get(key)
        if cached is not None:
            return cached
        self = super().__new__(cls)
        self.base = base
        self.removed = removed
        self._hash = hash(("DifferenceType", base, removed))
        if len(_DIFFERENCE_TYPES) >= INTERN_LIMIT:
            _DIFFERENCE_TYPES.clear()
        _DIFFERENCE_TYPES[key] = self
        return self

    def __eq__(self, other) -> bool:
        return self is other or (
            isinstance(other, DifferenceType)
            and other.base == self.base
            and other.removed == self.removed
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"({self.base!r} - {self.removed!r})"


_MERGE_TYPES = _intern_table("MergeType")


class MergeType(SelfType):
    """A union created by a control-flow merge.

    Unlike :class:`UnionType`, a merge type records the *identities* of
    its constituents even when one subsumes another — merging the
    small-integer class type with the unknown type keeps both elements
    (paper, section 4), so splitting can later recover the precise
    branch.  Constituents are kept in arrival order, deduplicated.
    """

    __slots__ = ("constituents", "_hash")

    def __new__(cls, constituents: tuple) -> "MergeType":
        cached = _MERGE_TYPES.get(constituents)
        if cached is not None:
            return cached
        self = super().__new__(cls)
        self.constituents = constituents
        self._hash = hash(("MergeType", constituents))
        if len(_MERGE_TYPES) >= INTERN_LIMIT:
            _MERGE_TYPES.clear()
        _MERGE_TYPES[constituents] = self
        return self

    def __eq__(self, other) -> bool:
        return self is other or (
            isinstance(other, MergeType)
            and other.constituents == self.constituents
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        inner = " ∨ ".join(repr(c) for c in self.constituents)
        return f"{{{inner}}}"


# ---------------------------------------------------------------------------
# Constructors
# ---------------------------------------------------------------------------


def make_int_range(lo: int, hi: int) -> SelfType:
    """Canonical type for an integer interval (EMPTY / range / full)."""
    clamped = intervals.make(lo, hi)
    if clamped is None:
        return EMPTY
    return IntRangeType(*clamped)


def int_range_from_interval(interval: Optional[intervals.Interval]) -> SelfType:
    if interval is None:
        return EMPTY
    return IntRangeType(*interval)


def type_of_constant(value, universe) -> SelfType:
    """The value type of a compile-time constant."""
    if type(value) is int:
        if not fits_smallint(value):
            return ValueType(BigInt(value), universe.bigint_map)
        return IntRangeType(value, value)
    return ValueType(value, universe.map_of(value))


_UNION_MEMO = register_memo_table("make_union", {})


def make_union(members: Iterable[SelfType]) -> SelfType:
    """Set union with flattening and canonicalization."""
    members = tuple(members)
    cached = _UNION_MEMO.get(members, _MISSING)
    if cached is not _MISSING:
        return cached
    flat: set = set()
    result = _MISSING
    for member in members:
        if member is EMPTY:
            continue
        if member is UNKNOWN:
            result = UNKNOWN
            break
        if isinstance(member, (UnionType,)):
            flat.update(member.members)
        elif isinstance(member, MergeType):
            flat.update(member.constituents)
        else:
            flat.add(member)
    if result is _MISSING:
        if not flat:
            result = EMPTY
        else:
            flat = _absorb(flat)
            if len(flat) == 1:
                result = next(iter(flat))
            elif UNKNOWN in flat:
                result = UNKNOWN
            else:
                result = UnionType(frozenset(flat))
    if len(_UNION_MEMO) >= INTERN_LIMIT:
        _UNION_MEMO.clear()
    _UNION_MEMO[members] = result
    return result


def _absorb(members: set) -> set:
    """Drop members subsumed by another member; hull adjacent int ranges."""
    ranges = [m for m in members if isinstance(m, IntRangeType)]
    if len(ranges) > 1:
        hull = ranges[0].interval
        for r in ranges[1:]:
            hull = intervals.hull(hull, r.interval)
        for r in ranges:
            members.discard(r)
        members.add(int_range_from_interval(hull))
    out = set(members)
    for a in members:
        for b in members:
            if a is not b and a in out and b in out and contains(a, b):
                out.discard(b)
    return out


_MERGE_MEMO = register_memo_table("make_merge", {})


def make_merge(constituents: Sequence[SelfType]) -> SelfType:
    """A merge type from incoming branch types (paper, section 4)."""
    constituents = tuple(constituents)
    cached = _MERGE_MEMO.get(constituents, _MISSING)
    if cached is not _MISSING:
        return cached
    seen: list[SelfType] = []
    for constituent in constituents:
        if constituent is EMPTY:
            continue
        if isinstance(constituent, MergeType):
            for inner in constituent.constituents:
                if inner not in seen:
                    seen.append(inner)
        elif constituent not in seen:
            seen.append(constituent)
    if not seen:
        result = EMPTY
    elif len(seen) == 1:
        result = seen[0]
    else:
        result = MergeType(tuple(seen))
    if len(_MERGE_MEMO) >= INTERN_LIMIT:
        _MERGE_MEMO.clear()
    _MERGE_MEMO[constituents] = result
    return result


_DIFFERENCE_MEMO = register_memo_table("make_difference", {})


def make_difference(base: SelfType, removed: SelfType) -> SelfType:
    """``base - removed`` with cheap canonicalizations."""
    key = (base, removed)
    cached = _DIFFERENCE_MEMO.get(key, _MISSING)
    if cached is not _MISSING:
        return cached
    result = _make_difference(base, removed)
    if len(_DIFFERENCE_MEMO) >= INTERN_LIMIT:
        _DIFFERENCE_MEMO.clear()
    _DIFFERENCE_MEMO[key] = result
    return result


def _make_difference(base: SelfType, removed: SelfType) -> SelfType:
    if base is EMPTY or contains(removed, base):
        return EMPTY
    if disjoint(base, removed):
        return base
    if isinstance(base, (UnionType, MergeType)):
        members = (
            base.members if isinstance(base, UnionType) else base.constituents
        )
        survivors = [
            make_difference(member, removed)
            for member in members
        ]
        if isinstance(base, MergeType):
            return make_merge([s for s in survivors if s is not EMPTY])
        return make_union(survivors)
    if isinstance(base, IntRangeType) and isinstance(removed, IntRangeType):
        # Chop off an end when the removal is a prefix/suffix.
        if removed.lo <= base.lo and removed.hi < base.hi:
            return make_int_range(removed.hi + 1, base.hi)
        if removed.hi >= base.hi and removed.lo > base.lo:
            return make_int_range(base.lo, removed.lo - 1)
    return DifferenceType(base, removed)


# ---------------------------------------------------------------------------
# Queries
# ---------------------------------------------------------------------------


_AS_MAP_MEMO = register_memo_table("as_map", {})


def as_map(t: SelfType, universe) -> Optional[Map]:
    """The single map all values of ``t`` share, if provable.

    This is the key query for message inlining: a non-None answer means
    compile-time lookup is possible (paper, section 3.2.2).
    """
    tt = t.__class__
    if tt is MapType or tt is ValueType or tt is VectorType:
        return t.map
    if tt is IntRangeType:
        return universe.smallint_map
    if tt is UnionType or tt is MergeType:
        key = (t, universe)
        cached = _AS_MAP_MEMO.get(key, _MISSING)
        if cached is not _MISSING:
            return cached
        members = t.members if tt is UnionType else t.constituents
        result: Optional[Map] = None
        for member in members:
            inner = as_map(member, universe)
            if inner is None:
                result = None
                break
            if result is None:
                result = inner
            elif inner is not result:
                result = None
                break
        if len(_AS_MAP_MEMO) >= INTERN_LIMIT:
            _AS_MAP_MEMO.clear()
        _AS_MAP_MEMO[key] = result
        return result
    if tt is DifferenceType:
        return as_map(t.base, universe)
    return None


_INT_INTERVAL_MEMO = register_memo_table("int_interval", {})


def int_interval(t: SelfType, universe) -> Optional[intervals.Interval]:
    """The value interval if ``t`` is provably all small integers."""
    tt = t.__class__
    if tt is IntRangeType:
        return (t.lo, t.hi)
    if tt is MapType:
        return intervals.FULL if t.map is universe.smallint_map else None
    if tt is UnionType or tt is MergeType:
        key = (t, universe)
        cached = _INT_INTERVAL_MEMO.get(key, _MISSING)
        if cached is not _MISSING:
            return cached
        members = t.members if tt is UnionType else t.constituents
        result: Optional[intervals.Interval] = None
        for member in members:
            inner = int_interval(member, universe)
            if inner is None:
                result = None
                break
            result = inner if result is None else intervals.hull(result, inner)
        if len(_INT_INTERVAL_MEMO) >= INTERN_LIMIT:
            _INT_INTERVAL_MEMO.clear()
        _INT_INTERVAL_MEMO[key] = result
        return result
    if tt is DifferenceType:
        base = int_interval(t.base, universe)
        if base is None:
            return None
        removed = int_interval(t.removed, universe)
        if removed is not None:
            # Chop ends (same canonicalization as make_difference).
            if removed[0] <= base[0] and removed[1] < base[1]:
                return (removed[1] + 1, base[1])
            if removed[1] >= base[1] and removed[0] > base[0]:
                return (base[0], removed[0] - 1)
        return base
    return None


def is_boolean_constant(t: SelfType, universe) -> Optional[bool]:
    """True/False if ``t`` is exactly the true/false singleton, else None."""
    if t.__class__ is ValueType:
        if t.value is universe.true_object:
            return True
        if t.value is universe.false_object:
            return False
    return None


_CONTAINS_MEMO = register_memo_table("contains", {})


def contains(a: SelfType, b: SelfType) -> bool:
    """Conservative superset test: True only when ``a ⊇ b`` is provable."""
    if a is b or a is UNKNOWN or b is EMPTY:
        return True
    if a is EMPTY:
        return False
    key = (a, b)
    cached = _CONTAINS_MEMO.get(key)
    if cached is not None:
        return cached is True
    result = _contains(a, b)
    if len(_CONTAINS_MEMO) >= INTERN_LIMIT:
        _CONTAINS_MEMO.clear()
    _CONTAINS_MEMO[key] = result
    return result


def _contains(a: SelfType, b: SelfType) -> bool:
    if a == b:
        return True
    if isinstance(b, (UnionType, MergeType)):
        members = b.members if isinstance(b, UnionType) else b.constituents
        return all(contains(a, member) for member in members)
    if isinstance(a, (UnionType, MergeType)):
        members = a.members if isinstance(a, UnionType) else a.constituents
        if any(contains(member, b) for member in members):
            return True
        # fall through: a difference b may still be contained via its base
    if isinstance(b, DifferenceType):
        return contains(a, b.base)
    if isinstance(a, (UnionType, MergeType)):
        return False
    if b is UNKNOWN:
        return False
    if isinstance(a, MapType):
        if isinstance(b, (MapType, ValueType, VectorType)):
            return b.map is a.map
        if isinstance(b, IntRangeType):
            return a.map.kind == "smallInt"
        return False
    if isinstance(a, VectorType):
        if isinstance(b, VectorType):
            return b.map is a.map and (a.length is None or a.length == b.length)
        if isinstance(b, MapType):
            return a.length is None and b.map is a.map
        if isinstance(b, ValueType):
            value = b.value
            return (
                b.map is a.map
                and isinstance(value, SelfVector)
                and (a.length is None or a.length == value.size)
            )
        return False
    if isinstance(a, IntRangeType):
        if isinstance(b, IntRangeType):
            return intervals.contains(a.interval, b.interval)
        if isinstance(b, MapType) and b.map.kind == "smallInt":
            # A full-range subrange is the small-int class type.
            return intervals.is_full(a.interval)
        return False
    if isinstance(a, ValueType):
        return False  # b == a was handled above
    if isinstance(a, DifferenceType):
        return contains(a.base, b) and disjoint(a.removed, b)
    return False


_DISJOINT_MEMO = register_memo_table("disjoint", {})


def disjoint(a: SelfType, b: SelfType) -> bool:
    """Conservative emptiness of ``a ∩ b``: True only when provable."""
    if a is EMPTY or b is EMPTY:
        return True
    if a is UNKNOWN or b is UNKNOWN:
        return False
    key = (a, b)
    cached = _DISJOINT_MEMO.get(key)
    if cached is not None:
        return cached is True
    result = _disjoint(a, b)
    if len(_DISJOINT_MEMO) >= INTERN_LIMIT:
        _DISJOINT_MEMO.clear()
    _DISJOINT_MEMO[key] = result
    return result


def _disjoint(a: SelfType, b: SelfType) -> bool:
    if isinstance(a, (UnionType, MergeType)):
        members = a.members if isinstance(a, UnionType) else a.constituents
        return all(disjoint(member, b) for member in members)
    if isinstance(b, (UnionType, MergeType)):
        return disjoint(b, a)
    if isinstance(a, DifferenceType):
        return disjoint(a.base, b) or contains(a.removed, b)
    if isinstance(b, DifferenceType):
        return disjoint(b, a)
    map_a = _own_map(a)
    map_b = _own_map(b)
    if map_a is not None and map_b is not None and map_a is not map_b:
        return True
    # Integer subranges only hold small integers.
    if isinstance(a, IntRangeType) and map_b is not None:
        return map_b.kind != "smallInt"
    if isinstance(b, IntRangeType) and map_a is not None:
        return map_a.kind != "smallInt"
    if isinstance(a, IntRangeType) and isinstance(b, IntRangeType):
        return not intervals.overlaps(a.interval, b.interval)
    if isinstance(a, ValueType) and isinstance(b, ValueType):
        return a != b
    if isinstance(a, ValueType) and isinstance(b, IntRangeType):
        return True  # value types never hold small ints
    if isinstance(b, ValueType) and isinstance(a, IntRangeType):
        return True
    return False


def _own_map(t: SelfType) -> Optional[Map]:
    if isinstance(t, (MapType, ValueType, VectorType)):
        return t.map
    return None


def mentions_map(t: SelfType, map: Map) -> bool:
    """Whether ``t`` structurally references ``map``.

    This is the query behind the compiler's customization taint flag: a
    compile whose decisions only ever consumed types that do *not*
    mention the receiver map is isomorphic across receiver maps, so its
    code can be shared (see ``MethodCompiler.map_dependent``).
    """
    tt = t.__class__
    if tt is MapType or tt is ValueType or tt is VectorType:
        return t.map is map
    if tt is UnionType:
        return any(mentions_map(m, map) for m in t.members)
    if tt is MergeType:
        return any(mentions_map(c, map) for c in t.constituents)
    if tt is DifferenceType:
        return mentions_map(t.base, map) or mentions_map(t.removed, map)
    return False


def vector_length(t: SelfType) -> Optional[int]:
    """The statically-known length if ``t`` is provably one vector size."""
    if isinstance(t, VectorType):
        return t.length
    if isinstance(t, ValueType) and isinstance(t.value, SelfVector):
        return t.value.size
    return None
