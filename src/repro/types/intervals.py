"""Integer interval arithmetic for subrange analysis.

The paper's *integer subrange analysis* (section 3.2.1) computes result
ranges of arithmetic nodes and refines operand ranges across
compare-and-branch nodes.  An interval here is an inclusive pair
``(lo, hi)`` of host integers, always a subset of the tagged
small-integer range.

All functions are total and side-effect free; results that would escape
the small-integer range are reported as ``None`` ("may overflow") so the
caller can decide whether an overflow check is needed.
"""

from __future__ import annotations

from typing import Optional

from ..objects.model import SMALLINT_MAX, SMALLINT_MIN

Interval = tuple[int, int]

FULL: Interval = (SMALLINT_MIN, SMALLINT_MAX)


# -- memoization -------------------------------------------------------------

#: Bound on each per-function memo table; a full table is cleared
#: wholesale (every function here is pure, so a miss just recomputes).
MEMO_LIMIT = 4096

_MISSING = object()
_MEMO_TABLES: list[dict] = []


def clear_memos() -> None:
    """Drop every interval-op memo table (memory/test hook)."""
    for table in _MEMO_TABLES:
        table.clear()


def _memoized(fn):
    """Bounded memoization for a pure function of hashable arguments."""
    import functools

    table: dict = {}
    _MEMO_TABLES.append(table)

    @functools.wraps(fn)
    def wrapper(*args):
        cached = table.get(args, _MISSING)
        if cached is not _MISSING:
            return cached
        result = fn(*args)
        if len(table) >= MEMO_LIMIT:
            table.clear()
        table[args] = result
        return result

    wrapper.memo_table = table
    return wrapper


def make(lo: int, hi: int) -> Optional[Interval]:
    """An interval clamped to the small-int range; None when empty."""
    lo = max(lo, SMALLINT_MIN)
    hi = min(hi, SMALLINT_MAX)
    if lo > hi:
        return None
    return (lo, hi)


def is_full(interval: Interval) -> bool:
    return interval == FULL


def contains(outer: Interval, inner: Interval) -> bool:
    return outer[0] <= inner[0] and inner[1] <= outer[1]


def intersect(a: Interval, b: Interval) -> Optional[Interval]:
    lo = max(a[0], b[0])
    hi = min(a[1], b[1])
    if lo > hi:
        return None
    return (lo, hi)


def hull(a: Interval, b: Interval) -> Interval:
    return (min(a[0], b[0]), max(a[1], b[1]))


def overlaps(a: Interval, b: Interval) -> bool:
    return intersect(a, b) is not None


# -- arithmetic -------------------------------------------------------------


@_memoized
def add(a: Interval, b: Interval) -> tuple[Interval, bool]:
    """Result interval of x + y and whether overflow is *impossible*.

    The returned interval is the overflow-free projection (clamped); the
    boolean is True iff the exact result always fits, i.e. the overflow
    check can be removed (paper, section 3.2.3).
    """
    lo = a[0] + b[0]
    hi = a[1] + b[1]
    safe = SMALLINT_MIN <= lo and hi <= SMALLINT_MAX
    clamped = make(lo, hi) or FULL
    return clamped, safe


@_memoized
def sub(a: Interval, b: Interval) -> tuple[Interval, bool]:
    lo = a[0] - b[1]
    hi = a[1] - b[0]
    safe = SMALLINT_MIN <= lo and hi <= SMALLINT_MAX
    clamped = make(lo, hi) or FULL
    return clamped, safe


@_memoized
def mul(a: Interval, b: Interval) -> tuple[Interval, bool]:
    products = (a[0] * b[0], a[0] * b[1], a[1] * b[0], a[1] * b[1])
    lo = min(products)
    hi = max(products)
    safe = SMALLINT_MIN <= lo and hi <= SMALLINT_MAX
    clamped = make(lo, hi) or FULL
    return clamped, safe


@_memoized
def floordiv(a: Interval, b: Interval) -> tuple[Interval, bool, bool]:
    """Result interval of x // y (floor division).

    Returns ``(interval, overflow_safe, zero_impossible)``; the last flag
    is True iff the divisor range excludes zero (the divide-by-zero check
    can be removed).  Division only overflows at ``MIN // -1``.
    """
    zero_impossible = not (b[0] <= 0 <= b[1])
    if not zero_impossible:
        # Use the nonzero parts of b for the result estimate.
        candidates = []
        if b[0] <= -1:
            candidates.append((b[0], min(b[1], -1)))
        if b[1] >= 1:
            candidates.append((max(b[0], 1), b[1]))
        if not candidates:
            return FULL, False, False
        parts = [floordiv(a, c)[0] for c in candidates]
        interval = parts[0]
        for part in parts[1:]:
            interval = hull(interval, part)
        overflow_possible = a[0] == SMALLINT_MIN and b[0] <= -1 <= b[1]
        return interval, not overflow_possible, False
    quotients = []
    for x in (a[0], a[1]):
        for y in (b[0], b[1]):
            quotients.append(_floordiv_host(x, y))
    lo, hi = min(quotients), max(quotients)
    safe = SMALLINT_MIN <= lo and hi <= SMALLINT_MAX
    return (make(lo, hi) or FULL), safe, True


def _floordiv_host(x: int, y: int) -> int:
    return x // y


@_memoized
def floormod(a: Interval, b: Interval) -> tuple[Interval, bool, bool]:
    """Result interval of x % y (sign follows the divisor).

    Returns ``(interval, overflow_safe, zero_impossible)``.  Modulo never
    overflows; the interval is bounded by the divisor magnitude.
    """
    zero_impossible = not (b[0] <= 0 <= b[1])
    if b[0] >= 1:
        # Positive divisors: result in [0, max(b)-1], and no wider than a
        # non-negative dividend range.
        hi = b[1] - 1
        if a[0] >= 0:
            hi = min(hi, a[1])
        return (0, max(0, hi)), True, zero_impossible
    if b[1] <= -1:
        lo = b[0] + 1
        return (min(0, lo), 0), True, zero_impossible
    return FULL, True, zero_impossible


# -- comparisons -------------------------------------------------------------


def compare_lt(a: Interval, b: Interval) -> Optional[bool]:
    """Decide x < y from ranges alone: True/False if provable, else None."""
    if a[1] < b[0]:
        return True
    if a[0] >= b[1]:
        return False
    return None


def compare_le(a: Interval, b: Interval) -> Optional[bool]:
    if a[1] <= b[0]:
        return True
    if a[0] > b[1]:
        return False
    return None


def compare_eq(a: Interval, b: Interval) -> Optional[bool]:
    if a[0] == a[1] == b[0] == b[1]:
        return True
    if not overlaps(a, b):
        return False
    return None


@_memoized
def refine_lt(a: Interval, b: Interval) -> tuple[Optional[Interval], Optional[Interval]]:
    """Refined (a, b) on the *true* branch of ``a < b``.

    The paper's rule:  x: [x_lo .. min(x_hi, y_hi - 1)],
    y: [max(y_lo, x_lo + 1) .. y_hi].  Empty refinements (branch
    unreachable) come back as None.
    """
    new_a = make(a[0], min(a[1], b[1] - 1))
    new_b = make(max(b[0], a[0] + 1), b[1])
    return new_a, new_b


@_memoized
def refine_ge(a: Interval, b: Interval) -> tuple[Optional[Interval], Optional[Interval]]:
    """Refined (a, b) on the *false* branch of ``a < b`` (i.e. a >= b)."""
    new_a = make(max(a[0], b[0]), a[1])
    new_b = make(b[0], min(b[1], a[1]))
    return new_a, new_b


@_memoized
def refine_le(a: Interval, b: Interval) -> tuple[Optional[Interval], Optional[Interval]]:
    new_a = make(a[0], min(a[1], b[1]))
    new_b = make(max(b[0], a[0]), b[1])
    return new_a, new_b


@_memoized
def refine_gt(a: Interval, b: Interval) -> tuple[Optional[Interval], Optional[Interval]]:
    new_a = make(max(a[0], b[0] + 1), a[1])
    new_b = make(b[0], min(b[1], a[1] - 1))
    return new_a, new_b


@_memoized
def refine_eq(a: Interval, b: Interval) -> tuple[Optional[Interval], Optional[Interval]]:
    both = intersect(a, b)
    return both, both
