"""repro — a reproduction of Chambers & Ungar, PLDI 1990.

*Iterative Type Analysis and Extended Message Splitting: Optimizing
Dynamically-Typed Object-Oriented Programs* — the second-generation
SELF compiler, rebuilt as a complete Python system: language, reference
interpreter, optimizing compiler, costed bytecode VM, and the paper's
benchmark suites.

Public surface (see README.md for a tour):

>>> from repro import World, Runtime, NEW_SELF
>>> world = World()
>>> runtime = Runtime(world, NEW_SELF)
>>> runtime.run("3 + 4")
7
"""

from .compiler import (
    NEW_SELF,
    OLD_SELF,
    OLD_SELF_89,
    OLD_SELF_90,
    ST80,
    STATIC_C,
    CompilerConfig,
    compile_code,
    preset,
)
from .compiler.annotations import StaticAnnotations
from .vm import Runtime
from .world import World

__version__ = "1.0.0"

__all__ = [
    "CompilerConfig",
    "NEW_SELF",
    "OLD_SELF",
    "OLD_SELF_89",
    "OLD_SELF_90",
    "Runtime",
    "ST80",
    "STATIC_C",
    "StaticAnnotations",
    "World",
    "compile_code",
    "preset",
    "__version__",
]
