"""The measurement harness.

Runs each benchmark under each system configuration in a fresh world,
collects the three quantities the paper reports — execution cycles
(speed), compiled code bytes (space), and compile seconds (time) — and
verifies every run's answer.

Results are memoized per :class:`Session` (a full matrix run is
expensive), so the table builders and the pytest benchmarks share one
measurement pass.  A session can additionally

* replay measurements from the on-disk cache (:mod:`.cache`), keyed by
  a digest of the simulator's own sources so a stale entry can never be
  served, and
* :meth:`~Session.prefetch` a batch of (benchmark, system) pairs across
  worker processes — each pair is an independent fresh-world run, so
  the matrix is embarrassingly parallel.

Both paths produce bit-identical modeled numbers to a serial in-process
run: the modeled quantities are deterministic, and only host-measured
timings vary.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field, fields
from typing import Iterable, Optional

from ..objects.errors import SelfError
from ..obs.metrics import registry_for_runtime
from ..vm.runtime import Runtime
from ..world.bootstrap import World
from . import cache
from .base import SYSTEMS, Benchmark, all_benchmarks, get_benchmark


@dataclass
class RunResult:
    """One (benchmark, system) measurement."""

    benchmark: str
    system: str
    answer: object
    cycles: int
    code_bytes: int
    compile_seconds: float
    instructions: int
    send_hits: int
    send_misses: int
    send_megamorphic: int
    methods_compiled: int
    wall_seconds: float
    verified: bool
    compile_stats: dict = field(default_factory=dict)
    #: the run could not be measured at all (worker crash and the
    #: in-process retry also failed) — rendered as a FAILED cell
    failed: bool = False
    #: diagnostic for a failed cell: "ErrorKind: detail"
    error: str = ""
    #: tier degradations the run's Runtime recorded (see
    #: repro.robustness.recovery); nonzero means the modeled numbers
    #: are diagnostic, not comparable
    recovery_events: int = 0
    #: the full degradation records (RecoveryLog.to_records())
    recovery: list = field(default_factory=list)
    #: the unified post-run metrics snapshot (repro.obs.metrics)
    metrics: dict = field(default_factory=dict)

    @property
    def code_kb(self) -> float:
        return self.code_bytes / 1024.0

    def to_record(self) -> dict:
        """A JSON-serializable form (for the disk cache and workers)."""
        answer = self.answer
        if not isinstance(answer, (int, float, str, bool, type(None))):
            answer = repr(answer)
        record = dict(self.__dict__)
        record["answer"] = answer
        return record

    @classmethod
    def from_record(cls, record: dict) -> "RunResult":
        # Tolerate record-shape drift (an on-disk entry written by an
        # older or newer schema): unknown keys are dropped, missing
        # optional fields take their defaults, and a record missing a
        # required field still raises — cache.load() validates first.
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in record.items() if k in known})

    @classmethod
    def failure(cls, benchmark: str, system: str, error: BaseException) -> "RunResult":
        """A FAILED cell: the pair could not be measured."""
        return cls(
            benchmark=benchmark, system=system, answer=None, cycles=0,
            code_bytes=0, compile_seconds=0.0, instructions=0, send_hits=0,
            send_misses=0, send_megamorphic=0, methods_compiled=0,
            wall_seconds=0.0, verified=False, failed=True,
            error=f"{type(error).__name__}: {error}",
        )


def run_benchmark(benchmark: Benchmark, system: str) -> RunResult:
    """Execute one benchmark under one system in a fresh world."""
    config = SYSTEMS[system]
    # A pinned universe id: worker processes each restart the default
    # "uN" counter, so letting it float would make the scoped-metrics
    # keys depend on how the matrix was scheduled.
    world = World(universe_id="u0")
    world.add_slots(benchmark.setup_source)
    annotations = None
    if benchmark.annotate is not None and config.static_types:
        from ..compiler.annotations import StaticAnnotations

        annotations = StaticAnnotations()
        benchmark.annotate(world, annotations)
    runtime = Runtime(world, config, annotations=annotations)
    started = time.perf_counter()
    answer = runtime.run(benchmark.run_source)
    wall = time.perf_counter() - started
    verified = benchmark.expected is None or answer == benchmark.expected
    # REPRO_SCOPED_METRICS=1 keys the snapshot per tenant
    # ("u0/vm.cycles"); default stays flat for backward compatibility.
    scope = (
        runtime.universe.universe_id
        if os.environ.get("REPRO_SCOPED_METRICS", "0") != "0"
        else None
    )
    return RunResult(
        benchmark=benchmark.name,
        system=system,
        answer=answer,
        cycles=runtime.cycles,
        code_bytes=runtime.code_bytes,
        compile_seconds=runtime.compile_seconds,
        instructions=runtime.instructions,
        send_hits=runtime.send_hits,
        send_misses=runtime.send_misses,
        send_megamorphic=runtime.send_megamorphic,
        methods_compiled=runtime.methods_compiled,
        wall_seconds=wall,
        verified=verified,
        compile_stats=runtime.aggregate_compile_stats(),
        recovery_events=len(runtime.recovery),
        recovery=runtime.recovery.to_records(),
        metrics=registry_for_runtime(runtime, scope=scope).snapshot(),
    )


def _run_pair(pair: tuple[str, str]) -> dict:
    """Worker entry: measure one pair, return a picklable record."""
    name, system = pair
    return run_benchmark(get_benchmark(name), system).to_record()


class Session:
    """A lazy, memoizing matrix of benchmark results.

    ``use_cache`` replays results from the on-disk cache; ``jobs``
    bounds the worker-process count used by :meth:`prefetch` (None
    means the host CPU count; 1 runs serially in-process).
    """

    def __init__(self, jobs: Optional[int] = None, use_cache: bool = False) -> None:
        self._results: dict[tuple[str, str], RunResult] = {}
        self.jobs = jobs
        self.use_cache = use_cache

    def _admit(self, result: RunResult) -> RunResult:
        if result.failed:
            # A FAILED cell is memoized so the tables can render it, but
            # never written to the on-disk cache: a later run should
            # retry the measurement, not replay the failure.
            self._results[(result.benchmark, result.system)] = result
            return result
        if not result.verified:
            raise AssertionError(
                f"{result.benchmark} under {result.system} produced a wrong "
                f"answer: {result.answer!r} "
                f"(expected {get_benchmark(result.benchmark).expected!r})"
            )
        self._results[(result.benchmark, result.system)] = result
        if self.use_cache:
            cache.store(result.benchmark, result.system, result.to_record())
        return result

    def result(self, benchmark_name: str, system: str) -> RunResult:
        cached = self._results.get((benchmark_name, system))
        if cached is not None:
            return cached
        if self.use_cache:
            record = cache.load(benchmark_name, system)
            if record is not None:
                return self._admit(RunResult.from_record(record))
        return self._admit(run_benchmark(get_benchmark(benchmark_name), system))

    def prefetch(self, pairs: Optional[Iterable[tuple[str, str]]] = None) -> None:
        """Measure the given (benchmark, system) pairs — the full matrix
        when omitted — fanning the misses out over worker processes.

        Failure containment: a pair whose worker dies (or raises) is
        retried once in-process; if the retry also fails, a FAILED cell
        is recorded and the rest of the matrix proceeds.  One crashing
        measurement never aborts the whole run.
        """
        if pairs is None:
            pairs = [
                (name, system)
                for name in sorted(all_benchmarks())
                for system in SYSTEMS
            ]
        missing = []
        for pair in pairs:
            if pair in self._results:
                continue
            if self.use_cache:
                record = cache.load(*pair)
                if record is not None:
                    self._admit(RunResult.from_record(record))
                    continue
            missing.append(pair)
        if not missing:
            return
        jobs = self.jobs if self.jobs is not None else os.cpu_count() or 1
        jobs = min(jobs, len(missing))
        retry = []
        if jobs <= 1:
            retry = missing
        else:
            from concurrent.futures import ProcessPoolExecutor

            with ProcessPoolExecutor(max_workers=jobs) as pool:
                futures = [(pair, pool.submit(_run_pair, pair)) for pair in missing]
                for pair, future in futures:
                    try:
                        self._admit(RunResult.from_record(future.result()))
                    except Exception:
                        # Worker crash (BrokenProcessPool kills every
                        # sibling future too), an in-worker error, or a
                        # record that fails verification: fall back to
                        # one in-process attempt below.
                        retry.append(pair)
        for name, system in retry:
            try:
                self._admit(run_benchmark(get_benchmark(name), system))
            except Exception as error:
                self._admit(RunResult.failure(name, system, error))

    def percent_of_c(self, benchmark_name: str, system: str) -> float:
        """Speed as a percentage of the optimized-C baseline.

        The baseline is the *static* run of the benchmark's ``c_baseline``
        (the plain version, for the ``-oo`` rewrites), exactly how the
        paper normalizes.
        """
        benchmark = get_benchmark(benchmark_name)
        measured = self.result(benchmark_name, system)
        baseline = self.result(benchmark.c_baseline, "static")
        if measured.cycles == 0:
            return 0.0
        return 100.0 * baseline.cycles / measured.cycles

    def all_results(self, systems: Optional[list[str]] = None) -> list[RunResult]:
        names = sorted(all_benchmarks())
        systems = systems or list(SYSTEMS)
        return [self.result(name, system) for name in names for system in systems]


#: schema identifier written into BENCH_results.json (bump on shape change)
RESULTS_SCHEMA = "repro-bench-results/1"


def results_payload(session: Session) -> dict:
    """The machine-readable form of every result a session measured."""
    results = [
        session._results[key].to_record() for key in sorted(session._results)
    ]
    return {
        "schema": RESULTS_SCHEMA,
        "systems": list(SYSTEMS),
        "results": results,
    }


def write_results_json(session: Session, path: str) -> dict:
    """Dump the session's measurements as ``BENCH_results.json``."""
    import json

    payload = results_payload(session)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1, default=repr)
    return payload


#: the process-wide session shared by tables, tests, and benchmarks
#: (in-memory memoization only, exactly as before; the CLI builds its
#: own cached/parallel session)
GLOBAL_SESSION = Session()
