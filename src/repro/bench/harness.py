"""The measurement harness.

Runs each benchmark under each system configuration in a fresh world,
collects the three quantities the paper reports — execution cycles
(speed), compiled code bytes (space), and compile seconds (time) — and
verifies every run's answer.

Results are cached per process (a full matrix run is expensive), so the
table builders and the pytest benchmarks share one measurement pass.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from ..objects.errors import SelfError
from ..vm.runtime import Runtime
from ..world.bootstrap import World
from .base import SYSTEMS, Benchmark, all_benchmarks, get_benchmark


@dataclass
class RunResult:
    """One (benchmark, system) measurement."""

    benchmark: str
    system: str
    answer: object
    cycles: int
    code_bytes: int
    compile_seconds: float
    instructions: int
    send_hits: int
    send_misses: int
    send_megamorphic: int
    methods_compiled: int
    wall_seconds: float
    verified: bool
    compile_stats: dict = field(default_factory=dict)

    @property
    def code_kb(self) -> float:
        return self.code_bytes / 1024.0


def run_benchmark(benchmark: Benchmark, system: str) -> RunResult:
    """Execute one benchmark under one system in a fresh world."""
    config = SYSTEMS[system]
    world = World()
    world.add_slots(benchmark.setup_source)
    annotations = None
    if benchmark.annotate is not None and config.static_types:
        from ..compiler.annotations import StaticAnnotations

        annotations = StaticAnnotations()
        benchmark.annotate(world, annotations)
    runtime = Runtime(world, config, annotations=annotations)
    started = time.perf_counter()
    answer = runtime.run(benchmark.run_source)
    wall = time.perf_counter() - started
    verified = benchmark.expected is None or answer == benchmark.expected
    return RunResult(
        benchmark=benchmark.name,
        system=system,
        answer=answer,
        cycles=runtime.cycles,
        code_bytes=runtime.code_bytes,
        compile_seconds=runtime.compile_seconds,
        instructions=runtime.instructions,
        send_hits=runtime.send_hits,
        send_misses=runtime.send_misses,
        send_megamorphic=runtime.send_megamorphic,
        methods_compiled=runtime.methods_compiled,
        wall_seconds=wall,
        verified=verified,
        compile_stats=runtime.aggregate_compile_stats(),
    )


class Session:
    """A lazy, memoizing matrix of benchmark results."""

    def __init__(self) -> None:
        self._results: dict[tuple[str, str], RunResult] = {}

    def result(self, benchmark_name: str, system: str) -> RunResult:
        key = (benchmark_name, system)
        cached = self._results.get(key)
        if cached is None:
            cached = run_benchmark(get_benchmark(benchmark_name), system)
            if not cached.verified:
                raise AssertionError(
                    f"{benchmark_name} under {system} produced a wrong answer: "
                    f"{cached.answer!r} (expected {get_benchmark(benchmark_name).expected!r})"
                )
            self._results[key] = cached
        return cached

    def percent_of_c(self, benchmark_name: str, system: str) -> float:
        """Speed as a percentage of the optimized-C baseline.

        The baseline is the *static* run of the benchmark's ``c_baseline``
        (the plain version, for the ``-oo`` rewrites), exactly how the
        paper normalizes.
        """
        benchmark = get_benchmark(benchmark_name)
        measured = self.result(benchmark_name, system)
        baseline = self.result(benchmark.c_baseline, "static")
        if measured.cycles == 0:
            return 0.0
        return 100.0 * baseline.cycles / measured.cycles

    def all_results(self, systems: Optional[list[str]] = None) -> list[RunResult]:
        names = sorted(all_benchmarks())
        systems = systems or list(SYSTEMS)
        return [self.result(name, system) for name in names for system in systems]


#: the process-wide session shared by tables, tests, and benchmarks
GLOBAL_SESSION = Session()
