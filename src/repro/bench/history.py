"""Bench-run history: an append-only JSONL perf trajectory.

``BENCH_exec.json`` and ``BENCH_compile.json`` are snapshots — each run
overwrites the last, so the repo never accumulates a trajectory to
regress against.  This module gives both benchmark CLIs a shared
append-only log (``BENCH_history.jsonl``, one JSON object per line)
recording when each run happened, at which commit, and its headline
number, plus a delta rendered against the previous entry of the same
kind::

    {"schema": "repro-bench-history/1", "kind": "exec",
     "timestamp": "2026-08-09T12:00:00", "git_sha": "0b68665",
     "summary": {"geomean_speedup": 2.41}}

Corrupt or foreign lines are tolerated (skipped) on read so a botched
merge never bricks the benchmarks.
"""

from __future__ import annotations

import json
import os
import subprocess
from datetime import datetime
from typing import Optional, Tuple

#: schema identifier stamped into every history line (bump on shape change)
HISTORY_SCHEMA = "repro-bench-history/1"


def git_sha() -> str:
    """The short commit sha of the working tree, or '' outside a repo."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
    except (OSError, subprocess.TimeoutExpired):
        return ""
    return out.stdout.strip() if out.returncode == 0 else ""


def read_history(path: str) -> list:
    """All parseable entries in the history file, oldest first."""
    if not os.path.exists(path):
        return []
    entries = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except ValueError:
                continue  # tolerate corrupt lines; history is best-effort
            if isinstance(entry, dict):
                entries.append(entry)
    return entries


def last_entry(path: str, kind: str) -> Optional[dict]:
    """The most recent entry of ``kind``, or None."""
    for entry in reversed(read_history(path)):
        if entry.get("kind") == kind:
            return entry
    return None


def append_history(
    path: str, kind: str, summary: dict
) -> Tuple[dict, Optional[dict]]:
    """Append one run to the history; returns (new entry, previous).

    ``previous`` is the last prior entry of the same kind (None on the
    first run), so callers can print a delta without re-reading.
    """
    previous = last_entry(path, kind)
    entry = {
        "schema": HISTORY_SCHEMA,
        "kind": kind,
        "timestamp": datetime.now().isoformat(timespec="seconds"),
        "git_sha": git_sha(),
        "summary": summary,
    }
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(entry, sort_keys=True) + "\n")
    return entry, previous


def format_delta(entry: dict, previous: Optional[dict]) -> str:
    """A one-line delta vs. the previous same-kind entry.

    Compares every numeric key the two summaries share; first run gets
    a baseline note instead.
    """
    summary = entry.get("summary", {})
    if previous is None:
        rendered = ", ".join(
            f"{key}={value:.3f}" if isinstance(value, float) else f"{key}={value}"
            for key, value in sorted(summary.items())
        )
        return f"history: first {entry.get('kind')} entry ({rendered})"
    prior = previous.get("summary", {})
    parts = []
    for key in sorted(summary):
        now, then = summary[key], prior.get(key)
        if not isinstance(now, (int, float)) or not isinstance(then, (int, float)):
            continue
        if then:
            pct = 100.0 * (now - then) / then
            parts.append(f"{key} {then:.3f} -> {now:.3f} ({pct:+.1f}%)")
        else:
            parts.append(f"{key} {then} -> {now}")
    stamp = previous.get("timestamp", "?")
    sha = previous.get("git_sha") or "?"
    detail = "; ".join(parts) if parts else "no comparable numbers"
    return f"history: vs {sha} at {stamp}: {detail}"
