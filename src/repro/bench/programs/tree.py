"""tree — binary-tree sort (insert N pseudo-random keys, verify order).

The plain version walks explicit node records through benchmark-object
procedures; the ``-oo`` rewrite gives the nodes ``insert:`` and
``checkFrom:`` methods (this is the benchmark where the paper's ST-80
and SELF numbers come closest to C, since it is dominated by
dynamically-bound calls in every system).
"""

from ..base import Benchmark, register
from .common import RANDOM_SOURCE

SIZE = 400  # Stanford uses 5000

TREE_SETUP = RANDOM_SOURCE + f"""|
  treeNode = (| parent* = traits clonable.
    left. right. val <- 0.
  |).

  treeBench = (| parent* = traits clonable.
    root.

    newNode: v = ( | n |
      n: treeNode clone.
      n left: nil.
      n right: nil.
      n val: v.
      n ).

    insert: v Into: node = (
      v < node val
        ifTrue: [
          node left isNil
            ifTrue: [ node left: (newNode: v) ]
            False: [ insert: v Into: node left ] ]
        False: [
          node right isNil
            ifTrue: [ node right: (newNode: v) ]
            False: [ insert: v Into: node right ] ].
      self ).

    check: node = (
      node isNil ifTrue: [ ^ true ].
      node left isNil not ifTrue: [
        (node left val < node val) not ifTrue: [ ^ false ].
        (check: node left) not ifTrue: [ ^ false ] ].
      node right isNil not ifTrue: [
        (node val <= node right val) not ifTrue: [ ^ false ].
        (check: node right) not ifTrue: [ ^ false ] ].
      true ).

    count: node = (
      node isNil ifTrue: [ ^ 0 ].
      1 + (count: node left) + (count: node right) ).

    run = ( | rnd. i |
      rnd: stanfordRandom clone initRandom.
      root: (newNode: rnd next).
      i: 1.
      [ i < {SIZE} ] whileTrue: [
        insert: (rnd next) + (i % 3) Into: root.
        i: i + 1 ].
      (check: root) ifTrue: [ count: root ] False: [ -1 ] ).
  |).
|"""

TREE_OO_SETUP = RANDOM_SOURCE + f"""|
  ooTreeNode = (| parent* = traits clonable.
    left. right. val <- 0.

    initVal: v = ( left: nil. right: nil. val: v. self ).

    insert: v = (
      v < val
        ifTrue: [
          left isNil
            ifTrue: [ left: (ooTreeNode clone initVal: v) ]
            False: [ left insert: v ] ]
        False: [
          right isNil
            ifTrue: [ right: (ooTreeNode clone initVal: v) ]
            False: [ right insert: v ] ].
      self ).

    isOrdered = (
      left isNil not ifTrue: [
        (left val < val) not ifTrue: [ ^ false ].
        left isOrdered not ifTrue: [ ^ false ] ].
      right isNil not ifTrue: [
        (val <= right val) not ifTrue: [ ^ false ].
        right isOrdered not ifTrue: [ ^ false ] ].
      true ).

    count = ( | n |
      n: 1.
      left isNil not ifTrue: [ n: n + left count ].
      right isNil not ifTrue: [ n: n + right count ].
      n ).
  |).

  treeOoBench = (| parent* = traits clonable.
    run = ( | rnd. root. i |
      rnd: stanfordRandom clone initRandom.
      root: (ooTreeNode clone initVal: rnd next).
      i: 1.
      [ i < {SIZE} ] whileTrue: [
        root insert: (rnd next) + (i % 3).
        i: i + 1 ].
      root isOrdered ifTrue: [ root count ] False: [ -1 ] ).
  |).
|"""

def _annotate_tree(world, ann):
    """C declarations: node pointers are nullable struct pointers."""
    node_map = world.get_global("treeNode").map
    maybe_node = ("maybe", node_map)
    ann.declare_slot("treeNode", "left", maybe_node)
    ann.declare_slot("treeNode", "right", maybe_node)
    ann.declare_slot("treeNode", "val", "int")
    ann.declare_slot("treeBench", "root", node_map)
    ann.declare_args("treeBench", "insert:Into:", ["int", node_map])
    ann.declare_args("treeBench", "check:", [maybe_node])
    ann.declare_args("treeBench", "count:", [maybe_node])
    ann.declare_args("treeBench", "newNode:", ["int"])


register(
    Benchmark(
        name="tree",
        group="stanford",
        setup_source=TREE_SETUP,
        run_source="treeBench run",
        expected=SIZE,
        annotate=_annotate_tree,
        scale=f"{SIZE} keys (Stanford: 5000)",
    )
)

register(
    Benchmark(
        name="tree-oo",
        group="stanford-oo",
        setup_source=TREE_OO_SETUP,
        run_source="treeOoBench run",
        expected=SIZE,
        c_baseline="tree",
        scale=f"{SIZE} keys (Stanford: 5000)",
    )
)
