"""quick — recursive quicksort over a pseudo-random vector.

The plain version keeps ``sortFrom:To:`` on the benchmark object and
passes the vector around; the ``-oo`` rewrite puts the sort on the
vector-wrapping object itself.
"""

from ..base import Benchmark, register
from .common import RANDOM_SOURCE

SIZE = 600  # Stanford uses 5000

QUICK_SETUP = RANDOM_SOURCE + f"""|
  quickBench = (| parent* = traits clonable.
    data.

    initData = ( | rnd. i |
      rnd: stanfordRandom clone initRandom.
      data: (vector copySize: {SIZE}).
      i: 0.
      [ i < {SIZE} ] whileTrue: [ data at: i Put: rnd next. i: i + 1 ].
      self ).

    sort: a From: lo To: hi = ( | i. j. pivot. t |
      i: lo.
      j: hi.
      pivot: (a at: (lo + hi) / 2).
      [ i <= j ] whileTrue: [
        [ (a at: i) < pivot ] whileTrue: [ i: i + 1 ].
        [ pivot < (a at: j) ] whileTrue: [ j: j - 1 ].
        i <= j ifTrue: [
          t: (a at: i).
          a at: i Put: (a at: j).
          a at: j Put: t.
          i: i + 1.
          j: j - 1 ] ].
      lo < j ifTrue: [ sort: a From: lo To: j ].
      i < hi ifTrue: [ sort: a From: i To: hi ].
      self ).

    checksum = ( | ok. i |
      ok: true.
      i: 1.
      [ i < {SIZE} ] whileTrue: [
        (data at: i - 1) > (data at: i) ifTrue: [ ok: false ].
        i: i + 1 ].
      ok ifTrue: [ (data at: 0) + (data at: {SIZE} - 1) ] False: [ -1 ] ).

    run = (
      initData.
      sort: data From: 0 To: {SIZE} - 1.
      checksum ).
  |).
|"""

QUICK_OO_SETUP = RANDOM_SOURCE + f"""|
  sortableProto = (| parent* = traits clonable.
    items.

    initSize: n With: rnd = ( | i |
      items: (vector copySize: n).
      i: 0.
      [ i < n ] whileTrue: [ items at: i Put: rnd next. i: i + 1 ].
      self ).

    at: i = ( items at: i ).
    at: i Put: v = ( items at: i Put: v. self ).
    size = ( items size ).

    swap: i With: j = ( | t |
      t: (items at: i).
      items at: i Put: (items at: j).
      items at: j Put: t.
      self ).

    quicksortFrom: lo To: hi = ( | i. j. pivot |
      i: lo.
      j: hi.
      pivot: (at: (lo + hi) / 2).
      [ i <= j ] whileTrue: [
        [ (at: i) < pivot ] whileTrue: [ i: i + 1 ].
        [ pivot < (at: j) ] whileTrue: [ j: j - 1 ].
        i <= j ifTrue: [
          swap: i With: j.
          i: i + 1.
          j: j - 1 ] ].
      lo < j ifTrue: [ quicksortFrom: lo To: j ].
      i < hi ifTrue: [ quicksortFrom: i To: hi ].
      self ).

    isSorted = ( | i |
      i: 1.
      [ i < size ] whileTrue: [
        (at: i - 1) > (at: i) ifTrue: [ ^ false ].
        i: i + 1 ].
      true ).
  |).

  quickOoBench = (| parent* = traits clonable.
    run = ( | s |
      s: (sortableProto clone initSize: {SIZE} With: (stanfordRandom clone initRandom)).
      s quicksortFrom: 0 To: s size - 1.
      s isSorted ifTrue: [ (s at: 0) + (s at: s size - 1) ] False: [ -1 ] ).
  |).
|"""

register(
    Benchmark(
        name="quick",
        group="stanford",
        setup_source=QUICK_SETUP,
        run_source="quickBench run",
        expected=65505,
        scale=f"{SIZE} elements (Stanford: 5000)",
    )
)

register(
    Benchmark(
        name="quick-oo",
        group="stanford-oo",
        setup_source=QUICK_OO_SETUP,
        run_source="quickOoBench run",
        expected=65505,
        c_baseline="quick",
        scale=f"{SIZE} elements (Stanford: 5000)",
    )
)
