"""The ``poly`` group: tunable polymorphic-to-megamorphic dispatch.

Hostile-polymorphism micro-benchmarks for the dispatch ladder
(mono IC -> bounded PIC -> megamorphic table, docs/INTERNALS.md §15):
``N`` receiver classes share the selectors ``probe`` (a per-class
constant slot) and ``probeTwice`` (one method inherited from a common
parent), and one driver loop sends ``probeTwice`` across a receiver
vector that cycles through all ``N`` classes.

* ``N = 1`` is the monomorphic baseline — the zero-regression guard.
* ``N <= 4`` (the default ``REPRO_PIC_DEPTH``) stays inside the PIC.
* ``N >= 32`` is firmly megamorphic: without the dispatch table every
  send at the hot site relinks, with it every send is one table probe.

Two receiver mixes:

* **uniform** — slot ``j`` holds class ``j mod N``: every consecutive
  send sees a different map, the worst case for a monomorphic IC.
* **skewed** — seven of every eight slots hold class 0, the rest cycle
  the remaining classes: the common case is mono-IC-friendly while the
  tail still forces the site megamorphic.

The driver rebuilds the receiver vector each run (cheap next to the
send loop) so repeated measurement runs are identical.
"""

from ..base import Benchmark, register

#: receiver-vector length; >= the largest N so every class is hit
VECTOR_SIZE = 128

#: driver passes over the vector per measured run
PASSES = 12

#: statement-position ``probe`` sends per receiver slot (results
#: discarded): keeps the inner loop dominated by dispatch, not by the
#: arithmetic around it
PROBES_PER_SLOT = 30


def _class_at(slot: int, n: int, skewed: bool) -> int:
    """Which of the ``n`` classes occupies receiver-vector ``slot``."""
    if not skewed:
        return slot % n
    if slot % 8 != 7:
        return 0
    return (slot // 8) % n


def _poly_setup(n: int, skewed: bool) -> str:
    lines = [
        "|",
        "  polyParent = (| parent* = traits clonable.",
        "    probeTwice = ( probe + probe ).",
        "  |).",
    ]
    for i in range(n):
        lines.append(f"  polyR{i} = (| parent* = polyParent. probe = {i + 1} |).")
    puts = "\n".join(
        f"      v at: {j} Put: polyR{_class_at(j, n, skewed)}."
        for j in range(VECTOR_SIZE)
    )
    probes = "\n".join("          r probe." for _ in range(PROBES_PER_SLOT))
    lines.append(f"""  polyBench = (| parent* = traits clonable.
    receivers = ( | v |
      v: (vector copySize: {VECTOR_SIZE}).
{puts}
      v ).
    run = ( | v. sum. pass. i. r |
      v: receivers.
      sum: 0.
      pass: 0.
      [ pass < {PASSES} ] whileTrue: [
        i: 0.
        [ i < {VECTOR_SIZE} ] whileTrue: [
          r: (v at: i).
{probes}
          sum: sum + r probeTwice.
          i: i + 1 ].
        pass: pass + 1 ].
      sum ).
  |).
|""")
    return "\n".join(lines)


def _expected(n: int, skewed: bool) -> int:
    per_pass = sum(
        2 * (_class_at(j, n, skewed) + 1) for j in range(VECTOR_SIZE)
    )
    return PASSES * per_pass


def _register(name: str, n: int, skewed: bool) -> None:
    mix = "skewed" if skewed else "uniform"
    register(
        Benchmark(
            name=name,
            group="poly",
            setup_source=_poly_setup(n, skewed),
            run_source="polyBench run",
            expected=_expected(n, skewed),
            scale=(
                f"{n} receiver classes, {mix} mix, "
                f"{PASSES}x{VECTOR_SIZE} sends"
            ),
        )
    )


for _n in (1, 2, 4, 8, 32, 128):
    _register(f"poly{_n}", _n, skewed=False)
for _n in (32, 128):
    _register(f"poly{_n}-skew", _n, skewed=True)
