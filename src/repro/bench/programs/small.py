"""The "small" micro-benchmark group: sieve, sumTo, sumFromTo,
sumToConst, atAllPut — the paper's initial test suite for the new
techniques.

* ``sumTo`` / ``sumFromTo`` exercise iterative type analysis on loops
  whose bounds arrive as unknown-typed arguments.
* ``sumToConst`` has a compile-time-constant bound, so range analysis
  can remove *every* check including the overflow check.
* ``sieve`` and ``atAllPut`` exercise array bounds-check elimination
  against a vector of statically-known size.
"""

from ..base import Benchmark, register

SIEVE_SIZE = 819  # classic BYTE sieve uses 8190

SIEVE_SETUP = f"""|
  sieveBench = (| parent* = traits clonable.
    run = ( | flags. count. i. k |
      flags: (vector copySize: {SIEVE_SIZE}).
      flags atAllPut: true.
      count: 0.
      i: 2.
      [ i < {SIEVE_SIZE} ] whileTrue: [
        (flags at: i) ifTrue: [
          k: i + i.
          [ k < {SIEVE_SIZE} ] whileTrue: [
            flags at: k Put: false.
            k: k + i ].
          count: count + 1 ].
        i: i + 1 ].
      count ).
  |).
|"""

SUM_SETUP = """|
  sumBench = (| parent* = traits clonable.
    sumTo: n = ( | sum |
      sum: 0.
      1 to: n Do: [ | :i | sum: sum + i ].
      sum ).

    sumFrom: start To: n = ( | sum |
      sum: 0.
      start to: n Do: [ | :i | sum: sum + i ].
      sum ).

    sumToConst = ( | sum |
      sum: 0.
      1 to: 10000 Do: [ | :i | sum: sum + i ].
      sum ).
  |).
|"""

AT_ALL_PUT_SETUP = """|
  atAllPutBench = (| parent* = traits clonable.
    run = ( | v. passes |
      v: (vector copySize: 2000).
      passes: 0.
      [ passes < 5 ] whileTrue: [
        v atAllPut: passes.
        passes: passes + 1 ].
      (v at: 1999) ).
  |).
|"""


def _count_primes(limit: int) -> int:
    flags = [True] * limit
    count = 0
    for i in range(2, limit):
        if flags[i]:
            for k in range(i + i, limit, i):
                flags[k] = False
            count += 1
    return count


register(
    Benchmark(
        name="sieve",
        group="small",
        setup_source=SIEVE_SETUP,
        run_source="sieveBench run",
        expected=_count_primes(SIEVE_SIZE),
        scale=f"{SIEVE_SIZE} flags (classic: 8190)",
    )
)

register(
    Benchmark(
        name="sumTo",
        group="small",
        setup_source=SUM_SETUP,
        run_source="sumBench sumTo: 10000",
        expected=10000 * 10001 // 2,
        scale="1..10000",
    )
)

register(
    Benchmark(
        name="sumFromTo",
        group="small",
        setup_source=SUM_SETUP,
        run_source="sumBench sumFrom: 1 To: 10000",
        expected=10000 * 10001 // 2,
        scale="1..10000",
    )
)

register(
    Benchmark(
        name="sumToConst",
        group="small",
        setup_source=SUM_SETUP,
        run_source="sumBench sumToConst",
        expected=10000 * 10001 // 2,
        scale="1..10000 constant bound",
    )
)

register(
    Benchmark(
        name="atAllPut",
        group="small",
        setup_source=AT_ALL_PUT_SETUP,
        run_source="atAllPutBench run",
        expected=4,
        scale="2000-element vector, 5 passes",
    )
)
