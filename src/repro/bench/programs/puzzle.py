"""puzzle — Forest Baskett's 3-D packing puzzle (the Stanford version).

A faithful port of ``puzzle.c``: thirteen piece types in four classes
packed into the interior of an 8x8x8 cube by exhaustive search.  In the
original the solution is found after exactly 2005 calls of ``trial``;
to fit a Python-hosted VM budget our search *truncates after
TRIAL_LIMIT calls* (same data, same fit/place/remove loops, same code
paths — only the tail of the exhaustive search is cut).  The answer is
the deterministic kount at the cut, verified across every system.

Per the paper, puzzle has no ``-oo`` rewrite; the plain version is
counted in both the stanford and stanford-oo groups by the summary
tables.
"""

from ..base import Benchmark, register

#: cube dimension and flattened size, exactly as in puzzle.c
D = 8
SIZE = 511
TYPEMAX = 12
CLASSMAX = 3

#: exhaustive-search cap (the classic full run reaches kount = 2005)
TRIAL_LIMIT = 300

PUZZLE_SETUP = f"""|
  puzzleBench = (| parent* = traits clonable.
    puzzleCells.
    pieces.
    pieceClass.
    pieceMax.
    classCount.
    kount <- 0.

    index: i J: j K: k = ( i + ({D} * (j + ({D} * k))) ).

    definePiece: n Class: c IMax: im JMax: jm KMax: km = ( | shape. i. j. k |
      shape: (pieces at: n).
      i: 0.
      [ i <= im ] whileTrue: [
        j: 0.
        [ j <= jm ] whileTrue: [
          k: 0.
          [ k <= km ] whileTrue: [
            shape at: (index: i J: j K: k) Put: true.
            k: k + 1 ].
          j: j + 1 ].
        i: i + 1 ].
      pieceClass at: n Put: c.
      pieceMax at: n Put: (index: im J: jm K: km).
      self ).

    fit: i At: j = ( | k. limit. shape |
      shape: (pieces at: i).
      limit: (pieceMax at: i).
      k: 0.
      [ k <= limit ] whileTrue: [
        ((shape at: k) and: [ puzzleCells at: j + k ]) ifTrue: [ ^ false ].
        k: k + 1 ].
      true ).

    place: i At: j = ( | k. limit. shape |
      shape: (pieces at: i).
      limit: (pieceMax at: i).
      k: 0.
      [ k <= limit ] whileTrue: [
        (shape at: k) ifTrue: [ puzzleCells at: j + k Put: true ].
        k: k + 1 ].
      classCount at: (pieceClass at: i)
                Put: ((classCount at: (pieceClass at: i)) - 1).
      k: j.
      [ k <= {SIZE} ] whileTrue: [
        (puzzleCells at: k) ifFalse: [ ^ k ].
        k: k + 1 ].
      0 ).

    removePiece: i At: j = ( | k. limit. shape |
      shape: (pieces at: i).
      limit: (pieceMax at: i).
      k: 0.
      [ k <= limit ] whileTrue: [
        (shape at: k) ifTrue: [ puzzleCells at: j + k Put: false ].
        k: k + 1 ].
      classCount at: (pieceClass at: i)
                Put: ((classCount at: (pieceClass at: i)) + 1).
      self ).

    trial: j = ( | i. k |
      kount >= {TRIAL_LIMIT} ifTrue: [ ^ true ].
      kount: kount + 1.
      i: 0.
      [ i <= {TYPEMAX} ] whileTrue: [
        ((classCount at: (pieceClass at: i)) != 0) ifTrue: [
          (fit: i At: j) ifTrue: [
            k: (place: i At: j).
            ((trial: k) or: [ k = 0 ]) ifTrue: [ ^ true ]
                                       False: [ removePiece: i At: j ] ] ].
        i: i + 1 ].
      false ).

    setup = ( | i. j. k. n |
      puzzleCells: (vector copySize: {SIZE} + 1).
      puzzleCells atAllPut: true.
      i: 1.
      [ i <= 5 ] whileTrue: [
        j: 1.
        [ j <= 5 ] whileTrue: [
          k: 1.
          [ k <= 5 ] whileTrue: [
            puzzleCells at: (index: i J: j K: k) Put: false.
            k: k + 1 ].
          j: j + 1 ].
        i: i + 1 ].
      pieces: (vector copySize: {TYPEMAX} + 1).
      pieceClass: (vector copySize: {TYPEMAX} + 1).
      pieceMax: (vector copySize: {TYPEMAX} + 1).
      n: 0.
      [ n <= {TYPEMAX} ] whileTrue: [
        pieces at: n Put: ((vector copySize: {SIZE} + 1) atAllPut: false).
        n: n + 1 ].
      definePiece: 0 Class: 0 IMax: 3 JMax: 1 KMax: 0.
      definePiece: 1 Class: 0 IMax: 1 JMax: 0 KMax: 3.
      definePiece: 2 Class: 0 IMax: 0 JMax: 3 KMax: 1.
      definePiece: 3 Class: 0 IMax: 1 JMax: 3 KMax: 0.
      definePiece: 4 Class: 0 IMax: 3 JMax: 0 KMax: 1.
      definePiece: 5 Class: 0 IMax: 0 JMax: 1 KMax: 3.
      definePiece: 6 Class: 1 IMax: 3 JMax: 0 KMax: 0.
      definePiece: 7 Class: 1 IMax: 0 JMax: 3 KMax: 0.
      definePiece: 8 Class: 1 IMax: 0 JMax: 0 KMax: 3.
      definePiece: 9 Class: 2 IMax: 1 JMax: 1 KMax: 0.
      definePiece: 10 Class: 2 IMax: 1 JMax: 0 KMax: 1.
      definePiece: 11 Class: 2 IMax: 0 JMax: 1 KMax: 1.
      definePiece: 12 Class: 3 IMax: 1 JMax: 1 KMax: 1.
      classCount: (vector copySize: {CLASSMAX} + 1).
      classCount at: 0 Put: 13.
      classCount at: 1 Put: 3.
      classCount at: 2 Put: 1.
      classCount at: 3 Put: 1.
      kount: 0.
      self ).

    run = ( | m. n |
      setup.
      m: (index: 1 J: 1 K: 1).
      (fit: 0 At: m) ifTrue: [ n: (place: 0 At: m) ]
                     False: [ ^ -1 ].
      (trial: n) ifTrue: [ kount ] False: [ -2 ] ).
  |).
|"""

register(
    Benchmark(
        name="puzzle",
        group="stanford",
        setup_source=PUZZLE_SETUP,
        run_source="puzzleBench run",
        expected=TRIAL_LIMIT,  # kount at the deterministic search cut
        scale=f"8x8x8 Baskett puzzle, search truncated at {TRIAL_LIMIT} trials",
    )
)
