"""richards — Martin Richards' operating-system simulator.

The benchmark schedules six tasks (an idler, a worker, two protocol
handlers, and two device handlers) exchanging packets through priority
queues.  The scheduler's ``runTask:`` send is *polymorphic* — each task
kind handles it differently — which defeats inline caching at that one
call site and is the bottleneck the paper analyzes in section 6.1.

This port follows the canonical structure (the Smalltalk/JS versions):
task state is a bit set (RUNNING=0, RUNNABLE=1, SUSPENDED=2, HELD=4),
and the answer packs the queue and hold counters into one integer so a
single value verifies the whole simulation.
"""

from ..base import Benchmark, register

#: scheduler iterations for the idle task (canonical uses 1000; scaled
#: for the Python-hosted VM)
COUNT = 150

RICHARDS_SETUP = f"""|
  richardsConsts = (| parent* = traits clonable.
    idIdle = 0.  idWorker = 1.  idHandlerA = 2.  idHandlerB = 3.
    idDeviceA = 4.  idDeviceB = 5.
    kindDevice = 0.  kindWork = 1.
    dataSize = 4.
  |).

  packetProto = (| parent* = traits clonable.
    link. ident <- 0. kind <- 0. a1 <- 0. a2.

    initLink: l Ident: i Kind: k = ( | x |
      link: l.
      ident: i.
      kind: k.
      a1: 0.
      a2: (vector copySize: 4).
      x: 0.
      [ x < 4 ] whileTrue: [ a2 at: x Put: 0. x: x + 1 ].
      self ).

    addTo: queue = ( | peek. next |
      link: nil.
      queue isNil ifTrue: [ ^ self ].
      peek: queue.
      [ next: peek link. next isNil not ] whileTrue: [ peek: next ].
      peek link: self.
      queue ).
  |).

  "task data records"
  idleDataProto = (| parent* = traits clonable.
    control <- 1. count <- 0.
  |).
  workerDataProto = (| parent* = traits clonable.
    destination <- 0. count <- 0.
  |).
  handlerDataProto = (| parent* = traits clonable.
    workIn. deviceIn.
  |).
  deviceDataProto = (| parent* = traits clonable.
    pending.
  |).

  "task control block: state bits RUNNING=0 RUNNABLE=1 SUSPENDED=2 HELD=4"
  tcbProto = (| parent* = traits clonable.
    link. ident <- 0. priority <- 0. queue. state <- 0.
    task. scheduler.

    initLink: l Ident: i Priority: p Queue: q Task: t Scheduler: s = (
      link: l.
      ident: i.
      priority: p.
      queue: q.
      task: t.
      scheduler: s.
      queue isNil ifTrue: [ state: 2 ] False: [ state: 3 ].
      self ).

    setRunning      = ( state: 0. self ).
    markAsRunnable  = ( state: (state bitOr: 1). self ).
    markAsSuspended = ( state: (state bitOr: 2). self ).
    markAsHeld      = ( state: (state bitOr: 4). self ).
    markAsNotHeld   = ( state: (state bitAnd: 3). self ).
    isHeldOrSuspended = (
      ((state bitAnd: 4) != 0) or: [ state = 2 ] ).

    takePacket = ( | packet |
      packet: nil.
      state = 3 ifTrue: [
        packet: queue.
        queue: packet link.
        queue isNil ifTrue: [ state: 0 ] False: [ state: 1 ] ].
      task runFor: packet ).

    checkPriorityAdd: currentTask Packet: packet = (
      queue isNil
        ifTrue: [
          queue: packet.
          markAsRunnable.
          priority > currentTask priority ifTrue: [ ^ self ] ]
        False: [ queue: (packet addTo: queue) ].
      currentTask ).
  |).

  schedulerProto = (| parent* = traits clonable.
    taskList. currentTcb. currentIdent <- 0.
    blocks.
    queueCount <- 0. holdCount <- 0.

    init = (
      taskList: nil.
      blocks: (vector copySize: 6).
      queueCount: 0.
      holdCount: 0.
      self ).

    addTask: ident Priority: p Queue: q Task: t = ( | tcb |
      tcb: (tcbProto clone initLink: taskList Ident: ident
            Priority: p Queue: q Task: t Scheduler: self).
      taskList: tcb.
      blocks at: ident Put: tcb.
      t bindTcb: tcb.
      self ).

    schedule = (
      currentTcb: taskList.
      [ currentTcb isNil not ] whileTrue: [
        currentTcb isHeldOrSuspended
          ifTrue: [ currentTcb: currentTcb link ]
          False: [
            currentIdent: currentTcb ident.
            currentTcb: currentTcb takePacket ] ].
      self ).

    findTcb: ident = ( blocks at: ident ).

    release: ident = ( | tcb |
      tcb: (findTcb: ident).
      tcb markAsNotHeld.
      tcb priority > currentTcb priority ifTrue: [ ^ tcb ].
      currentTcb ).

    holdCurrent = (
      holdCount: holdCount + 1.
      currentTcb markAsHeld.
      currentTcb link ).

    suspendCurrent = (
      currentTcb markAsSuspended.
      currentTcb ).

    queuePacket: packet = ( | tcb |
      tcb: (findTcb: packet ident).
      tcb isNil ifTrue: [ ^ nil ].
      queueCount: queueCount + 1.
      packet link: nil.
      packet ident: currentIdent.
      tcb checkPriorityAdd: currentTcb Packet: packet ).
  |).

  "the four task behaviours; the scheduler's runFor: send is the
   polymorphic site"
  idleTaskProto = (| parent* = traits clonable.
    scheduler. data. tcb.
    bindTcb: t = ( tcb: t. self ).

    runFor: packet = (
      data count: data count - 1.
      data count = 0 ifTrue: [ ^ scheduler holdCurrent ].
      (data control bitAnd: 1) = 0
        ifTrue: [
          data control: (data control / 2).
          scheduler release: richardsConsts idDeviceA ]
        False: [
          data control: ((data control / 2) bitXor: 53256).
          scheduler release: richardsConsts idDeviceB ] ).
  |).

  workerTaskProto = (| parent* = traits clonable.
    scheduler. data. tcb.
    bindTcb: t = ( tcb: t. self ).

    runFor: packet = ( | v |
      packet isNil ifTrue: [ ^ scheduler suspendCurrent ].
      data destination: (richardsConsts idHandlerA + richardsConsts idHandlerB)
                        - data destination.
      packet ident: data destination.
      packet a1: 0.
      v: 0.
      [ v < 4 ] whileTrue: [
        data count: data count + 1.
        data count > 26 ifTrue: [ data count: 1 ].
        packet a2 at: v Put: data count.
        v: v + 1 ].
      scheduler queuePacket: packet ).
  |).

  handlerTaskProto = (| parent* = traits clonable.
    scheduler. data. tcb.
    bindTcb: t = ( tcb: t. self ).

    runFor: packet = ( | work. count. dev |
      packet isNil not ifTrue: [
        packet kind = richardsConsts kindWork
          ifTrue: [ data workIn: (packet addTo: data workIn) ]
          False: [ data deviceIn: (packet addTo: data deviceIn) ] ].
      work: data workIn.
      work isNil ifTrue: [ ^ scheduler suspendCurrent ].
      count: work a1.
      count < 4
        ifTrue: [
          dev: data deviceIn.
          dev isNil ifTrue: [ ^ scheduler suspendCurrent ].
          data deviceIn: dev link.
          dev a1: (work a2 at: count).
          work a1: count + 1.
          ^ scheduler queuePacket: dev ]
        False: [
          data workIn: work link.
          ^ scheduler queuePacket: work ] ).
  |).

  deviceTaskProto = (| parent* = traits clonable.
    scheduler. data. tcb.
    bindTcb: t = ( tcb: t. self ).

    runFor: packet = ( | v |
      packet isNil
        ifTrue: [
          v: data pending.
          v isNil ifTrue: [ ^ scheduler suspendCurrent ].
          data pending: nil.
          ^ scheduler queuePacket: v ]
        False: [
          data pending: packet.
          ^ scheduler holdCurrent ] ).
  |).

  richardsBench = (| parent* = traits clonable.
    run = ( | sched. queue. t |
      sched: (schedulerProto clone init).

      t: idleTaskProto clone.
      t scheduler: sched.
      t data: ((idleDataProto clone control: 1) count: {COUNT}).
      sched addTask: richardsConsts idIdle Priority: 0 Queue: nil Task: t.
      (sched findTcb: richardsConsts idIdle) setRunning.

      queue: (packetProto clone initLink: nil
              Ident: richardsConsts idWorker Kind: richardsConsts kindWork).
      queue: (packetProto clone initLink: queue
              Ident: richardsConsts idWorker Kind: richardsConsts kindWork).
      t: workerTaskProto clone.
      t scheduler: sched.
      t data: ((workerDataProto clone destination: richardsConsts idHandlerA) count: 0).
      sched addTask: richardsConsts idWorker Priority: 1000 Queue: queue Task: t.

      queue: (packetProto clone initLink: nil
              Ident: richardsConsts idDeviceA Kind: richardsConsts kindDevice).
      queue: (packetProto clone initLink: queue
              Ident: richardsConsts idDeviceA Kind: richardsConsts kindDevice).
      queue: (packetProto clone initLink: queue
              Ident: richardsConsts idDeviceA Kind: richardsConsts kindDevice).
      t: handlerTaskProto clone.
      t scheduler: sched.
      t data: handlerDataProto clone.
      sched addTask: richardsConsts idHandlerA Priority: 2000 Queue: queue Task: t.

      queue: (packetProto clone initLink: nil
              Ident: richardsConsts idDeviceB Kind: richardsConsts kindDevice).
      queue: (packetProto clone initLink: queue
              Ident: richardsConsts idDeviceB Kind: richardsConsts kindDevice).
      queue: (packetProto clone initLink: queue
              Ident: richardsConsts idDeviceB Kind: richardsConsts kindDevice).
      t: handlerTaskProto clone.
      t scheduler: sched.
      t data: handlerDataProto clone.
      sched addTask: richardsConsts idHandlerB Priority: 3000 Queue: queue Task: t.

      t: deviceTaskProto clone.
      t scheduler: sched.
      t data: deviceDataProto clone.
      sched addTask: richardsConsts idDeviceA Priority: 4000 Queue: nil Task: t.

      t: deviceTaskProto clone.
      t scheduler: sched.
      t data: deviceDataProto clone.
      sched addTask: richardsConsts idDeviceB Priority: 5000 Queue: nil Task: t.

      sched schedule.
      (sched queueCount * 10000) + sched holdCount ).
  |).
|"""

def _annotate_richards(world, ann):
    """The C++ version's declarations: every field has a struct type;
    only the task dispatch itself stays virtual."""
    packet = world.get_global("packetProto").map
    tcb = world.get_global("tcbProto").map
    sched = world.get_global("schedulerProto").map
    idle_data = world.get_global("idleDataProto").map
    worker_data = world.get_global("workerDataProto").map
    handler_data = world.get_global("handlerDataProto").map
    device_data = world.get_global("deviceDataProto").map
    maybe_packet = ("maybe", packet)
    maybe_tcb = ("maybe", tcb)

    ann.declare_slot("packetProto", "link", maybe_packet)
    ann.declare_slot("packetProto", "ident", "int")
    ann.declare_slot("packetProto", "kind", "int")
    ann.declare_slot("packetProto", "a1", "int")
    ann.declare_slot("packetProto", "a2", ("vector", 4))
    ann.declare_args("packetProto", "addTo:", [maybe_packet])

    ann.declare_slot("tcbProto", "link", maybe_tcb)
    ann.declare_slot("tcbProto", "ident", "int")
    ann.declare_slot("tcbProto", "priority", "int")
    ann.declare_slot("tcbProto", "queue", maybe_packet)
    ann.declare_slot("tcbProto", "state", "int")
    ann.declare_slot("tcbProto", "scheduler", sched)
    ann.declare_args("tcbProto", "checkPriorityAdd:Packet:", [tcb, packet])

    ann.declare_slot("schedulerProto", "taskList", maybe_tcb)
    ann.declare_slot("schedulerProto", "currentTcb", maybe_tcb)
    ann.declare_slot("schedulerProto", "currentIdent", "int")
    ann.declare_slot("schedulerProto", "blocks", ("vector", 6))
    ann.declare_slot("schedulerProto", "queueCount", "int")
    ann.declare_slot("schedulerProto", "holdCount", "int")
    ann.declare_args("schedulerProto", "release:", ["int"])
    ann.declare_args("schedulerProto", "findTcb:", ["int"])
    ann.declare_args("schedulerProto", "queuePacket:", [packet])

    for proto, data in (
        ("idleTaskProto", idle_data),
        ("workerTaskProto", worker_data),
        ("handlerTaskProto", handler_data),
        ("deviceTaskProto", device_data),
    ):
        ann.declare_slot(proto, "scheduler", sched)
        ann.declare_slot(proto, "data", data)
        ann.declare_slot(proto, "tcb", tcb)
        ann.declare_args(proto, "runFor:", [maybe_packet])

    ann.declare_slot("idleDataProto", "control", "int")
    ann.declare_slot("idleDataProto", "count", "int")
    ann.declare_slot("workerDataProto", "destination", "int")
    ann.declare_slot("workerDataProto", "count", "int")
    ann.declare_slot("handlerDataProto", "workIn", maybe_packet)
    ann.declare_slot("handlerDataProto", "deviceIn", maybe_packet)
    ann.declare_slot("deviceDataProto", "pending", maybe_packet)


register(
    Benchmark(
        name="richards",
        group="richards",
        setup_source=RICHARDS_SETUP,
        run_source="richardsBench run",
        expected=3520140,  # queueCount=352, holdCount=140 (verified)
        annotate=_annotate_richards,
        scale=f"idle count {COUNT} (canonical: 1000)",
    )
)
