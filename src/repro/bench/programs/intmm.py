"""intmm — integer matrix multiplication.

Multiplies two pseudo-random m×m matrices (rows as vectors) and
checksums the product.  The ``-oo`` rewrite makes matrices objects with
``at:And:`` / ``at:And:Put:`` accessors and a ``times:`` method.
"""

from ..base import Benchmark, register
from .common import RANDOM_SOURCE

SIZE = 12  # Stanford uses 40

INTMM_SETUP = RANDOM_SOURCE + f"""|
  intmmBench = (| parent* = traits clonable.
    rowsA. rowsB. rowsC.
    rnd.

    makeMatrix = ( | m. i. j. row |
      m: (vector copySize: {SIZE}).
      i: 0.
      [ i < {SIZE} ] whileTrue: [
        row: (vector copySize: {SIZE}).
        j: 0.
        [ j < {SIZE} ] whileTrue: [
          row at: j Put: (rnd next % 120) - 60.
          j: j + 1 ].
        m at: i Put: row.
        i: i + 1 ].
      m ).

    innerRow: ra Col: cbIndex Of: b = ( | sum. k. rowB |
      sum: 0.
      k: 0.
      [ k < {SIZE} ] whileTrue: [
        sum: sum + ((ra at: k) * ((b at: k) at: cbIndex)).
        k: k + 1 ].
      sum ).

    run = ( | i. j. check |
      rnd: stanfordRandom clone initRandom.
      rowsA: makeMatrix.
      rowsB: makeMatrix.
      rowsC: (vector copySize: {SIZE}).
      i: 0.
      [ i < {SIZE} ] whileTrue: [ | rowC. rowA |
        rowC: (vector copySize: {SIZE}).
        rowA: (rowsA at: i).
        j: 0.
        [ j < {SIZE} ] whileTrue: [
          rowC at: j Put: (innerRow: rowA Col: j Of: rowsB).
          j: j + 1 ].
        rowsC at: i Put: rowC.
        i: i + 1 ].
      check: 0.
      i: 0.
      [ i < {SIZE} ] whileTrue: [
        check: check + (((rowsC at: i) at: i)).
        i: i + 1 ].
      check ).
  |).
|"""

INTMM_OO_SETUP = RANDOM_SOURCE + f"""|
  matrixProto = (| parent* = traits clonable.
    rows.
    size <- 0.

    initSize: n = ( | i |
      size: n.
      rows: (vector copySize: n).
      i: 0.
      [ i < n ] whileTrue: [ rows at: i Put: (vector copySize: n). i: i + 1 ].
      self ).

    at: i And: j = ( ((rows at: i) at: j) ).
    at: i And: j Put: v = ( (rows at: i) at: j Put: v. self ).

    fillWith: rnd = ( | i. j |
      i: 0.
      [ i < size ] whileTrue: [
        j: 0.
        [ j < size ] whileTrue: [
          at: i And: j Put: (rnd next % 120) - 60.
          j: j + 1 ].
        i: i + 1 ].
      self ).

    times: other = ( | result. i. j. k. sum |
      result: (matrixProto clone initSize: size).
      i: 0.
      [ i < size ] whileTrue: [
        j: 0.
        [ j < size ] whileTrue: [
          sum: 0.
          k: 0.
          [ k < size ] whileTrue: [
            sum: sum + ((at: i And: k) * (other at: k And: j)).
            k: k + 1 ].
          result at: i And: j Put: sum.
          j: j + 1 ].
        i: i + 1 ].
      result ).

    trace = ( | t. i |
      t: 0.
      i: 0.
      [ i < size ] whileTrue: [ t: t + (at: i And: i). i: i + 1 ].
      t ).
  |).

  intmmOoBench = (| parent* = traits clonable.
    run = ( | rnd. a. b |
      rnd: stanfordRandom clone initRandom.
      a: ((matrixProto clone initSize: {SIZE}) fillWith: rnd).
      b: ((matrixProto clone initSize: {SIZE}) fillWith: rnd).
      (a times: b) trace ).
  |).
|"""

register(
    Benchmark(
        name="intmm",
        group="stanford",
        setup_source=INTMM_SETUP,
        run_source="intmmBench run",
        expected=-17876,  # deterministic PRNG; verified against the interpreter
        scale=f"{SIZE}x{SIZE} (Stanford: 40x40)",
    )
)

register(
    Benchmark(
        name="intmm-oo",
        group="stanford-oo",
        setup_source=INTMM_OO_SETUP,
        run_source="intmmOoBench run",
        expected=-17876,
        c_baseline="intmm",
        scale=f"{SIZE}x{SIZE} (Stanford: 40x40)",
    )
)
