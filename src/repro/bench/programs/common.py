"""Shared guest-code fragments for the benchmark programs."""

#: The Stanford suite's linear-congruential generator, kept inside the
#: small-integer range (65535 * 1309 + 13849 < 2**27, so the multiply
#: never overflows and range analysis can prove it).
RANDOM_SOURCE = """|
  stanfordRandom = (| parent* = traits clonable.
    seed <- 74755.
    initRandom = ( seed: 74755. self ).
    next = ( seed: ((seed * 1309) + 13849) % 65536. seed ).
    next: n = ( (next % n) ).
  |).
|"""
