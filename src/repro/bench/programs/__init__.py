"""The benchmark programs, written in the guest language.

Importing this package registers every benchmark:

* ``stanford`` — the eight Stanford integer benchmarks (perm, towers,
  queens, intmm, puzzle, quick, bubble, tree),
* ``stanford-oo`` — their object-oriented rewrites (messages redirected
  to the manipulated data structures; puzzle is not rewritten, matching
  the paper),
* ``small`` — the micro-benchmarks (sieve, sumTo, sumFromTo,
  sumToConst, atAllPut),
* ``richards`` — the operating-system simulator,
* ``poly`` — tunable polymorphic-to-megamorphic dispatch (hostile
  workloads for the PIC/megamorphic-table ladder).
"""

from . import (  # noqa: F401  (registration side effects)
    bubble,
    intmm,
    perm,
    poly,
    puzzle,
    queens,
    quick,
    richards,
    small,
    towers,
    tree,
)
