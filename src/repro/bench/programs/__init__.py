"""The benchmark programs, written in the guest language.

Importing this package registers every benchmark:

* ``stanford`` — the eight Stanford integer benchmarks (perm, towers,
  queens, intmm, puzzle, quick, bubble, tree),
* ``stanford-oo`` — their object-oriented rewrites (messages redirected
  to the manipulated data structures; puzzle is not rewritten, matching
  the paper),
* ``small`` — the micro-benchmarks (sieve, sumTo, sumFromTo,
  sumToConst, atAllPut),
* ``richards`` — the operating-system simulator.
"""

from . import (  # noqa: F401  (registration side effects)
    bubble,
    intmm,
    perm,
    puzzle,
    queens,
    quick,
    richards,
    small,
    towers,
    tree,
)
