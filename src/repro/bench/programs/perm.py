"""perm — the Stanford permutation benchmark.

Recursively generates all permutations of seven elements by swapping,
counting the calls.  The plain version keeps the swap logic on the
benchmark object; the ``-oo`` rewrite moves it onto the array being
permuted (the paper's description of the rewrites: "redirect the target
of messages from the benchmark object to the data structures").
"""

from ..base import Benchmark, register

PERM_SETUP = """|
  permBench = (| parent* = traits clonable.
    pctr <- 0.
    permArray.

    initArray = ( | i |
      permArray: (vector copySize: 8).
      i: 0.
      [ i <= 7 ] whileTrue: [ permArray at: i Put: i. i: i + 1 ].
      self ).

    swap: i With: j = ( | t |
      t: (permArray at: i).
      permArray at: i Put: (permArray at: j).
      permArray at: j Put: t.
      self ).

    permute: n = (
      pctr: pctr + 1.
      n != 1 ifTrue: [ | k |
        permute: n - 1.
        k: n - 1.
        [ k >= 1 ] whileTrue: [
          swap: n With: k.
          permute: n - 1.
          swap: n With: k.
          k: k - 1 ] ].
      self ).

    run = ( | trial |
      pctr: 0.
      trial: 0.
      [ trial < 3 ] whileTrue: [
        initArray.
        permute: 7.
        trial: trial + 1 ].
      pctr ).
  |).
|"""

PERM_OO_SETUP = """|
  permArrayProto = (| parent* = traits clonable.
    items.
    counter <- 0.

    initSize: n = ( | i |
      items: (vector copySize: n + 1).
      counter: 0.
      i: 0.
      [ i <= n ] whileTrue: [ items at: i Put: i. i: i + 1 ].
      self ).

    swap: i With: j = ( | t |
      t: (items at: i).
      items at: i Put: (items at: j).
      items at: j Put: t.
      self ).

    permute: n = (
      counter: counter + 1.
      n != 1 ifTrue: [ | k |
        permute: n - 1.
        k: n - 1.
        [ k >= 1 ] whileTrue: [
          swap: n With: k.
          permute: n - 1.
          swap: n With: k.
          k: k - 1 ] ].
      self ).
  |).

  permOoBench = (| parent* = traits clonable.
    run = ( | a. trial. total |
      total: 0.
      trial: 0.
      [ trial < 3 ] whileTrue: [
        a: (permArrayProto clone initSize: 7).
        a permute: 7.
        total: total + a counter.
        trial: trial + 1 ].
      total ).
  |).
|"""

#: 3 trials of permute(7): 3 * 8660 calls.
EXPECTED = 3 * 8660

register(
    Benchmark(
        name="perm",
        group="stanford",
        setup_source=PERM_SETUP,
        run_source="permBench run",
        expected=EXPECTED,
        scale="permute(7) x3 (Stanford: x5)",
    )
)

register(
    Benchmark(
        name="perm-oo",
        group="stanford-oo",
        setup_source=PERM_OO_SETUP,
        run_source="permOoBench run",
        expected=EXPECTED,
        c_baseline="perm",
        scale="permute(7) x3 (Stanford: x5)",
    )
)
