"""queens — the eight-queens benchmark.

Counts all 92 solutions using the classic three boolean "free" arrays.
The ``-oo`` rewrite wraps the arrays in a board object that answers
``safeAtColumn:Row:``, ``placeColumn:Row:``, ``removeColumn:Row:``.
"""

from ..base import Benchmark, register

QUEENS_SETUP = """|
  queensBench = (| parent* = traits clonable.
    freeRows. freeDiag1. freeDiag2.
    solutions <- 0.

    init = (
      freeRows: ((vector copySize: 8) atAllPut: true).
      freeDiag1: ((vector copySize: 15) atAllPut: true).
      freeDiag2: ((vector copySize: 15) atAllPut: true).
      solutions: 0.
      self ).

    safeColumn: c Row: r = (
      (((freeRows at: r) and: [ freeDiag1 at: c + r ])
        and: [ freeDiag2 at: (c - r) + 7 ]) ).

    placeColumn: c Row: r = (
      freeRows at: r Put: false.
      freeDiag1 at: c + r Put: false.
      freeDiag2 at: (c - r) + 7 Put: false.
      self ).

    removeColumn: c Row: r = (
      freeRows at: r Put: true.
      freeDiag1 at: c + r Put: true.
      freeDiag2 at: (c - r) + 7 Put: true.
      self ).

    tryColumn: c = ( | r |
      r: 0.
      [ r < 8 ] whileTrue: [
        (safeColumn: c Row: r) ifTrue: [
          placeColumn: c Row: r.
          c = 7 ifTrue: [ solutions: solutions + 1 ]
                False: [ tryColumn: c + 1 ].
          removeColumn: c Row: r ].
        r: r + 1 ].
      self ).

    run = ( init. tryColumn: 0. solutions ).
  |).
|"""

QUEENS_OO_SETUP = """|
  boardProto = (| parent* = traits clonable.
    freeRows. freeDiag1. freeDiag2.

    init = (
      freeRows: ((vector copySize: 8) atAllPut: true).
      freeDiag1: ((vector copySize: 15) atAllPut: true).
      freeDiag2: ((vector copySize: 15) atAllPut: true).
      self ).

    safeColumn: c Row: r = (
      (((freeRows at: r) and: [ freeDiag1 at: c + r ])
        and: [ freeDiag2 at: (c - r) + 7 ]) ).

    placeColumn: c Row: r = (
      freeRows at: r Put: false.
      freeDiag1 at: c + r Put: false.
      freeDiag2 at: (c - r) + 7 Put: false.
      self ).

    removeColumn: c Row: r = (
      freeRows at: r Put: true.
      freeDiag1 at: c + r Put: true.
      freeDiag2 at: (c - r) + 7 Put: true.
      self ).
  |).

  queensOoBench = (| parent* = traits clonable.
    board.
    solutions <- 0.

    tryColumn: c = ( | r |
      r: 0.
      [ r < 8 ] whileTrue: [
        (board safeColumn: c Row: r) ifTrue: [
          board placeColumn: c Row: r.
          c = 7 ifTrue: [ solutions: solutions + 1 ]
                False: [ tryColumn: c + 1 ].
          board removeColumn: c Row: r ].
        r: r + 1 ].
      self ).

    run = (
      board: (boardProto clone init).
      solutions: 0.
      tryColumn: 0.
      solutions ).
  |).
|"""

register(
    Benchmark(
        name="queens",
        group="stanford",
        setup_source=QUEENS_SETUP,
        run_source="queensBench run",
        expected=92,
        scale="all 92 solutions, once (Stanford: first solution x10)",
    )
)

register(
    Benchmark(
        name="queens-oo",
        group="stanford-oo",
        setup_source=QUEENS_OO_SETUP,
        run_source="queensOoBench run",
        expected=92,
        c_baseline="queens",
        scale="all 92 solutions, once",
    )
)
