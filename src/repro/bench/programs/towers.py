"""towers — Towers of Hanoi over explicit disk stacks.

Like the Stanford original, the pegs are real data structures (stacks
backed by arrays), not just a recursion counter.  The ``-oo`` rewrite
turns each peg into an object that understands ``push:`` and ``pop``.
"""

from ..base import Benchmark, register

DISCS = 11  # Stanford uses 14; 2**11 - 1 = 2047 moves

TOWERS_SETUP = f"""|
  towersBench = (| parent* = traits clonable.
    stacks.
    tops.
    moveCount <- 0.

    init: discs = ( | i |
      stacks: (vector copySize: 3).
      tops: (vector copySize: 3).
      i: 0.
      [ i < 3 ] whileTrue: [
        stacks at: i Put: (vector copySize: discs + 1).
        tops at: i Put: 0.
        i: i + 1 ].
      i: discs.
      [ i >= 1 ] whileTrue: [ push: i On: 0. i: i - 1 ].
      moveCount: 0.
      self ).

    push: d On: p = ( | s. t |
      s: (stacks at: p).
      t: (tops at: p).
      ((t > 0) and: [ (s at: t - 1) < d ]) ifTrue: [ _Error: 'disc size error' ].
      s at: t Put: d.
      tops at: p Put: t + 1.
      self ).

    popOff: p = ( | s. t |
      t: (tops at: p) - 1.
      t < 0 ifTrue: [ _Error: 'nothing to pop' ].
      tops at: p Put: t.
      (stacks at: p) at: t ).

    moveFrom: a To: b = (
      push: (popOff: a) On: b.
      moveCount: moveCount + 1.
      self ).

    move: n From: a To: b Via: c = (
      n = 1 ifTrue: [ moveFrom: a To: b ]
      False: [
        move: n - 1 From: a To: c Via: b.
        moveFrom: a To: b.
        move: n - 1 From: c To: b Via: a ].
      self ).

    run = (
      init: {DISCS}.
      move: {DISCS} From: 0 To: 1 Via: 2.
      moveCount ).
  |).
|"""

TOWERS_OO_SETUP = f"""|
  pegProto = (| parent* = traits clonable.
    cells.
    top <- 0.

    capacity: n = ( cells: (vector copySize: n). top: 0. self ).
    push: d = (
      ((top > 0) and: [ (cells at: top - 1) < d ]) ifTrue: [ _Error: 'disc size error' ].
      cells at: top Put: d.
      top: top + 1.
      self ).
    pop = (
      top = 0 ifTrue: [ _Error: 'nothing to pop' ].
      top: top - 1.
      cells at: top ).
  |).

  towersOoBench = (| parent* = traits clonable.
    pegs.
    moveCount <- 0.

    init: discs = ( | i |
      pegs: (vector copySize: 3).
      i: 0.
      [ i < 3 ] whileTrue: [
        pegs at: i Put: (pegProto clone capacity: discs + 1).
        i: i + 1 ].
      i: discs.
      [ i >= 1 ] whileTrue: [ (pegs at: 0) push: i. i: i - 1 ].
      moveCount: 0.
      self ).

    moveFrom: a To: b = (
      (pegs at: b) push: (pegs at: a) pop.
      moveCount: moveCount + 1.
      self ).

    move: n From: a To: b Via: c = (
      n = 1 ifTrue: [ moveFrom: a To: b ]
      False: [
        move: n - 1 From: a To: c Via: b.
        moveFrom: a To: b.
        move: n - 1 From: c To: b Via: a ].
      self ).

    run = (
      init: {DISCS}.
      move: {DISCS} From: 0 To: 1 Via: 2.
      moveCount ).
  |).
|"""

EXPECTED = 2 ** DISCS - 1

register(
    Benchmark(
        name="towers",
        group="stanford",
        setup_source=TOWERS_SETUP,
        run_source="towersBench run",
        expected=EXPECTED,
        scale=f"{DISCS} discs (Stanford: 14)",
    )
)

register(
    Benchmark(
        name="towers-oo",
        group="stanford-oo",
        setup_source=TOWERS_OO_SETUP,
        run_source="towersOoBench run",
        expected=EXPECTED,
        c_baseline="towers",
        scale=f"{DISCS} discs (Stanford: 14)",
    )
)
