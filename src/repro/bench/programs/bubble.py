"""bubble — bubble sort over a pseudo-random vector."""

from ..base import Benchmark, register
from .common import RANDOM_SOURCE

SIZE = 150  # Stanford uses 500

BUBBLE_SETUP = RANDOM_SOURCE + f"""|
  bubbleBench = (| parent* = traits clonable.
    data.

    initData = ( | rnd. i |
      rnd: stanfordRandom clone initRandom.
      data: (vector copySize: {SIZE}).
      i: 0.
      [ i < {SIZE} ] whileTrue: [ data at: i Put: rnd next. i: i + 1 ].
      self ).

    sort: a = ( | top. i. t |
      top: a size - 1.
      [ top > 0 ] whileTrue: [
        i: 0.
        [ i < top ] whileTrue: [
          (a at: i) > (a at: i + 1) ifTrue: [
            t: (a at: i).
            a at: i Put: (a at: i + 1).
            a at: i + 1 Put: t ].
          i: i + 1 ].
        top: top - 1 ].
      self ).

    checksum = ( | ok. i |
      ok: true.
      i: 1.
      [ i < {SIZE} ] whileTrue: [
        (data at: i - 1) > (data at: i) ifTrue: [ ok: false ].
        i: i + 1 ].
      ok ifTrue: [ (data at: 0) + (data at: {SIZE} - 1) ] False: [ -1 ] ).

    run = ( initData. sort: data. checksum ).
  |).
|"""

BUBBLE_OO_SETUP = RANDOM_SOURCE + f"""|
  bubbleArrayProto = (| parent* = traits clonable.
    items.

    initSize: n With: rnd = ( | i |
      items: (vector copySize: n).
      i: 0.
      [ i < n ] whileTrue: [ items at: i Put: rnd next. i: i + 1 ].
      self ).

    at: i = ( items at: i ).
    size = ( items size ).

    swapIfDisordered: i = ( | t |
      (items at: i) > (items at: i + 1) ifTrue: [
        t: (items at: i).
        items at: i Put: (items at: i + 1).
        items at: i + 1 Put: t ].
      self ).

    bubbleSort = ( | top. i |
      top: size - 1.
      [ top > 0 ] whileTrue: [
        i: 0.
        [ i < top ] whileTrue: [ swapIfDisordered: i. i: i + 1 ].
        top: top - 1 ].
      self ).

    isSorted = ( | i |
      i: 1.
      [ i < size ] whileTrue: [
        (at: i - 1) > (at: i) ifTrue: [ ^ false ].
        i: i + 1 ].
      true ).
  |).

  bubbleOoBench = (| parent* = traits clonable.
    run = ( | a |
      a: (bubbleArrayProto clone initSize: {SIZE} With: (stanfordRandom clone initRandom)).
      a bubbleSort.
      a isSorted ifTrue: [ (a at: 0) + (a at: a size - 1) ] False: [ -1 ] ).
  |).
|"""

register(
    Benchmark(
        name="bubble",
        group="stanford",
        setup_source=BUBBLE_SETUP,
        run_source="bubbleBench run",
        expected=65801,
        scale=f"{SIZE} elements (Stanford: 500)",
    )
)

register(
    Benchmark(
        name="bubble-oo",
        group="stanford-oo",
        setup_source=BUBBLE_OO_SETUP,
        run_source="bubbleOoBench run",
        expected=65801,
        c_baseline="bubble",
        scale=f"{SIZE} elements (Stanford: 500)",
    )
)
