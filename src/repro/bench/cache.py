"""On-disk memoization of benchmark measurements.

The modeled quantities (cycles, instructions, code bytes, send
counters) are pure functions of the guest program, the system
configuration, and the simulator's own sources — so a measurement can
be replayed from disk as long as none of those changed.  Every cache
entry is keyed by ``(benchmark, system, source digest)`` where the
digest hashes every ``repro`` source file; touching *any* file under
``src/repro/`` invalidates the whole cache, which errs on the side of
never serving a stale number.

Host-measured times (``compile_seconds``, ``wall_seconds``) are stored
verbatim from the run that populated the entry; a cache hit reports the
cold run's timings rather than re-measuring.

The cache directory defaults to ``.bench_cache/`` next to ``src/``
(the repository root) and can be moved with ``REPRO_BENCH_CACHE_DIR``.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Optional

from ..objects.errors import InjectedFault
from ..robustness import faults

_PACKAGE_ROOT = Path(__file__).resolve().parents[1]  # src/repro
_DEFAULT_CACHE_DIR = _PACKAGE_ROOT.parents[1] / ".bench_cache"

_digest_cache: Optional[str] = None

#: keys every stored measurement record must carry to be served; a
#: record missing any of them (a torn write, a manual edit, an old
#: schema) is discarded as corrupt rather than half-deserialized
_REQUIRED_KEYS = frozenset(
    (
        "benchmark", "system", "answer", "cycles", "code_bytes",
        "compile_seconds", "instructions", "send_hits", "send_misses",
        "send_megamorphic", "methods_compiled", "wall_seconds", "verified",
    )
)

#: entries discarded as corrupt (I/O error mid-read, unparseable JSON,
#: or schema validation failure) since process start / the last reset
_corrupt_discarded = 0


def corruption_count() -> int:
    """How many cache entries were discarded as corrupt (not misses)."""
    return _corrupt_discarded


def reset_corruption_count() -> None:
    global _corrupt_discarded
    _corrupt_discarded = 0


def source_digest() -> str:
    """Hex digest over every ``repro`` source file (stable per process)."""
    global _digest_cache
    if _digest_cache is None:
        hasher = hashlib.sha256()
        for path in sorted(_PACKAGE_ROOT.rglob("*.py")):
            hasher.update(str(path.relative_to(_PACKAGE_ROOT)).encode())
            hasher.update(b"\0")
            hasher.update(path.read_bytes())
            hasher.update(b"\0")
        _digest_cache = hasher.hexdigest()
    return _digest_cache


def cache_dir() -> Path:
    override = os.environ.get("REPRO_BENCH_CACHE_DIR")
    return Path(override) if override else _DEFAULT_CACHE_DIR


def _entry_path(benchmark: str, system: str) -> Path:
    return cache_dir() / f"{benchmark}-{system}-{source_digest()[:16]}.json"


def load(benchmark: str, system: str) -> Optional[dict]:
    """The stored measurement record, or None on miss/corruption.

    A plain miss (no entry on disk) and a *corrupt* entry (I/O error
    mid-read, unparseable JSON, missing record keys) both degrade to
    recomputation, but corruption additionally increments
    :func:`corruption_count` so the bench CLI can report it.
    """
    global _corrupt_discarded
    torn = False
    try:
        # Fault site: models a failing disk (raise) or a torn/partial
        # write that survived on disk (corrupt).
        if faults.ENABLED and faults.hit(faults.SITE_BENCH_CACHE):
            torn = True
        with open(_entry_path(benchmark, system), encoding="utf-8") as handle:
            text = handle.read()
        if torn:
            text = text[: max(0, len(text) - 7)]
        record = json.loads(text)
    except FileNotFoundError:
        return None  # an ordinary miss, not corruption
    except (OSError, ValueError, InjectedFault):
        _corrupt_discarded += 1
        return None
    if not isinstance(record, dict) or not _REQUIRED_KEYS.issubset(record):
        _corrupt_discarded += 1
        return None
    return record


def store(benchmark: str, system: str, record: dict) -> None:
    """Atomically persist one measurement record (best effort: an
    unwritable cache directory silently disables caching)."""
    path = _entry_path(benchmark, system)
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(record, handle)
            os.replace(tmp, path)
        except BaseException:
            os.unlink(tmp)
            raise
    except OSError:
        pass
