"""Reproductions of the paper's tables.

* :func:`t1_speed_summary` — §6 "Speed of Compiled Code (as a percentage
  of optimized C), median (min – max)" over the four benchmark groups.
* :func:`t2_time_size_summary` — §6 "Compile Time and Code Size,
  median / 75%-ile / max".
* :func:`appendix_a_speed` / :func:`appendix_b_size` /
  :func:`appendix_c_compile_time` — the per-benchmark appendices.
* :func:`ablation_table` — the implicit ablation: new SELF with each
  technique disabled individually.

Each function renders a plain-text table (the same rows/columns as the
paper) and returns it as a string, so the benchmarks can both print and
assert on it.
"""

from __future__ import annotations

import statistics
from typing import Optional

from .base import SYSTEM_LABELS, all_benchmarks, benchmarks_in_group, get_benchmark
from .harness import GLOBAL_SESSION, Session

#: systems in the paper's row order for T1
T1_SYSTEMS = ("st80", "oldself89", "oldself90", "newself")

#: groups in the paper's column order
T1_GROUPS = ("small", "stanford", "stanford-oo", "richards")


def _group_benchmarks(group: str) -> list[str]:
    names = sorted(b.name for b in benchmarks_in_group(group))
    if group == "stanford-oo":
        # The paper counts the un-rewritten puzzle in the -oo group too.
        names.append("puzzle")
    return names


def _median_min_max(values: list[float]) -> str:
    if not values:
        return "-"
    med = statistics.median(values)
    if len(values) == 1:
        return f"{med:.0f}%"
    return f"{med:.0f}% ({min(values):.0f}-{max(values):.0f})"


def t1_speed_summary(
    session: Optional[Session] = None,
    include_puzzle: bool = True,
) -> str:
    """§6 Speed of Compiled Code — median (min–max) % of optimized C."""
    session = session or GLOBAL_SESSION
    lines = [
        "Speed of Compiled Code (as a percentage of optimized C)",
        "median ( min - max )",
        "",
        f"{'':12}" + "".join(f"{g:>22}" for g in T1_GROUPS),
    ]
    for system in T1_SYSTEMS:
        cells = []
        for group in T1_GROUPS:
            values = []
            for name in _group_benchmarks(group):
                if name == "puzzle" and not include_puzzle:
                    continue
                values.append(session.percent_of_c(name, system))
            cells.append(f"{_median_min_max(values):>22}")
        lines.append(f"{SYSTEM_LABELS[system]:12}" + "".join(cells))
    return "\n".join(lines)


def _median_p75_max(values: list[float], fmt: str) -> str:
    if not values:
        return "-"
    values = sorted(values)
    med = statistics.median(values)
    p75 = values[min(len(values) - 1, int(round(0.75 * (len(values) - 1))))]
    return f"{med:{fmt}} / {p75:{fmt}} / {max(values):{fmt}}"


def t2_time_size_summary(
    session: Optional[Session] = None,
    include_puzzle: bool = True,
) -> str:
    """§6 Compile Time and Code Size — median / 75%-ile / max.

    Compile time is in (host) seconds of our compiler; code size in
    modeled kilobytes.  Columns follow the paper: small,
    stanford+stanford-oo, puzzle (alone), richards.
    """
    session = session or GLOBAL_SESSION
    stanford_both = [
        n for n in _group_benchmarks("stanford") if n != "puzzle"
    ] + _group_benchmarks("stanford-oo")
    stanford_both = [n for n in stanford_both if n != "puzzle"]
    columns: list[tuple[str, list[str]]] = [
        ("small", _group_benchmarks("small")),
        ("stanford+oo", sorted(set(stanford_both))),
        ("puzzle", ["puzzle"] if include_puzzle else []),
        ("richards", ["richards"]),
    ]
    systems = ("static", "oldself90", "newself")
    lines = [
        "Compile Time and Code Size",
        "median / 75%-ile / max",
        "",
        f"{'':14}" + "".join(f"{label:>26}" for label, _ in columns),
        "",
        "compile time (in seconds of host CPU time)",
    ]
    for system in systems:
        cells = []
        for _, names in columns:
            values = [session.result(n, system).compile_seconds for n in names]
            cells.append(f"{_median_p75_max(values, '.2f'):>26}")
        lines.append(f"{SYSTEM_LABELS[system]:14}" + "".join(cells))
    lines.append("")
    lines.append("compiled code size (in kilobytes)")
    for system in systems:
        cells = []
        for _, names in columns:
            values = [session.result(n, system).code_kb for n in names]
            cells.append(f"{_median_p75_max(values, '.1f'):>26}")
        lines.append(f"{SYSTEM_LABELS[system]:14}" + "".join(cells))
    return "\n".join(lines)


def appendix_a_speed(
    session: Optional[Session] = None, include_puzzle: bool = True
) -> str:
    """Appendix A: per-benchmark speed as a percentage of optimized C."""
    session = session or GLOBAL_SESSION
    lines = [
        "Compiled Code Speed (as a percentage of optimized C)",
        "",
        f"{'benchmark':12}" + "".join(
            f"{SYSTEM_LABELS[s]:>14}" for s in T1_SYSTEMS
        ),
    ]
    for group in ("stanford", "stanford-oo", "small", "richards"):
        lines.append(group)
        for name in sorted(b.name for b in benchmarks_in_group(group)):
            if name == "puzzle" and not include_puzzle:
                continue
            cells = "".join(
                f"{'FAILED':>14}" if session.result(name, s).failed
                else f"{session.percent_of_c(name, s):>13.0f}%"
                for s in T1_SYSTEMS
            )
            lines.append(f"  {name:10}" + cells)
    return "\n".join(lines)


def appendix_b_size(
    session: Optional[Session] = None, include_puzzle: bool = True
) -> str:
    """Appendix B: per-benchmark compiled code size in kilobytes."""
    session = session or GLOBAL_SESSION
    systems = ("static", "oldself90", "newself")
    lines = [
        "Compiled Code Size (in kilobytes)",
        "",
        f"{'benchmark':12}" + "".join(f"{SYSTEM_LABELS[s]:>14}" for s in systems),
    ]
    for group in ("stanford", "stanford-oo", "small", "richards"):
        lines.append(group)
        for name in sorted(b.name for b in benchmarks_in_group(group)):
            if name == "puzzle" and not include_puzzle:
                continue
            cells = "".join(
                f"{'FAILED':>14}" if session.result(name, s).failed
                else f"{session.result(name, s).code_kb:>14.1f}"
                for s in systems
            )
            lines.append(f"  {name:10}" + cells)
    return "\n".join(lines)


def appendix_c_compile_time(
    session: Optional[Session] = None, include_puzzle: bool = True
) -> str:
    """Appendix C: per-benchmark compile time (host seconds)."""
    session = session or GLOBAL_SESSION
    systems = ("static", "oldself90", "newself")
    lines = [
        "Compile Time (in seconds of host CPU time)",
        "",
        f"{'benchmark':12}" + "".join(f"{SYSTEM_LABELS[s]:>14}" for s in systems),
    ]
    for group in ("stanford", "stanford-oo", "small", "richards"):
        lines.append(group)
        for name in sorted(b.name for b in benchmarks_in_group(group)):
            if name == "puzzle" and not include_puzzle:
                continue
            cells = "".join(
                f"{'FAILED':>14}" if session.result(name, s).failed
                else f"{session.result(name, s).compile_seconds:>14.3f}"
                for s in systems
            )
            lines.append(f"  {name:10}" + cells)
    return "\n".join(lines)


def optimization_effect_table(
    session: Optional[Session] = None,
    benchmark_names: Optional[list[str]] = None,
) -> str:
    """Aggregate compiler-effect counters per system (not in the paper's
    tables, but the direct evidence for its mechanism claims: how many
    sends were inlined and how many checks deleted)."""
    session = session or GLOBAL_SESSION
    if benchmark_names is None:
        benchmark_names = ["sumTo", "sieve", "queens", "richards"]
    systems = ("st80", "oldself90", "newself")
    keys = [
        ("inlined_sends", "sends inlined"),
        ("dynamic_sends", "sends left dynamic"),
        ("type_tests", "type tests emitted"),
        ("type_tests_elided", "type tests elided"),
        ("overflow_checks_elided", "overflow checks elided"),
        ("bounds_checks_elided", "bounds checks elided"),
        ("loop_versions", "loop versions compiled"),
    ]
    lines = ["Optimization effect (compiler counters, summed over compiled code)"]
    for name in benchmark_names:
        lines.append("")
        lines.append(f"{name}:")
        lines.append(f"  {'counter':26}" + "".join(
            f"{SYSTEM_LABELS[s]:>14}" for s in systems
        ))
        for key, label in keys:
            cells = "".join(
                f"{session.result(name, s).compile_stats.get(key, 0):>14}"
                for s in systems
            )
            lines.append(f"  {label:26}" + cells)
    return "\n".join(lines)


def metrics_table(
    session: Optional[Session] = None,
    benchmark_names: Optional[list[str]] = None,
    systems: Optional[tuple[str, ...]] = None,
    prefixes: tuple[str, ...] = (
        "vm.", "ic.", "dispatch.", "tiers.", "translate.",
    ),
) -> str:
    """Per-benchmark unified metrics (the observability registry view).

    Renders the non-compiler namespaces by default — ``compiler.*`` is
    already covered by :func:`optimization_effect_table` — one block per
    benchmark, one column per system.
    """
    from ..obs.metrics import split_scoped

    session = session or GLOBAL_SESSION
    if benchmark_names is None:
        benchmark_names = ["sumTo", "sieve", "queens", "richards"]
    if systems is None:
        systems = ("st80", "oldself90", "newself")
    lines = ["Unified metrics (repro.obs registry snapshot per run)"]
    for name in benchmark_names:
        results = {s: session.result(name, s) for s in systems}
        # Prefix-match on the base name so per-universe scoped keys
        # ("u0/vm.cycles", REPRO_SCOPED_METRICS=1) filter and render
        # like their flat forms; the full scoped key stays the label.
        metric_names = sorted(
            {
                key
                for result in results.values()
                for key in result.metrics
                if split_scoped(key)[1].startswith(prefixes)
            }
        )
        lines.append("")
        lines.append(f"{name}:")
        lines.append(
            f"  {'metric':32}"
            + "".join(f"{SYSTEM_LABELS[s]:>14}" for s in systems)
        )
        for metric in metric_names:
            cells = []
            for system in systems:
                value = results[system].metrics.get(metric, 0)
                if isinstance(value, dict):
                    value = value.get("sum", 0)
                if isinstance(value, float):
                    cells.append(f"{value:>14.4f}")
                else:
                    cells.append(f"{value:>14}")
            lines.append(f"  {metric:32}" + "".join(cells))
    return "\n".join(lines)


def recovery_summary(session: Optional[Session] = None) -> str:
    """Tier degradations across every measured run ("" when clean).

    Surfaced by the bench CLI so a run that silently degraded to a
    slower tier (and is therefore not comparable) is impossible to miss.
    """
    session = session or GLOBAL_SESSION
    lines = []
    for key in sorted(session._results):
        result = session._results[key]
        if not result.recovery and not result.recovery_events:
            continue
        name, system = key
        lines.append(
            f"{name} under {SYSTEM_LABELS.get(system, system)}: "
            f"{result.recovery_events} tier degradation(s)"
        )
        for event in result.recovery:
            lines.append(
                f"  {event.get('stage')} {event.get('selector')!r}: "
                f"{event.get('from_tier')} -> {event.get('to_tier')} "
                f"({event.get('error_kind')}: {event.get('detail')})"
            )
    if not lines:
        return ""
    return "\n".join(["Tier degradations (modeled numbers are diagnostic):"] + lines)


# ---------------------------------------------------------------------------
# Ablations
# ---------------------------------------------------------------------------

#: feature -> config change disabling it (applied to the new SELF preset)
ABLATIONS = {
    "full new SELF": {},
    "- extended splitting": {"extended_splitting": False},
    "- multi-version loops": {"multi_version_loops": False},
    "- iterative loop analysis": {
        "iterative_loops": False,
        "multi_version_loops": False,
    },
    "- range analysis": {"range_analysis": False},
    "- type prediction": {"type_prediction": False},
    "- customization": {"customize": False},
}


def ablation_table(
    benchmark_names: Optional[list[str]] = None,
    session: Optional[Session] = None,
) -> str:
    """New SELF with one technique at a time disabled (speed, % of C).

    This reproduces the paper's implicit ablation (the old SELF compiler
    is, in feature terms, new SELF minus the new techniques).
    """
    from ..compiler.config import NEW_SELF
    from ..vm.runtime import Runtime
    from ..world.bootstrap import World

    if benchmark_names is None:
        benchmark_names = ["sumTo", "sieve", "queens", "richards"]
    session = session or GLOBAL_SESSION
    lines = [
        "Ablation: new SELF with individual techniques disabled",
        "(speed as % of optimized C; higher is better)",
        "",
        f"{'variant':28}" + "".join(f"{n:>11}" for n in benchmark_names),
    ]
    for label, changes in ABLATIONS.items():
        config = NEW_SELF.but(name=f"new SELF ablation", **changes) if changes else NEW_SELF
        cells = []
        for name in benchmark_names:
            benchmark = get_benchmark(name)
            world = World()
            world.add_slots(benchmark.setup_source)
            runtime = Runtime(world, config)
            answer = runtime.run(benchmark.run_source)
            if benchmark.expected is not None:
                assert answer == benchmark.expected, (label, name, answer)
            baseline = session.result(benchmark.c_baseline, "static").cycles
            cells.append(f"{100.0 * baseline / runtime.cycles:>10.0f}%")
        lines.append(f"{label:28}" + "".join(cells))
    return "\n".join(lines)
