"""Compile-path throughput benchmark → ``BENCH_compile.json``.

Measures what the compile-path overhaul bought, in the same spirit as
``BENCH_results.json``: a small machine-readable artifact CI uploads so
future PRs have a perf trajectory to regress against.

Three measurements:

* **direct** — raw ``compile_code`` throughput (graphs per second) on
  the triangle-number workload, the same compile
  ``benchmarks/test_compiler_throughput.py`` times.  This is the number
  the interning/slotting work speeds up.
* **cache cold / cache warm** — a full ``Runtime.run`` with
  ``REPRO_CODE_CACHE`` pointed at a directory, twice.  The cold run
  misses and stores; the warm run must hit with **zero** optimizing
  recompiles (``--assert-warm`` turns that into an exit code for CI).

Usage::

    python -m repro.bench.compile_bench --json BENCH_compile.json
    python -m repro.bench.compile_bench --assert-warm   # CI gate
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from typing import Optional

#: schema identifier written into BENCH_compile.json (bump on shape change)
COMPILE_SCHEMA = "repro-bench-compile/1"

TRIANGLE = (
    "| sum <- 0. i <- 1. n <- 1000 | "
    "[ i < n ] whileTrue: [ sum: sum + i. i: i + 1 ]. sum"
)


def measure_direct(config_name: str = "newself", repeats: int = 40) -> dict:
    """Raw compile_code throughput (no runtime, no caches in the way)."""
    from ..compiler.engine import compile_code
    from ..lang.parser import parse_doit
    from ..world.bootstrap import World
    from .base import SYSTEMS

    config = SYSTEMS[config_name]
    world = World()
    doit = parse_doit(TRIANGLE)
    lobby_map = world.universe.map_of(world.lobby)
    for _ in range(3):  # warm the intern tables and memos
        compile_code(world.universe, config, doit, lobby_map, "<doit>")
    start = time.perf_counter()
    for _ in range(repeats):
        compile_code(world.universe, config, doit, lobby_map, "<doit>")
    elapsed = time.perf_counter() - start
    return {
        # the registry key ("newself"), not config.name's display label
        # ("new SELF"): every other cell in this file and BENCH_exec.json
        # records registry keys, and consumers join on them
        "config": config_name,
        "repeats": repeats,
        "seconds": elapsed,
        "compiles_per_second": repeats / elapsed if elapsed > 0 else 0.0,
    }


def measure_cached_run(cache_dir: Optional[str], config_name: str = "newself") -> dict:
    """One full Runtime.run with the code cache pointed at ``cache_dir``.

    ``cache_dir=None`` runs with the cache disabled (the baseline mode).
    """
    from ..vm.runtime import Runtime
    from ..world.bootstrap import World
    from .base import SYSTEMS

    previous = os.environ.get("REPRO_CODE_CACHE")
    os.environ["REPRO_CODE_CACHE"] = cache_dir or ""
    try:
        world = World()
        runtime = Runtime(world, SYSTEMS[config_name])
        start = time.perf_counter()
        result = runtime.run(TRIANGLE)
        elapsed = time.perf_counter() - start
    finally:
        if previous is None:
            os.environ.pop("REPRO_CODE_CACHE", None)
        else:
            os.environ["REPRO_CODE_CACHE"] = previous
    assert result == 499500, f"triangle workload returned {result!r}"
    return {
        "config": config_name,
        "seconds": elapsed,
        "codecache": dict(runtime.code_cache.stats)
        if runtime.code_cache is not None
        else None,
        "sharing": {"hits": runtime.share_hits, "stores": runtime.share_stores},
        "methods_compiled": runtime.methods_compiled,
    }


def run_benchmark(
    repeats: int = 40,
    cache_dir: Optional[str] = None,
    baseline_compiles_per_second: Optional[float] = None,
) -> dict:
    """All three measurements as one JSON-ready payload.

    ``baseline_compiles_per_second`` is a previously recorded direct
    throughput (e.g. the pre-overhaul seed); when given, the payload
    records it plus the resulting speedup factor.
    """
    owned_tmp = None
    if cache_dir is None:
        owned_tmp = tempfile.TemporaryDirectory(prefix="repro-codecache-")
        cache_dir = owned_tmp.name
    try:
        payload = {
            "schema": COMPILE_SCHEMA,
            "workload": "triangle",
            "direct": measure_direct(repeats=repeats),
            "cache_off": measure_cached_run(None),
            "cache_cold": measure_cached_run(cache_dir),
            "cache_warm": measure_cached_run(cache_dir),
        }
    finally:
        if owned_tmp is not None:
            owned_tmp.cleanup()
    if baseline_compiles_per_second:
        now = payload["direct"]["compiles_per_second"]
        payload["baseline"] = {
            "compiles_per_second": baseline_compiles_per_second,
            "speedup": now / baseline_compiles_per_second,
        }
    return payload


def warm_run_is_clean(payload: dict) -> bool:
    """True when the warm run recompiled nothing at the optimizing tier."""
    stats = payload["cache_warm"]["codecache"]
    return (
        stats is not None
        and stats["misses"] == 0
        and stats["stores"] == 0
        and stats["uncacheable"] == 0
        and stats["corrupt"] == 0
        and stats["hits"] > 0
    )


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.compile_bench",
        description="Measure compile-path throughput and code-cache behavior.",
    )
    parser.add_argument(
        "--json",
        default="BENCH_compile.json",
        help="output path (default: BENCH_compile.json; '' to disable)",
    )
    parser.add_argument(
        "--repeats", type=int, default=40, help="direct-compile repetitions"
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="code-cache directory (default: a fresh temp dir)",
    )
    parser.add_argument(
        "--assert-warm",
        action="store_true",
        help="exit 1 unless the warm-cache run performed zero recompiles",
    )
    parser.add_argument(
        "--baseline",
        type=float,
        default=None,
        help="previously recorded compiles/s to compute a speedup against",
    )
    parser.add_argument(
        "--history",
        default="BENCH_history.jsonl",
        help="append-only perf trajectory "
        "(default: BENCH_history.jsonl; '' to disable)",
    )
    args = parser.parse_args(argv)

    payload = run_benchmark(
        repeats=args.repeats,
        cache_dir=args.cache_dir,
        baseline_compiles_per_second=args.baseline,
    )
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=1)

    direct = payload["direct"]
    warm = payload["cache_warm"]
    print(
        f"direct: {direct['compiles_per_second']:.1f} compiles/s "
        f"({direct['repeats']} reps, config {direct['config']!r})"
    )
    if "baseline" in payload:
        base = payload["baseline"]
        print(
            f"baseline: {base['compiles_per_second']:.1f} compiles/s "
            f"-> {base['speedup']:.2f}x"
        )
    print(f"cache cold: {payload['cache_cold']['codecache']}")
    print(f"cache warm: {warm['codecache']}")
    if args.history:
        from .history import append_history, format_delta

        entry, previous = append_history(
            args.history, "compile",
            {"compiles_per_second": direct["compiles_per_second"]},
        )
        print(format_delta(entry, previous))
    if args.assert_warm and not warm_run_is_clean(payload):
        print("FAIL: warm-cache run recompiled at the optimizing tier", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI shim
    sys.exit(main())
