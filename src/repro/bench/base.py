"""Benchmark descriptors and the system registry.

Every benchmark is a guest-language program plus the metadata the
harness needs: which group it belongs to (the paper's four), what the
correct answer is, which benchmark serves as its "optimized C" baseline
(the paper computes ``perm-oo`` percentages against plain C ``perm``),
and the static type annotations the C configuration is allowed to use.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..compiler.annotations import StaticAnnotations
from ..compiler.config import (
    NEW_SELF,
    OLD_SELF_89,
    OLD_SELF_90,
    ST80,
    STATIC_C,
    CompilerConfig,
)

#: The five measured systems, in the paper's presentation order.
SYSTEMS: dict[str, CompilerConfig] = {
    "st80": ST80,
    "oldself89": OLD_SELF_89,
    "oldself90": OLD_SELF_90,
    "newself": NEW_SELF,
    "static": STATIC_C,
}

#: Pretty labels matching the paper's tables.
SYSTEM_LABELS = {
    "st80": "ST-80",
    "oldself89": "old SELF-89",
    "oldself90": "old SELF-90",
    "newself": "new SELF",
    "static": "optimized C",
}

GROUPS = ("stanford", "stanford-oo", "small", "richards", "poly")


class Benchmark:
    """One benchmark program.

    Attributes:
        name: e.g. ``'perm'`` or ``'perm-oo'``.
        group: one of :data:`GROUPS`.
        setup_source: slot declarations added to the lobby before the
            run (prototypes, methods) — definition time, unmeasured.
        run_source: the measured "do-it".
        expected: the value the run must produce (host-comparable: int,
            str, float) — every system's result is verified against it.
        c_baseline: benchmark whose *static* run provides the 100%
            baseline (the plain version, for ``-oo`` rewrites).
        annotate: optional callback ``(world, annotations) -> None``
            declaring argument/slot types for the static configuration.
        scale: informal problem-size note for documentation.
    """

    def __init__(
        self,
        name: str,
        group: str,
        setup_source: str,
        run_source: str,
        expected,
        c_baseline: Optional[str] = None,
        annotate: Optional[Callable] = None,
        scale: str = "",
    ) -> None:
        if group not in GROUPS:
            raise ValueError(f"bad group {group!r}")
        self.name = name
        self.group = group
        self.setup_source = setup_source
        self.run_source = run_source
        self.expected = expected
        self.c_baseline = c_baseline or name
        self.annotate = annotate
        self.scale = scale

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Benchmark {self.name} ({self.group})>"


_REGISTRY: dict[str, Benchmark] = {}


def register(benchmark: Benchmark) -> Benchmark:
    if benchmark.name in _REGISTRY:
        raise ValueError(f"duplicate benchmark {benchmark.name!r}")
    _REGISTRY[benchmark.name] = benchmark
    return benchmark


def all_benchmarks() -> dict[str, Benchmark]:
    from . import programs  # noqa: F401  (registration side effect)

    return dict(_REGISTRY)


def benchmarks_in_group(group: str) -> list[Benchmark]:
    return [b for b in all_benchmarks().values() if b.group == group]


def get_benchmark(name: str) -> Benchmark:
    benchmarks = all_benchmarks()
    try:
        return benchmarks[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; available: {sorted(benchmarks)}"
        ) from None
