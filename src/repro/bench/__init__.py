"""The benchmark suites and measurement harness (the paper's evaluation)."""

from .base import (
    GROUPS,
    SYSTEM_LABELS,
    SYSTEMS,
    Benchmark,
    all_benchmarks,
    benchmarks_in_group,
    get_benchmark,
)
from .harness import GLOBAL_SESSION, RunResult, Session, run_benchmark

__all__ = [
    "Benchmark",
    "GLOBAL_SESSION",
    "GROUPS",
    "RunResult",
    "SYSTEMS",
    "SYSTEM_LABELS",
    "Session",
    "all_benchmarks",
    "benchmarks_in_group",
    "get_benchmark",
    "run_benchmark",
]
