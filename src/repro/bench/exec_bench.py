"""Execution (raw wall-clock) throughput benchmark → ``BENCH_exec.json``.

Measures what the translation tier buys in *real seconds* — the one
number the modeled cost accounting deliberately does not capture.  For
each workload the same parsed do-it runs twice through identical
runtimes differing only in ``translate_threshold``:

* **baseline** — threshold 0: every body runs on the predecoded
  threaded-dispatch stream;
* **translated** — threshold 1 (configurable): every body is promoted
  to its specialized host function on first activation.

Methodology notes (they matter):

* modeled counters are compiled out (``REPRO_MODELED_COUNTERS=0``) for
  both sides — this benchmark is about raw speed, and the accounting
  instructions would dominate the translated bodies;
* the do-it is parsed **once** and re-run via ``run_doit``: the method
  cache keys on the node identity, so warm repeats measure steady-state
  execution, not re-parsing + re-compiling + re-translating;
* a few warm-up runs precede timing (IC warm-up, promotion), then the
  best of N timed repeats is taken on both sides.

Usage::

    python -m repro.bench.exec_bench --json BENCH_exec.json
    python -m repro.bench.exec_bench --workloads sumTo,towers \
        --assert-speedup 2.0                                   # CI gate
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
import time
from typing import Optional

#: schema identifier written into BENCH_exec.json (bump on shape change)
EXEC_SCHEMA = "repro-bench-exec/1"

#: registry key of the measured system (never the display label)
EXEC_CONFIG = "newself"

#: default workload set: the t1 send-heavy group plus the two
#: loop-heavy "small" programs for the upper bound
DEFAULT_WORKLOADS = (
    "sumTo", "sieve", "towers", "queens-oo", "tree-oo", "richards",
)


def _timed_run(runtime, doit, warmups: int, best_of: int) -> float:
    for _ in range(warmups):
        runtime.run_doit(doit)
    best = None
    for _ in range(best_of):
        start = time.perf_counter()
        runtime.run_doit(doit)
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best


def measure_workload(
    name: str,
    threshold: int = 1,
    warmups: int = 2,
    best_of: int = 3,
) -> dict:
    """Baseline-vs-translated steady-state seconds for one benchmark."""
    from ..lang.parser import parse_doit
    from ..vm.runtime import Runtime
    from ..world.bootstrap import World
    from .base import SYSTEMS, get_benchmark

    benchmark = get_benchmark(name)
    config = SYSTEMS[EXEC_CONFIG]
    row = {"name": name, "group": benchmark.group}
    seconds = {}
    stats = None
    for label, tier_threshold in (("baseline", 0), ("translated", threshold)):
        world = World()
        world.add_slots(benchmark.setup_source)
        runtime = Runtime(world, config)
        runtime.translate_threshold = tier_threshold
        doit = parse_doit(benchmark.run_source)
        answer = runtime.run_doit(doit)
        if benchmark.expected is not None and answer != benchmark.expected:
            raise AssertionError(
                f"{name} under {label} returned {answer!r}, "
                f"expected {benchmark.expected!r}"
            )
        seconds[label] = _timed_run(
            runtime, doit, max(warmups, tier_threshold), best_of
        )
        if label == "translated":
            stats = runtime.translate_stats
    row["baseline_seconds"] = seconds["baseline"]
    row["translated_seconds"] = seconds["translated"]
    row["speedup"] = (
        seconds["baseline"] / seconds["translated"]
        if seconds["translated"] > 0
        else 0.0
    )
    row["translated_bodies"] = stats["translated"]
    row["factories_reused"] = stats["reused"]
    row["emit_seconds"] = stats["emit_seconds"]
    row["emit_failed"] = stats["emit_failed"]
    return row


def run_benchmark(
    workloads=DEFAULT_WORKLOADS,
    threshold: int = 1,
    warmups: int = 2,
    best_of: int = 3,
) -> dict:
    """Every workload's measurement plus the geometric-mean speedup."""
    previous = os.environ.get("REPRO_MODELED_COUNTERS")
    os.environ["REPRO_MODELED_COUNTERS"] = "0"
    try:
        rows = [
            measure_workload(name, threshold, warmups, best_of)
            for name in workloads
        ]
    finally:
        if previous is None:
            os.environ.pop("REPRO_MODELED_COUNTERS", None)
        else:
            os.environ["REPRO_MODELED_COUNTERS"] = previous
    speedups = [row["speedup"] for row in rows if row["speedup"] > 0]
    geomean = (
        math.exp(sum(math.log(s) for s in speedups) / len(speedups))
        if speedups
        else 0.0
    )
    return {
        "schema": EXEC_SCHEMA,
        "config": EXEC_CONFIG,
        "modeled_counters": False,
        "translate_threshold": threshold,
        "warmups": warmups,
        "best_of": best_of,
        "workloads": rows,
        "geomean_speedup": geomean,
    }


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.exec_bench",
        description=(
            "Measure raw wall-clock speedup of the translation tier "
            "over the predecoded threaded-dispatch stream."
        ),
    )
    parser.add_argument(
        "--json",
        default="BENCH_exec.json",
        help="output path (default: BENCH_exec.json; '' to disable)",
    )
    parser.add_argument(
        "--workloads",
        default=",".join(DEFAULT_WORKLOADS),
        help="comma-separated benchmark names",
    )
    parser.add_argument(
        "--threshold", type=int, default=1,
        help="translate threshold for the translated side (default 1)",
    )
    parser.add_argument(
        "--warmups", type=int, default=2, help="unmeasured warm-up runs"
    )
    parser.add_argument(
        "--best-of", type=int, default=3, help="timed repeats (best kept)"
    )
    parser.add_argument(
        "--assert-speedup", type=float, default=None,
        help="exit 1 unless the geomean speedup reaches this factor",
    )
    parser.add_argument(
        "--history",
        default="BENCH_history.jsonl",
        help="append-only perf trajectory "
        "(default: BENCH_history.jsonl; '' to disable)",
    )
    args = parser.parse_args(argv)

    workloads = [w.strip() for w in args.workloads.split(",") if w.strip()]
    payload = run_benchmark(
        workloads=workloads,
        threshold=args.threshold,
        warmups=args.warmups,
        best_of=args.best_of,
    )
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=1)

    for row in payload["workloads"]:
        print(
            f"{row['name']:12} base={row['baseline_seconds'] * 1e3:9.2f}ms  "
            f"translated={row['translated_seconds'] * 1e3:9.2f}ms  "
            f"speedup={row['speedup']:5.2f}x  "
            f"({row['translated_bodies']} bodies, "
            f"emit {row['emit_seconds'] * 1e3:.1f}ms)"
        )
    print(f"geomean speedup: {payload['geomean_speedup']:.2f}x")
    if args.history:
        from .history import append_history, format_delta

        entry, previous = append_history(
            args.history, "exec",
            {"geomean_speedup": payload["geomean_speedup"]},
        )
        print(format_delta(entry, previous))
    if (
        args.assert_speedup is not None
        and payload["geomean_speedup"] < args.assert_speedup
    ):
        print(
            f"FAIL: geomean speedup {payload['geomean_speedup']:.2f}x "
            f"< required {args.assert_speedup:.2f}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI shim
    sys.exit(main())
