"""Execution (raw wall-clock) throughput benchmark → ``BENCH_exec.json``.

Measures what the translation tier buys in *real seconds* — the one
number the modeled cost accounting deliberately does not capture.  For
each workload the same parsed do-it runs twice through identical
runtimes differing only in ``translate_threshold``:

* **baseline** — threshold 0: every body runs on the predecoded
  threaded-dispatch stream;
* **translated** — threshold 1 (configurable): every body is promoted
  to its specialized host function on first activation.

Methodology notes (they matter):

* modeled counters are compiled out (``REPRO_MODELED_COUNTERS=0``) for
  both sides — this benchmark is about raw speed, and the accounting
  instructions would dominate the translated bodies;
* the do-it is parsed **once** and re-run via ``run_doit``: the method
  cache keys on the node identity, so warm repeats measure steady-state
  execution, not re-parsing + re-compiling + re-translating;
* a few warm-up runs precede timing (IC warm-up, promotion), then the
  best of N timed repeats is taken on both sides.

Usage::

    python -m repro.bench.exec_bench --json BENCH_exec.json
    python -m repro.bench.exec_bench --workloads sumTo,towers \
        --assert-speedup 2.0                                   # CI gate
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
import time
from typing import Optional

#: schema identifier written into BENCH_exec.json (bump on shape change)
EXEC_SCHEMA = "repro-bench-exec/1"

#: registry key of the measured system (never the display label)
EXEC_CONFIG = "newself"

#: default workload set: the t1 send-heavy group plus the two
#: loop-heavy "small" programs for the upper bound
DEFAULT_WORKLOADS = (
    "sumTo", "sieve", "towers", "queens-oo", "tree-oo", "richards",
)

#: the hostile-polymorphism matrix: same translated runtime, dispatch
#: ladder (REPRO_PIC) off vs on
POLY_WORKLOADS = (
    "poly1", "poly2", "poly4", "poly8", "poly32", "poly128",
    "poly32-skew", "poly128-skew",
)

#: poly cells whose every send is megamorphic — the cells the
#: dispatch table exists for (CI gates their pic speedup).  The skewed
#: N >= 32 cells are reported but not gated: seven of eight of their
#: sends hit the monomorphic entry in *both* configurations, so the
#: ladder's win there is structurally bounded by the megamorphic tail
#: (~1.5-3x), not a regression signal.
POLY_MEGAMORPHIC = ("poly32", "poly128")


def _timed_run(runtime, doit, warmups: int, best_of: int) -> float:
    import gc

    for _ in range(warmups):
        runtime.run_doit(doit)
    best = None
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(best_of):
            start = time.perf_counter()
            runtime.run_doit(doit)
            elapsed = time.perf_counter() - start
            if best is None or elapsed < best:
                best = elapsed
    finally:
        if was_enabled:
            gc.enable()
    return best


def measure_workload(
    name: str,
    threshold: int = 1,
    warmups: int = 2,
    best_of: int = 3,
) -> dict:
    """Baseline-vs-translated steady-state seconds for one benchmark."""
    from ..lang.parser import parse_doit
    from ..vm.runtime import Runtime
    from ..world.bootstrap import World
    from .base import SYSTEMS, get_benchmark

    benchmark = get_benchmark(name)
    config = SYSTEMS[EXEC_CONFIG]
    row = {"name": name, "group": benchmark.group}
    seconds = {}
    stats = None
    for label, tier_threshold in (("baseline", 0), ("translated", threshold)):
        world = World()
        world.add_slots(benchmark.setup_source)
        runtime = Runtime(world, config)
        runtime.translate_threshold = tier_threshold
        doit = parse_doit(benchmark.run_source)
        answer = runtime.run_doit(doit)
        if benchmark.expected is not None and answer != benchmark.expected:
            raise AssertionError(
                f"{name} under {label} returned {answer!r}, "
                f"expected {benchmark.expected!r}"
            )
        seconds[label] = _timed_run(
            runtime, doit, max(warmups, tier_threshold), best_of
        )
        if label == "translated":
            stats = runtime.translate_stats
    row["baseline_seconds"] = seconds["baseline"]
    row["translated_seconds"] = seconds["translated"]
    row["speedup"] = (
        seconds["baseline"] / seconds["translated"]
        if seconds["translated"] > 0
        else 0.0
    )
    row["translated_bodies"] = stats["translated"]
    row["factories_reused"] = stats["reused"]
    row["emit_seconds"] = stats["emit_seconds"]
    row["emit_failed"] = stats["emit_failed"]
    return row


def measure_poly_workload(
    name: str,
    threshold: int = 1,
    warmups: int = 2,
    best_of: int = 5,
) -> dict:
    """PIC-ladder-off vs PIC-ladder-on steady-state seconds for one
    poly benchmark.

    Both cells run the *translated* tier (the fastest rung either way);
    the only difference is ``REPRO_PIC`` — off relinks the monomorphic
    IC on every receiver change, on probes the bounded PIC and then the
    shared megamorphic table.

    The skewed cells (one receiver dominates) get a third measurement:
    pic on but ``REPRO_PIC_MRU=0``, isolating what the MRU promotion in
    the lean megamorphic send buys when the mono probe keeps paying off.
    """
    from ..lang.parser import parse_doit
    from ..vm.runtime import Runtime
    from ..world.bootstrap import World
    from .base import SYSTEMS, get_benchmark
    from .programs.poly import PASSES, PROBES_PER_SLOT, VECTOR_SIZE

    benchmark = get_benchmark(name)
    config = SYSTEMS[EXEC_CONFIG]
    # Dispatch-ladder sends per run: the discarded probe sends, plus
    # probeTwice and its two inner probe sends, per slot per pass.
    ladder_sends = PASSES * VECTOR_SIZE * (PROBES_PER_SLOT + 3)
    row = {"name": name, "group": benchmark.group, "sends": ladder_sends}
    skewed = name.endswith("-skew")
    cells = [("pic_off", "0", None), ("pic_on", "1", None)]
    if skewed:
        cells.append(("pic_on_nomru", "1", "0"))
    previous_pic = os.environ.get("REPRO_PIC")
    previous_mru = os.environ.get("REPRO_PIC_MRU")
    seconds = {}
    try:
        for label, pic, mru in cells:
            os.environ["REPRO_PIC"] = pic
            if mru is None:
                os.environ.pop("REPRO_PIC_MRU", None)
            else:
                os.environ["REPRO_PIC_MRU"] = mru
            world = World()
            world.add_slots(benchmark.setup_source)
            runtime = Runtime(world, config)
            runtime.translate_threshold = threshold
            doit = parse_doit(benchmark.run_source)
            answer = runtime.run_doit(doit)
            if answer != benchmark.expected:
                raise AssertionError(
                    f"{name} under {label} returned {answer!r}, "
                    f"expected {benchmark.expected!r}"
                )
            seconds[label] = _timed_run(
                runtime, doit, max(warmups, threshold), best_of
            )
            if label == "pic_on":
                row["mega_transitions"] = runtime.mega_transitions
                row["mega_table_hits"] = runtime.mega_table_hits
                row["split_refused_megamorphic"] = (
                    runtime.aggregate_compile_stats().get(
                        "split_refused_megamorphic", 0
                    )
                )
    finally:
        for var, previous in (
            ("REPRO_PIC", previous_pic),
            ("REPRO_PIC_MRU", previous_mru),
        ):
            if previous is None:
                os.environ.pop(var, None)
            else:
                os.environ[var] = previous
    row["pic_off_seconds"] = seconds["pic_off"]
    row["pic_on_seconds"] = seconds["pic_on"]
    row["pic_speedup"] = (
        seconds["pic_off"] / seconds["pic_on"]
        if seconds["pic_on"] > 0
        else 0.0
    )
    row["per_send_ns_on"] = seconds["pic_on"] / ladder_sends * 1e9
    row["per_send_ns_off"] = seconds["pic_off"] / ladder_sends * 1e9
    if skewed:
        row["pic_on_nomru_seconds"] = seconds["pic_on_nomru"]
        row["mru_speedup"] = (
            seconds["pic_on_nomru"] / seconds["pic_on"]
            if seconds["pic_on"] > 0
            else 0.0
        )
    return row


def run_poly(
    workloads=POLY_WORKLOADS,
    threshold: int = 1,
    warmups: int = 2,
    best_of: int = 5,
) -> dict:
    """The poly matrix: per-cell pic on/off seconds plus the summary
    numbers the acceptance gates read."""
    previous = os.environ.get("REPRO_MODELED_COUNTERS")
    os.environ["REPRO_MODELED_COUNTERS"] = "0"
    try:
        rows = [
            measure_poly_workload(name, threshold, warmups, best_of)
            for name in workloads
        ]
    finally:
        if previous is None:
            os.environ.pop("REPRO_MODELED_COUNTERS", None)
        else:
            os.environ["REPRO_MODELED_COUNTERS"] = previous
    by_name = {row["name"]: row for row in rows}
    mega_rows = [by_name[n] for n in POLY_MEGAMORPHIC if n in by_name]
    summary = {
        "megamorphic_min_pic_speedup": (
            min(r["pic_speedup"] for r in mega_rows) if mega_rows else 0.0
        ),
    }
    skew_rows = [r for r in rows if "mru_speedup" in r]
    if skew_rows:
        summary["skew_min_mru_speedup"] = min(
            r["mru_speedup"] for r in skew_rows
        )
    # Per-send flatness across the megamorphic range: the table makes
    # dispatch O(1) in N, so N=8 -> N=128 should cost the same per send.
    if "poly8" in by_name and "poly128" in by_name:
        base = by_name["poly8"]["per_send_ns_on"]
        summary["per_send_ratio_8_to_128"] = (
            by_name["poly128"]["per_send_ns_on"] / base if base > 0 else 0.0
        )
    return {"workloads": rows, **summary}


def run_benchmark(
    workloads=DEFAULT_WORKLOADS,
    threshold: int = 1,
    warmups: int = 2,
    best_of: int = 3,
    poly_workloads=POLY_WORKLOADS,
) -> dict:
    """Every workload's measurement plus the geometric-mean speedup."""
    previous = os.environ.get("REPRO_MODELED_COUNTERS")
    os.environ["REPRO_MODELED_COUNTERS"] = "0"
    try:
        rows = [
            measure_workload(name, threshold, warmups, best_of)
            for name in workloads
        ]
    finally:
        if previous is None:
            os.environ.pop("REPRO_MODELED_COUNTERS", None)
        else:
            os.environ["REPRO_MODELED_COUNTERS"] = previous
    speedups = [row["speedup"] for row in rows if row["speedup"] > 0]
    geomean = (
        math.exp(sum(math.log(s) for s in speedups) / len(speedups))
        if speedups
        else 0.0
    )
    payload = {
        "schema": EXEC_SCHEMA,
        "config": EXEC_CONFIG,
        "modeled_counters": False,
        "translate_threshold": threshold,
        "warmups": warmups,
        "best_of": best_of,
        "workloads": rows,
        "geomean_speedup": geomean,
    }
    if poly_workloads:
        payload["poly"] = run_poly(poly_workloads, threshold, warmups, best_of)
    return payload


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.exec_bench",
        description=(
            "Measure raw wall-clock speedup of the translation tier "
            "over the predecoded threaded-dispatch stream."
        ),
    )
    parser.add_argument(
        "--json",
        default="BENCH_exec.json",
        help="output path (default: BENCH_exec.json; '' to disable)",
    )
    parser.add_argument(
        "--workloads",
        default=",".join(DEFAULT_WORKLOADS),
        help="comma-separated benchmark names",
    )
    parser.add_argument(
        "--threshold", type=int, default=1,
        help="translate threshold for the translated side (default 1)",
    )
    parser.add_argument(
        "--warmups", type=int, default=2, help="unmeasured warm-up runs"
    )
    parser.add_argument(
        "--best-of", type=int, default=3, help="timed repeats (best kept)"
    )
    parser.add_argument(
        "--assert-speedup", type=float, default=None,
        help="exit 1 unless the geomean speedup reaches this factor",
    )
    parser.add_argument(
        "--poly-workloads",
        default=",".join(POLY_WORKLOADS),
        help=(
            "comma-separated poly benchmarks for the dispatch-ladder "
            "(REPRO_PIC on/off) matrix; '' to skip"
        ),
    )
    parser.add_argument(
        "--assert-pic-speedup", type=float, default=None,
        help=(
            "exit 1 unless every megamorphic poly cell's pic-on/pic-off "
            "speedup reaches this factor"
        ),
    )
    parser.add_argument(
        "--history",
        default="BENCH_history.jsonl",
        help="append-only perf trajectory "
        "(default: BENCH_history.jsonl; '' to disable)",
    )
    args = parser.parse_args(argv)

    workloads = [w.strip() for w in args.workloads.split(",") if w.strip()]
    poly_workloads = [
        w.strip() for w in args.poly_workloads.split(",") if w.strip()
    ]
    payload = run_benchmark(
        workloads=workloads,
        threshold=args.threshold,
        warmups=args.warmups,
        best_of=args.best_of,
        poly_workloads=poly_workloads,
    )
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=1)

    for row in payload["workloads"]:
        print(
            f"{row['name']:12} base={row['baseline_seconds'] * 1e3:9.2f}ms  "
            f"translated={row['translated_seconds'] * 1e3:9.2f}ms  "
            f"speedup={row['speedup']:5.2f}x  "
            f"({row['translated_bodies']} bodies, "
            f"emit {row['emit_seconds'] * 1e3:.1f}ms)"
        )
    print(f"geomean speedup: {payload['geomean_speedup']:.2f}x")
    poly = payload.get("poly")
    if poly:
        for row in poly["workloads"]:
            mru = (
                f"  mru={row['mru_speedup']:5.2f}x"
                if "mru_speedup" in row
                else ""
            )
            print(
                f"{row['name']:13} pic_off={row['pic_off_seconds'] * 1e3:8.2f}ms  "
                f"pic_on={row['pic_on_seconds'] * 1e3:8.2f}ms  "
                f"speedup={row['pic_speedup']:5.2f}x  "
                f"per_send={row['per_send_ns_on']:6.0f}ns  "
                f"(mega {row['mega_transitions']} transitions, "
                f"{row['mega_table_hits']} table hits)"
                f"{mru}"
            )
        print(
            "poly megamorphic min pic speedup: "
            f"{poly['megamorphic_min_pic_speedup']:.2f}x; "
            "per-send N=8 -> N=128 ratio: "
            f"{poly.get('per_send_ratio_8_to_128', 0.0):.2f}"
        )
        if "skew_min_mru_speedup" in poly:
            print(
                "poly skew min mru speedup: "
                f"{poly['skew_min_mru_speedup']:.2f}x"
            )
    if args.history:
        from .history import append_history, format_delta

        entry, previous = append_history(
            args.history, "exec",
            {"geomean_speedup": payload["geomean_speedup"]},
        )
        print(format_delta(entry, previous))
    if (
        args.assert_speedup is not None
        and payload["geomean_speedup"] < args.assert_speedup
    ):
        print(
            f"FAIL: geomean speedup {payload['geomean_speedup']:.2f}x "
            f"< required {args.assert_speedup:.2f}x",
            file=sys.stderr,
        )
        return 1
    if args.assert_pic_speedup is not None:
        reached = payload.get("poly", {}).get(
            "megamorphic_min_pic_speedup", 0.0
        )
        if reached < args.assert_pic_speedup:
            print(
                f"FAIL: megamorphic pic speedup {reached:.2f}x "
                f"< required {args.assert_pic_speedup:.2f}x",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI shim
    sys.exit(main())
