"""Command-line entry for regenerating the paper's tables.

Usage::

    python -m repro.bench t1          # §6 speed summary
    python -m repro.bench t2          # §6 compile time & code size
    python -m repro.bench a           # Appendix A (per-benchmark speed)
    python -m repro.bench b           # Appendix B (code size)
    python -m repro.bench c           # Appendix C (compile time)
    python -m repro.bench ablation    # feature-ablation table
    python -m repro.bench opt         # compiler-effect counters
    python -m repro.bench metrics     # unified observability metrics
    python -m repro.bench all         # everything
    python -m repro.bench raw         # the raw measurement matrix
    python -m repro.bench raw --json results.json   # machine-readable

Add ``--no-puzzle`` to skip the (large) puzzle benchmark.

Every invocation that measures something also writes the machine-
readable ``BENCH_results.json`` (per-benchmark modeled cycles, compile
stats, cache counters, recovery log, metrics snapshot) — ``--results
PATH`` moves it, ``--results ''`` suppresses it — and prints any tier
degradations the measured runs recorded.

Measurements fan out over ``--jobs`` worker processes (default: the
host CPU count) and are replayed from the on-disk ``.bench_cache/``
when the simulator sources are unchanged; ``--no-cache`` forces fresh
runs.  Both knobs only change wall-clock time — the modeled numbers in
every table are bit-identical either way.
"""

from __future__ import annotations

import argparse
import json
import sys

from .base import SYSTEMS, all_benchmarks, get_benchmark
from .harness import Session
from . import cache, tables


def _matrix_pairs(include_puzzle: bool) -> list[tuple[str, str]]:
    return [
        (name, system)
        for name in sorted(all_benchmarks())
        if include_puzzle or name != "puzzle"
        for system in SYSTEMS
    ]


def _ablation_pairs() -> list[tuple[str, str]]:
    return [
        (get_benchmark(name).c_baseline, "static")
        for name in ("sumTo", "sieve", "queens", "richards")
    ]


def _raw_matrix(session: Session, include_puzzle: bool) -> str:
    lines = [
        f"{'benchmark':12}{'system':>12}{'cycles':>14}{'KB':>8}"
        f"{'compile s':>11}{'insns':>12}{'%C':>7}"
    ]
    for name in sorted(all_benchmarks()):
        if name == "puzzle" and not include_puzzle:
            continue
        for system in SYSTEMS:
            r = session.result(name, system)
            if r.failed:
                lines.append(f"{name:12}{system:>12}  FAILED  {r.error}")
                continue
            pct = session.percent_of_c(name, system)
            lines.append(
                f"{name:12}{system:>12}{r.cycles:>14}{r.code_kb:>8.1f}"
                f"{r.compile_seconds:>11.3f}{r.instructions:>12}{pct:>6.0f}%"
            )
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.bench")
    parser.add_argument(
        "table",
        choices=["t1", "t2", "a", "b", "c", "ablation", "opt", "metrics", "raw", "all"],
        help="which of the paper's tables to regenerate",
    )
    parser.add_argument(
        "--results",
        metavar="PATH",
        default="BENCH_results.json",
        help="where to write the machine-readable results "
        "(default: BENCH_results.json; pass '' to disable)",
    )
    parser.add_argument(
        "--no-puzzle",
        action="store_true",
        help="skip the puzzle benchmark (it is by far the largest)",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        help="with 'raw': also write the matrix as JSON to PATH",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for the measurement matrix "
        "(default: CPU count; 1 runs serially in-process)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore and do not write the on-disk measurement cache",
    )
    args = parser.parse_args(argv)
    if args.jobs is not None and args.jobs < 1:
        parser.error("--jobs must be at least 1")
    include_puzzle = not args.no_puzzle

    session = Session(jobs=args.jobs, use_cache=not args.no_cache)
    # Measure everything the requested tables will read up front, so
    # misses run in parallel instead of lazily one at a time.
    if args.table == "ablation":
        session.prefetch(_ablation_pairs())
    else:
        session.prefetch(_matrix_pairs(include_puzzle))
    discarded = cache.corruption_count()
    if discarded:
        print(
            f"note: discarded {discarded} corrupt bench-cache "
            f"entr{'y' if discarded == 1 else 'ies'} (remeasured from scratch)",
            file=sys.stderr,
        )
    failed = [r for r in session._results.values() if r.failed]
    for r in failed:
        print(
            f"warning: {r.benchmark}/{r.system} FAILED: {r.error}",
            file=sys.stderr,
        )

    out = []
    if args.table in ("t1", "all"):
        out.append(tables.t1_speed_summary(session, include_puzzle=include_puzzle))
    if args.table in ("t2", "all"):
        out.append(tables.t2_time_size_summary(session, include_puzzle=include_puzzle))
    if args.table in ("a", "all"):
        out.append(tables.appendix_a_speed(session, include_puzzle=include_puzzle))
    if args.table in ("b", "all"):
        out.append(tables.appendix_b_size(session, include_puzzle=include_puzzle))
    if args.table in ("c", "all"):
        out.append(tables.appendix_c_compile_time(session, include_puzzle=include_puzzle))
    if args.table in ("ablation", "all"):
        out.append(tables.ablation_table(session=session))
    if args.table in ("opt", "all"):
        out.append(tables.optimization_effect_table(session))
    if args.table == "metrics":
        out.append(tables.metrics_table(session))
    if args.table == "raw":
        out.append(_raw_matrix(session, include_puzzle))
        if args.json:
            _write_json(session, args.json, include_puzzle)
            out.append(f"(wrote {args.json})")
    degradations = tables.recovery_summary(session)
    if degradations:
        out.append(degradations)
    if args.results and session._results:
        from .harness import write_results_json

        write_results_json(session, args.results)
        out.append(f"(wrote {args.results})")
    print("\n\n".join(out))
    return 0


def _write_json(session: Session, path: str, include_puzzle: bool) -> None:
    records = []
    for name in sorted(all_benchmarks()):
        if name == "puzzle" and not include_puzzle:
            continue
        for system in SYSTEMS:
            r = session.result(name, system)
            records.append(
                {
                    "benchmark": r.benchmark,
                    "system": r.system,
                    "cycles": r.cycles,
                    "instructions": r.instructions,
                    "code_bytes": r.code_bytes,
                    "compile_seconds": r.compile_seconds,
                    "percent_of_c": session.percent_of_c(name, system),
                    "send_hits": r.send_hits,
                    "send_misses": r.send_misses,
                    "send_relinks": r.send_megamorphic,
                    "compile_stats": r.compile_stats,
                }
            )
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(records, handle, indent=2)


if __name__ == "__main__":
    sys.exit(main())
