"""The optimizing compiler: the paper's contribution.

Public surface:

* :func:`compile_code` — compile a method (or block) body customized for
  a receiver map under a :class:`CompilerConfig`.
* :data:`NEW_SELF`, :data:`OLD_SELF`, :data:`ST80`, :data:`STATIC_C` —
  the preset configurations matching the paper's evaluated systems.
"""

from .config import (
    NEW_SELF,
    OLD_SELF,
    OLD_SELF_89,
    OLD_SELF_90,
    PRESETS,
    ST80,
    STATIC_C,
    CompilerConfig,
    preset,
)
from .engine import MethodCompiler, compile_code
from .result import BlockTemplate, CompiledGraph

__all__ = [
    "BlockTemplate",
    "CompiledGraph",
    "CompilerConfig",
    "MethodCompiler",
    "NEW_SELF",
    "OLD_SELF",
    "OLD_SELF_89",
    "OLD_SELF_90",
    "PRESETS",
    "ST80",
    "STATIC_C",
    "compile_code",
    "preset",
]
