"""Primitive inlining, constant folding, and range analysis.

This mixin implements section 3.2.3 of the paper.  Robust primitives
expand into their constituent nodes — argument type tests, the bare
operation, the overflow/bounds check, and the failure handler — and the
type analysis then deletes every check it can prove redundant:

* a type test vanishes when the binding is already within the class;
* an overflow check vanishes when interval arithmetic proves the result
  fits the tagged range;
* a bounds check vanishes when the index subrange lies inside a vector
  of statically-known length;
* a comparison primitive constant-folds when the operand subranges do
  not overlap — even though neither operand is a constant.

Failure branches are *uncommon*: they compile the user's failure block
(or the default error) and merge back into the main path, diluting
types through a merge type exactly as in the paper's triangleNumber
walkthrough.
"""

from __future__ import annotations

from typing import Optional

from ..ir.nodes import (
    ArithNode,
    ArithOvNode,
    ArrayLengthNode,
    ArrayLoadNode,
    ArrayStoreNode,
    BoundsCheckNode,
    CompareBranchNode,
    ConstNode,
    ErrorNode,
    MoveNode,
    PrimCallNode,
    SendNode,
    TypeTestNode,
)
from ..primitives.registry import (
    BAD_SIZE,
    BAD_TYPE,
    OUT_OF_BOUNDS,
    OVERFLOW,
    PrimFailSignal,
    lookup_primitive,
)
from ..types import intervals
from ..types.lattice import (
    UNKNOWN,
    IntRangeType,
    MapType,
    SelfType,
    ValueType,
    VectorType,
    as_map,
    contains,
    disjoint,
    int_interval,
    make_union,
    type_of_constant,
    vector_length,
)
from ..types.ops import exclude_map, refine_compare, refine_to_map
from .fronts import Front

#: integer arithmetic primitives -> (ir op, interval transfer function)
_INT_ARITH = {
    "_IntAdd:": ("add", intervals.add),
    "_IntSub:": ("sub", intervals.sub),
    "_IntMul:": ("mul", intervals.mul),
}
_INT_DIVMOD = {
    "_IntDiv:": ("div", intervals.floordiv),
    "_IntMod:": ("mod", intervals.floormod),
}
_INT_COMPARE = {
    "_IntLT:": "<",
    "_IntLE:": "<=",
    "_IntGT:": ">",
    "_IntGE:": ">=",
    "_IntEQ:": "==",
    "_IntNE:": "!=",
}


class PrimitiveExpansionMixin:
    """Primitive handling for :class:`~repro.compiler.engine.MethodCompiler`."""

    # ------------------------------------------------------------------
    # Entry
    # ------------------------------------------------------------------

    def expand_primitive(
        self,
        front: Front,
        selector: str,
        recv_var: str,
        arg_vars: list[str],
        scope,
        result_var: str,
    ) -> list[Front]:
        primitive = lookup_primitive(selector)
        if primitive is None:
            # Unknown primitive: a runtime error; compile a dynamic send
            # so behaviour matches the interpreter.
            return self.emit_dynamic_send(
                front, selector, recv_var, arg_vars, result_var,
                reason="unknown primitive",
            )
        fail_var: Optional[str] = None
        if selector.endswith("IfFail:") and selector != primitive.selector:
            fail_var = arg_vars[-1]
            arg_vars = arg_vars[:-1]
        if len(arg_vars) != primitive.arity:
            return self.emit_dynamic_send(
                front, selector, recv_var, arg_vars, result_var,
                reason="primitive arity mismatch",
            )

        name = primitive.selector
        folded = self._try_constant_fold(
            front, primitive, recv_var, arg_vars, result_var
        )
        if folded is not None:
            return folded

        if name in _INT_ARITH or name in _INT_DIVMOD:
            return self._expand_int_arith(
                front, name, recv_var, arg_vars[0], fail_var, scope, result_var
            )
        if name in _INT_COMPARE:
            return self._expand_int_compare(
                front, name, recv_var, arg_vars[0], fail_var, scope, result_var
            )
        if name == "_VectorAt:":
            return self._expand_vector_at(
                front, recv_var, arg_vars[0], None, fail_var, scope, result_var
            )
        if name == "_VectorAt:Put:":
            return self._expand_vector_at(
                front, recv_var, arg_vars[0], arg_vars[1], fail_var, scope, result_var
            )
        if name == "_VectorSize":
            return self._expand_vector_size(
                front, recv_var, fail_var, scope, result_var
            )
        if name == "_Eq:" or name == "_Ne:":
            return self._expand_identity(
                front, name, recv_var, arg_vars[0], result_var
            )
        return self._emit_prim_call(
            front, primitive, recv_var, arg_vars, fail_var, scope, result_var
        )

    # ------------------------------------------------------------------
    # Constant folding
    # ------------------------------------------------------------------

    def _try_constant_fold(
        self, front: Front, primitive, recv_var: str, arg_vars: list[str], result_var: str
    ) -> Optional[list[Front]]:
        if not primitive.pure:
            return None
        types = [front.get_type(recv_var)] + [front.get_type(v) for v in arg_vars]
        if not all(t.is_constant() for t in types):
            return None
        values = [t.constant_value() for t in types]
        try:
            value = primitive.fn(self.universe, values[0], values[1:])
        except PrimFailSignal:
            return None  # compile the full expansion; failure is real
        self.bump("constant_folds", prim=primitive.selector, kind="pure-primitive")
        self.emit(front, ConstNode(result_var, value))
        front.bind(result_var, type_of_constant(value, self.universe))
        front.bind_closure(result_var, None)
        return [front]

    # ------------------------------------------------------------------
    # Checks
    # ------------------------------------------------------------------

    def _check_class(
        self,
        front: Front,
        var: str,
        map,
        fail_fronts: list,
        code: str = BAD_TYPE,
    ) -> Optional[Front]:
        """Prove or emit a run-time type test; route failures.

        Returns the surviving (success) front, or None when the test is
        statically guaranteed to fail.  In static mode every check is
        trusted away.
        """
        t = front.get_type(var)
        if self.config.static_types:
            self.bump("type_tests_elided", why="trusted static types")
            front.refine(var, refine_to_map(t, map, self.universe))
            return front
        target = MapType(map)
        if contains(target, t):
            self.bump("type_tests_elided", why="proved by type analysis")
            return front
        if disjoint(t, target):
            fail_fronts.append((front, code))
            return None
        self.use_value(front, var)
        self.bump("type_tests", why="primitive operand class check")
        yes, no = self.emit_branch(front, TypeTestNode(var, map))
        yes.refine(var, refine_to_map(t, map, self.universe))
        no.refine(var, exclude_map(t, map, self.universe))
        fail_fronts.append((no, code))
        return yes

    def _interval_of(self, front: Front, var: str) -> intervals.Interval:
        interval = int_interval(front.get_type(var), self.universe)
        return interval if interval is not None else intervals.FULL

    # ------------------------------------------------------------------
    # Integer arithmetic
    # ------------------------------------------------------------------

    def _expand_int_arith(
        self,
        front: Front,
        name: str,
        recv_var: str,
        arg_var: str,
        fail_var: Optional[str],
        scope,
        result_var: str,
    ) -> list[Front]:
        universe = self.universe
        fail_fronts: list = []
        ok = self._check_class(front, recv_var, universe.smallint_map, fail_fronts)
        if ok is not None:
            ok = self._check_class(ok, arg_var, universe.smallint_map, fail_fronts)
        out: list[Front] = []
        if ok is not None:
            xi = self._interval_of(ok, recv_var)
            yi = self._interval_of(ok, arg_var)
            if name in _INT_ARITH:
                op, transfer = _INT_ARITH[name]
                interval, safe = transfer(xi, yi)
                zero_ok = True
            else:
                op, transfer = _INT_DIVMOD[name]
                interval, safe, zero_ok = transfer(xi, yi)
            use_ranges = self.config.range_analysis
            checked_away = (use_ranges and safe and zero_ok) or self.config.static_types
            if checked_away:
                self.bump("overflow_checks_elided", prim=name)
                self.emit(ok, ArithNode(op, result_var, recv_var, arg_var))
            else:
                err_var = self.fresh_temp()
                node = ArithOvNode(op, result_var, recv_var, arg_var, err_var)
                ok, overflow = self.emit_branch(ok, node)
                fail_fronts.append((overflow, err_var))
            result_type: SelfType = (
                IntRangeType(*interval) if use_ranges else MapType(universe.smallint_map)
            )
            ok.bind(result_var, result_type)
            ok.bind_closure(result_var, None)
            out.append(ok)
        out.extend(
            self._compile_failures(fail_fronts, fail_var, scope, result_var, name)
        )
        return self.drop_dead(out)

    # ------------------------------------------------------------------
    # Integer comparisons
    # ------------------------------------------------------------------

    def _expand_int_compare(
        self,
        front: Front,
        name: str,
        recv_var: str,
        arg_var: str,
        fail_var: Optional[str],
        scope,
        result_var: str,
    ) -> list[Front]:
        universe = self.universe
        op = _INT_COMPARE[name]
        fail_fronts: list = []
        ok = self._check_class(front, recv_var, universe.smallint_map, fail_fronts)
        if ok is not None:
            ok = self._check_class(ok, arg_var, universe.smallint_map, fail_fronts)
        out: list[Front] = []
        if ok is not None:
            out.extend(
                self._finish_compare(ok, op, recv_var, arg_var, result_var)
            )
        out.extend(
            self._compile_failures(fail_fronts, fail_var, scope, result_var, name)
        )
        return self.drop_dead(out)

    def _finish_compare(
        self, ok: Front, op: str, recv_var: str, arg_var: str, result_var: str
    ) -> list[Front]:
        universe = self.universe
        if self.config.range_analysis:
            from ..types.ops import constant_fold_compare

            decided = constant_fold_compare(
                op, ok.get_type(recv_var), ok.get_type(arg_var), universe
            )
            if decided is not None:
                self.bump("constant_folds", kind="range-decided-compare", op=op)
                value = universe.boolean(decided)
                self.emit(ok, ConstNode(result_var, value))
                ok.bind(result_var, ValueType(value, universe.map_of(value)))
                return [ok]
        true_front, false_front = self.emit_branch(
            ok, CompareBranchNode(op, recv_var, arg_var), uncommon_false=False
        )
        for taken, branch in ((True, true_front), (False, false_front)):
            value = universe.boolean(taken)
            self.emit(branch, ConstNode(result_var, value))
            branch.bind(result_var, ValueType(value, universe.map_of(value)))
            branch.bind_closure(result_var, None)
            if self.config.range_analysis:
                new_recv, new_arg = refine_compare(
                    op,
                    branch.get_type(recv_var),
                    branch.get_type(arg_var),
                    taken,
                    universe,
                )
                branch.refine(recv_var, new_recv)
                branch.refine(arg_var, new_arg)
        return [true_front, false_front]

    # ------------------------------------------------------------------
    # Vectors
    # ------------------------------------------------------------------

    def _expand_vector_at(
        self,
        front: Front,
        recv_var: str,
        index_var: str,
        store_var: Optional[str],
        fail_var: Optional[str],
        scope,
        result_var: str,
    ) -> list[Front]:
        universe = self.universe
        fail_fronts: list = []
        ok = self._check_class(front, recv_var, universe.vector_map, fail_fronts)
        if ok is not None:
            ok = self._check_class(ok, index_var, universe.smallint_map, fail_fronts)
        out: list[Front] = []
        if ok is not None:
            length = vector_length(ok.get_type(recv_var))
            index_interval = int_interval(ok.get_type(index_var), universe)
            in_bounds = (
                self.config.range_analysis
                and length is not None
                and index_interval is not None
                and 0 <= index_interval[0]
                and index_interval[1] < length
            )
            if in_bounds or self.config.static_types:
                self.bump("bounds_checks_elided")
            else:
                ok, oob = self.emit_branch(ok, BoundsCheckNode(recv_var, index_var))
                fail_fronts.append((oob, OUT_OF_BOUNDS))
                if self.config.range_analysis and length is not None:
                    refined = intervals.intersect(
                        index_interval or intervals.FULL, (0, length - 1)
                    )
                    if refined is not None:
                        ok.refine(index_var, IntRangeType(*refined))
            if store_var is None:
                self.emit(ok, ArrayLoadNode(result_var, recv_var, index_var))
                ok.bind(result_var, UNKNOWN)
                ok.bind_closure(result_var, None)
            else:
                self.use_value(ok, store_var)
                self.emit(ok, ArrayStoreNode(recv_var, index_var, store_var))
                self.emit(ok, MoveNode(result_var, recv_var))
                ok.copy_binding(result_var, recv_var)
            out.append(ok)
        out.extend(
            self._compile_failures(
                fail_fronts, fail_var, scope, result_var,
                "_VectorAt:" if store_var is None else "_VectorAt:Put:",
            )
        )
        return self.drop_dead(out)

    def _expand_vector_size(
        self,
        front: Front,
        recv_var: str,
        fail_var: Optional[str],
        scope,
        result_var: str,
    ) -> list[Front]:
        universe = self.universe
        fail_fronts: list = []
        ok = self._check_class(front, recv_var, universe.vector_map, fail_fronts)
        out: list[Front] = []
        if ok is not None:
            length = vector_length(ok.get_type(recv_var))
            if length is not None:
                self.bump("constant_folds", kind="known-vector-size")
                self.emit(ok, ConstNode(result_var, length))
                ok.bind(result_var, IntRangeType(length, length))
            else:
                self.emit(ok, ArrayLengthNode(result_var, recv_var))
                from ..objects.model import SMALLINT_MAX

                ok.bind(result_var, IntRangeType(0, SMALLINT_MAX))
            ok.bind_closure(result_var, None)
            out.append(ok)
        out.extend(
            self._compile_failures(fail_fronts, fail_var, scope, result_var, "_VectorSize")
        )
        return self.drop_dead(out)

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------

    def _expand_identity(
        self, front: Front, name: str, recv_var: str, arg_var: str, result_var: str
    ) -> list[Front]:
        universe = self.universe
        want_equal = name == "_Eq:"
        rt = front.get_type(recv_var)
        at = front.get_type(arg_var)
        if disjoint(rt, at):
            self.bump("constant_folds", kind="disjoint-identity", prim=name)
            value = universe.boolean(not want_equal)
            self.emit(front, ConstNode(result_var, value))
            front.bind(result_var, ValueType(value, universe.map_of(value)))
            return [front]
        self.use_value(front, recv_var)
        self.use_value(front, arg_var)
        primitive = lookup_primitive(name)
        self.emit(
            front, PrimCallNode(result_var, name, recv_var, [arg_var])
        )
        true_map = universe.true_map
        false_map = universe.false_map
        front.bind(
            result_var,
            make_union(
                [
                    ValueType(universe.true_object, true_map),
                    ValueType(universe.false_object, false_map),
                ]
            ),
        )
        front.bind_closure(result_var, None)
        return [front]

    # ------------------------------------------------------------------
    # Out-of-line primitive calls
    # ------------------------------------------------------------------

    def _emit_prim_call(
        self,
        front: Front,
        primitive,
        recv_var: str,
        arg_vars: list[str],
        fail_var: Optional[str],
        scope,
        result_var: str,
    ) -> list[Front]:
        self.use_value(front, recv_var)
        for arg_var in arg_vars:
            self.use_value(front, arg_var)
        can_fail = primitive.can_fail and not self.config.static_types
        with_port = can_fail and fail_var is not None
        err_var = self.fresh_temp() if with_port else ""
        node = PrimCallNode(
            result_var, primitive.selector, recv_var, arg_vars,
            with_failure_port=with_port, err_dst=err_var,
        )
        if with_port:
            ok, failed = self.emit_branch(front, node)
        else:
            self.emit(front, node)
            ok, failed = front, None
        ok.bind(result_var, self._primitive_result_type(primitive, ok, recv_var))
        ok.bind_closure(result_var, None)
        if primitive.selector == "_NewVector:Filler:":
            size_type = ok.get_type(arg_vars[0])
            if size_type.is_constant() and isinstance(size_type.constant_value(), int):
                ok.bind(
                    result_var,
                    VectorType(self.universe.vector_map, size_type.constant_value()),
                )
        if primitive.selector in ("_BlockWhileTrue:", "_BlockWhileFalse:"):
            self.invalidate_escaping(ok)
        out = [ok]
        if failed is not None:
            out.extend(
                self._compile_failures(
                    [(failed, err_var)], fail_var, scope, result_var, primitive.selector
                )
            )
        return self.drop_dead(out)

    def _primitive_result_type(self, primitive, front: Front, recv_var: str) -> SelfType:
        universe = self.universe
        kind = primitive.result_kind
        if kind == "smallInt":
            return MapType(universe.smallint_map)
        if kind == "integer":
            return make_union(
                [MapType(universe.smallint_map), MapType(universe.bigint_map)]
            )
        if kind == "boolean":
            return make_union(
                [
                    ValueType(universe.true_object, universe.true_map),
                    ValueType(universe.false_object, universe.false_map),
                ]
            )
        if kind == "float":
            return MapType(universe.float_map)
        if kind == "string":
            return MapType(universe.string_map)
        if kind == "nil":
            return ValueType(universe.nil_object, universe.nil_map)
        if kind == "vector":
            if primitive.selector == "_NewVector:Filler:":
                # A constant size survives into the result type, enabling
                # later bounds-check elimination.
                return VectorType(universe.vector_map, None)
            return VectorType(universe.vector_map, None)
        if kind == "receiver":
            recv_type = front.get_type(recv_var)
            map_ = as_map(recv_type, universe)
            if primitive.selector == "_Clone" and map_ is not None:
                length = vector_length(recv_type)
                if map_.kind == "vector":
                    return VectorType(map_, length)
                return MapType(map_)
            return recv_type if primitive.selector != "_Clone" else UNKNOWN
        return UNKNOWN

    # ------------------------------------------------------------------
    # Failure handlers
    # ------------------------------------------------------------------

    def _compile_failures(
        self,
        fail_fronts: list,
        fail_var: Optional[str],
        scope,
        result_var: str,
        primitive_name: str,
    ) -> list[Front]:
        """Compile the failure block (or default error) on each failure
        front.  ``code`` entries are either literal failure-code strings
        or the name of a variable the VM fills in (overflow vs. div0)."""
        out: list[Front] = []
        for front, code in fail_fronts:
            front.uncommon = True
            if fail_var is None:
                self.emit(front, ErrorNode(primitive_name, code))
                continue  # terminal: the front dies here
            if code.startswith("%"):
                code_var = code  # runtime-determined failure code
            else:
                code_var = self.fresh_temp()
                self.emit(front, ConstNode(code_var, code))
                front.bind(code_var, type_of_constant(code, self.universe))
            closure = front.get_closure(fail_var)
            if closure is not None and closure.arity <= 1:
                args = [code_var] if closure.arity == 1 else []
                inlined = self.inline_block(front, closure, args, scope, result_var)
                if inlined is not None:
                    out.extend(inlined)
                    continue
            # Runtime dispatch: blocks run, plain objects answer
            # themselves (`value:` on traits clonable).
            self.use_value(front, fail_var)
            self.emit(front, SendNode(result_var, "value:", fail_var, [code_var]))
            front.bind(result_var, UNKNOWN)
            front.bind_closure(result_var, None)
            self.invalidate_escaping(front)
            out.append(front)
        return out
