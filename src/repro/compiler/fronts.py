"""Compilation fronts: the mechanism behind extended message splitting.

A *front* is one open edge of the control-flow graph under construction,
together with everything the compiler knows along that path: the type
binding table (paper, section 3) and the compile-time block closures.

Branching nodes split one front into several; merge nodes combine
several into one.  **Extended message splitting falls out of when we
choose to merge**: with the technique enabled, fronts whose type
bindings differ in class information stay apart — so every node compiled
afterwards is (implicitly) duplicated per front, which is exactly the
code duplication the paper performs by copying nodes from the merge
point to the send.  When the front budget is exhausted, or on uncommon
(failure) paths, fronts merge immediately and the diluted binding
becomes a *merge type*, from which type prediction can still recover the
common case with a run-time test.
"""

from __future__ import annotations

from typing import Optional

import itertools

from ..ir.nodes import IRNode, MergeNode
from ..types.lattice import (
    EMPTY,
    INTERN_LIMIT,
    UNKNOWN,
    SelfType,
    as_map,
    is_boolean_constant,
    register_memo_table,
)
from ..types.ops import merge_bindings
from .scopes import BlockClosure


_value_tokens = itertools.count(1)


class Front:
    """One open CFG edge plus per-path compile-time knowledge."""

    __slots__ = (
        "node", "port", "types", "closures", "uncommon", "materialized",
        "value_ids",
    )

    def __init__(
        self,
        node: IRNode,
        port: int,
        types: dict[str, SelfType],
        closures: dict[str, BlockClosure],
        uncommon: bool = False,
        materialized: frozenset = frozenset(),
        value_ids: Optional[dict[str, int]] = None,
    ) -> None:
        self.node = node
        self.port = port
        self.types = types
        self.closures = closures
        self.uncommon = uncommon
        #: variables whose pending block closure already exists at run
        #: time (a MakeBlock node was emitted along this path)
        self.materialized = materialized
        #: variable -> value identity token.  Copies (MoveNodes from
        #: inlining) share a token, so refining one name at a run-time
        #: type test refines every alias — including the original local
        #: a loop's next iteration reads.
        self.value_ids = value_ids if value_ids is not None else {}

    # -- bindings ------------------------------------------------------------

    def get_type(self, var: str) -> SelfType:
        return self.types.get(var, UNKNOWN)

    def bind(self, var: str, t: SelfType) -> None:
        """Bind a *definition*: the variable now holds a fresh value."""
        self.types[var] = t
        self.value_ids[var] = next(_value_tokens)

    def refine(self, var: str, t: SelfType) -> None:
        """Narrow a binding from a run-time test or range refinement.

        Unlike :meth:`bind`, refinement applies to the *value* — every
        variable aliasing it (through inlining's copy moves) narrows
        with it.  Without this, a type test on an inlined method's
        formal would never inform the caller's original variable, and
        loop analysis could never hoist the test.
        """
        token = self.value_ids.get(var)
        self.types[var] = t
        if token is None:
            return
        for other, other_token in self.value_ids.items():
            if other_token == token:
                self.types[other] = t

    def get_closure(self, var: str) -> Optional[BlockClosure]:
        return self.closures.get(var)

    def bind_closure(self, var: str, closure: Optional[BlockClosure]) -> None:
        if closure is None:
            self.closures.pop(var, None)
        else:
            self.closures[var] = closure

    def copy_binding(self, dst: str, src: str) -> None:
        self.types[dst] = self.get_type(src)
        token = self.value_ids.get(src)
        if token is None:
            token = next(_value_tokens)
            self.value_ids[src] = token
        self.value_ids[dst] = token
        closure = self.closures.get(src)
        if closure is not None:
            self.closures[dst] = closure
        else:
            self.closures.pop(dst, None)

    @property
    def dead(self) -> bool:
        """A front becomes dead when a binding is provably EMPTY."""
        for t in self.types.values():
            if t is EMPTY:
                return True
        return False

    def split(self, node: IRNode, port: int, uncommon: Optional[bool] = None) -> "Front":
        """A copy of this front hanging off another port."""
        return Front(
            node,
            port,
            dict(self.types),
            dict(self.closures),
            self.uncommon if uncommon is None else uncommon,
            self.materialized,
            dict(self.value_ids),
        )

    def prune_temps(self, keep: Optional[str] = None, protected: frozenset = frozenset()) -> None:
        """Drop dead compiler temporaries at a statement boundary.

        ``protected`` holds temps that are still live across statements:
        the self variables of every open inlined scope (an inlined
        method's receiver usually sits in a temporary — dropping its
        binding would degrade all later self sends to dynamic).
        """
        for table in (self.types, self.closures, self.value_ids):
            doomed = [
                v
                for v in table
                if v[0] == "%" and v != keep and v != "%self" and v not in protected
            ]
            for var in doomed:
                del table[var]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flag = " uncommon" if self.uncommon else ""
        return f"<front @{self.node!r}[{self.port}]{flag}>"


def merge_group(engine, fronts: list[Front]) -> Front:
    """Join several fronts with a MergeNode, forming merge types."""
    if len(fronts) == 1:
        return fronts[0]
    merge = MergeNode(arity=len(fronts))
    engine.count_node(merge)
    shared_vars = set(fronts[0].types)
    for front in fronts[1:]:
        shared_vars &= set(front.types)
    merged_types: dict[str, SelfType] = {}
    for var in shared_vars:
        merged_types[var] = merge_bindings([f.types[var] for f in fronts])
    tracer = getattr(engine, "tracer", None)
    if tracer is not None and tracer.enabled:
        from ..types.lattice import MergeType

        diluted = sorted(
            var
            for var, t in merged_types.items()
            if isinstance(t, MergeType)
            and not any(isinstance(f.types[var], MergeType) for f in fronts)
        )
        tracer.event(
            "merge",
            arity=len(fronts),
            diluted_vars=", ".join(diluted),
            diluted=len(diluted),
        )
    merged_closures: dict[str, BlockClosure] = {}
    first = fronts[0].closures
    for var, closure in first.items():
        if all(f.closures.get(var) is closure for f in fronts[1:]):
            merged_closures[var] = closure
    for front in fronts:
        front.node.set_successor(front.port, merge)
    materialized = fronts[0].materialized
    for front in fronts[1:]:
        materialized = materialized & front.materialized
    # Variables that alias each other in *every* incoming front still
    # alias after the merge; group by the tuple of incoming tokens.
    merged_ids: dict[str, int] = {}
    token_for_tuple: dict[tuple, int] = {}
    for var in shared_vars:
        incoming = tuple(f.value_ids.get(var) for f in fronts)
        if any(token is None for token in incoming):
            continue
        token = token_for_tuple.get(incoming)
        if token is None:
            token = next(_value_tokens)
            token_for_tuple[incoming] = token
        merged_ids[var] = token
    return Front(
        merge,
        0,
        merged_types,
        merged_closures,
        uncommon=all(f.uncommon for f in fronts),
        materialized=materialized,
        value_ids=merged_ids,
    )


#: (type, universe) -> its class-signature contribution.  Hot because
#: regroup recomputes every front's signature at every join; with the
#: lattice interned the same type objects recur constantly.
_SIG_PART_MEMO = register_memo_table("class_signature_part", {})


def class_signature(front: Front, universe) -> tuple:
    """The key extended splitting groups fronts by.

    Two fronts merge when no *class-level* information distinguishes
    them: for every bound variable, the same map (or absence of one), the
    same boolean constant, and the same tracked closure.  Subrange
    differences (``int[0..3]`` vs ``int[5..9]``) do *not* keep fronts
    apart — that precision is cheap to re-merge and the paper's splitting
    exists to preserve *class* information for inlining.
    """
    parts = []
    memo = _SIG_PART_MEMO
    for var in sorted(front.types):
        t = front.types[var]
        key = (t, universe)
        part = memo.get(key)
        if part is None:
            map_ = as_map(t, universe)
            boolean = is_boolean_constant(t, universe)
            part = (None if map_ is None else map_.map_id, boolean)
            if len(memo) >= INTERN_LIMIT:
                memo.clear()
            memo[key] = part
        parts.append((var, part[0], part[1]))
    closure_parts = tuple(
        (var, closure.block.block_id, closure.scope.scope_id)
        for var, closure in sorted(front.closures.items())
    )
    return (tuple(parts), closure_parts)


def regroup(engine, fronts: list[Front], at_consumer: bool = True) -> list[Front]:
    """Apply the merge policy at a join point.

    * Dead fronts are dropped.
    * With **extended splitting**, fronts merge per class signature (the
      full technique: splits survive arbitrarily far); if the number of
      groups exceeds the budget, groups are folded together, uncommon
      ones first (the paper only copies code along common-case
      branches).
    * With only **local splitting** (the old SELF compiler), splits
      survive solely into the immediately-following consumer
      (``at_consumer=True``: the value flowing out of the join is about
      to be used); at plain statement boundaries everything merges.
    * With neither (ST-80), everything merges at every join.
    """
    fronts = engine.drop_dead(fronts)
    if not fronts:
        return []
    config = engine.config
    if not config.extended_splitting:
        if at_consumer and config.local_splitting:
            if len(fronts) > max(1, config.max_fronts):
                return [merge_group(engine, fronts)]
            return fronts
        return [merge_group(engine, fronts)] if len(fronts) > 1 else fronts
    groups: dict[tuple, list[Front]] = {}
    for front in fronts:
        groups.setdefault(class_signature(front, engine.universe), []).append(front)
    merged = [merge_group(engine, group) for group in groups.values()]
    # Uncommon fronts do not deserve their own copy of downstream code:
    # merge them into one (keeping common groups precise).
    common = [f for f in merged if not f.uncommon]
    uncommon = [f for f in merged if f.uncommon]
    if common and len(uncommon) > 1:
        uncommon = [merge_group(engine, uncommon)]
    merged = common + uncommon
    over_budget = len(merged) > max(1, config.max_fronts)
    while len(merged) > max(1, config.max_fronts):
        # Over budget: fold the two most similar (here: last two) groups.
        tail = merged.pop()
        head = merged.pop()
        merged.append(merge_group(engine, [head, tail]))
    tracer = getattr(engine, "tracer", None)
    if over_budget and tracer is not None and tracer.enabled:
        tracer.event(
            "split-folded",
            groups=len(groups),
            kept=len(merged),
            max_fronts=config.max_fronts,
        )
    return merged
