"""Compile-time scopes: the inlining structure of a compilation.

Every inlined method or block body gets an :class:`InlineScope`.  Scopes
form two chains:

* the **lexical** chain (``lexical_parent``) — how blocks see their
  enclosing locals.  Only blocks have lexical parents; methods start a
  fresh lexical context.
* the **caller** chain (``caller``) — who inlined whom; used for
  recursion detection and depth limits.

Source-level variable names are alpha-renamed per scope instance
(``sum`` in inline instance 3 becomes ``sum@3``) so that two inlinings
of the same method never collide in the flat variable namespace of the
control-flow graph.

A :class:`BlockClosure` is the compile-time value of a block literal:
the block's code plus the scope it was created in.  When the compiler
can track a closure to a ``value`` send (or a ``whileTrue:``), it
inlines the block body with the closure's scope as lexical parent —
this is how user-defined control structures compile into plain branches
and loops.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Optional

from ..lang.ast_nodes import BlockNode, CodeBody, MethodNode

if TYPE_CHECKING:  # pragma: no cover
    from .engine import MethodCompiler


class InlineScope:
    """One inlined (or outermost) method/block body."""

    _ids = itertools.count(1)

    __slots__ = (
        "scope_id",
        "code",
        "kind",
        "lexical_parent",
        "caller",
        "self_var",
        "home",
        "return_sinks",
        "method_key",
        "depth",
    )

    def __init__(
        self,
        code: CodeBody,
        kind: str,
        self_var: str,
        lexical_parent: Optional["InlineScope"] = None,
        caller: Optional["InlineScope"] = None,
        method_key=None,
    ) -> None:
        assert kind in ("method", "block")
        self.scope_id = next(InlineScope._ids)
        self.code = code
        self.kind = kind
        self.lexical_parent = lexical_parent
        self.caller = caller
        self.self_var = self_var
        #: the method scope that ``^`` returns from; outermost *block*
        #: compilations (block code compiled as its own unit) are their
        #: own home — their ``^`` lowers to a non-local return node.
        if kind == "method" or lexical_parent is None:
            self.home = self
        else:
            self.home = lexical_parent.home
        #: (front, result_var) pairs produced by ``^`` inside this method
        self.return_sinks: list = []
        #: identity of the inlined method (for recursion detection)
        self.method_key = method_key
        self.depth = 0 if caller is None else caller.depth + 1

    # -- naming -----------------------------------------------------------------

    def rename(self, name: str) -> str:
        """The flat CFG variable name for this scope's local ``name``."""
        return f"{name}@{self.scope_id}"

    def defines(self, name: str) -> bool:
        return name in self.code.argument_names or name in self.code.local_names

    def resolve_local(self, name: str) -> Optional[tuple["InlineScope", str]]:
        """Find ``name`` in this scope or its lexical ancestors.

        Returns ``(defining_scope, flat_variable_name)`` or None when the
        name is not a local/argument anywhere up the chain (and therefore
        a real message to self).
        """
        scope: Optional[InlineScope] = self
        while scope is not None:
            if scope.defines(name):
                return scope, scope.rename(name)
            scope = scope.lexical_parent
        return None

    def on_stack(self, method_key) -> bool:
        """Whether ``method_key`` is currently being inlined (recursion)."""
        return self.occurrences_on_stack(method_key) > 0

    def occurrences_on_stack(self, method_key) -> int:
        """How many times ``method_key`` is already being inlined.

        Plain recursion detection would be too blunt: nested
        conditionals inline the same tiny ``ifTrue:False:`` method at
        several levels, which is re-entry, not recursion.  Callers allow
        a small bounded count instead of zero.
        """
        count = 0
        scope: Optional[InlineScope] = self
        while scope is not None:
            if scope.method_key is not None and scope.method_key == method_key:
                count += 1
            scope = scope.caller
        return count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<scope#{self.scope_id} {self.kind} depth={self.depth}>"


class BlockClosure:
    """Compile-time knowledge of a block literal's value.

    ``scope`` is the scope whose activation the closure captured; the
    block's body, when inlined, gets a child scope of it.
    """

    __slots__ = ("block", "scope")

    def __init__(self, block: BlockNode, scope: InlineScope) -> None:
        self.block = block
        self.scope = scope

    @property
    def arity(self) -> int:
        return len(self.block.argument_names)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<closure block#{self.block.block_id} in {self.scope!r}>"


def ast_weight(code: CodeBody) -> int:
    """A crude size metric for inlining decisions (number of AST nodes)."""
    from ..lang.ast_nodes import (
        LiteralNode,
        ObjectLiteralNode,
        ReturnNode,
        SelfNode,
        SendNode,
    )

    total = 0
    stack = list(code.statements)
    while stack:
        node = stack.pop()
        total += 1
        if isinstance(node, SendNode):
            if node.receiver is not None:
                stack.append(node.receiver)
            stack.extend(node.arguments)
        elif isinstance(node, ReturnNode):
            stack.append(node.expression)
        elif isinstance(node, BlockNode):
            stack.extend(node.statements)
        elif isinstance(node, (LiteralNode, SelfNode, ObjectLiteralNode)):
            pass
    return total


def block_has_nlr(block: BlockNode) -> bool:
    """Whether a block (or a nested block sharing its home) contains ``^``."""
    from ..lang.ast_nodes import ReturnNode, SendNode

    stack = list(block.statements)
    while stack:
        node = stack.pop()
        if isinstance(node, ReturnNode):
            return True
        if isinstance(node, SendNode):
            if node.receiver is not None:
                stack.append(node.receiver)
            stack.extend(node.arguments)
        elif isinstance(node, BlockNode):
            stack.extend(node.statements)
    return False
