"""Iterative type analysis and multi-version loops (paper, section 5).

The loop intrinsic fires when both the receiver and argument of
``whileTrue:``/``whileFalse:`` are statically-known zero-argument blocks
— which, after the standard library's ``upTo:Do:``-style methods have
been inlined, is every loop in a typical program.

The algorithm:

1. Seed the loop-head binding table with the entry bindings (temps
   pruned).
2. Compile condition + body from the head bindings.  Each compilation
   front reaching the end of the body is a *loop tail*; it searches the
   loop-head versions for a *compatible* head and connects to it.
3. Tails that match no head force another analysis round: the head
   bindings are generalized with the loop-head widening rule
   (value/subrange → class type; unknown vs. class → merge type), the
   trial graph is discarded, and the loop recompiles.
4. When the head table contains merge types for variables the body
   uses, the head itself *splits*: a specialized version (the fast,
   common-case loop) plus the general version.  Tails from the general
   version whose bindings re-narrow (e.g. after a run-time type test)
   connect across to the specialized head — this is how type tests get
   hoisted out of the hot loop, as in the paper's triangleNumber
   walkthrough.
5. After ``max_loop_iterations`` rounds (or when iteration is disabled),
   fall back to *pessimistic* analysis: every variable the loop could
   assign is bound to unknown, and a single version compiles in one
   pass — the old SELF compiler's strategy.
"""

from __future__ import annotations

import itertools
from typing import Optional

from ..ir.nodes import ConstNode, ErrorNode, LoopHeadNode, TypeTestNode
from ..lang.ast_nodes import BlockNode, ReturnNode as AstReturnNode, SendNode as AstSendNode
from ..robustness import faults
from ..types.lattice import (
    UNKNOWN,
    MergeType,
    SelfType,
    ValueType,
    as_map,
    is_boolean_constant,
    type_of_constant,
)
from ..types.ops import loop_compatible, widen_for_loop_head
from .fronts import Front, regroup
from .scopes import BlockClosure, InlineScope

_loop_ids = itertools.count(1)


class _LoopVersion:
    """One loop-head version: its binding table and (later) head node."""

    __slots__ = ("types", "head_node")

    def __init__(self, types: dict[str, SelfType]) -> None:
        self.types = types
        self.head_node: Optional[LoopHeadNode] = None


class LoopCompilationMixin:
    """Loop compilation for :class:`~repro.compiler.engine.MethodCompiler`."""

    # ------------------------------------------------------------------
    # Entry
    # ------------------------------------------------------------------

    def compile_loop_intrinsic(
        self,
        front: Front,
        selector: str,
        cond: BlockClosure,
        body: BlockClosure,
        scope: InlineScope,
        result_var: str,
    ) -> list[Front]:
        want_true = selector == "whileTrue:"
        loop_id = next(_loop_ids)
        protected = self.protected_vars() | {"%self"}

        def kept(var: str) -> bool:
            return not var.startswith("%") or var in protected

        base_types = {var: t for var, t in front.types.items() if kept(var)}
        base_closures = {
            var: c for var, c in front.closures.items() if kept(var)
        }
        base_mat = frozenset(v for v in front.materialized if kept(v))

        if not (self.config.iterative_loops and self.config.type_analysis):
            return self._compile_pessimistic_loop(
                front, cond, body, want_true, scope, loop_id, result_var,
                base_types, base_closures, base_mat,
                reason="iterative analysis disabled",
            )

        snapshots = self._snapshot_sinks()
        for round_no in range(1, self.config.max_loop_iterations + 1):
            self.bump("loop_analysis_iterations", loop_id=loop_id, round=round_no)
            if self.watchdog is not None:
                self.watchdog.tick()
            if faults.ENABLED and faults.hit(faults.SITE_COMPILER_LOOPS):
                # Corrupt mode: poison the analysis seed.  Widening over
                # UNKNOWN still reaches a fixed point, so the loop
                # compiles — just pessimistically (and deterministically).
                base_types = {var: UNKNOWN for var in base_types}
            self._restore_sinks(snapshots)
            versions = self._make_versions(base_types, cond, body, base_closures)
            exits, unmatched = self._compile_versions(
                versions, base_closures, base_mat, cond, body, want_true,
                scope, loop_id,
            )
            if not unmatched:
                entry_version = self._find_compatible_version(versions, front)
                if entry_version is not None:
                    front.node.set_successor(front.port, entry_version.head_node)
                    self.bump("loop_versions", n=len(versions), loop_id=loop_id)
                    if self.tracer.enabled and len(versions) > 1:
                        split_vars = sorted(
                            var
                            for var in versions[0].types
                            if versions[0].types[var] != versions[-1].types[var]
                        )
                        self.tracer.event(
                            "loop-split",
                            loop_id=loop_id,
                            versions=len(versions),
                            split_vars=", ".join(split_vars),
                        )
                    return self._finish_exits(exits, result_var)
                unmatched = [front]
            progressed = False
            new_base = dict(base_types)
            for tail in unmatched:
                for var in base_types:
                    head_type = new_base[var]
                    tail_type = tail.get_type(var)
                    if head_type is not tail_type:
                        # Widening decisions over receiver-map-mentioning
                        # types are map-dependent (sharing taint); a
                        # self-equal pair is isomorphic across maps.
                        self._taint_if_mentions(head_type)
                        self._taint_if_mentions(tail_type)
                    widened = widen_for_loop_head(
                        head_type, tail_type, self.universe
                    )
                    if widened != new_base[var]:
                        if self.tracer.enabled:
                            self.tracer.event(
                                "loop-widen",
                                loop_id=loop_id,
                                var=var,
                                **{
                                    "from": str(new_base[var]),
                                    "to": str(widened),
                                },
                            )
                        new_base[var] = widened
                        progressed = True
                base_mat = base_mat & tail.materialized
            if not progressed:
                break
            base_types = new_base
        # Fixed point not reached in budget: pessimistic single version.
        self._restore_sinks(snapshots)
        return self._compile_pessimistic_loop(
            front, cond, body, want_true, scope, loop_id, result_var,
            base_types, base_closures, base_mat,
            reason="no fixed point within the iteration budget",
        )

    # ------------------------------------------------------------------
    # Version construction (loop-head splitting)
    # ------------------------------------------------------------------

    def _make_versions(
        self,
        base_types: dict[str, SelfType],
        cond: BlockClosure,
        body: BlockClosure,
        base_closures: dict,
    ) -> list[_LoopVersion]:
        versions = [_LoopVersion(dict(base_types))]
        if not self.config.multi_version_loops:
            return versions
        used = self._loop_variables(cond, body, base_closures, writes_only=False)
        split_vars = [
            var
            for var in sorted(base_types)
            if var in used and isinstance(base_types[var], MergeType)
        ]
        if not split_vars:
            return versions
        specialized = dict(base_types)
        any_split = False
        for var in split_vars:
            merge: MergeType = base_types[var]  # type: ignore[assignment]
            best = next(
                (
                    c
                    for c in merge.constituents
                    if as_map(c, self.universe) is not None
                ),
                None,
            )
            if best is not None:
                specialized[var] = best
                any_split = True
        if not any_split:
            return versions
        # Specialized (fast) version first so tails and the entry prefer
        # it; the general version is the catch-all.
        return [_LoopVersion(specialized), versions[0]][: self.config.max_loop_versions]

    # ------------------------------------------------------------------
    # Compiling the versions
    # ------------------------------------------------------------------

    def _compile_versions(
        self,
        versions: list[_LoopVersion],
        base_closures: dict,
        base_mat: frozenset,
        cond: BlockClosure,
        body: BlockClosure,
        want_true: bool,
        scope: InlineScope,
        loop_id: int,
    ) -> tuple[list[Front], list[Front]]:
        for index, version in enumerate(versions):
            version.head_node = LoopHeadNode(loop_id, index)
            self.count_node(version.head_node)
        exits: list[Front] = []
        unmatched: list[Front] = []
        for version in versions:
            head_front = Front(
                version.head_node, 0, dict(version.types), dict(base_closures),
                False, base_mat,
            )
            body_fronts, version_exits = self._compile_condition(
                head_front, cond, want_true, scope
            )
            exits.extend(version_exits)
            tails: list[Front] = []
            for body_front in body_fronts:
                tails.extend(self._compile_loop_body(body_front, body, scope))
            for tail in tails:
                target = self._find_compatible_version_for_tail(versions, tail, base_mat)
                if target is not None:
                    tail.node.set_successor(tail.port, target.head_node)
                else:
                    unmatched.append(tail)
        return exits, unmatched

    def _compile_condition(
        self, front: Front, cond: BlockClosure, want_true: bool, scope: InlineScope
    ) -> tuple[list[Front], list[Front]]:
        """Inline the condition block; route fronts to body or exit."""
        universe = self.universe
        cond_scope = InlineScope(
            cond.block,
            "block",
            self_var=cond.scope.home.self_var,
            lexical_parent=cond.scope,
            caller=scope,
        )
        self._init_locals(cond_scope, [front])
        fronts, cond_var = self.compile_statements(
            cond_scope, list(cond.block.statements), [front]
        )
        body_fronts: list[Front] = []
        exit_fronts: list[Front] = []
        for f in fronts:
            decided = is_boolean_constant(f.get_type(cond_var), universe)
            if decided is not None:
                (body_fronts if decided == want_true else exit_fronts).append(f)
                continue
            self.use_value(f, cond_var)
            self.bump(
                "type_tests",
                n=2,
                selector="whileTrue:" if want_true else "whileFalse:",
                why="loop condition boolean check",
            )
            is_true, not_true = self.emit_branch(
                f, TypeTestNode(cond_var, universe.true_map), uncommon_false=False
            )
            is_true.refine(cond_var, ValueType(universe.true_object, universe.true_map))
            (body_fronts if want_true else exit_fronts).append(is_true)
            is_false, neither = self.emit_branch(
                not_true, TypeTestNode(cond_var, universe.false_map)
            )
            is_false.refine(cond_var, ValueType(universe.false_object, universe.false_map))
            (exit_fronts if want_true else body_fronts).append(is_false)
            self.emit(neither, ErrorNode("_BlockWhileTrue:", "badTypeError"))
        return body_fronts, exit_fronts

    def _compile_loop_body(
        self, front: Front, body: BlockClosure, scope: InlineScope
    ) -> list[Front]:
        body_scope = InlineScope(
            body.block,
            "block",
            self_var=body.scope.home.self_var,
            lexical_parent=body.scope,
            caller=scope,
        )
        self._init_locals(body_scope, [front])
        fronts, _ = self.compile_statements(
            body_scope, list(body.block.statements), [front]
        )
        return fronts

    # ------------------------------------------------------------------
    # Compatibility (paper, section 5.2)
    # ------------------------------------------------------------------

    def _find_compatible_version_for_tail(
        self, versions: list[_LoopVersion], tail: Front, base_mat: frozenset
    ) -> Optional[_LoopVersion]:
        for version in versions:
            if not base_mat <= tail.materialized:
                continue
            if all(
                loop_compatible(head_type, tail.get_type(var), self.universe)
                for var, head_type in version.types.items()
            ):
                return version
        return None

    def _find_compatible_version(
        self, versions: list[_LoopVersion], entry: Front
    ) -> Optional[_LoopVersion]:
        for version in versions:
            if all(
                loop_compatible(head_type, entry.get_type(var), self.universe)
                for var, head_type in version.types.items()
            ):
                return version
        return None

    # ------------------------------------------------------------------
    # Pessimistic fallback (the old SELF strategy)
    # ------------------------------------------------------------------

    def _compile_pessimistic_loop(
        self,
        front: Front,
        cond: BlockClosure,
        body: BlockClosure,
        want_true: bool,
        scope: InlineScope,
        loop_id: int,
        result_var: str,
        base_types: dict[str, SelfType],
        base_closures: dict,
        base_mat: frozenset,
        reason: str = "pessimistic analysis requested",
    ) -> list[Front]:
        if self.tracer.enabled:
            self.tracer.event("loop-pessimistic", loop_id=loop_id, reason=reason)
        assigned = self._loop_variables(cond, body, base_closures, writes_only=True)
        assigned |= set(self.escaping)
        head_types = dict(base_types)
        head_closures = dict(base_closures)
        head_mat = base_mat
        for var in assigned:
            if var in head_types:
                head_types[var] = UNKNOWN
            head_closures.pop(var, None)
            head_mat = head_mat - {var}
        head = LoopHeadNode(loop_id, 0)
        self.count_node(head)
        front.node.set_successor(front.port, head)
        head_front = Front(head, 0, head_types, head_closures, front.uncommon, head_mat)
        body_fronts, exits = self._compile_condition(head_front, cond, want_true, scope)
        for body_front in body_fronts:
            for tail in self._compile_loop_body(body_front, body, scope):
                # Head bindings contain every possible tail by
                # construction; connect unconditionally.
                tail.node.set_successor(tail.port, head)
        self.bump("loop_versions", loop_id=loop_id, pessimistic=True)
        return self._finish_exits(exits, result_var)

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------

    def _finish_exits(self, exits: list[Front], result_var: str) -> list[Front]:
        universe = self.universe
        for front in exits:
            self.emit(front, ConstNode(result_var, universe.nil_object))
            front.bind(
                result_var, type_of_constant(universe.nil_object, universe)
            )
            front.bind_closure(result_var, None)
        return regroup(self, exits)

    def _snapshot_sinks(self) -> list[tuple[InlineScope, int]]:
        return [(s, len(s.return_sinks)) for s in self.active_method_scopes]

    def _restore_sinks(self, snapshots: list[tuple[InlineScope, int]]) -> None:
        for method_scope, length in snapshots:
            del method_scope.return_sinks[length:]

    def _loop_variables(
        self,
        cond: BlockClosure,
        body: BlockClosure,
        base_closures: dict,
        writes_only: bool,
    ) -> set[str]:
        """Flat variable names the loop may write (or touch at all).

        Walks the condition and body block ASTs, *transitively* following
        any block closures reachable through variables the loop reads —
        a block invoked inside the loop assigns through its own lexical
        scope, which the loop's AST does not show syntactically.
        """
        result: set[str] = set()
        visited_blocks: set[int] = set()
        worklist: list[BlockClosure] = [cond, body]
        while worklist:
            closure = worklist.pop()
            if closure.block.block_id in visited_blocks:
                continue
            visited_blocks.add(closure.block.block_id)
            reads, writes = _block_accesses(closure.block)
            names = writes if writes_only else (reads | writes)
            for name in names:
                resolved = closure.scope.resolve_local(name)
                if resolved is not None:
                    result.add(resolved[1])
            for name in reads:
                resolved = closure.scope.resolve_local(name)
                if resolved is not None:
                    inner = base_closures.get(resolved[1])
                    if inner is not None:
                        worklist.append(inner)
        return result


def _block_accesses(block: BlockNode) -> tuple[set[str], set[str]]:
    """(reads, writes) of implicit-self names in a block, nested included."""
    reads: set[str] = set()
    writes: set[str] = set()
    stack: list = list(block.statements)
    while stack:
        node = stack.pop()
        if isinstance(node, AstSendNode):
            if node.receiver is None:
                if not node.arguments and node.selector.isidentifier():
                    reads.add(node.selector)
                elif (
                    len(node.arguments) == 1
                    and node.selector.endswith(":")
                    and ":" not in node.selector[:-1]
                ):
                    writes.add(node.selector[:-1])
            else:
                stack.append(node.receiver)
            stack.extend(node.arguments)
        elif isinstance(node, AstReturnNode):
            stack.append(node.expression)
        elif isinstance(node, BlockNode):
            stack.extend(node.statements)
    return reads, writes
