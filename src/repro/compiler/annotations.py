"""Static type annotations — the "optimized C" configuration's input.

The paper's C baselines are the same algorithms written with declared
types.  Our static configuration compiles the *same guest source* but
trusts external annotations for method argument types and data-slot
types, which is exactly the information a C programmer supplies in
declarations.  Only the ``static`` preset consults these; the SELF
configurations never see them (the paper's compiler has no
declarations).

Type specs:

=============== ==================================================
``'int'``        small integers
``'float'``      floats
``'string'``     strings
``'bool'``       true or false
``'nil'``        nil
``'vector'``     any vector
``('vector', n)`` a vector of known length *n*
``'unknown'``    no information (the default)
a ``Map``        exactly that map (e.g. a prototype's map)
=============== ==================================================
"""

from __future__ import annotations

from typing import Optional, Union

from ..objects.maps import Map
from ..types.lattice import (
    UNKNOWN,
    MapType,
    SelfType,
    ValueType,
    VectorType,
    make_union,
)

TypeSpec = Union[str, Map, tuple]


class StaticAnnotations:
    """Argument and slot type declarations for static compilation."""

    def __init__(self) -> None:
        #: (holder map name, selector) -> [spec per argument]
        self._argument_types: dict[tuple[str, str], list[TypeSpec]] = {}
        #: (holder map name, slot name) -> spec
        self._slot_types: dict[tuple[str, str], TypeSpec] = {}

    # -- declaration API ---------------------------------------------------------

    def declare_args(self, map_name: str, selector: str, specs: list[TypeSpec]) -> "StaticAnnotations":
        self._argument_types[(map_name, selector)] = list(specs)
        return self

    def declare_slot(self, map_name: str, slot_name: str, spec: TypeSpec) -> "StaticAnnotations":
        self._slot_types[(map_name, slot_name)] = spec
        return self

    # -- compiler queries -----------------------------------------------------------

    def argument_type(
        self, receiver_map: Map, selector: str, index: int, universe
    ) -> Optional[SelfType]:
        specs = self._argument_types.get((receiver_map.name, selector))
        if specs is None or index >= len(specs):
            return None
        return resolve_spec(specs[index], universe)

    def slot_type(self, receiver_map: Map, slot_name: str, universe) -> Optional[SelfType]:
        spec = self._slot_types.get((receiver_map.name, slot_name))
        if spec is None:
            return None
        return resolve_spec(spec, universe)


def resolve_spec(spec: TypeSpec, universe) -> Optional[SelfType]:
    """Turn a type spec into a compile-time type."""
    if isinstance(spec, tuple) and spec and spec[0] == "union":
        return make_union([resolve_spec(s, universe) for s in spec[1:]])
    if isinstance(spec, tuple) and spec and spec[0] == "maybe":
        # A nullable pointer: the map or nil (C's NULL).
        return make_union(
            [
                resolve_spec(spec[1], universe),
                ValueType(universe.nil_object, universe.nil_map),
            ]
        )
    if isinstance(spec, Map):
        if spec.kind == "vector":
            return VectorType(spec, None)
        return MapType(spec)
    if isinstance(spec, tuple) and len(spec) == 2 and spec[0] == "vector":
        return VectorType(universe.vector_map, spec[1])
    if spec == "int":
        return MapType(universe.smallint_map)
    if spec == "float":
        return MapType(universe.float_map)
    if spec == "string":
        return MapType(universe.string_map)
    if spec == "vector":
        return VectorType(universe.vector_map, None)
    if spec == "bool":
        return make_union(
            [
                ValueType(universe.true_object, universe.true_map),
                ValueType(universe.false_object, universe.false_map),
            ]
        )
    if spec == "nil":
        return ValueType(universe.nil_object, universe.nil_map)
    if spec == "unknown":
        return UNKNOWN
    raise ValueError(f"unknown type spec {spec!r}")
