"""Compilation results: the finished CFG plus everything the backend needs."""

from __future__ import annotations

from typing import Optional

from ..ir.graph import GraphStats
from ..ir.nodes import StartNode


class BlockTemplate:
    """How a (non-inlined) block's free names resolve, captured at the
    point the closure was created.

    ``resolutions`` maps each free identifier of the block (including
    identifiers used by nested blocks) to:

    * ``'env'``  — an escaping local of an enclosing activation; access
      walks the home chain at run time, keyed by source name;
    * ``'send'`` — not a lexical variable at all: an implicit-self send.
    """

    __slots__ = ("block", "resolutions")

    def __init__(self, block, resolutions: dict[str, str]) -> None:
        self.block = block
        self.resolutions = resolutions

    def resolution(self, name: str) -> Optional[str]:
        return self.resolutions.get(name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<template block#{self.block.block_id} {self.resolutions}>"


class CompiledGraph:
    """A compiled method (or block body) as a control-flow graph.

    Attributes:
        start: the graph's StartNode.
        self_var / arg_vars: flat variable names the backend preloads
            with the receiver and arguments.
        escaping: flat variable names that must live in the frame's
            named environment (captured by materialized blocks), mapped
            to their source names (the env keys).
        is_block: whether this is block code (normal completion returns
            the block's value; ``^`` becomes a non-local return).
        stats: node-count statistics (sends, type tests, ...).
        compile_stats: compiler effort counters (see MethodCompiler).
        map_dependent: customization taint — False only when the compiler
            proved no decision consulted the receiver map, so the code is
            shareable across maps (defaults to True: unshareable).
    """

    __slots__ = (
        "start",
        "selector",
        "receiver_map",
        "config_name",
        "self_var",
        "arg_vars",
        "escaping",
        "is_block",
        "stats",
        "compile_stats",
        "map_dependent",
    )

    def __init__(
        self,
        start: StartNode,
        selector: str,
        receiver_map,
        config_name: str,
        self_var: str,
        arg_vars: tuple[str, ...],
        escaping: dict[str, str],
        is_block: bool,
        compile_stats: Optional[dict] = None,
        map_dependent: bool = True,
    ) -> None:
        self.start = start
        self.selector = selector
        self.receiver_map = receiver_map
        self.config_name = config_name
        self.self_var = self_var
        self.arg_vars = arg_vars
        self.escaping = escaping
        self.is_block = is_block
        self.stats = GraphStats(start)
        self.compile_stats = compile_stats or {}
        self.map_dependent = map_dependent

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<CompiledGraph {self.selector!r} for {self.receiver_map.name} "
            f"[{self.config_name}] {self.stats.total} nodes>"
        )
