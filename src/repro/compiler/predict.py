"""Type prediction tables (paper, section 2 and 3.2.2).

"Sometimes the name of the message is sufficient to predict the type of
its receiver" — the receiver of ``+`` is overwhelmingly a small integer,
the receiver of ``ifTrue:`` a boolean.  The compiler inserts a run-time
type test for the predicted map and compiles a fast (inlined) version on
the success branch and a dynamic send on the uncommon failure branch.

These tables also double as the ST-80 configuration's "special
selectors": the Deutsch–Schiffman system hardwired the same arithmetic
and control-flow selectors into special bytecodes.
"""

from __future__ import annotations

from typing import Optional

#: Selectors whose receiver is predicted to be a small integer.
INTEGER_SELECTORS = frozenset(
    {
        "+", "-", "*", "/", "%",
        "<", "<=", ">", ">=", "=", "!=",
        "min:", "max:", "succ", "pred", "abs", "negate",
        "to:Do:", "upTo:Do:", "to:By:Do:", "downTo:Do:", "timesRepeat:",
        "between:And:", "even", "odd",
    }
)

#: Selectors whose receiver is predicted to be a boolean.
BOOLEAN_SELECTORS = frozenset(
    {
        "ifTrue:", "ifFalse:",
        "ifTrue:False:", "ifFalse:True:",
        "and:", "or:", "not",
    }
)

#: Selectors whose receiver is predicted to be a vector.
VECTOR_SELECTORS = frozenset(
    {"at:", "at:Put:", "size", "do:", "atAllPut:", "first", "last"}
)

#: The selectors the ST-80 baseline treats specially, and nothing else:
#: the control-flow macros the real ST-80 bytecode compiler inlines for
#: literal-block arguments, plus the Deutsch–Schiffman "special selector"
#: bytecodes for small-integer arithmetic and comparison.
ST80_MACRO_SELECTORS = frozenset(
    {
        "ifTrue:", "ifFalse:", "ifTrue:False:", "ifFalse:True:",
        "and:", "or:", "not",
        "whileTrue:", "whileFalse:", "whileTrue", "whileFalse",
        "to:Do:", "upTo:Do:", "to:By:Do:", "timesRepeat:", "downTo:Do:",
        "+", "-", "*", "/", "%",
        "<", "<=", ">", ">=", "=", "!=",
    }
)


def predicted_kind(selector: str) -> Optional[str]:
    """The predicted receiver kind for ``selector``: 'int', 'boolean',
    'vector', or None."""
    if selector in INTEGER_SELECTORS:
        return "int"
    if selector in BOOLEAN_SELECTORS:
        return "boolean"
    if selector in VECTOR_SELECTORS:
        return "vector"
    return None
