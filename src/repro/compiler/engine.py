"""The compiler core: type analysis interleaved with CFG construction.

This is the paper's new intermediate phase between front-end and
back-end.  It walks the AST of a (customized) method, *simultaneously*

* building the control-flow graph,
* propagating a type binding table along every path (section 3),
* performing compile-time lookup and message inlining (3.2.2),
* inlining and constant-folding primitives with range analysis (3.2.3),
* inserting predicted type tests with splitting (2, 3.2.2),
* keeping compilation fronts apart across merges — extended message
  splitting (4),
* and iterating loop bodies to a type fixed point, possibly splitting
  loop heads and tails into multiple versions (5) — see
  :mod:`repro.compiler.loops`.

The compiler is organized around :class:`~repro.compiler.fronts.Front`
objects — open CFG edges with their own binding tables.  Every
``compile_*`` method takes a list of fronts and returns the surviving
fronts; expression results are written to one fresh temporary shared by
all fronts, so control flow and data flow stay aligned.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..lang.ast_nodes import (
    BlockNode,
    CodeBody,
    LiteralNode,
    MethodNode,
    Node,
    ObjectLiteralNode,
    ReturnNode as AstReturnNode,
    SelfNode,
    SendNode as AstSendNode,
)
from ..objects.errors import AmbiguousLookup, CompilerError
from ..obs.trace import NULL_TRACER
from ..robustness import faults
from ..objects.maps import ASSIGNMENT, CONSTANT, DATA
from ..objects.model import SelfMethod, block_value_selector
from ..ir.nodes import (
    ConstNode,
    ErrorNode,
    LoadSlotNode,
    MakeBlockNode,
    MoveNode,
    ReturnNode,
    NlrReturnNode,
    SendNode,
    StartNode,
    StoreSlotNode,
    TypeTestNode,
    EnvLoadNode,
    EnvStoreNode,
    IRNode,
)
from ..ir import graph as irgraph
from ..types.lattice import (
    UNKNOWN,
    MapType,
    SelfType,
    ValueType,
    as_map,
    contains,
    disjoint,
    mentions_map,
    type_of_constant,
)
from ..types.ops import exclude_map, refine_to_map
from ..world.universe import Universe
from .clookup import lookup_in_map
from .config import CompilerConfig
from .fronts import Front, regroup
from .loops import LoopCompilationMixin
from .predict import ST80_MACRO_SELECTORS, predicted_kind
from .prims import PrimitiveExpansionMixin
from .result import BlockTemplate, CompiledGraph
from .scopes import BlockClosure, InlineScope, ast_weight, block_has_nlr


class BudgetExhausted(Exception):
    """Internal: the per-method node budget ran out; the driver retries
    with a conservative configuration."""


class UnroutableReturn(Exception):
    """Internal: a block containing ``^`` is about to be materialized
    while its home method is inlined — at run time that return would
    unwind the whole physical frame instead of just the (inlined) home
    activation.  Carries the home method's inline key; the driver
    retries the same configuration with that method excluded from
    inlining, which makes the block's home a real frame and the return
    routable again."""

    def __init__(self, method_key) -> None:
        super().__init__("a ^-block escapes its inlined home method")
        self.method_key = method_key


#: the conservative configuration every degradation path shares: the
#: BudgetExhausted retry here and the pessimistic tier in
#: :mod:`repro.robustness.tiers` must compile identically.
PESSIMISTIC_FALLBACK = dict(
    extended_splitting=False,
    local_splitting=False,
    multi_version_loops=False,
    iterative_loops=False,
    max_fronts=1,
)


def compile_once(
    universe: Universe,
    config: CompilerConfig,
    code: CodeBody,
    receiver_map,
    selector: str = "",
    is_block: bool = False,
    block_template: Optional[BlockTemplate] = None,
    annotations=None,
    watchdog=None,
    tracer=None,
    fanout=None,
    pic_depth: int = 4,
) -> CompiledGraph:
    """One compilation attempt under exactly ``config`` — no fallback.

    The tiered pipeline calls this so it can observe (and log) every
    failure, including :class:`BudgetExhausted`, itself.  Internal
    :class:`UnroutableReturn` restarts under the *same* configuration
    with the offending method excluded from inlining count as part of
    this one attempt: they change which sends inline, never the
    strategy.
    """
    no_inline: set = set()
    while True:
        compiler = MethodCompiler(
            universe, config, code, receiver_map, selector, is_block,
            block_template, annotations, watchdog=watchdog, tracer=tracer,
            no_inline_keys=frozenset(no_inline),
            fanout=fanout, pic_depth=pic_depth,
        )
        try:
            return compiler.compile()
        except UnroutableReturn as unroutable:
            if unroutable.method_key in no_inline or len(no_inline) >= 8:
                # Either the exclusion did not take (a bug) or the
                # graph is adversarial; give up on this attempt rather
                # than loop — the caller's containment ladder decides
                # what happens next.
                raise CompilerError(
                    "could not route a non-local return around method "
                    "inlining"
                ) from None
            no_inline.add(unroutable.method_key)


def compile_code(
    universe: Universe,
    config: CompilerConfig,
    code: CodeBody,
    receiver_map,
    selector: str = "",
    is_block: bool = False,
    block_template: Optional[BlockTemplate] = None,
    annotations=None,
    watchdog=None,
    tracer=None,
    fanout=None,
    pic_depth: int = 4,
) -> CompiledGraph:
    """Compile ``code`` customized for ``receiver_map`` under ``config``.

    On node-budget exhaustion (runaway splitting in adversarial input)
    the method is transparently recompiled with splitting and iteration
    disabled — the pessimistic strategy always terminates.
    """
    try:
        return compile_once(
            universe, config, code, receiver_map, selector, is_block,
            block_template, annotations, watchdog, tracer,
            fanout, pic_depth,
        )
    except BudgetExhausted:
        return compile_once(
            universe, config.but(**PESSIMISTIC_FALLBACK), code, receiver_map,
            selector, is_block, block_template, annotations, watchdog, tracer,
            fanout, pic_depth,
        )


class MethodCompiler(PrimitiveExpansionMixin, LoopCompilationMixin):
    """One customized compilation of a method or block body."""

    def __init__(
        self,
        universe: Universe,
        config: CompilerConfig,
        code: CodeBody,
        receiver_map,
        selector: str = "",
        is_block: bool = False,
        block_template: Optional[BlockTemplate] = None,
        annotations=None,
        watchdog=None,
        tracer=None,
        no_inline_keys: frozenset = frozenset(),
        fanout=None,
        pic_depth: int = 4,
    ) -> None:
        self.universe = universe
        self.config = config
        self.code = code
        self.receiver_map = receiver_map
        self.selector = selector
        self.is_block = is_block
        self.block_template = block_template
        self.annotations = annotations
        self.watchdog = watchdog
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: observed receiver fan-out per selector (from the runtime's
        #: dispatch ladder), or None when the ladder is off.  A selector
        #: seen with more receiver maps than the PIC can hold is
        #: *megamorphic*: splitting and customization against it only
        #: multiply code copies the dispatch table already handles.
        self.fanout = fanout
        self.pic_depth = pic_depth
        self.refused_customization = (
            fanout is not None
            and not is_block
            and annotations is None
            and not config.static_types
            and bool(selector)
            and fanout.get(selector, 0) > pic_depth
        )

        self.start = StartNode()
        self._temp_counter = 0
        self._nodes_created = 1
        #: flat var name -> source name, for locals that must live in the
        #: frame's named environment (captured by materialized blocks)
        self.escaping: dict[str, str] = {}
        #: method scopes whose return joins are still open (for ^ routing
        #: and for discarding sinks of thrown-away loop iterations)
        self.active_method_scopes: list[InlineScope] = []
        #: temporaries of in-flight sends (receiver/arguments whose send
        #: has not finished compiling): inlined bodies prune statement
        #: temps, and these must survive that pruning
        self._pinned: list[str] = []
        #: tracing only: why the send being compiled fell through to a
        #: dynamic send (set where the decision is made, consumed by
        #: emit_dynamic_send; never read when tracing is disabled)
        self._dyn_reason: Optional[str] = None
        #: customization taint: set as soon as any compile-time decision
        #: consults the receiver map (compile-time lookup on it, a type
        #: that mentions it flowing into a send or a binding, static
        #: argument annotations).  When it stays False the finished code
        #: is receiver-map independent and the runtime may share it
        #: across maps (see vm/runtime.py).  Annotated compiles are
        #: map-dependent from the start: annotations key on the map.
        self.map_dependent = annotations is not None
        #: inline keys excluded after an UnroutableReturn restart: these
        #: methods hold a ^-block that would otherwise escape inlined
        self.no_inline_keys = no_inline_keys
        self.stats = {
            "inlined_sends": 0,
            "dynamic_sends": 0,
            "inlined_blocks": 0,
            "type_tests": 0,
            "type_tests_elided": 0,
            "overflow_checks_elided": 0,
            "bounds_checks_elided": 0,
            "constant_folds": 0,
            "loop_analysis_iterations": 0,
            "loop_versions": 0,
            # seeded with the restarts that got us here: the final graph
            # reports every hazard that was detected and routed around
            "nlr_unsafe_materializations": len(no_inline_keys),
        }
        if self.refused_customization:
            self._note_refusal(selector, "customization")

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------

    def protected_vars(self) -> frozenset:
        """Temps that must survive statement-boundary pruning: the self
        variables of every open inlined scope, plus the operands of
        sends still being compiled (an inlined callee's statement
        boundaries must not drop the caller's pending expression)."""
        return frozenset(s.self_var for s in self.active_method_scopes) | frozenset(
            self._pinned
        )

    def fresh_temp(self) -> str:
        self._temp_counter += 1
        return f"%t{self._temp_counter}"

    def bump(self, key: str, n: int = 1, **attrs) -> None:
        """Increment an effort/effect counter, mirrored into the trace.

        Every ``stats`` increment goes through here, so an enabled
        tracer sees one event per counted decision (carrying the *why*
        in ``attrs``) and the trace totals are, by construction, the
        same numbers ``compile_stats`` reports.  Disabled, this is one
        dict update and one branch.
        """
        self.stats[key] += n
        if self.tracer.enabled:
            self.tracer.event(key, n=n, **attrs)

    def _megamorphic(self, selector: str) -> bool:
        """Observed receiver fan-out for ``selector`` exceeds what a
        bounded PIC can absorb — the megamorphic dispatch table is the
        right tool, not more compiled copies."""
        return (
            self.fanout is not None
            and self.fanout.get(selector, 0) > self.pic_depth
        )

    def _note_refusal(self, selector: str, kind: str) -> None:
        # Not pre-seeded in ``stats``: the counter appears in
        # compile_stats only for compiles that actually refused, so
        # every existing stats-shape consumer is untouched.
        self.stats["split_refused_megamorphic"] = (
            self.stats.get("split_refused_megamorphic", 0) + 1
        )
        if self.tracer.enabled:
            self.tracer.event(
                "split_refused_megamorphic",
                n=1,
                selector=selector,
                kind=kind,
                fanout=self.fanout.get(selector, 0),
                pic_depth=self.pic_depth,
            )

    def count_node(self, node: IRNode) -> None:
        self._nodes_created += 1
        if self._nodes_created > self.config.node_budget:
            raise BudgetExhausted()
        if self.watchdog is not None and self._nodes_created & 255 == 0:
            self.watchdog.tick(256)

    def drop_dead(self, fronts: list) -> list:
        """Filter out dead fronts, sealing their open edges.

        A front whose binding became EMPTY is statically unreachable;
        its already-emitted nodes still need a terminator so the graph
        stays well-formed.
        """
        alive = []
        for front in fronts:
            if front.dead:
                self.count_node_unchecked_terminal(front)
            else:
                alive.append(front)
        return alive

    def count_node_unchecked_terminal(self, front: Front) -> None:
        node = ErrorNode("<unreachable>", "unreachableError")
        self._nodes_created += 1
        front.node.set_successor(front.port, node)
        front.node = node
        front.port = 0

    def emit(self, front: Front, node: IRNode) -> None:
        """Append a straight-line node along ``front``."""
        self.count_node(node)
        front.node.set_successor(front.port, node)
        front.node = node
        front.port = 0

    def _taint_if_mentions(self, t: SelfType) -> None:
        """Taint the compile when a consulted type mentions the receiver map."""
        if not self.map_dependent and mentions_map(t, self.receiver_map):
            self.map_dependent = True

    def emit_branch(self, front: Front, node: IRNode, uncommon_false: bool = True):
        """Append a two-way node; returns (true_front, false_front)."""
        # Belt and braces for the sharing taint: a run-time test against
        # the receiver map itself is map-dependent no matter how the map
        # got there.
        if (
            not self.map_dependent
            and node.__class__ is TypeTestNode
            and node.map is self.receiver_map
        ):
            self.map_dependent = True
        self.count_node(node)
        front.node.set_successor(front.port, node)
        false_front = front.split(node, 1, uncommon=front.uncommon or uncommon_false)
        front.node = node
        front.port = 0
        return front, false_front

    def use_value(self, front: Front, var: str) -> None:
        """Materialize ``var`` if it holds a pending block closure.

        Block literals are compiled lazily: no closure object is created
        until the value could escape to code the compiler cannot see
        (this is how fully-inlined control structures cost nothing at
        run time).
        """
        closure = front.get_closure(var)
        if closure is None or var in front.materialized:
            return
        if block_has_nlr(closure.block) and closure.scope.home is not self.outer_scope:
            # A ^ in this block targets an *inlined* method; once the
            # closure escapes to code we cannot see, that return cannot
            # be routed (it would unwind the whole physical frame).
            if self.config.forbid_unsafe_nlr:
                raise CompilerError(
                    "a block containing ^ escapes its inlined home method "
                    f"(block #{closure.block.block_id}); compile with a "
                    "larger inline budget or restructure the code"
                )
            home_key = closure.scope.home.method_key
            if home_key is not None and home_key not in self.no_inline_keys:
                # Restart this compile with the home method excluded
                # from inlining: its frame becomes real and the ^ is
                # routable again (see compile_once).
                raise UnroutableReturn(home_key)
            # Unreachable in practice (the restart removes the inlined
            # home); kept as the counted last resort so a routing gap
            # degrades to the documented hazard instead of crashing.
            self.bump(
                "nlr_unsafe_materializations",
                block=closure.block.block_id,
            )
        template = self.build_block_template(closure)
        node = MakeBlockNode(var, closure.block, self_var=closure.scope.home.self_var)
        node.template = template  # attached for the backend
        self.emit(front, node)
        front.materialized = front.materialized | {var}
        front.bind(var, MapType(self.universe.block_map(closure.block)))

    def build_block_template(self, closure: BlockClosure) -> BlockTemplate:
        """Resolve every free name of a block against its creation scope.

        Names that land on enclosing locals become environment accesses:
        the local is marked *escaping* and assigned a stable env key
        (source name + identity of the defining code body, so the block
        code — compiled separately, later — finds the same key).  Names
        that resolve nowhere are implicit-self sends (``None`` in the
        template).
        """
        resolutions: dict[str, Optional[str]] = {}
        for name in _free_names(closure.block):
            resolved = closure.scope.resolve_local(name)
            if resolved is not None:
                defining_scope, flat = resolved
                # The flat name is the env key: unique per inlined scope
                # instance, so the same method inlined twice keeps its
                # two variables apart.  The closure carries the mapping.
                resolutions[name] = flat
                self.escaping[flat] = flat
            elif self.block_template is not None and (
                self.block_template.resolution(name) is not None
            ):
                # Compiling block code that creates a nested block: the
                # name comes through our own closure's environment map,
                # resolved at closure-creation time ('*' marker).
                resolutions[name] = "*" + name
            else:
                resolutions[name] = None
        return BlockTemplate(closure.block, resolutions)

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def compile(self) -> CompiledGraph:
        scope = InlineScope(
            self.code,
            "block" if self.is_block else "method",
            self_var="%self",
            method_key=id(self.code),
        )
        self.outer_scope = scope
        self.active_method_scopes.append(scope.home)

        front = Front(self.start, 0, {}, {})
        front.materialized = frozenset()
        front.bind("%self", self._initial_self_type())
        arg_vars = []
        for index, formal in enumerate(self.code.argument_names):
            flat = scope.rename(formal)
            arg_vars.append(flat)
            front.bind(flat, self._initial_arg_type(index))
        self._init_locals(scope, [front])

        fronts, result_var = self.compile_statements(
            scope, list(self.code.statements), [front]
        )
        # Normal completion.
        for f in fronts:
            self.use_value(f, result_var)
            self.emit(f, ReturnNode(result_var))
        # Explicit ^ returns.
        for f, var in scope.return_sinks:
            self.use_value(f, var)
            if self.is_block:
                self.emit(f, NlrReturnNode(var))
            else:
                self.emit(f, ReturnNode(var))
        if faults.ENABLED and faults.hit(faults.SITE_COMPILER_ENGINE):
            # Corrupt mode: a "wild write" into the finished graph.  The
            # validator below must catch it — never ship a broken graph.
            self.start.successors[0] = None
        irgraph.validate(self.start)
        return CompiledGraph(
            self.start,
            self.selector,
            self.receiver_map,
            self.config.name,
            "%self",
            tuple(arg_vars),
            dict(self.escaping),
            self.is_block,
            compile_stats=dict(self.stats),
            map_dependent=self.map_dependent,
        )

    def _initial_self_type(self) -> SelfType:
        if self.refused_customization:
            # Megamorphic selector: compile one receiver-map-independent
            # body (self stays UNKNOWN, ``map_dependent`` stays False so
            # the runtime shares a single canonical copy) instead of one
            # customized copy per receiver class.
            return UNKNOWN
        if self.config.customize or self.config.static_types:
            return self._map_or_vector_type(self.receiver_map)
        return UNKNOWN

    def _map_or_vector_type(self, map) -> SelfType:
        if map.kind == "vector":
            from ..types.lattice import VectorType

            return VectorType(map, None)
        return MapType(map)

    def _initial_arg_type(self, index: int) -> SelfType:
        if self.annotations is not None and not self.is_block:
            annotated = self.annotations.argument_type(
                self.receiver_map, self.selector, index, self.universe
            )
            if annotated is not None:
                return annotated
        return UNKNOWN

    def _init_locals(self, scope: InlineScope, fronts: list[Front]) -> None:
        for name in scope.code.local_names:
            flat = scope.rename(name)
            init = scope.code.local_inits.get(name)
            value = self._constant_init_value(init)
            for front in fronts:
                self.emit(front, ConstNode(flat, value))
                front.bind(flat, type_of_constant(value, self.universe))
                front.bind_closure(flat, None)

    def _constant_init_value(self, init: Optional[Node]):
        universe = self.universe
        if init is None:
            return universe.nil_object
        if isinstance(init, LiteralNode):
            if type(init.value) is int:
                from ..objects.model import normalize_int

                return normalize_int(init.value)
            return init.value
        if isinstance(init, AstSendNode) and init.receiver is None and not init.arguments:
            return {
                "nil": universe.nil_object,
                "true": universe.true_object,
                "false": universe.false_object,
            }[init.selector]
        raise CompilerError(f"non-constant local initializer {init!r}")

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------

    def compile_statements(
        self, scope: InlineScope, statements: list[Node], fronts: list[Front]
    ) -> tuple[list[Front], str]:
        if not fronts:
            return [], self.fresh_temp()
        if not statements:
            # An empty body returns self.
            return fronts, scope.self_var
        for index, statement in enumerate(statements):
            last = index == len(statements) - 1
            if isinstance(statement, AstReturnNode):
                fronts, var = self.compile_expr(statement.expression, scope, fronts)
                for front in fronts:
                    scope.home.return_sinks.append((front, var))
                return [], self.fresh_temp()
            fronts, var = self.compile_expr(statement, scope, fronts)
            if not fronts:
                return [], var
            protected = self.protected_vars()
            for front in fronts:
                front.prune_temps(keep=var, protected=protected)
            # The last statement's value flows to a consumer: local
            # splitting (old SELF) keeps its fronts apart that far.
            fronts = regroup(self, fronts, at_consumer=last)
            if last:
                return fronts, var
        raise CompilerError("unreachable")  # pragma: no cover

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------

    def compile_expr(
        self, node: Node, scope: InlineScope, fronts: list[Front]
    ) -> tuple[list[Front], str]:
        if not fronts:
            return [], self.fresh_temp()
        t = type(node)
        if t is LiteralNode:
            var = self.fresh_temp()
            value = node.value
            if type(value) is int:
                from ..objects.model import normalize_int

                value = normalize_int(value)
            for front in fronts:
                self.emit(front, ConstNode(var, value))
                front.bind(var, type_of_constant(value, self.universe))
            return fronts, var
        if t is SelfNode:
            return fronts, scope.self_var
        if t is BlockNode:
            var = self.fresh_temp()
            closure = BlockClosure(node, scope)
            for front in fronts:
                front.bind(var, MapType(self.universe.block_map(node)))
                front.bind_closure(var, closure)
                front.materialized = front.materialized - {var}
            return fronts, var
        if t is AstSendNode:
            return self._compile_send_node(node, scope, fronts)
        if t is ObjectLiteralNode:
            return self._compile_object_literal(node, scope, fronts)
        raise CompilerError(f"cannot compile {node!r}")

    def _compile_send_node(
        self, node: AstSendNode, scope: InlineScope, fronts: list[Front]
    ) -> tuple[list[Front], str]:
        if node.receiver is None:
            return self._compile_implicit_send(node, scope, fronts)
        fronts, recv_var = self.compile_expr(node.receiver, scope, fronts)
        depth = len(self._pinned)
        self._pinned.append(recv_var)
        try:
            arg_vars: list[str] = []
            for argument in node.arguments:
                fronts, arg_var = self.compile_expr(argument, scope, fronts)
                arg_vars.append(arg_var)
                self._pinned.append(arg_var)
            return self.compile_send(node.selector, recv_var, arg_vars, scope, fronts)
        finally:
            del self._pinned[depth:]

    def _compile_implicit_send(
        self, node: AstSendNode, scope: InlineScope, fronts: list[Front]
    ) -> tuple[list[Front], str]:
        selector = node.selector
        # Local/argument read.
        if not node.arguments:
            resolved = scope.resolve_local(selector)
            if resolved is not None:
                _, flat = resolved
                var = self.fresh_temp()
                for front in fronts:
                    self._emit_local_read(front, flat, var)
                return fronts, var
            if self.block_template is not None:
                key = self.block_template.resolution(selector)
                if key is not None:
                    var = self.fresh_temp()
                    for front in fronts:
                        self.emit(front, EnvLoadNode(var, 0, selector))
                        front.bind(var, UNKNOWN)
                    return fronts, var
        # Local assignment:  name: expr
        elif (
            len(node.arguments) == 1
            and selector.endswith(":")
            and ":" not in selector[:-1]
        ):
            base = selector[:-1]
            resolved = scope.resolve_local(base)
            if resolved is not None:
                _, flat = resolved
                fronts, value_var = self.compile_expr(node.arguments[0], scope, fronts)
                for front in fronts:
                    self._emit_local_write(front, flat, value_var)
                return fronts, scope.self_var
            if self.block_template is not None:
                key = self.block_template.resolution(base)
                if key is not None:
                    fronts, value_var = self.compile_expr(node.arguments[0], scope, fronts)
                    for front in fronts:
                        self.use_value(front, value_var)
                        self.emit(front, EnvStoreNode(0, base, value_var))
                    return fronts, scope.self_var
        # A real send to self.
        depth = len(self._pinned)
        try:
            arg_vars: list[str] = []
            for argument in node.arguments:
                fronts, arg_var = self.compile_expr(argument, scope, fronts)
                arg_vars.append(arg_var)
                self._pinned.append(arg_var)
            return self.compile_send(selector, scope.self_var, arg_vars, scope, fronts)
        finally:
            del self._pinned[depth:]

    def _emit_local_read(self, front: Front, flat: str, var: str) -> None:
        self.emit(front, MoveNode(var, flat))
        if self.config.type_analysis or flat.startswith("%"):
            front.copy_binding(var, flat)
            if flat in front.materialized:
                front.materialized = front.materialized | {var}
        else:
            # Old-SELF mode: locals are of unknown type (section 5), but
            # closure tracking is what makes control structures inline.
            front.bind(var, UNKNOWN)
            front.bind_closure(var, front.get_closure(flat))
            if flat in front.materialized:
                front.materialized = front.materialized | {var}

    def _emit_local_write(self, front: Front, flat: str, value_var: str) -> None:
        # Writing a pending closure into a local keeps it pending — the
        # common `blk: [...]` pattern stays inlinable.
        self.emit(front, MoveNode(flat, value_var))
        if self.config.type_analysis:
            front.copy_binding(flat, value_var)
            # `x: self` smuggles the receiver-map type into a named
            # local; later decisions reading it must count as
            # map-dependent even if no send ever consults it directly.
            self._taint_if_mentions(front.types[flat])
        else:
            front.bind(flat, UNKNOWN)
            front.bind_closure(flat, front.get_closure(value_var))
        if value_var in front.materialized:
            front.materialized = front.materialized | {flat}
        else:
            front.materialized = front.materialized - {flat}

    def _compile_object_literal(
        self, node: ObjectLiteralNode, scope: InlineScope, fronts: list[Front]
    ) -> tuple[list[Front], str]:
        raise CompilerError(
            "object literals inside compiled methods are not supported; "
            "define a prototype with add_slots and clone it instead"
        )

    # ------------------------------------------------------------------
    # Sends
    # ------------------------------------------------------------------

    def compile_send(
        self,
        selector: str,
        recv_var: str,
        arg_vars: Sequence[str],
        scope: InlineScope,
        fronts: list[Front],
    ) -> tuple[list[Front], str]:
        result_var = self.fresh_temp()
        out: list[Front] = []
        for front in fronts:
            out.extend(
                self.send_one(front, selector, recv_var, list(arg_vars), scope, result_var)
            )
        out = self.drop_dead(out)
        # Mid-expression front cap: deeply nested sends would otherwise
        # multiply fronts exponentially (every predicted test forks) —
        # the unbounded version of the compile-time explosion the paper
        # reports.  Over the cap, merge by class signature, then flat.
        limit = max(2, self.config.max_fronts * 3)
        if len(out) > limit:
            from .fronts import merge_group

            if self.config.extended_splitting:
                out = regroup(self, out, at_consumer=True)
            if len(out) > limit:
                common = [f for f in out if not f.uncommon]
                uncommon = [f for f in out if f.uncommon]
                merged = []
                if common:
                    merged.append(merge_group(self, common))
                if uncommon:
                    merged.append(merge_group(self, uncommon))
                out = merged
        return out, result_var

    def send_one(
        self,
        front: Front,
        selector: str,
        recv_var: str,
        arg_vars: list[str],
        scope: InlineScope,
        result_var: str,
    ) -> list[Front]:
        if self.tracer.enabled:
            self._dyn_reason = None
        if not self.map_dependent:
            # Every compile-time decision about this send keys off the
            # operand types; if none of them mention the receiver map,
            # the decisions are identical for every receiver map.
            rmap = self.receiver_map
            if mentions_map(front.get_type(recv_var), rmap):
                self.map_dependent = True
            else:
                for arg_var in arg_vars:
                    if mentions_map(front.get_type(arg_var), rmap):
                        self.map_dependent = True
                        break
        if selector.startswith("_"):
            return self.expand_primitive(
                front, selector, recv_var, arg_vars, scope, result_var
            )

        closure = front.get_closure(recv_var)
        if closure is not None:
            handled = self._try_block_intrinsics(
                front, selector, closure, recv_var, arg_vars, scope, result_var
            )
            if handled is not None:
                return handled

        receiver_type = front.get_type(recv_var)
        receiver_map = as_map(receiver_type, self.universe)
        if receiver_map is not None:
            handled = self.dispatch_known(
                front, receiver_map, selector, recv_var, arg_vars, scope, result_var
            )
            if handled is not None:
                return handled

        if self.config.static_types:
            handled = self._static_union_dispatch(
                front, selector, recv_var, arg_vars, scope, result_var, receiver_type
            )
            if handled is not None:
                return handled

        if self._megamorphic(selector):
            # Fan-out already blew past the PIC: splitting or predicting
            # this send would fork the compiled graph per receiver class
            # while the dispatch table serves them all at flat cost.
            self._note_refusal(selector, "split")
            return self.emit_dynamic_send(
                front, selector, recv_var, arg_vars, result_var,
                reason="megamorphic receiver (fan-out beyond PIC depth)",
            )

        if self.config.type_prediction:
            handled = self.try_prediction(
                front, selector, recv_var, arg_vars, scope, result_var, receiver_type
            )
            if handled is not None:
                return handled

        return self.emit_dynamic_send(
            front, selector, recv_var, arg_vars, result_var
        )

    # -- block intrinsics -------------------------------------------------------

    def _try_block_intrinsics(
        self,
        front: Front,
        selector: str,
        closure: BlockClosure,
        recv_var: str,
        arg_vars: list[str],
        scope: InlineScope,
        result_var: str,
    ) -> Optional[list[Front]]:
        if selector == block_value_selector(closure.arity) and len(arg_vars) == closure.arity:
            return self.inline_block(front, closure, arg_vars, scope, result_var)
        if selector in ("whileTrue:", "whileFalse:") and len(arg_vars) == 1:
            body_closure = front.get_closure(arg_vars[0])
            if (
                body_closure is not None
                and closure.arity == 0
                and body_closure.arity == 0
            ):
                return self.compile_loop_intrinsic(
                    front, selector, closure, body_closure, scope, result_var
                )
        return None

    def inline_block(
        self,
        front: Front,
        closure: BlockClosure,
        arg_vars: list[str],
        scope: InlineScope,
        result_var: str,
    ) -> Optional[list[Front]]:
        """Inline a block body at a ``value`` send (or return None)."""
        if closure.scope.home not in self.active_method_scopes:
            # The block's home method finished inlining; a ^ inside could
            # not be routed.  Fall back to a runtime invocation.
            if block_has_nlr(closure.block):
                return None
        self.bump("inlined_blocks", block=closure.block.block_id)
        block_scope = InlineScope(
            closure.block,
            "block",
            self_var=closure.scope.home.self_var,
            lexical_parent=closure.scope,
            caller=scope,
        )
        for formal, arg_var in zip(closure.block.argument_names, arg_vars):
            flat = block_scope.rename(formal)
            self.emit(front, MoveNode(flat, arg_var))
            front.copy_binding(flat, arg_var)
            if arg_var in front.materialized:
                front.materialized = front.materialized | {flat}
        self._init_locals(block_scope, [front])
        fronts, var = self.compile_statements(
            block_scope, list(closure.block.statements), [front]
        )
        for f in fronts:
            self.emit(f, MoveNode(result_var, var))
            f.copy_binding(result_var, var)
            self._taint_if_mentions(f.types[result_var])
            if var in f.materialized:
                f.materialized = f.materialized | {result_var}
        return fronts

    # -- known-receiver dispatch ---------------------------------------------------

    def dispatch_known(
        self,
        front: Front,
        receiver_map,
        selector: str,
        recv_var: str,
        arg_vars: list[str],
        scope: InlineScope,
        result_var: str,
    ) -> Optional[list[Front]]:
        """Compile-time lookup + slot dispatch (paper, section 3.2.2)."""
        if receiver_map is self.receiver_map:
            # Compile-time lookup in the customized map: the decision
            # (which slot, which method body) is a property of the map.
            self.map_dependent = True
        try:
            found = lookup_in_map(self.universe, receiver_map, selector)
        except AmbiguousLookup:
            if self.tracer.enabled:
                self._dyn_reason = "ambiguous lookup (multiple parents define the slot)"
            return None
        if found is None:
            # Blocks answer the value family natively.
            if receiver_map.kind == "block" and selector.startswith("value"):
                if self.tracer.enabled:
                    self._dyn_reason = "block value send left to the runtime"
                return None
            if self.tracer.enabled:
                self._dyn_reason = "no matching slot found at compile time"
            return None
        slot = found.slot
        if slot.kind == CONSTANT:
            value = slot.value
            if isinstance(value, SelfMethod):
                if self.may_inline_method(value, selector, scope, front):
                    return self.inline_method(
                        front, value, selector, recv_var, arg_vars, scope, result_var
                    )
                return None  # compiled as a (monomorphic) send
            self.emit(front, ConstNode(result_var, value))
            front.bind(result_var, type_of_constant(value, self.universe))
            front.bind_closure(result_var, None)
            self.bump("inlined_sends", selector=selector, kind="constant-slot")
            return [front]
        if slot.kind == DATA:
            holder_var = recv_var
            if not found.in_receiver:
                holder_var = self.fresh_temp()
                self.emit(front, ConstNode(holder_var, found.holder))
            self.emit(
                front,
                LoadSlotNode(result_var, holder_var, slot.offset, slot.name),
            )
            front.bind(result_var, self._slot_type(receiver_map, slot.name))
            front.bind_closure(result_var, None)
            self.bump("inlined_sends", selector=selector, kind="data-slot")
            return [front]
        if slot.kind == ASSIGNMENT:
            value_var = arg_vars[0]
            self.use_value(front, value_var)
            holder_var = recv_var
            if not found.in_receiver:
                holder_var = self.fresh_temp()
                self.emit(front, ConstNode(holder_var, found.holder))
            self.emit(
                front,
                StoreSlotNode(holder_var, slot.offset, value_var, slot.name),
            )
            # Assignment answers the receiver.
            self.emit(front, MoveNode(result_var, recv_var))
            front.copy_binding(result_var, recv_var)
            self.bump("inlined_sends", selector=selector, kind="assignment-slot")
            return [front]
        return None

    def _slot_type(self, receiver_map, slot_name: str) -> SelfType:
        """Data slot loads are unknown — unless static annotations apply."""
        if self.annotations is not None:
            annotated = self.annotations.slot_type(receiver_map, slot_name, self.universe)
            if annotated is not None:
                return annotated
        return UNKNOWN

    #: methods at most this heavy inline regardless of depth — the
    #: boolean/accessor protocol (ifTrue:False:, isNil, not, value)
    #: must never fall back to a dynamic send just because the inlining
    #: got deep: that would materialize the arm blocks, and a ^ inside
    #: one could not be routed to its (inlined) home method.
    TINY_METHOD_WEIGHT = 12

    def may_inline_method(
        self, method: SelfMethod, selector: str, scope: InlineScope, front: Front
    ) -> bool:
        config = self.config
        if not config.inline_methods:
            if not (config.st80_macros and selector in ST80_MACRO_SELECTORS):
                return self._refuse_inline(selector, "method inlining disabled")
        if id(method.code) in self.no_inline_keys:
            return self._refuse_inline(
                selector, "a ^-block inside would escape its inlined home"
            )
        weight = ast_weight(method.code)
        if scope.depth >= config.inline_depth_limit and weight > self.TINY_METHOD_WEIGHT:
            return self._refuse_inline(
                selector,
                f"inline depth limit ({config.inline_depth_limit}) reached",
                weight=weight,
                depth=scope.depth,
            )
        if weight > config.inline_size_limit:
            return self._refuse_inline(
                selector,
                f"method too heavy ({weight} > size limit {config.inline_size_limit})",
                weight=weight,
            )
        occurrences = scope.occurrences_on_stack(id(method.code))
        if weight <= self.TINY_METHOD_WEIGHT:
            # Tiny structural methods (ifTrue:False:, isNil, not, ...)
            # legitimately nest; only true runaway recursion is cut off.
            if occurrences < 4:
                return True
            return self._refuse_inline(
                selector, "runaway recursion cut off", occurrences=occurrences
            )
        if occurrences == 0:
            return True
        return self._refuse_inline(
            selector, "recursive send (already on the inline stack)"
        )

    def _refuse_inline(self, selector: str, reason: str, **attrs) -> bool:
        """Record why a method was not inlined; always returns False."""
        if self.tracer.enabled:
            self.tracer.event("inline-refused", selector=selector, reason=reason, **attrs)
            self._dyn_reason = f"inlining refused: {reason}"
        return False

    def inline_method(
        self,
        front: Front,
        method: SelfMethod,
        selector: str,
        recv_var: str,
        arg_vars: list[str],
        scope: InlineScope,
        result_var: str,
    ) -> list[Front]:
        """Message inlining: replace the send with the method body."""
        self.bump("inlined_sends", selector=selector, kind="inlined-method")
        method_scope = InlineScope(
            method.code,
            "method",
            self_var=recv_var,
            lexical_parent=None,
            caller=scope,
            method_key=id(method.code),
        )
        self.active_method_scopes.append(method_scope)
        try:
            for formal, arg_var in zip(method.code.argument_names, arg_vars):
                flat = method_scope.rename(formal)
                self.emit(front, MoveNode(flat, arg_var))
                front.copy_binding(flat, arg_var)
                if arg_var in front.materialized:
                    front.materialized = front.materialized | {flat}
            self._init_locals(method_scope, [front])
            fronts, var = self.compile_statements(
                method_scope, list(method.code.statements), [front]
            )
            joined: list[Front] = []
            for f in fronts:
                self.emit(f, MoveNode(result_var, var))
                f.copy_binding(result_var, var)
                self._taint_if_mentions(f.types[result_var])
                if var in f.materialized:
                    f.materialized = f.materialized | {result_var}
                joined.append(f)
            for f, sink_var in method_scope.return_sinks:
                self.emit(f, MoveNode(result_var, sink_var))
                f.copy_binding(result_var, sink_var)
                self._taint_if_mentions(f.types[result_var])
                if sink_var in f.materialized:
                    f.materialized = f.materialized | {result_var}
                joined.append(f)
            return regroup(self, joined)
        finally:
            self.active_method_scopes.remove(method_scope)

    def _static_union_dispatch(
        self,
        front: Front,
        selector: str,
        recv_var: str,
        arg_vars: list[str],
        scope: InlineScope,
        result_var: str,
        receiver_type: SelfType,
    ) -> Optional[list[Front]]:
        """Static-mode dispatch over a small declared union.

        A C programmer writes ``if (p != NULL)`` and the compiler knows
        the type on both sides.  Our equivalent: a declared union of a
        few maps dispatches with map tests for all but the last
        constituent, which is *assumed* (no residual dynamic send).
        """
        from ..types.lattice import MergeType, UnionType

        if isinstance(receiver_type, UnionType):
            members = list(receiver_type.members)
        elif isinstance(receiver_type, MergeType):
            members = list(receiver_type.constituents)
        else:
            return None
        if not (2 <= len(members) <= 4):
            return None
        universe = self.universe
        refined = []
        for member in members:
            member_map = as_map(member, universe)
            if member_map is None:
                return None
            refined.append((member, member_map))
        # Put nil-like constituents first (they test cheapest; order is
        # deterministic either way).
        refined.sort(key=lambda pair: (pair[1].kind != "nil", pair[1].map_id))
        out: list[Front] = []
        current = front
        for index, (member, member_map) in enumerate(refined):
            if index == len(refined) - 1:
                current.refine(recv_var, member)
                out += self.send_one(
                    current, selector, recv_var, arg_vars, scope, result_var
                )
            else:
                self.use_value(current, recv_var)
                self.bump("type_tests", selector=selector, why="static union dispatch")
                yes, current = self.emit_branch(
                    current,
                    TypeTestNode(recv_var, member_map),
                    uncommon_false=False,
                )
                yes.refine(recv_var, member)
                out += self.send_one(
                    yes, selector, recv_var, arg_vars, scope, result_var
                )
        return self.drop_dead(out)

    # -- type prediction -----------------------------------------------------------

    def try_prediction(
        self,
        front: Front,
        selector: str,
        recv_var: str,
        arg_vars: list[str],
        scope: InlineScope,
        result_var: str,
        receiver_type: SelfType,
    ) -> Optional[list[Front]]:
        kind = predicted_kind(selector)
        if kind is None:
            return None
        universe = self.universe
        if as_map(receiver_type, universe) is not None:
            # The map is already known; dispatch_known had its chance —
            # a predicted test could not add information (and would
            # recurse forever).
            return None
        if kind == "boolean":
            return self._predict_boolean(
                front, selector, recv_var, arg_vars, scope, result_var, receiver_type
            )
        if kind == "int":
            predicted, wk_attr = universe.smallint_map, "smallint_map"
        else:
            predicted, wk_attr = universe.vector_map, "vector_map"
        tracker = universe.deps.active
        if tracker is not None:
            # The emitted test bakes in this well-known map's identity.
            tracker.well_known(wk_attr, predicted)
        if disjoint(receiver_type, MapType(predicted)):
            return None
        if self.config.static_types:
            # Trusted prediction: assume the declared type, no test —
            # the compile-time equivalent of a C type declaration.
            self.bump(
                "type_tests_elided",
                selector=selector,
                why="trusted static type prediction",
            )
            front.refine(recv_var, refine_to_map(receiver_type, predicted, universe))
            return self.send_one(front, selector, recv_var, arg_vars, scope, result_var)
        self.use_value(front, recv_var)
        self.bump("type_tests", selector=selector, why=f"predicted {kind} receiver")
        yes, no = self.emit_branch(front, TypeTestNode(recv_var, predicted))
        yes.refine(recv_var, refine_to_map(receiver_type, predicted, universe))
        no.refine(recv_var, exclude_map(receiver_type, predicted, universe))
        success = self.send_one(yes, selector, recv_var, arg_vars, scope, result_var)
        failure = self.emit_dynamic_send(
            no,
            selector,
            recv_var,
            arg_vars,
            result_var,
            reason="receiver failed the predicted type test",
        )
        return self.drop_dead(success + failure)

    def _predict_boolean(
        self,
        front: Front,
        selector: str,
        recv_var: str,
        arg_vars: list[str],
        scope: InlineScope,
        result_var: str,
        receiver_type: SelfType,
    ) -> Optional[list[Front]]:
        universe = self.universe
        true_map = universe.true_map
        false_map = universe.false_map
        tracker = universe.deps.active
        if tracker is not None:
            tracker.well_known("true_map", true_map)
            tracker.well_known("false_map", false_map)
        if disjoint(receiver_type, MapType(true_map)) and disjoint(
            receiver_type, MapType(false_map)
        ):
            return None
        if self.config.static_types:
            # A C conditional: one flag test; the other branch is simply
            # assumed to be the other boolean.
            self.use_value(front, recv_var)
            self.bump("type_tests", selector=selector, why="boolean flag test (static)")
            is_true, is_false = self.emit_branch(
                front, TypeTestNode(recv_var, true_map), uncommon_false=False
            )
            is_true.refine(recv_var, ValueType(universe.true_object, true_map))
            is_false.refine(recv_var, ValueType(universe.false_object, false_map))
            out = self.send_one(is_true, selector, recv_var, arg_vars, scope, result_var)
            out += self.send_one(is_false, selector, recv_var, arg_vars, scope, result_var)
            return self.drop_dead(out)
        self.use_value(front, recv_var)
        self.bump(
            "type_tests", n=2, selector=selector, why="boolean protocol true/false tests"
        )
        is_true, not_true = self.emit_branch(
            front, TypeTestNode(recv_var, true_map), uncommon_false=False
        )
        is_true.refine(recv_var, ValueType(universe.true_object, true_map))
        is_false, neither = self.emit_branch(not_true, TypeTestNode(recv_var, false_map))
        is_false.refine(recv_var, ValueType(universe.false_object, false_map))
        out = self.send_one(is_true, selector, recv_var, arg_vars, scope, result_var)
        out += self.send_one(is_false, selector, recv_var, arg_vars, scope, result_var)
        # A boolean-protocol message to a non-boolean: ST-80's
        # mustBeBoolean; our world defines these selectors nowhere else,
        # so this is the messageNotUnderstood path compiled as an error.
        self.emit(neither, ErrorNode(selector, "mustBeBooleanError"))
        return self.drop_dead(out)

    # -- dynamic sends ----------------------------------------------------------------

    def emit_dynamic_send(
        self,
        front: Front,
        selector: str,
        recv_var: str,
        arg_vars: list[str],
        result_var: str,
        reason: Optional[str] = None,
    ) -> list[Front]:
        if self.tracer.enabled:
            reason = reason or self._dyn_reason or "receiver type unknown at compile time"
            self._dyn_reason = None
        self.bump("dynamic_sends", selector=selector, reason=reason)
        self.use_value(front, recv_var)
        for arg_var in arg_vars:
            self.use_value(front, arg_var)
        self.emit(front, SendNode(result_var, selector, recv_var, arg_vars))
        front.bind(result_var, UNKNOWN)
        front.bind_closure(result_var, None)
        self.invalidate_escaping(front)
        return [front]

    def invalidate_escaping(self, front: Front) -> None:
        """A call we cannot see may run a materialized block, which may
        assign any escaping local (the paper's "up-level assignment"
        source of unknown types)."""
        for flat in self.escaping:
            if flat in front.types:
                front.bind(flat, UNKNOWN)
                front.bind_closure(flat, None)


def _free_names(block: BlockNode) -> set[str]:
    """Identifiers a block (and its nested blocks) may resolve lexically.

    Includes both reads (unary implicit sends) and writes (``name:``
    implicit sends).  Names bound by the block or a nested block are
    still included — resolution against the creating scope simply won't
    find them locally and the template marks them 'send'; the inner
    compile shadows them first anyway.
    """
    names: set[str] = set()
    bound: set[str] = set(block.argument_names) | set(block.local_names)
    stack: list = list(block.statements)
    while stack:
        node = stack.pop()
        if isinstance(node, AstSendNode):
            if node.receiver is None:
                if not node.arguments and node.selector.isidentifier():
                    if node.selector not in bound:
                        names.add(node.selector)
                elif (
                    len(node.arguments) == 1
                    and node.selector.endswith(":")
                    and ":" not in node.selector[:-1]
                ):
                    base = node.selector[:-1]
                    if base not in bound:
                        names.add(base)
            else:
                stack.append(node.receiver)
            stack.extend(node.arguments)
        elif isinstance(node, AstReturnNode):
            stack.append(node.expression)
        elif isinstance(node, BlockNode):
            stack.extend(node.statements)
    return names
