"""Compile-time message lookup.

When type analysis proves the receiver's map, the compiler performs the
message lookup at compile time (paper, section 3.2.2) and replaces the
send with a slot access, a constant, or an inlined method body.

Lookup here mirrors :mod:`repro.world.lookup` but starts from a *map*
instead of a value: the receiver object itself is unknown, only its
layout is.  The result distinguishes slots held by the receiver (data
goes through the receiver register) from slots held by a parent object
(a compile-time constant object the emitted code can reference
directly).
"""

from __future__ import annotations

from typing import Optional

from ..objects.errors import AmbiguousLookup
from ..objects.maps import Map, Slot
from ..world.universe import Universe


class CompileTimeLookup:
    """Outcome of a compile-time lookup.

    ``holder`` is None when the slot lives in the receiver itself
    (offset relative to the receiver register); otherwise it is the
    parent *object* holding the slot.
    """

    __slots__ = ("slot", "holder")

    def __init__(self, slot: Slot, holder: Optional[object]) -> None:
        self.slot = slot
        self.holder = holder

    @property
    def in_receiver(self) -> bool:
        return self.holder is None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        where = "receiver" if self.in_receiver else "parent"
        return f"<clookup {self.slot!r} in {where}>"


def lookup_in_map(
    universe: Universe, receiver_map: Map, selector: str
) -> Optional[CompileTimeLookup]:
    """Breadth-first lookup by inheritance depth, starting from a map.

    Returns None when the selector is absent (the send would be a
    runtime messageNotUnderstood; the compiler then emits a dynamic send
    and lets the runtime raise).  Raises :class:`AmbiguousLookup` for
    genuinely ambiguous programs, like the runtime lookup does.
    """
    # Dependency recording: the compiled decision assumes the layout of
    # every map this search consults (a slot added to any of them could
    # shadow or supply the result) and, for a constant-slot find, the
    # slot's value (the compiler inlines methods and folds constants).
    tracker = universe.deps.active

    def _found(holder_obj, holder_map, slot: Slot) -> CompileTimeLookup:
        if tracker is not None and slot.kind == "constant":
            tracker.constant_slot(holder_map, slot.name)
        return CompileTimeLookup(slot, holder_obj)

    if tracker is not None:
        tracker.map_shape(receiver_map)
    own = receiver_map.own_slot(selector)
    if own is not None:
        return _found(None, receiver_map, own)

    visited: set[int] = {id(receiver_map)}
    frontier: list[object] = []
    for parent_slot in receiver_map.parent_slots():
        if parent_slot.kind == "constant" and parent_slot.value is not None:
            frontier.append(parent_slot.value)
    while frontier:
        matches: list[tuple[object, Slot]] = []
        next_frontier: list[object] = []
        for obj in frontier:
            obj_map = universe.map_of(obj)
            if id(obj_map) in visited and obj_map.own_slot(selector) is None:
                continue
            visited.add(id(obj_map))
            if tracker is not None:
                tracker.map_shape(obj_map)
            slot = obj_map.own_slot(selector)
            if slot is not None:
                matches.append((obj, slot))
                continue
            for parent_slot in obj_map.parent_slots():
                if parent_slot.kind == "constant" and parent_slot.value is not None:
                    next_frontier.append(parent_slot.value)
                elif parent_slot.kind == "data":
                    # A mutable parent defeats compile-time lookup.
                    return None
        if matches:
            if len(matches) > 1 and any(m[0] is not matches[0][0] for m in matches[1:]):
                raise AmbiguousLookup(selector)
            holder, slot = matches[0]
            return _found(holder, universe.map_of(holder), slot)
        frontier = next_frontier
    return None
