"""Persistent cross-run compiled-code cache.

The third caching layer (after lattice interning and in-process code
sharing): finished optimizing-tier method bodies are serialized to disk
keyed by everything that determines the compile's output —

* a structural fingerprint of the method AST (block ids excluded: they
  are per-process parse counters),
* a structural *shape signature* of the receiver map, recursing through
  constant parents (so the reachable lookup world, including method
  bodies found there, is part of the key),
* the shape signatures of the well-known maps (small int, float,
  string, vector, booleans, nil) — compile-time dispatch on predicted
  receivers consults their corelib protocols,
* the compiler configuration and cost-model name,
* a cache format version.

A warm cache therefore performs **zero optimizing recompiles** for
unchanged sources/worlds, while any change to a method, a prototype
shape, or the corelib changes the key and misses — there is no explicit
invalidation protocol to get wrong.

What is *not* cacheable (counted, silently compiled fresh): block
bodies (their templates capture per-run environments), annotated
compiles, bodies embedding arbitrary guest objects or block literals in
their constant pools, and anything whose receiver world reaches a value
the signature cannot describe structurally.

Loads are corruption-safe by construction: any parse/shape/version
problem counts as ``corrupt`` and falls back to a fresh compile.
``REPRO_CODE_CACHE`` points at the cache directory; empty or ``0``
disables the layer entirely.

Translation-tier (fourth-tier) output is deliberately **never**
persisted here: the emitted host source closes over the live universe
(well-known map identities, attribute classes) and over the exact
predecoded handler stream, none of which survive a process boundary.
The cache stores instruction streams only; translated bodies are
re-emitted per process once a body re-crosses the promotion threshold,
which ``translate.emit_seconds`` shows to be cheap relative to a miss.
"""

from __future__ import annotations

import json
import os
import tempfile
from hashlib import sha256
from typing import Optional

from ..ir.graph import GraphStats
from ..lang.ast_nodes import (
    BlockNode,
    LiteralNode,
    MethodNode,
    ReturnNode,
    SelfNode,
    SendNode,
)
from ..objects.maps import Map
from ..objects.model import BigInt, SelfMethod, SelfObject, SelfVector
from ..vm.code import Code, InlineCacheSite

#: bump when the on-disk format or anything feeding the key changes
#: (2: sha256 integrity envelope around the payload)
CACHE_VERSION = 2

#: universe attributes whose maps compile-time dispatch may consult
#: without the receiver map's parent chain reaching them
WELL_KNOWN_ATTRS = (
    "smallint_map",
    "bigint_map",
    "float_map",
    "string_map",
    "vector_map",
    "nil_map",
    "true_map",
    "false_map",
)


class Uncacheable(Exception):
    """This compile cannot be keyed or serialized structurally."""


def cache_from_env() -> Optional["CodeCache"]:
    """The process-wide cache configured by ``REPRO_CODE_CACHE``."""
    path = os.environ.get("REPRO_CODE_CACHE", "")
    if not path or path == "0":
        return None
    return CodeCache(path)


# ---------------------------------------------------------------------------
# Structural fingerprints (the key)
# ---------------------------------------------------------------------------


def ast_fingerprint(node) -> list:
    """A structural, position- and block-id-free description of an AST."""
    t = type(node)
    if t is LiteralNode:
        value = node.value
        return ["lit", type(value).__name__, value]
    if t is SelfNode:
        return ["self"]
    if t is SendNode:
        return [
            "send",
            node.selector,
            None if node.receiver is None else ast_fingerprint(node.receiver),
            [ast_fingerprint(a) for a in node.arguments],
        ]
    if t is ReturnNode:
        return ["ret", ast_fingerprint(node.expression)]
    if t is BlockNode or t is MethodNode:
        return [
            "block" if t is BlockNode else "method",
            list(node.argument_names),
            list(node.local_names),
            [
                [name, None if init is None else ast_fingerprint(init)]
                for name, init in sorted(node.local_inits.items())
            ],
            [ast_fingerprint(s) for s in node.statements],
        ]
    raise Uncacheable(f"unfingerprintable AST node {t.__name__}")


def _value_signature(value, universe, seen: dict, deps: Optional[set] = None) -> list:
    """Structural signature of a constant-slot value (key component)."""
    if value is None:
        return ["none"]
    t = type(value)
    if t is int:
        return ["int", value]
    if t is BigInt:
        return ["big", str(value.value)]
    if t is float:
        return ["float", value]
    if t is str:
        return ["str", value]
    if value is universe.nil_object:
        return ["nil"]
    if value is universe.true_object:
        return ["true"]
    if value is universe.false_object:
        return ["false"]
    if t is SelfMethod:
        return ["method", ast_fingerprint(value.code)]
    if t is SelfObject:
        return ["obj", map_signature(universe.map_of(value), universe, seen, deps)]
    if t is SelfVector:
        # Type analysis sees a vector constant as (map, length); element
        # values never feed a compile-time decision.
        return ["vector", value.size]
    raise Uncacheable(f"unsignable constant {t.__name__}")


def map_signature(
    map: Map, universe, seen: Optional[dict] = None, deps: Optional[set] = None
) -> list:
    """Structural shape signature of a map and its reachable lookup world.

    Everything compile-time lookup could consult from this map is
    described by structure, never by per-run identity: slot layout, and
    — through constant parents and method-holding slots — the shapes and
    method ASTs of the inherited world.

    When ``deps`` is given, every visited map's shape key and every
    visited constant slot's const key are collected into it — the
    conservative dependency set of a cache *hit*, whose compile was
    never observed consulting the world.
    """
    if seen is None:
        seen = {}
    token = seen.get(id(map))
    if token is not None:
        return ["cyc", token]
    seen[id(map)] = len(seen)
    if deps is not None:
        deps.add(("shape", map.map_id))
    sig: list = ["map", map.kind, map.data_size]
    slots = []
    for name in sorted(map.slots):
        slot = map.slots[name]
        entry: list = [name, slot.kind, slot.offset, slot.is_parent]
        if slot.kind == "constant":
            if deps is not None:
                deps.add(("const", map.map_id, name))
            entry.append(_value_signature(slot.value, universe, seen, deps))
        slots.append(entry)
    sig.append(slots)
    return sig


def compile_key(
    universe, config, model, code_node, receiver_map, deps: Optional[set] = None
) -> str:
    """The cache key for one (source, receiver shape, config) compile.

    Raises :class:`Uncacheable` when any component resists structural
    description.  ``deps`` (optional) collects the structural
    dependency keys of everything the key describes.
    """
    from dataclasses import asdict

    seen: dict = {}
    wk_sigs = []
    for attr in WELL_KNOWN_ATTRS:
        if deps is not None:
            deps.add(("wk", attr))
        wk_sigs.append([attr, map_signature(getattr(universe, attr), universe, seen, deps)])
    payload = [
        CACHE_VERSION,
        sorted(asdict(config).items()),
        getattr(model, "name", type(model).__name__),
        ast_fingerprint(code_node),
        map_signature(receiver_map, universe, seen, deps),
        wk_sigs,
    ]
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return sha256(blob.encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# Instruction/constant serialization
# ---------------------------------------------------------------------------


def _wk_attr_of(map: Map, universe) -> Optional[str]:
    for attr in WELL_KNOWN_ATTRS:
        if getattr(universe, attr, None) is map:
            return attr
    return None


def _encode_operand(x, universe, receiver_map):
    if x is None or type(x) is int or type(x) is str:
        return x
    if type(x) is tuple:  # register tuples (send/primcall argument lists)
        return ["regs", list(x)]
    if isinstance(x, Map):
        attr = _wk_attr_of(x, universe)
        if attr is not None:
            return ["wk", attr]
        if x is receiver_map:
            return ["recv"]
        raise Uncacheable(f"instruction references non-well-known map {x.name}")
    selector = getattr(x, "selector", None)
    if selector is not None and getattr(x, "fn", None) is not None:
        return ["prim", selector]  # a registry primitive
    raise Uncacheable(f"unserializable operand {type(x).__name__}")


def _decode_operand(x, universe, receiver_map):
    if not isinstance(x, list):
        return x
    tag = x[0]
    if tag == "regs":
        return tuple(x[1])
    if tag == "wk":
        return getattr(universe, x[1])
    if tag == "recv":
        return receiver_map
    if tag == "prim":
        from ..primitives.registry import lookup_primitive

        primitive = lookup_primitive(x[1])
        if primitive is None:
            raise Uncacheable(f"unknown primitive {x[1]!r}")
        return primitive
    raise Uncacheable(f"bad operand tag {tag!r}")


def _encode_const(value, universe):
    t = type(value)
    if t is int:
        return ["i", value]
    if t is BigInt:
        return ["I", str(value.value)]
    if t is float:
        return ["f", value]
    if t is str:
        return ["s", value]
    if value is universe.nil_object:
        return ["nil"]
    if value is universe.true_object:
        return ["true"]
    if value is universe.false_object:
        return ["false"]
    raise Uncacheable(f"unserializable constant {t.__name__}")


def _decode_const(entry, universe):
    tag = entry[0]
    if tag == "i":
        return entry[1]
    if tag == "I":
        return BigInt(int(entry[1]))
    if tag == "f":
        return entry[1]
    if tag == "s":
        return entry[1]
    if tag == "nil":
        return universe.nil_object
    if tag == "true":
        return universe.true_object
    if tag == "false":
        return universe.false_object
    raise Uncacheable(f"bad constant tag {tag!r}")


def serialize_code(code: Code, universe, receiver_map) -> dict:
    """A JSON-safe description of a compiled method body."""
    return {
        "version": CACHE_VERSION,
        "name": code.name,
        "insns": [
            [_encode_operand(x, universe, receiver_map) for x in insn]
            for insn in code.insns
        ],
        "consts": [_encode_const(v, universe) for v in code.consts],
        "reg_count": code.reg_count,
        "self_reg": code.self_reg,
        "arg_regs": list(code.arg_regs),
        "env_keys": sorted(code.env_keys),
        "ic_selectors": [site.selector for site in code.ic_sites],
        "size_bytes": code.size_bytes,
        "is_block": code.is_block,
        "graph_counts": dict(code.graph_stats.counts)
        if code.graph_stats is not None
        else None,
        "graph_loop_versions": {
            str(k): v for k, v in code.graph_stats.loop_versions.items()
        }
        if code.graph_stats is not None
        else None,
        "compile_stats": dict(code.compile_stats),
        "config_name": code.config_name,
        "map_dependent": code.map_dependent,
    }


def deserialize_code(payload: dict, universe, receiver_map, model) -> Code:
    """Rebuild a :class:`Code` (fresh IC sites, re-predecoded)."""
    from ..vm.dispatch import predecode

    if payload.get("version") != CACHE_VERSION:
        raise Uncacheable("cache format version mismatch")
    insns = [
        tuple(_decode_operand(x, universe, receiver_map) for x in insn)
        for insn in payload["insns"]
    ]
    consts = [_decode_const(entry, universe) for entry in payload["consts"]]
    ic_sites = [InlineCacheSite(s) for s in payload["ic_selectors"]]
    graph_stats = None
    if payload["graph_counts"] is not None:
        graph_stats = GraphStats.from_parts(
            payload["graph_counts"], payload["graph_loop_versions"]
        )
    return Code(
        name=payload["name"],
        insns=insns,
        consts=consts,
        reg_count=payload["reg_count"],
        self_reg=payload["self_reg"],
        arg_regs=tuple(payload["arg_regs"]),
        env_keys=frozenset(payload["env_keys"]),
        ic_sites=ic_sites,
        size_bytes=payload["size_bytes"],
        is_block=payload["is_block"],
        graph_stats=graph_stats,
        compile_stats=payload["compile_stats"],
        config_name=payload["config_name"],
        threaded=predecode(insns, consts, ic_sites, model),
        map_dependent=payload["map_dependent"],
    )


# ---------------------------------------------------------------------------
# The cache
# ---------------------------------------------------------------------------


class CodeCache:
    """One on-disk cache directory of serialized compiles.

    Load/store never raise on I/O or format problems: every failure
    mode degrades to "compile it fresh" and increments the matching
    counter, which ``obs.metrics`` files as ``compiler.codecache.*``.
    (Injected faults — :data:`~repro.robustness.faults.SITE_CODECACHE_LOAD`
    / ``_STORE`` in raise mode — *do* propagate: the tier ladder is the
    containment boundary and records the recovery event.)

    Each entry is a sha256-sealed envelope ``{v, sha256, body}``; a
    load whose recomputed digest disagrees is rejected and counted as
    ``corrupt_rejected`` (a torn or tampered file, or a corrupt-mode
    fault planted at the store site).  ``limit`` (default from
    ``REPRO_CODE_CACHE_LIMIT``; 0 = unbounded) caps the entry count
    with least-recently-used eviction — loads refresh an entry's mtime,
    stores evict the stalest entries beyond the cap.
    """

    def __init__(self, path: str, limit: Optional[int] = None) -> None:
        self.path = path
        if limit is None:
            raw = os.environ.get("REPRO_CODE_CACHE_LIMIT", "")
            limit = int(raw) if raw.strip() else 0
        self.limit = max(0, limit)
        self.stats = {
            "hits": 0,
            "misses": 0,
            "stores": 0,
            "uncacheable": 0,
            "corrupt": 0,
            "corrupt_rejected": 0,
            "evictions": 0,
            "invalidated": 0,
        }

    def _file_for(self, key: str) -> str:
        return os.path.join(self.path, f"{key}.json")

    def load(
        self, universe, config, model, code_node, receiver_map, selector: str
    ) -> Optional[Code]:
        from ..robustness import faults

        deps: set = set()
        try:
            key = compile_key(
                universe, config, model, code_node, receiver_map, deps=deps
            )
        except Uncacheable:
            self.stats["uncacheable"] += 1
            return None
        try:
            with open(self._file_for(key), "r", encoding="utf-8") as handle:
                raw = handle.read()
        except FileNotFoundError:
            self.stats["misses"] += 1
            return None
        except OSError:
            self.stats["corrupt"] += 1
            return None
        if faults.ENABLED and faults.hit(faults.SITE_CODECACHE_LOAD):
            # Corrupt mode: the bytes went bad between disk and parser.
            raw = raw[: len(raw) // 2]
        try:
            envelope = json.loads(raw)
            body = envelope["body"]
            digest = envelope["sha256"]
        except (ValueError, KeyError, TypeError):
            self.stats["corrupt"] += 1
            return None
        if (
            not isinstance(body, str)
            or sha256(body.encode("utf-8")).hexdigest() != digest
        ):
            self.stats["corrupt_rejected"] += 1
            return None
        try:
            payload = json.loads(body)
            code = deserialize_code(payload, universe, receiver_map, model)
        except (Uncacheable, KeyError, TypeError, IndexError, ValueError):
            self.stats["corrupt"] += 1
            return None
        try:
            os.utime(self._file_for(key))  # LRU recency
        except OSError:
            pass
        self.stats["hits"] += 1
        # The hit skipped compilation, so its dependency set is derived
        # from the structural walk the key itself performed.
        code.dep_keys = frozenset(deps)
        code.disk_key = key
        return code

    def store(self, universe, config, model, code_node, receiver_map, code: Code) -> None:
        from ..robustness import faults

        try:
            key = compile_key(universe, config, model, code_node, receiver_map)
            payload = serialize_code(code, universe, receiver_map)
        except Uncacheable:
            self.stats["uncacheable"] += 1
            return
        body = json.dumps(payload, separators=(",", ":"))
        digest = sha256(body.encode("utf-8")).hexdigest()
        if faults.ENABLED and faults.hit(faults.SITE_CODECACHE_STORE):
            # Corrupt mode: a wild write lands in the payload after the
            # digest was computed — a later load must reject the entry.
            body = body[: max(0, len(body) - 7)] + "corrupt"
        envelope = {"v": CACHE_VERSION, "sha256": digest, "body": body}
        try:
            os.makedirs(self.path, exist_ok=True)
            # Atomic publish: a concurrent reader sees either nothing or
            # a complete file, never a torn write.
            fd, tmp_path = tempfile.mkstemp(
                dir=self.path, prefix=".tmp-", suffix=".json"
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    json.dump(envelope, handle, separators=(",", ":"))
                os.replace(tmp_path, self._file_for(key))
            except BaseException:
                try:
                    os.unlink(tmp_path)
                except OSError:
                    pass
                raise
        except OSError:
            return  # a read-only or full disk never breaks compilation
        self.stats["stores"] += 1
        code.disk_key = key
        self._enforce_limit()

    def evict(self, key: str) -> bool:
        """Dependency-driven eviction: delete one entry by key."""
        try:
            os.unlink(self._file_for(key))
        except OSError:
            return False
        self.stats["invalidated"] += 1
        return True

    def _enforce_limit(self) -> None:
        """Drop least-recently-used entries beyond ``limit``."""
        if self.limit <= 0:
            return
        try:
            entries = [
                (entry.stat().st_mtime, entry.path)
                for entry in os.scandir(self.path)
                if entry.name.endswith(".json") and not entry.name.startswith(".")
            ]
        except OSError:
            return
        excess = len(entries) - self.limit
        if excess <= 0:
            return
        entries.sort()
        for _, stale_path in entries[:excess]:
            try:
                os.unlink(stale_path)
                self.stats["evictions"] += 1
            except OSError:
                pass


class ReadOnlyCodeCache:
    """A tenant's view of a shared persistent cache: loads delegate,
    writes are swallowed and counted.

    The multi-tenant service shares one on-disk cache across every
    tenant so compile work is amortized fleet-wide; but per-tenant
    invalidation (:mod:`repro.robustness.invalidate` calling
    ``code_cache.evict``) must never delete a disk entry other tenants
    still dispatch through — a tenant that mutates its world retires
    *its own* compiled bodies via its own dependency registry, while
    the shared disk entry stays valid for every world that did not
    mutate.  Stores are also swallowed: only the zygote owner warms the
    shared cache, keeping tenant write amplification at zero.

    ``stats`` is per-facade (per tenant), so shed writes are observable
    without aliasing the underlying cache's counters.
    """

    __slots__ = ("backing", "stats")

    def __init__(self, backing: CodeCache) -> None:
        self.backing = backing
        self.stats = {
            "hits": 0,
            "misses": 0,
            "stores_shed": 0,
            "evicts_shed": 0,
        }

    @property
    def path(self) -> str:
        return self.backing.path

    def load(self, universe, config, model, code_node, receiver_map, selector):
        code = self.backing.load(
            universe, config, model, code_node, receiver_map, selector
        )
        self.stats["hits" if code is not None else "misses"] += 1
        return code

    def store(self, universe, config, model, code_node, receiver_map, code) -> None:
        self.stats["stores_shed"] += 1

    def evict(self, key: str) -> bool:
        self.stats["evicts_shed"] += 1
        return False
