"""Compiler configurations: the five systems of the paper's evaluation.

Every optimization described in the paper is an independent toggle, so
the benchmark harness can reproduce the paper's system comparison *and*
run ablations (disable one technique at a time):

===================  ========================================================
flag                 paper concept
===================  ========================================================
customize            customized compilation (one code body per receiver map)
inline_methods       message inlining after compile-time lookup
inline_prims         primitive inlining (expansion into check + op nodes)
type_analysis        propagate types across nodes (the section 3 machinery)
range_analysis       integer subrange analysis (overflow/bounds elimination)
type_prediction      insert run-time tests for likely receiver types
local_splitting      split only the send directly after a merge (old SELF)
extended_splitting   keep compilation fronts apart through arbitrary code
iterative_loops      iterative type analysis for loops (section 5.1)
multi_version_loops  loop head/tail splitting → multiple loop versions (5.2)
st80_macros          ST-80 style hardwired control-flow macros (ifTrue:,
                     whileTrue:, to:Do: with literal blocks) — the baseline
                     compiler's only form of inlining
static_types         trust external type annotations and elide every check —
                     the "optimized C" stand-in
===================  ========================================================

The presets mirror the evaluation's five systems.  ``OLD_SELF_89`` and
``OLD_SELF_90`` share one feature set (the paper describes them as the
same compiler, differently tuned) and differ in the cost table selected
by the VM (`repro.vm.cost`).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class CompilerConfig:
    name: str

    customize: bool = True
    inline_methods: bool = True
    inline_prims: bool = True
    type_analysis: bool = True
    range_analysis: bool = True
    type_prediction: bool = True
    local_splitting: bool = True
    extended_splitting: bool = True
    iterative_loops: bool = True
    multi_version_loops: bool = True
    st80_macros: bool = False
    static_types: bool = False

    #: maximum nesting of inlined methods
    inline_depth_limit: int = 8
    #: maximum AST weight of a method body eligible for inlining
    inline_size_limit: int = 120
    #: maximum simultaneous compilation fronts (extended splitting width)
    max_fronts: int = 6
    #: maximum iterations of the loop type analysis before widening all
    #: the way to pessimistic bindings
    max_loop_iterations: int = 6
    #: maximum number of compiled versions of one source loop
    max_loop_versions: int = 3
    #: overall node budget per compiled method (safety valve)
    node_budget: int = 20000
    #: refuse (CompilerError) instead of counting when a block whose ^
    #: targets an inlined method escapes to unseen code — see DESIGN.md
    #: known limitations; off by default because well-formed programs
    #: never hit it and the counter already surfaces it
    forbid_unsafe_nlr: bool = False

    def __post_init__(self) -> None:
        if self.extended_splitting and not self.type_analysis:
            raise ValueError("extended splitting requires type analysis")
        if self.multi_version_loops and not self.iterative_loops:
            raise ValueError("multi-version loops require iterative analysis")
        if self.range_analysis and not self.type_analysis:
            raise ValueError("range analysis requires type analysis")

    def but(self, **changes) -> "CompilerConfig":
        """A copy with some fields replaced (for ablation studies)."""
        return replace(self, **changes)


#: The new SELF compiler: everything in the paper switched on.
NEW_SELF = CompilerConfig(name="new SELF")

#: The old (1989/1990) SELF compiler: customization, type prediction,
#: message/primitive inlining, and *local* splitting — but no type
#: analysis of locals, no range analysis, no extended splitting, and
#: pessimistic loops (section 2 and section 5 of the paper).
OLD_SELF = CompilerConfig(
    name="old SELF",
    type_analysis=False,
    range_analysis=False,
    extended_splitting=False,
    iterative_loops=False,
    multi_version_loops=False,
    # The old compiler worked on expression trees; its inlining budget
    # was comparable, its splitting only local.
    local_splitting=True,
)

#: Cost-table aliases (the VM picks tuning by name).
OLD_SELF_89 = OLD_SELF.but(name="old SELF-89")
OLD_SELF_90 = OLD_SELF.but(name="old SELF-90")

#: A Deutsch–Schiffman-style Smalltalk-80 system: dynamic translation
#: with inline caches; no customization, no user-method inlining, no
#: analysis.  Its only "inlining" is the hardwired control-flow macros
#: and the special arithmetic bytecodes (modeled by type-predicted,
#: always-checked primitive expansions).
ST80 = CompilerConfig(
    name="ST-80",
    customize=False,
    inline_methods=False,
    type_analysis=False,
    range_analysis=False,
    extended_splitting=False,
    iterative_loops=False,
    multi_version_loops=False,
    local_splitting=False,
    st80_macros=True,
)

#: The "optimized C" stand-in: the same programs compiled trusting
#: static type annotations, with every dynamic-typing check elided.
STATIC_C = CompilerConfig(
    name="optimized C",
    static_types=True,
    # In static mode prediction is *trusted*: the predicted receiver
    # type is assumed without a run-time test — the compile-time
    # equivalent of the type declarations a C programmer writes.
    type_prediction=True,
    # A static compiler keeps comparison results flowing straight into
    # branches (extended splitting on); with all types trusted the loop
    # analysis converges immediately and never needs extra versions.
    extended_splitting=True,
    multi_version_loops=False,
)

PRESETS = {
    "st80": ST80,
    "oldself": OLD_SELF,
    "oldself89": OLD_SELF_89,
    "oldself90": OLD_SELF_90,
    "newself": NEW_SELF,
    "static": STATIC_C,
}


def preset(name: str) -> CompilerConfig:
    try:
        return PRESETS[name]
    except KeyError:
        raise KeyError(
            f"unknown compiler preset {name!r}; available: {sorted(PRESETS)}"
        ) from None
