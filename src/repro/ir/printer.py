"""Textual and Graphviz rendering of control-flow graphs.

The text format numbers nodes in a stable depth-first order and prints
one line per node with explicit jump targets, so examples and golden
tests can show "before/after splitting" graphs like the paper's figures.
"""

from __future__ import annotations

from typing import Optional

from .nodes import IRNode, LoopHeadNode, MergeNode
from .graph import iter_nodes, predecessors


def format_graph(start: IRNode, title: str = "") -> str:
    """Pretty-print the CFG reachable from ``start``."""
    order: dict[IRNode, int] = {}
    for index, node in enumerate(iter_nodes(start)):
        order[node] = index
    preds = predecessors(start)
    lines: list[str] = []
    if title:
        lines.append(f"== {title} ==")
    for node, index in order.items():
        label = f"n{index}"
        incoming = len(preds.get(node, []))
        marker = ""
        if isinstance(node, LoopHeadNode):
            marker = "  <<loop head>>"
        elif isinstance(node, MergeNode) or incoming > 1:
            marker = f"  <<merge x{incoming}>>" if incoming > 1 else ""
        succ_parts = []
        for port, successor in enumerate(node.successors):
            if successor is None:
                succ_parts.append(f"[{port}]->∅")
            else:
                succ_parts.append(f"[{port}]->n{order[successor]}")
        succ = "  " + " ".join(succ_parts) if succ_parts else ""
        lines.append(f"{label}: {node.describe()}{succ}{marker}")
    return "\n".join(lines)


def to_dot(start: IRNode, title: str = "cfg") -> str:
    """Graphviz dot rendering (for the examples' --dot flag)."""
    order: dict[IRNode, int] = {}
    for index, node in enumerate(iter_nodes(start)):
        order[node] = index
    lines = [f"digraph {_dot_ident(title)} {{", "  node [shape=box, fontname=monospace];"]
    for node, index in order.items():
        label = node.describe().replace('"', "'")
        shape = ""
        if isinstance(node, LoopHeadNode):
            shape = ", shape=ellipse, style=bold"
        elif isinstance(node, MergeNode):
            shape = ", shape=ellipse"
        lines.append(f'  n{index} [label="{label}"{shape}];')
    for node, index in order.items():
        for port, successor in enumerate(node.successors):
            if successor is None:
                continue
            attrs = ""
            if len(node.successors) == 2:
                attrs = ' [label="T"]' if port == 0 else ' [label="F"]'
            target = order[successor]
            back = successor in order and isinstance(successor, LoopHeadNode) and target <= index
            if back:
                attrs = attrs[:-1] + ', style=dashed]' if attrs else ' [style=dashed]'
            lines.append(f"  n{index} -> n{target}{attrs};")
    lines.append("}")
    return "\n".join(lines)


def _dot_ident(name: str) -> str:
    cleaned = "".join(c if c.isalnum() else "_" for c in name)
    return cleaned or "cfg"
