"""Graph analyses over compiled CFGs: hot paths and loop summaries.

The paper's claims are about what remains on the *common-case* path —
"the common-case version of the loop contains no type tests".  These
helpers make that measurable: the hot path of a loop version is its
port-0 spine (codegen lays it out as straight-line code), and a loop
summary classifies each version the way the paper's figures do.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Optional

from .graph import reachable_loop_heads
from .nodes import IRNode, LoopHeadNode


def hot_path(head: LoopHeadNode) -> tuple[list[IRNode], bool]:
    """The port-0 spine from a loop head until it closes (or leaves).

    Returns ``(nodes, closed)``; ``closed`` means the spine returns to
    this same head — a self-contained fast loop.  An open spine that
    ends at *another* loop head is the §5.3 hand-off: control transfers
    to a different version once types settle.
    """
    nodes: list[IRNode] = []
    node = head.successors[0]
    while node is not None and node is not head and node not in nodes:
        nodes.append(node)
        node = node.successors[0] if node.successors else None
    return nodes, node is head


def hot_path_counts(head: LoopHeadNode) -> Counter:
    nodes, _ = hot_path(head)
    return Counter(type(n).__name__ for n in nodes)


def common_path_counts(start: IRNode) -> Counter:
    """Node counts along the port-0 path from ``start`` to the first
    terminal — failure branches are never entered."""
    counts: Counter = Counter()
    node = start.successors[0] if start.successors else None
    seen: set[int] = set()
    while node is not None and id(node) not in seen:
        seen.add(id(node))
        counts[type(node).__name__] += 1
        node = node.successors[0] if node.successors else None
    return counts


@dataclass
class LoopVersionSummary:
    """One compiled loop version, classified."""

    loop_id: int
    version: int
    closed: bool
    type_tests: int
    overflow_checks: int
    bounds_checks: int
    sends: int
    raw_arith: int
    length: int
    hands_off_to: Optional[int]  # version index it transfers into

    @property
    def is_common_case(self) -> bool:
        """A self-contained version with no residual type tests — the
        paper's gray-box loop."""
        return self.closed and self.type_tests == 0 and self.sends == 0


def summarize_loops(start: IRNode) -> list[LoopVersionSummary]:
    """Classify every compiled loop version reachable from ``start``."""
    summaries: list[LoopVersionSummary] = []
    heads = reachable_loop_heads(start)
    for head in heads:
        nodes, closed = hot_path(head)
        counts = Counter(type(n).__name__ for n in nodes)
        hands_off: Optional[int] = None
        if not closed and nodes:
            last = nodes[-1].successors[0] if nodes[-1].successors else None
            if isinstance(last, LoopHeadNode) and last.loop_id == head.loop_id:
                hands_off = last.version
        summaries.append(
            LoopVersionSummary(
                loop_id=head.loop_id,
                version=head.version,
                closed=closed,
                type_tests=counts["TypeTestNode"],
                overflow_checks=counts["ArithOvNode"],
                bounds_checks=counts["BoundsCheckNode"],
                sends=counts["SendNode"],
                raw_arith=counts["ArithNode"],
                length=len(nodes),
                hands_off_to=hands_off,
            )
        )
    return summaries
