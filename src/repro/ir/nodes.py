"""Control-flow-graph nodes.

The compiler builds this graph *while* performing type analysis (the
paper's central architectural point: inlining changes the graph, and the
graph determines the types).  Nodes reference virtual variables by name:
``self``, argument/local names (alpha-renamed on inlining), and
compiler temporaries ``%tN``.

Edges are successor pointers: every node has a fixed number of outgoing
ports (1 for straight-line nodes, 2 for branching nodes, 0 for terminal
nodes).  For branching nodes, port 0 is the true/success branch and
port 1 the false/failure branch — matching the paper's diagram
convention ("true outgoing branch on the left").

The node set mirrors the paper:

* straight-line: Const, Move, LoadSlot, StoreSlot, Arith, ArrayLoad,
  ArrayStore, ArrayLength, MakeBlock, EnvLoad, EnvStore
* branching: TypeTest, CompareBranch, ArithOv (arithmetic with overflow
  check), BoundsCheck
* calls: Send (dynamically bound), PrimCall (out-of-line robust
  primitive)
* structure: Start, Merge, LoopHead, Return, NlrReturn, Error
"""

from __future__ import annotations

import itertools
from typing import Optional, Sequence

_node_ids = itertools.count(1)


class IRNode:
    """Base class; ``successors`` has one slot per outgoing port."""

    PORTS = 1
    mnemonic = "node"

    __slots__ = ("node_id", "successors")

    def __init__(self) -> None:
        self.node_id = next(_node_ids)
        self.successors: list[Optional[IRNode]] = [None] * self.PORTS

    # -- structural helpers ---------------------------------------------------

    def set_successor(self, port: int, target: "IRNode") -> None:
        self.successors[port] = target

    def inputs(self) -> tuple[str, ...]:
        """Variable names this node reads."""
        return ()

    def output(self) -> Optional[str]:
        """The variable name this node writes, if any."""
        return None

    def describe(self) -> str:
        """One-line description for printers (no successor info)."""
        return self.mnemonic

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} #{self.node_id} {self.describe()}>"


# ---------------------------------------------------------------------------
# Structure
# ---------------------------------------------------------------------------


class StartNode(IRNode):
    mnemonic = "start"
    __slots__ = ()


class MergeNode(IRNode):
    """A control-flow merge (the enemy of type information)."""

    mnemonic = "merge"
    __slots__ = ("arity",)

    def __init__(self, arity: int = 2) -> None:
        super().__init__()
        self.arity = arity

    def describe(self) -> str:
        return f"merge/{self.arity}"


class LoopHeadNode(IRNode):
    """A merge with a back edge; one loop version per LoopHead.

    ``version`` numbers the loop versions the iterative analysis / head
    splitting produced for the same source loop (``loop_id``).
    """

    mnemonic = "loophead"
    __slots__ = ("loop_id", "version")

    def __init__(self, loop_id: int, version: int = 0) -> None:
        super().__init__()
        self.loop_id = loop_id
        self.version = version

    def describe(self) -> str:
        return f"loophead L{self.loop_id}v{self.version}"


class ReturnNode(IRNode):
    """Method return."""

    PORTS = 0
    mnemonic = "return"
    __slots__ = ("src",)

    def __init__(self, src: str) -> None:
        super().__init__()
        self.src = src

    def inputs(self) -> tuple[str, ...]:
        return (self.src,)

    def describe(self) -> str:
        return f"return {self.src}"


class NlrReturnNode(IRNode):
    """Non-local return from (compiled, non-inlined) block code."""

    PORTS = 0
    mnemonic = "nlr"
    __slots__ = ("src",)

    def __init__(self, src: str) -> None:
        super().__init__()
        self.src = src

    def inputs(self) -> tuple[str, ...]:
        return (self.src,)

    def describe(self) -> str:
        return f"nlr-return {self.src}"


class ErrorNode(IRNode):
    """Terminal: raise a guest-level error (default primitive failure)."""

    PORTS = 0
    mnemonic = "error"
    __slots__ = ("primitive", "code")

    def __init__(self, primitive: str, code: str) -> None:
        super().__init__()
        self.primitive = primitive
        self.code = code

    def describe(self) -> str:
        return f"error {self.primitive}:{self.code}"


# ---------------------------------------------------------------------------
# Straight-line data nodes
# ---------------------------------------------------------------------------


class ConstNode(IRNode):
    mnemonic = "const"
    __slots__ = ("dst", "value")

    def __init__(self, dst: str, value) -> None:
        super().__init__()
        self.dst = dst
        self.value = value

    def output(self) -> Optional[str]:
        return self.dst

    def describe(self) -> str:
        return f"{self.dst} := const {self.value!r}"


class MoveNode(IRNode):
    mnemonic = "move"
    __slots__ = ("dst", "src")

    def __init__(self, dst: str, src: str) -> None:
        super().__init__()
        self.dst = dst
        self.src = src

    def inputs(self) -> tuple[str, ...]:
        return (self.src,)

    def output(self) -> Optional[str]:
        return self.dst

    def describe(self) -> str:
        return f"{self.dst} := {self.src}"


class LoadSlotNode(IRNode):
    """Memory load: read a data slot at a known offset."""

    mnemonic = "loadslot"
    __slots__ = ("dst", "obj", "offset", "slot_name")

    def __init__(self, dst: str, obj: str, offset: int, slot_name: str = "") -> None:
        super().__init__()
        self.dst = dst
        self.obj = obj
        self.offset = offset
        self.slot_name = slot_name

    def inputs(self) -> tuple[str, ...]:
        return (self.obj,)

    def output(self) -> Optional[str]:
        return self.dst

    def describe(self) -> str:
        return f"{self.dst} := {self.obj}.{self.slot_name or self.offset}"


class StoreSlotNode(IRNode):
    mnemonic = "storeslot"
    __slots__ = ("obj", "offset", "src", "slot_name")

    def __init__(self, obj: str, offset: int, src: str, slot_name: str = "") -> None:
        super().__init__()
        self.obj = obj
        self.offset = offset
        self.src = src
        self.slot_name = slot_name

    def inputs(self) -> tuple[str, ...]:
        return (self.obj, self.src)

    def describe(self) -> str:
        return f"{self.obj}.{self.slot_name or self.offset} := {self.src}"


class ArithNode(IRNode):
    """A raw arithmetic instruction — *no* checks of any kind.

    This is the node the paper draws as the bare ``add`` instruction that
    remains after all type and overflow checks were optimized away.
    """

    mnemonic = "arith"
    __slots__ = ("op", "dst", "x", "y")

    def __init__(self, op: str, dst: str, x: str, y: str) -> None:
        super().__init__()
        self.op = op
        self.dst = dst
        self.x = x
        self.y = y

    def inputs(self) -> tuple[str, ...]:
        return (self.x, self.y)

    def output(self) -> Optional[str]:
        return self.dst

    def describe(self) -> str:
        return f"{self.dst} := {self.x} {self.op} {self.y}"


class EnvLoadNode(IRNode):
    """Read an enclosing activation's local (compiled block code only)."""

    mnemonic = "envload"
    __slots__ = ("dst", "depth", "name")

    def __init__(self, dst: str, depth: int, name: str) -> None:
        super().__init__()
        self.dst = dst
        self.depth = depth
        self.name = name

    def output(self) -> Optional[str]:
        return self.dst

    def describe(self) -> str:
        return f"{self.dst} := env[{self.depth}].{self.name}"


class EnvStoreNode(IRNode):
    mnemonic = "envstore"
    __slots__ = ("depth", "name", "src")

    def __init__(self, depth: int, name: str, src: str) -> None:
        super().__init__()
        self.depth = depth
        self.name = name
        self.src = src

    def inputs(self) -> tuple[str, ...]:
        return (self.src,)

    def describe(self) -> str:
        return f"env[{self.depth}].{self.name} := {self.src}"


class MakeBlockNode(IRNode):
    """Create a block closure capturing the current activation."""

    mnemonic = "makeblock"
    __slots__ = ("dst", "block", "template", "self_var")

    def __init__(self, dst: str, block, self_var: str = "%self") -> None:
        super().__init__()
        self.dst = dst
        self.block = block  # lang.ast_nodes.BlockNode
        self.template = None  # result.BlockTemplate, set by the compiler
        #: variable holding the conceptual receiver at creation time —
        #: the *inlined* home method's self, not the physical frame's
        self.self_var = self_var

    def output(self) -> Optional[str]:
        return self.dst

    def describe(self) -> str:
        return f"{self.dst} := block#{self.block.block_id}"


# ---------------------------------------------------------------------------
# Arrays
# ---------------------------------------------------------------------------


class ArrayLoadNode(IRNode):
    """Unchecked vector element read (bounds check already proven/emitted)."""

    mnemonic = "aload"
    __slots__ = ("dst", "arr", "idx")

    def __init__(self, dst: str, arr: str, idx: str) -> None:
        super().__init__()
        self.dst = dst
        self.arr = arr
        self.idx = idx

    def inputs(self) -> tuple[str, ...]:
        return (self.arr, self.idx)

    def output(self) -> Optional[str]:
        return self.dst

    def describe(self) -> str:
        return f"{self.dst} := {self.arr}[{self.idx}]"


class ArrayStoreNode(IRNode):
    mnemonic = "astore"
    __slots__ = ("arr", "idx", "src")

    def __init__(self, arr: str, idx: str, src: str) -> None:
        super().__init__()
        self.arr = arr
        self.idx = idx
        self.src = src

    def inputs(self) -> tuple[str, ...]:
        return (self.arr, self.idx, self.src)

    def describe(self) -> str:
        return f"{self.arr}[{self.idx}] := {self.src}"


class ArrayLengthNode(IRNode):
    mnemonic = "alen"
    __slots__ = ("dst", "arr")

    def __init__(self, dst: str, arr: str) -> None:
        super().__init__()
        self.dst = dst
        self.arr = arr

    def inputs(self) -> tuple[str, ...]:
        return (self.arr,)

    def output(self) -> Optional[str]:
        return self.dst

    def describe(self) -> str:
        return f"{self.dst} := length({self.arr})"


# ---------------------------------------------------------------------------
# Branching nodes  (port 0 = true/success, port 1 = false/failure)
# ---------------------------------------------------------------------------


class TypeTestNode(IRNode):
    """Run-time map (class) test."""

    PORTS = 2
    mnemonic = "typetest"
    __slots__ = ("var", "map")

    def __init__(self, var: str, map) -> None:
        super().__init__()
        self.var = var
        self.map = map

    def inputs(self) -> tuple[str, ...]:
        return (self.var,)

    def describe(self) -> str:
        return f"is {self.var} a {self.map.name}?"


class CompareBranchNode(IRNode):
    """Integer compare-and-branch."""

    PORTS = 2
    mnemonic = "cmpbr"
    __slots__ = ("op", "x", "y")

    def __init__(self, op: str, x: str, y: str) -> None:
        super().__init__()
        self.op = op
        self.x = x
        self.y = y

    def inputs(self) -> tuple[str, ...]:
        return (self.x, self.y)

    def describe(self) -> str:
        return f"if {self.x} {self.op} {self.y}"


class ArithOvNode(IRNode):
    """Arithmetic with overflow check: port 0 = in range, port 1 = overflow.

    Also covers checked division/modulo, whose port 1 is taken on a zero
    divisor as well (the failure code distinguishes them at run time).
    """

    PORTS = 2
    mnemonic = "arith.ov"
    __slots__ = ("op", "dst", "x", "y", "err_dst")

    def __init__(self, op: str, dst: str, x: str, y: str, err_dst: str = "") -> None:
        super().__init__()
        self.op = op
        self.dst = dst
        self.x = x
        self.y = y
        #: variable that receives the failure code string on port 1
        #: ('overflowError' or 'divisionByZeroError')
        self.err_dst = err_dst

    def inputs(self) -> tuple[str, ...]:
        return (self.x, self.y)

    def output(self) -> Optional[str]:
        return self.dst

    def describe(self) -> str:
        return f"{self.dst} := {self.x} {self.op} {self.y} (ov?)"


class BoundsCheckNode(IRNode):
    """0 <= idx < length(arr): port 0 = in bounds, port 1 = out of bounds."""

    PORTS = 2
    mnemonic = "bounds"
    __slots__ = ("arr", "idx")

    def __init__(self, arr: str, idx: str) -> None:
        super().__init__()
        self.arr = arr
        self.idx = idx

    def inputs(self) -> tuple[str, ...]:
        return (self.arr, self.idx)

    def describe(self) -> str:
        return f"bounds {self.arr}[{self.idx}]?"


# ---------------------------------------------------------------------------
# Calls
# ---------------------------------------------------------------------------


class SendNode(IRNode):
    """A dynamically-bound message send (with an inline-cache site)."""

    mnemonic = "send"
    __slots__ = ("dst", "selector", "recv", "args")

    def __init__(self, dst: str, selector: str, recv: str, args: Sequence[str]) -> None:
        super().__init__()
        self.dst = dst
        self.selector = selector
        self.recv = recv
        self.args = tuple(args)

    def inputs(self) -> tuple[str, ...]:
        return (self.recv,) + self.args

    def output(self) -> Optional[str]:
        return self.dst

    def describe(self) -> str:
        args = " ".join(self.args)
        return f"{self.dst} := send {self.recv} {self.selector} {args}".rstrip()


class PrimCallNode(IRNode):
    """Out-of-line robust primitive call.

    Port 0 is the success continuation.  When the primitive can fail and
    a failure handler was compiled, the node has a second port; the
    failure code is bound to ``err_dst`` on that branch.  Otherwise the
    node has one port and failure raises the guest error directly.
    """

    mnemonic = "primcall"
    __slots__ = ("dst", "selector", "recv", "args", "err_dst", "_ports")

    def __init__(
        self,
        dst: str,
        selector: str,
        recv: str,
        args: Sequence[str],
        with_failure_port: bool = False,
        err_dst: str = "",
    ) -> None:
        self._ports = 2 if with_failure_port else 1
        super().__init__()
        # PORTS is a class attribute; patch the instance's successor list.
        self.successors = [None] * self._ports
        self.dst = dst
        self.selector = selector
        self.recv = recv
        self.args = tuple(args)
        self.err_dst = err_dst

    @property
    def has_failure_port(self) -> bool:
        return self._ports == 2

    def inputs(self) -> tuple[str, ...]:
        return (self.recv,) + self.args

    def output(self) -> Optional[str]:
        return self.dst

    def describe(self) -> str:
        args = " ".join(self.args)
        tail = " (fail?)" if self.has_failure_port else ""
        return f"{self.dst} := prim {self.recv} {self.selector} {args}{tail}".rstrip()


BRANCHING_NODES = (TypeTestNode, CompareBranchNode, ArithOvNode, BoundsCheckNode)
TERMINAL_NODES = (ReturnNode, NlrReturnNode, ErrorNode)
