"""Graph utilities over the CFG: traversal, statistics, validation."""

from __future__ import annotations

from collections import Counter
from typing import Callable, Iterator, Optional

from ..objects.errors import ReproInternalError
from .nodes import (
    ArithNode,
    ArithOvNode,
    BoundsCheckNode,
    IRNode,
    LoopHeadNode,
    MergeNode,
    PrimCallNode,
    SendNode,
    StartNode,
    TypeTestNode,
    TERMINAL_NODES,
)


def iter_nodes(start: IRNode) -> Iterator[IRNode]:
    """All nodes reachable from ``start``, depth-first, each once."""
    seen: set[int] = set()
    stack = [start]
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        yield node
        for successor in reversed(node.successors):
            if successor is not None:
                stack.append(successor)


def node_count(start: IRNode) -> int:
    return sum(1 for _ in iter_nodes(start))


def predecessors(start: IRNode) -> dict[IRNode, list[tuple[IRNode, int]]]:
    """Map each node to its (predecessor, port) pairs."""
    preds: dict[IRNode, list[tuple[IRNode, int]]] = {}
    for node in iter_nodes(start):
        preds.setdefault(node, [])
        for port, successor in enumerate(node.successors):
            if successor is not None:
                preds.setdefault(successor, []).append((node, port))
    return preds


class GraphStats:
    """Optimization-relevant counts over a finished CFG.

    Tests assert on these to verify the paper's structural claims (e.g.
    "the common-case loop version contains zero type tests").
    """

    __slots__ = ("counts", "loop_versions")

    def __init__(self, start: IRNode) -> None:
        self.counts: Counter = Counter()
        self.loop_versions: Counter = Counter()
        for node in iter_nodes(start):
            self.counts[type(node).__name__] += 1
            if isinstance(node, LoopHeadNode):
                self.loop_versions[node.loop_id] += 1

    @classmethod
    def from_parts(cls, counts: dict, loop_versions: dict) -> "GraphStats":
        """Rebuild stats from serialized counters (on-disk code cache)."""
        stats = cls.__new__(cls)
        stats.counts = Counter(counts)
        stats.loop_versions = Counter(
            {int(k): v for k, v in loop_versions.items()}
        )
        return stats

    @property
    def sends(self) -> int:
        return self.counts["SendNode"]

    @property
    def prim_calls(self) -> int:
        return self.counts["PrimCallNode"]

    @property
    def type_tests(self) -> int:
        return self.counts["TypeTestNode"]

    @property
    def overflow_checks(self) -> int:
        return self.counts["ArithOvNode"]

    @property
    def bounds_checks(self) -> int:
        return self.counts["BoundsCheckNode"]

    @property
    def raw_arith(self) -> int:
        return self.counts["ArithNode"]

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def versions_of_loop(self, loop_id: int) -> int:
        return self.loop_versions.get(loop_id, 0)

    @property
    def max_loop_versions(self) -> int:
        return max(self.loop_versions.values(), default=0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self.counts.items()))
        return f"GraphStats({inner})"


def validate(start: IRNode) -> None:
    """Check structural invariants; raise ReproInternalError on violation.

    * every non-terminal port is connected;
    * terminal nodes have no successors;
    * the start node is a StartNode.
    """
    if not isinstance(start, StartNode):
        raise ReproInternalError("graph does not begin with a StartNode")
    for node in iter_nodes(start):
        if isinstance(node, TERMINAL_NODES):
            if any(s is not None for s in node.successors):
                raise ReproInternalError(f"terminal node {node!r} has successors")
            continue
        for port, successor in enumerate(node.successors):
            if successor is None:
                raise ReproInternalError(
                    f"dangling port {port} on {node!r}"
                )


def map_nodes(start: IRNode, fn: Callable[[IRNode], None]) -> None:
    for node in iter_nodes(start):
        fn(node)


def find_nodes(start: IRNode, node_type) -> list[IRNode]:
    return [n for n in iter_nodes(start) if isinstance(n, node_type)]


def loop_body_nodes(start: IRNode, head: LoopHeadNode) -> list[IRNode]:
    """The nodes in the cycle of ``head``: reachable from it and able to
    reach it again (one compiled *version* of a source loop).

    Tests use this to assert the paper's structural claims, e.g. that
    the common-case version of a loop contains zero run-time type tests
    while the general version carries them all.
    """
    reachable_from_head: set[int] = set()
    stack: list[IRNode] = [head]
    order: dict[int, IRNode] = {}
    while stack:
        node = stack.pop()
        if id(node) in reachable_from_head:
            continue
        reachable_from_head.add(id(node))
        order[id(node)] = node
        for successor in node.successors:
            if successor is not None:
                stack.append(successor)
    preds = predecessors(start)
    # Walk backwards from head through predecessors that are reachable
    # from head: those lie on a cycle through it.
    on_cycle: set[int] = {id(head)}
    stack = [p for p, _ in preds.get(head, []) if id(p) in reachable_from_head]
    while stack:
        node = stack.pop()
        if id(node) in on_cycle:
            continue
        on_cycle.add(id(node))
        for p, _ in preds.get(node, []):
            if id(p) in reachable_from_head and id(p) not in on_cycle:
                stack.append(p)
    return [node for key, node in order.items() if key in on_cycle]


def reachable_loop_heads(start: IRNode) -> list[LoopHeadNode]:
    heads = [n for n in iter_nodes(start) if isinstance(n, LoopHeadNode)]
    heads.sort(key=lambda n: (n.loop_id, n.version))
    return heads
