"""Runtime value representations for the SELF-like guest language.

Value kinds and their host representations:

===============  ==========================================================
guest value      host representation
===============  ==========================================================
small integer    a plain Python ``int`` within ``[SMALLINT_MIN,
                 SMALLINT_MAX]`` (the 31-bit tagged-integer range of the
                 original SELF implementation)
big integer      :class:`BigInt` wrapping a Python ``int`` outside that
                 range (the result of a small-integer overflow, promoted
                 by the standard library's failure blocks)
float            a plain Python ``float``
string           a plain Python ``str``
vector           :class:`SelfVector` (fixed-length mutable array)
slot object      :class:`SelfObject` (a map plus a data vector)
block            :class:`SelfBlock` (code plus the lexical frame link)
method           :class:`SelfMethod` (named code stored in a slot)
nil/true/false   dedicated :class:`SelfObject` singletons owned by the
                 world's :class:`~repro.world.bootstrap.Universe`
===============  ==========================================================

Using unboxed host ``int``/``float``/``str`` for the common immutable
values keeps the interpreter and the bytecode VM fast, at the cost of a
``map_of`` dispatch function instead of an attribute read.  That function
lives on the :class:`~repro.world.bootstrap.Universe`, because each world
owns its own canonical maps (so tests can build isolated worlds).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from .maps import Map

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..lang.ast_nodes import BlockNode, MethodNode

# ---------------------------------------------------------------------------
# The tagged small-integer range (31-bit, as in the original SELF system).
# ---------------------------------------------------------------------------

SMALLINT_BITS = 31
SMALLINT_MIN = -(2 ** (SMALLINT_BITS - 1))
SMALLINT_MAX = 2 ** (SMALLINT_BITS - 1) - 1


def fits_smallint(value: int) -> bool:
    """Whether ``value`` is representable as a tagged small integer."""
    return SMALLINT_MIN <= value <= SMALLINT_MAX


class BigInt:
    """An arbitrary-precision integer that escaped the small-int range.

    The standard library creates these in the failure blocks of the
    arithmetic primitives (overflow promotion), mirroring how real SELF
    promotes to bignums.  Arithmetic on :class:`BigInt` goes through the
    ``_Big*`` primitives, which normalize results back to plain ints when
    they re-enter the small range.
    """

    __slots__ = ("value",)

    def __init__(self, value: int) -> None:
        self.value = value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, BigInt) and other.value == self.value

    def __hash__(self) -> int:
        return hash(("BigInt", self.value))

    def __repr__(self) -> str:
        return f"BigInt({self.value})"


def normalize_int(value: int):
    """Return ``value`` as a guest integer: plain int if small, else BigInt."""
    if fits_smallint(value):
        return value
    return BigInt(value)


def guest_int_value(value) -> Optional[int]:
    """The host integer behind a guest integer, or ``None`` if not one."""
    if isinstance(value, bool):  # bool is an int subclass; guard explicitly
        return None
    if isinstance(value, int):
        return value
    if isinstance(value, BigInt):
        return value.value
    return None


class SelfObject:
    """An ordinary slot object: a map plus per-object mutable data.

    ``data[i]`` holds the value of the data slot whose map entry carries
    ``offset == i``.  The map is reassignable only during bootstrap (when
    the world adds slots to the well-known objects); compiled code relies
    on maps being stable afterwards.
    """

    __slots__ = ("map", "data")

    def __init__(self, map: Map, data: Optional[list] = None) -> None:
        self.map = map
        if data is None:
            data = [None] * map.data_size
        self.data = data

    def clone(self) -> "SelfObject":
        return SelfObject(self.map, list(self.data))

    def get_data(self, offset: int):
        return self.data[offset]

    def set_data(self, offset: int, value) -> None:
        self.data[offset] = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<a {self.map.name}>"


class SelfVector:
    """A fixed-length mutable array (SELF's ``vector``)."""

    __slots__ = ("map", "elements")

    def __init__(self, map: Map, elements: list) -> None:
        self.map = map
        self.elements = elements

    def clone(self) -> "SelfVector":
        return SelfVector(self.map, list(self.elements))

    @property
    def size(self) -> int:
        return len(self.elements)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        preview = ", ".join(repr(e) for e in self.elements[:4])
        if len(self.elements) > 4:
            preview += ", ..."
        return f"<vector[{len(self.elements)}] {preview}>"


class SelfMethod:
    """Code stored in a (constant) slot; invoked on lookup.

    The compiler customizes a method per receiver map, so a single
    :class:`SelfMethod` can have several compiled versions; those live in
    the runtime's code cache keyed by ``(method, receiver_map)``, not
    here.
    """

    __slots__ = ("selector", "code", "holder_name")

    def __init__(self, selector: str, code: "MethodNode", holder_name: str = "") -> None:
        self.selector = selector
        self.code = code
        self.holder_name = holder_name

    @property
    def argument_names(self) -> tuple[str, ...]:
        return self.code.argument_names

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        holder = f"{self.holder_name}." if self.holder_name else ""
        return f"<method {holder}{self.selector}>"


class SelfBlock:
    """A block closure: block code plus the lexically enclosing frame.

    Every block *literal* in the source has its own map (created by the
    parser via the world), so the compiler's map types identify block
    code statically — that is what lets ``whileTrue:`` and friends be
    inlined.  ``home`` is the activation that created the closure; it is
    ``None`` for blocks the compiler fully inlined (those never
    materialize at run time).
    """

    __slots__ = ("map", "code", "home", "env_map", "captured_self")

    def __init__(
        self, map: Map, code: "BlockNode", home, env_map=None, captured_self=None
    ) -> None:
        self.map = map
        self.code = code
        self.home = home
        #: for VM-created closures: free-name -> concrete environment
        #: key in the creating frame (None for interpreter closures)
        self.env_map = env_map
        #: the conceptual receiver at creation time.  When the creating
        #: method was inlined, the physical frame's receiver is the
        #: *caller's* self; the closure must remember its own.  None
        #: means "use home.receiver" (interpreter closures).
        self.captured_self = captured_self

    @property
    def arity(self) -> int:
        return len(self.code.argument_names)

    @property
    def value_selector(self) -> str:
        """The selector that invokes this block (``value``, ``value:``, ...)."""
        return block_value_selector(self.arity)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<block/{self.arity} {self.map.name}>"


def block_value_selector(arity: int) -> str:
    """The canonical invocation selector for a block of the given arity."""
    if arity == 0:
        return "value"
    if arity == 1:
        return "value:"
    return "value:" + "With:" * (arity - 1)
