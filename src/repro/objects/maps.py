"""Maps: the hidden classes of the SELF object model.

SELF has no classes; to recover the space- and information-efficiency of
classes, the implementation gives every object a *map* describing its
format (which slots it has, which of them are mutable data slots, which
are parents).  Objects created by cloning share their prototype's map, so
in a running program there are few maps and many objects — exactly the
property the compiler's *class types* rely on (see the paper, section 3.1,
footnote 2: "the class type becomes the set of all values that share the
same map").

A :class:`Map` is immutable once built.  Adding a slot to an object (only
possible through the bootstrap ``_AddSlots:`` machinery, not in compiled
benchmark code) creates a fresh map.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Iterator, Optional

from .errors import SlotExists

# ---------------------------------------------------------------------------
# Slot kinds
# ---------------------------------------------------------------------------

#: Constant slot: holds an immutable value (methods, shared constants,
#: parent objects).  Stored in the map itself, shared by all clones.
CONSTANT = "constant"

#: Data slot: mutable per-object storage.  The map stores the *offset* into
#: the object's data vector; reading goes through an implicit accessor
#: message and writing through the matching assignment slot (``name:``).
DATA = "data"

#: Assignment slot: the write half of a data slot; ``x <- 0`` defines both
#: the data slot ``x`` and the assignment slot ``x:``.
ASSIGNMENT = "assignment"

#: Argument slot: a method's formal parameter (only appears in method maps).
ARGUMENT = "argument"

_SLOT_KINDS = (CONSTANT, DATA, ASSIGNMENT, ARGUMENT)


class Slot:
    """One named slot in a map.

    Attributes:
        name: the selector that reads (or for assignment slots, writes)
            this slot.
        kind: one of :data:`CONSTANT`, :data:`DATA`, :data:`ASSIGNMENT`,
            :data:`ARGUMENT`.
        value: for constant slots, the stored value; ``None`` otherwise.
        offset: for data and assignment slots, the index into the
            object's data vector; for argument slots the argument index.
        is_parent: whether lookup should continue through this slot
            (``parent*`` slots).  Only constant and data slots may be
            parents.
    """

    __slots__ = ("name", "kind", "value", "offset", "is_parent")

    def __init__(
        self,
        name: str,
        kind: str,
        value: object = None,
        offset: int = -1,
        is_parent: bool = False,
    ) -> None:
        if kind not in _SLOT_KINDS:
            raise ValueError(f"bad slot kind: {kind!r}")
        self.name = name
        self.kind = kind
        self.value = value
        self.offset = offset
        self.is_parent = is_parent

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        star = "*" if self.is_parent else ""
        return f"<Slot {self.name}{star} {self.kind} @{self.offset}>"


_map_ids = itertools.count(1)


class Map:
    """An immutable object layout descriptor (a hidden class).

    ``kind`` tags well-known layouts so the compiler and VM can special
    case them cheaply:

    * ``'object'``   — ordinary slot objects
    * ``'smallInt'`` — tagged small integers (31-bit range)
    * ``'bigInt'``   — arbitrary-precision integers (overflow results)
    * ``'float'``    — floating point numbers
    * ``'string'``   — immutable strings
    * ``'vector'``   — indexable arrays
    * ``'block'``    — block closures
    * ``'method'``   — method objects
    * ``'boolean'``  — ``true`` and ``false`` (each has its *own* map so a
      value type for ``true`` is also a map type)
    * ``'nil'``      — the singleton ``nil``
    """

    __slots__ = (
        "map_id",
        "name",
        "kind",
        "slots",
        "data_size",
        "_parent_slots",
        "_lookup_cache",
        "_lookup_deps",
        "_cache_epoch",
    )

    def __init__(
        self,
        name: str,
        slots: Iterable[Slot] = (),
        kind: str = "object",
    ) -> None:
        self.map_id = next(_map_ids)
        self.name = name
        self.kind = kind
        self.slots: dict[str, Slot] = {}
        data_size = 0
        for slot in slots:
            if slot.name in self.slots:
                raise SlotExists(slot.name)
            self.slots[slot.name] = slot
            if slot.kind == DATA:
                data_size = max(data_size, slot.offset + 1)
        self.data_size = data_size
        self._parent_slots = tuple(s for s in self.slots.values() if s.is_parent)
        self._lookup_cache: dict[str, object] = {}
        #: per-selector frozensets of the map ids the lookup consulted
        #: (receiver map + parents up to the holder), kept in lockstep
        #: with ``_lookup_cache``; PIC rows record these as their
        #: invalidation scope
        self._lookup_deps: dict[str, frozenset] = {}
        self._cache_epoch = -1

    # -- construction helpers ------------------------------------------------

    @staticmethod
    def build(
        name: str,
        constants: Optional[dict[str, object]] = None,
        data: Iterable[str] = (),
        parents: Optional[dict[str, object]] = None,
        kind: str = "object",
    ) -> "Map":
        """Build a map from separate constant / data / parent descriptions.

        Data slots are assigned consecutive offsets in iteration order and
        each automatically gets its assignment slot ``name:``.
        """
        slots: list[Slot] = []
        for cname, cvalue in (constants or {}).items():
            slots.append(Slot(cname, CONSTANT, value=cvalue))
        for pname, pvalue in (parents or {}).items():
            slots.append(Slot(pname, CONSTANT, value=pvalue, is_parent=True))
        for offset, dname in enumerate(data):
            slots.append(Slot(dname, DATA, offset=offset))
            slots.append(Slot(dname + ":", ASSIGNMENT, offset=offset))
        return Map(name, slots, kind=kind)

    def with_added_slots(self, new_slots: Iterable[Slot], name: str = "") -> "Map":
        """Return a fresh map extending this one (same-name slots replace)."""
        merged: dict[str, Slot] = dict(self.slots)
        for slot in new_slots:
            merged[slot.name] = slot
        return Map(name or self.name, merged.values(), kind=self.kind)

    def with_removed_slot(self, name: str) -> "Map":
        """Return a fresh map without ``name``.

        Removing a data slot removes its assignment twin (``name:``) as
        well; remaining data offsets are kept as-is (holes are fine —
        ``data_size`` stays the maximum used offset + 1, and clones keep
        their storage vectors untouched).
        """
        if name not in self.slots:
            raise KeyError(name)
        removed = self.slots[name]
        remaining = dict(self.slots)
        del remaining[name]
        if removed.kind == DATA:
            remaining.pop(name + ":", None)
        elif removed.kind == ASSIGNMENT:
            remaining.pop(name[:-1], None)
        return Map(self.name, remaining.values(), kind=self.kind)

    def with_replaced_constant(self, name: str, value: object) -> "Map":
        """Return a fresh map with constant slot ``name`` holding ``value``."""
        existing = self.slots.get(name)
        if existing is None or existing.kind != CONSTANT:
            raise KeyError(f"no constant slot {name!r}")
        replacement = Slot(name, CONSTANT, value=value, is_parent=existing.is_parent)
        merged = dict(self.slots)
        merged[name] = replacement
        return Map(self.name, merged.values(), kind=self.kind)

    def forked(self, clone_value, register) -> "Map":
        """Return this map's twin for a forked universe.

        The twin gets a fresh ``map_id`` (compiled code and inline
        caches key on map identity, so two universes must never share
        one) and fresh, empty lookup caches.  ``clone_value`` maps a
        constant slot value into the forked universe; a :class:`Slot`
        whose value clones to itself (immutable values: ints, strings,
        methods) is shared outright.  ``register`` is called with the
        twin *before* any slot value is cloned so cyclic constant
        graphs (the lobby names itself) terminate.
        """
        twin = Map.__new__(Map)
        twin.map_id = next(_map_ids)
        twin.name = self.name
        twin.kind = self.kind
        twin.slots = {}
        twin.data_size = self.data_size
        twin._parent_slots = ()
        twin._lookup_cache = {}
        twin._lookup_deps = {}
        twin._cache_epoch = -1
        register(twin)
        for name, slot in self.slots.items():
            if slot.kind == CONSTANT:
                cloned = clone_value(slot.value)
                if cloned is slot.value:
                    twin.slots[name] = slot
                else:
                    twin.slots[name] = Slot(
                        name, CONSTANT, value=cloned, is_parent=slot.is_parent
                    )
            else:
                # Data/assignment/argument slots carry only offsets —
                # immutable descriptors, safely shared across universes.
                twin.slots[name] = slot
        twin._parent_slots = tuple(
            s for s in twin.slots.values() if s.is_parent
        )
        return twin

    # -- queries -------------------------------------------------------------

    def own_slot(self, name: str) -> Optional[Slot]:
        """The slot directly present in this map, or ``None``."""
        return self.slots.get(name)

    def parent_slots(self) -> tuple[Slot, ...]:
        return self._parent_slots

    def iter_slots(self) -> Iterator[Slot]:
        return iter(self.slots.values())

    @property
    def is_integer(self) -> bool:
        return self.kind in ("smallInt", "bigInt")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Map #{self.map_id} {self.name} ({self.kind})>"
