"""Error types raised by the SELF-like runtime.

All errors that correspond to *language-level* failures (message not
understood, primitive failure with the default failure handler, block
non-local-return into a dead activation, ...) derive from
:class:`SelfError`, so embedding code can catch everything from the guest
language with a single ``except SelfError``.

Errors that indicate a bug in the host implementation (malformed IR,
compiler invariant violations) derive from :class:`ReproInternalError`
instead and are never raised by well-formed guest programs.

Taxonomy audit (every exception in the tree belongs to exactly one
family):

* guest-visible failures — subclasses of :class:`SelfError`;
* host bugs and induced faults — subclasses of
  :class:`ReproInternalError` (including :class:`InjectedFault` from the
  fault-injection framework and :class:`CompileTimeout` from the compile
  watchdog, both of which the tiered pipeline in
  :mod:`repro.robustness.tiers` contains by degrading);
* control-flow signals that are deliberately in *neither* family, so a
  broad ``except SelfError``/``except ReproInternalError`` can never
  swallow them: ``PrimFailSignal`` (primitive failure, handled at the
  call site), ``BudgetExhausted`` (node-budget retry inside the
  compiler), ``NonLocalUnwind`` and the interpreter's ``_NonLocalReturn``
  (both unwind a ``^`` to its home activation).
"""

from __future__ import annotations


class SelfError(Exception):
    """Base class for all guest-language-level errors."""


class SelfParseError(SelfError):
    """Raised by the lexer/parser on malformed source code.

    Carries the 1-based source position so tools can point at the
    offending token.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        self.line = line
        self.column = column
        if line:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class MessageNotUnderstood(SelfError):
    """A message send found no matching slot in the receiver or its parents."""

    def __init__(self, selector: str, receiver_description: str) -> None:
        self.selector = selector
        self.receiver_description = receiver_description
        super().__init__(
            f"message not understood: {selector!r} sent to {receiver_description}"
        )


class AmbiguousLookup(SelfError):
    """Message lookup found the selector in two unrelated parents."""

    def __init__(self, selector: str) -> None:
        self.selector = selector
        super().__init__(f"ambiguous lookup for selector {selector!r}")


class PrimitiveFailed(SelfError):
    """A robust primitive failed and the default failure handler ran.

    ``code`` is the primitive failure code, a short string such as
    ``'badTypeError'``, ``'overflowError'``, ``'outOfBoundsError'`` or
    ``'divisionByZeroError'`` — mirroring the error strings the real SELF
    system passes to failure blocks.
    """

    def __init__(self, primitive: str, code: str) -> None:
        self.primitive = primitive
        self.code = code
        super().__init__(f"primitive {primitive} failed: {code}")


class NonLocalReturnFromDeadActivation(SelfError):
    """A block performed ``^`` after its home method already returned."""

    def __init__(self) -> None:
        super().__init__("non-local return from a block whose home has returned")


class WrongBlockArity(SelfError):
    """A block was invoked with the wrong number of ``value:`` arguments."""

    def __init__(self, expected: int, got: int) -> None:
        self.expected = expected
        self.got = got
        super().__init__(f"block expects {expected} argument(s), got {got}")


class SlotExists(SelfError):
    """An ``_AddSlots:`` style operation tried to redefine a constant slot."""

    def __init__(self, name: str) -> None:
        self.slot_name = name
        super().__init__(f"slot already exists: {name!r}")


class GuestError(SelfError):
    """A guest program called the ``error:`` routine explicitly."""

    def __init__(self, message: str) -> None:
        super().__init__(f"error: {message}")


class ReproInternalError(Exception):
    """An invariant of the host implementation was violated (a bug here,
    not in the guest program)."""


class CompilerError(ReproInternalError):
    """The optimizing compiler reached an inconsistent state."""


class CodegenError(ReproInternalError):
    """The bytecode backend could not lower a control-flow graph."""


class VMError(ReproInternalError):
    """The bytecode interpreter hit a malformed instruction stream."""


class CompileTimeout(ReproInternalError):
    """The compile watchdog expired (wall clock or fuel) before the
    compiler finished; the tiered pipeline retries pessimistically."""

    def __init__(self, reason: str) -> None:
        self.reason = reason
        super().__init__(f"compilation watchdog expired ({reason})")


class DeadlineExceeded(ReproInternalError):
    """An execution budget expired (wall clock or fuel) while guest code
    was running; the serving supervisor kills the request and resets the
    tenant runtime's frame stack."""

    def __init__(self, reason: str) -> None:
        self.reason = reason
        super().__init__(f"execution deadline exceeded ({reason})")


class InjectedFault(ReproInternalError):
    """A fault deliberately raised by :mod:`repro.robustness.faults`.

    Never raised in production configurations — only when fault
    injection is armed (``REPRO_FAULTS`` or a programmatic plan).  It
    derives from :class:`ReproInternalError` because an injected fault
    models a host defect, and must be contained the same way.
    """

    def __init__(self, site: str, hit: int) -> None:
        self.site = site
        self.hit = hit
        super().__init__(f"injected fault at {site!r} (hit #{hit})")
