"""Inline-cache lifecycle telemetry: per-site states and transitions.

The paper's richards anomaly (section 6.1) is a *lifecycle* story: one
task-dispatch send site drifts from monomorphic through polymorphic to
a miss-thrashing steady state, and the whole benchmark's profile tips
over.  The counters on :class:`~repro.vm.code.InlineCacheSite` record
the totals; this module records the *trajectory*:

* every site's current **state** — ``empty`` → ``monomorphic`` →
  ``polymorphic(k)`` → ``miss-thrash`` (and back to ``monomorphic``
  after an invalidation flush cleared its entries);
* the **transition log** — ``(tick, from, to)`` triples stamped with
  the profiler's deterministic activation-tick clock, so two runs of
  the same workload produce byte-identical trajectories;
* the **receiver-map fan-out** per site and its histogram across sites.

State is *derived* from the site's own counters at every cold-path
event (the tracker is only consulted from
:func:`~repro.vm.dispatch._send_miss`, never from the monomorphic hit
path), so tracking costs nothing on hits and a dictionary probe on
misses — and nothing at all when profiling is off.
"""

from __future__ import annotations

from typing import Optional

STATE_EMPTY = "empty"
STATE_MONOMORPHIC = "monomorphic"
STATE_THRASH = "miss-thrash"

#: a polymorphic site whose cache keeps relinking is "thrashing" once
#: it has relinked this many times *and* relinked more than it hit —
#: the monomorphic cache is doing net-negative work at that point
THRASH_MIN_RELINKS = 16


def polymorphic_state(fanout: int) -> str:
    return f"polymorphic({fanout})"


def classify_site(site) -> str:
    """The lifecycle state a site's own counters imply right now."""
    fanout = len(site.entries)
    if fanout == 0:
        return STATE_EMPTY
    if fanout == 1:
        return STATE_MONOMORPHIC
    if site.relinks >= THRASH_MIN_RELINKS and site.relinks > site.hits:
        return STATE_THRASH
    return polymorphic_state(fanout)


class SiteRecord:
    """One tracked inline-cache site's trajectory.

    Holds a strong reference to the site: the record outlives the code
    body (retirement drops the body from the runtime's caches, not from
    here), and the ``id()``-keyed tracker table must never see a reused
    identity.
    """

    __slots__ = ("site", "state", "transitions")

    def __init__(self, site) -> None:
        self.site = site
        self.state = STATE_EMPTY
        #: (tick, from_state, to_state) triples, in tick order
        self.transitions: list[tuple] = []

    def note(self, tick: int) -> None:
        state = classify_site(self.site)
        if state != self.state:
            self.transitions.append((tick, self.state, state))
            self.state = state


class ICLifecycleTracker:
    """Every profiled site's :class:`SiteRecord`, keyed by identity."""

    __slots__ = ("records", "events")

    def __init__(self) -> None:
        self.records: dict[int, SiteRecord] = {}
        #: cold-path events seen, by kind ("miss"/"relink"/"pic"/
        #: "mega" — the last two only when the config models PICs)
        self.events = {"miss": 0, "relink": 0, "pic": 0, "mega": 0}

    def note(self, site, kind: str, tick: int) -> None:
        self.events[kind] += 1
        record = self.records.get(id(site))
        if record is None:
            record = self.records[id(site)] = SiteRecord(site)
        record.note(tick)

    def record_for(self, site) -> Optional[SiteRecord]:
        record = self.records.get(id(site))
        if record is not None and record.site is site:
            return record
        return None


# ---------------------------------------------------------------------------
# Aggregation: site objects -> stable, deterministic rows
# ---------------------------------------------------------------------------


def site_key(site) -> tuple:
    """The stable identity of a send site: (owner body, stream index,
    selector).  Share clones re-predecode the same body per receiver
    map, so several live site *objects* aggregate under one key — the
    paper's numbers are per source-level send site, not per clone."""
    return (site.owner, site.index, site.selector)


def collect_sites(codes, tracker: Optional[ICLifecycleTracker] = None) -> list[dict]:
    """Aggregate every inline-cache site of ``codes`` into rows.

    Rows are keyed by :func:`site_key` and sorted hottest-first (send
    count, then key) — a deterministic order, so the serialized profile
    is byte-identical across runs.  Sites that never dispatched a send
    are omitted.
    """
    rows: dict[tuple, dict] = {}
    for code in codes:
        for site in getattr(code, "ic_sites", ()):
            sends = site.hits + site.misses + site.relinks
            if sends == 0:
                continue
            key = site_key(site)
            row = rows.get(key)
            if row is None:
                row = rows[key] = {
                    "owner": site.owner,
                    "index": site.index,
                    "selector": site.selector,
                    "sends": 0,
                    "hits": 0,
                    "misses": 0,
                    "relinks": 0,
                    "fanout": 0,
                    "pic_depth": 0,
                    "mega": False,
                    "state": STATE_EMPTY,
                    "transitions": [],
                }
            row["sends"] += sends
            row["hits"] += site.hits
            row["misses"] += site.misses
            row["relinks"] += site.relinks
            row["fanout"] = max(row["fanout"], len(site.entries))
            # Dispatch-ladder state (REPRO_PIC=1): deepest bounded PIC
            # across the clones, and whether any clone overflowed into
            # the shared megamorphic table.
            if site.pic is not None:
                row["pic_depth"] = max(row["pic_depth"], len(site.pic))
            if site.mega is not None:
                row["mega"] = True
            if tracker is not None:
                record = tracker.record_for(site)
                if record is not None:
                    row["transitions"].extend(
                        list(t) for t in record.transitions
                    )
    out = []
    for key in sorted(rows, key=lambda k: (-rows[k]["sends"], k)):
        row = rows[key]
        row["transitions"].sort()
        # The aggregate's state derives from the aggregate's counters —
        # a thrash verdict should not flip because one clone was quiet.
        fanout = row["fanout"]
        if fanout == 0:
            state = STATE_EMPTY
        elif fanout == 1:
            state = STATE_MONOMORPHIC
        elif (
            row["relinks"] >= THRASH_MIN_RELINKS
            and row["relinks"] > row["hits"]
        ):
            state = STATE_THRASH
        else:
            state = polymorphic_state(fanout)
        row["state"] = state
        out.append(row)
    return out


def fanout_histogram(site_rows: list[dict]) -> dict:
    """How many sites saw k distinct receiver maps, for each k."""
    histogram: dict[str, int] = {}
    for row in site_rows:
        key = str(row["fanout"])
        histogram[key] = histogram.get(key, 0) + 1
    return {key: histogram[key] for key in sorted(histogram, key=int)}
