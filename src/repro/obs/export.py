"""Trace exporters: JSON-lines, Chrome trace-event format, schema check.

Two serializations of one :class:`~repro.obs.trace.Tracer`:

* **JSON lines** — one object per span or event, depth-first, carrying
  ``seq``/``depth`` so the hierarchy reconstructs without parsing state.
  The format a script greps or loads into pandas.
* **Chrome trace-event** — the ``chrome://tracing`` / Perfetto JSON
  format: spans become complete (``"ph": "X"``) events with ``ts``/
  ``dur`` in microseconds, instant events become ``"ph": "i"``.  Load
  the file in ``chrome://tracing`` to see the compile pipeline laid
  out on a timeline.

Plus :func:`check_schema`, a small JSON-Schema-subset validator (the
container has no ``jsonschema``; the subset here — type / required /
properties / items / enum / minimum — covers everything the trace and
results schemas use), and the two schemas themselves.
"""

from __future__ import annotations

import json
from typing import IO, Union

from .trace import Tracer

# ---------------------------------------------------------------------------
# JSON lines
# ---------------------------------------------------------------------------


def _clean_attrs(attrs: dict) -> dict:
    """Attributes must serialize: non-primitive values become repr()."""
    out = {}
    for key, value in attrs.items():
        if isinstance(value, (int, float, str, bool, type(None))):
            out[key] = value
        else:
            out[key] = repr(value)
    return out


def to_jsonl_records(tracer: Tracer) -> list[dict]:
    """Every span and event as one flat JSON-ready record each."""
    records: list[dict] = []
    for span, depth in tracer.walk():
        records.append(
            {
                "type": "span",
                "name": span.name,
                "cat": span.category,
                "seq": span.seq,
                "depth": depth,
                "ts_us": round(span.start_us, 3),
                "dur_us": round(span.dur_us, 3),
                "attrs": _clean_attrs(span.attrs),
            }
        )
        for event in span.events:
            records.append(
                {
                    "type": "event",
                    "name": event.name,
                    "cat": event.category,
                    "seq": event.seq,
                    "depth": depth + 1,
                    "ts_us": round(event.ts_us, 3),
                    "attrs": _clean_attrs(event.attrs),
                }
            )
    for event in tracer.orphan_events:
        records.append(
            {
                "type": "event",
                "name": event.name,
                "cat": event.category,
                "seq": event.seq,
                "depth": 0,
                "ts_us": round(event.ts_us, 3),
                "attrs": _clean_attrs(event.attrs),
            }
        )
    records.sort(key=lambda r: r["seq"])
    return records


def write_jsonl(tracer: Tracer, target: Union[str, IO[str]]) -> None:
    records = to_jsonl_records(tracer)
    if isinstance(target, str):
        with open(target, "w", encoding="utf-8") as handle:
            for record in records:
                handle.write(json.dumps(record) + "\n")
    else:
        for record in records:
            target.write(json.dumps(record) + "\n")


# ---------------------------------------------------------------------------
# Chrome trace-event format
# ---------------------------------------------------------------------------

#: fixed ids: one simulated process, one thread — the pipeline is serial
_PID = 1
_TID = 1


def chrome_trace(tracer: Tracer) -> dict:
    """The trace as a ``chrome://tracing`` JSON object."""
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": _PID,
            "tid": _TID,
            "ts": 0,
            "args": {"name": "repro compile+run pipeline"},
        }
    ]
    base = None
    for span, _ in tracer.walk():
        if base is None or span.start_us < base:
            base = span.start_us
    for event in tracer.orphan_events:
        if base is None or event.ts_us < base:
            base = event.ts_us
    base = base or 0.0

    for span, _ in tracer.walk():
        events.append(
            {
                "name": span.name,
                "cat": span.category,
                "ph": "X",
                "ts": round(span.start_us - base, 3),
                "dur": round(span.dur_us, 3),
                "pid": _PID,
                "tid": _TID,
                "args": dict(_clean_attrs(span.attrs), seq=span.seq),
            }
        )
        for ev in span.events:
            events.append(
                {
                    "name": ev.name,
                    "cat": ev.category,
                    "ph": "i",
                    "ts": round(ev.ts_us - base, 3),
                    "pid": _PID,
                    "tid": _TID,
                    "s": "t",
                    "args": dict(_clean_attrs(ev.attrs), seq=ev.seq),
                }
            )
    for ev in tracer.orphan_events:
        events.append(
            {
                "name": ev.name,
                "cat": ev.category,
                "ph": "i",
                "ts": round(ev.ts_us - base, 3),
                "pid": _PID,
                "tid": _TID,
                "s": "t",
                "args": dict(_clean_attrs(ev.attrs), seq=ev.seq),
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(tracer: Tracer, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(chrome_trace(tracer), handle, indent=1)


# ---------------------------------------------------------------------------
# Schema checking (no external jsonschema dependency)
# ---------------------------------------------------------------------------


def check_schema(instance, schema: dict, path: str = "$") -> list[str]:
    """Validate ``instance`` against a JSON-Schema subset.

    Supports: ``type`` (string or list), ``required``, ``properties``,
    ``items``, ``enum``, ``minimum``.  Returns a list of problem
    strings — empty means valid.
    """
    problems: list[str] = []
    expected = schema.get("type")
    if expected is not None:
        types = expected if isinstance(expected, list) else [expected]
        checks = {
            "object": lambda v: isinstance(v, dict),
            "array": lambda v: isinstance(v, list),
            "string": lambda v: isinstance(v, str),
            "number": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
            "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
            "boolean": lambda v: isinstance(v, bool),
            "null": lambda v: v is None,
        }
        if not any(checks[t](instance) for t in types):
            return [f"{path}: expected {expected}, got {type(instance).__name__}"]
    if "enum" in schema and instance not in schema["enum"]:
        problems.append(f"{path}: {instance!r} not in {schema['enum']}")
    if "minimum" in schema and isinstance(instance, (int, float)):
        if instance < schema["minimum"]:
            problems.append(f"{path}: {instance} < minimum {schema['minimum']}")
    if isinstance(instance, dict):
        for name in schema.get("required", ()):
            if name not in instance:
                problems.append(f"{path}: missing required key {name!r}")
        for name, subschema in schema.get("properties", {}).items():
            if name in instance:
                problems.extend(check_schema(instance[name], subschema, f"{path}.{name}"))
    if isinstance(instance, list) and "items" in schema:
        for index, item in enumerate(instance):
            problems.extend(check_schema(item, schema["items"], f"{path}[{index}]"))
    return problems


#: structural schema for the Chrome trace-event export
CHROME_TRACE_SCHEMA = {
    "type": "object",
    "required": ["traceEvents"],
    "properties": {
        "traceEvents": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["name", "ph", "ts", "pid", "tid"],
                "properties": {
                    "name": {"type": "string"},
                    "ph": {"type": "string", "enum": ["X", "i", "B", "E", "M"]},
                    "ts": {"type": "number", "minimum": 0},
                    "dur": {"type": "number", "minimum": 0},
                    "pid": {"type": "integer"},
                    "tid": {"type": "integer"},
                    "args": {"type": "object"},
                },
            },
        },
    },
}

#: schema for one JSON-lines record
JSONL_RECORD_SCHEMA = {
    "type": "object",
    "required": ["type", "name", "cat", "seq", "depth", "ts_us"],
    "properties": {
        "type": {"type": "string", "enum": ["span", "event"]},
        "name": {"type": "string"},
        "cat": {"type": "string"},
        "seq": {"type": "integer", "minimum": 1},
        "depth": {"type": "integer", "minimum": 0},
        "ts_us": {"type": "number"},
        "dur_us": {"type": "number", "minimum": 0},
        "attrs": {"type": "object"},
    },
}


def validate_chrome_trace(obj: dict) -> list[str]:
    """Structural problems in a Chrome trace object ([] when loadable).

    Beyond the schema: every complete event needs a duration, and the
    trace must contain at least one non-metadata event (an empty trace
    loads as a blank screen, which always means a wiring bug here).
    """
    problems = check_schema(obj, CHROME_TRACE_SCHEMA)
    if problems:
        return problems
    real = [e for e in obj["traceEvents"] if e["ph"] != "M"]
    if not real:
        problems.append("$.traceEvents: no span or event entries")
    for index, event in enumerate(obj["traceEvents"]):
        if event["ph"] == "X" and "dur" not in event:
            problems.append(f"$.traceEvents[{index}]: complete event without dur")
    return problems


# ---------------------------------------------------------------------------
# Profile exporters: speedscope and collapsed stacks
# ---------------------------------------------------------------------------
# Both consume the dict produced by Profiler.snapshot().  The speedscope
# document carries TWO sampled profiles: the activation-tick stacks
# (where did execution go, as a flamegraph) and the send sites (one
# single-frame sample per site, weighted by its send count) — so the
# "hottest send sites" view of the tools and the export agree on the
# exact same numbers.


def _site_frame_name(row: dict) -> str:
    return f"{row['owner']}#{row['index']} {row['selector']}"


def speedscope_profile(profile: dict, name: str = "repro profile") -> dict:
    """A speedscope (https://www.speedscope.app) file for a profiler
    snapshot.  Deterministic: frames and samples preserve the
    snapshot's own (sorted) order, and weights are tick/send counts,
    not wall time."""
    frames: list[dict] = []
    frame_index: dict[str, int] = {}

    def frame(label: str) -> int:
        index = frame_index.get(label)
        if index is None:
            index = frame_index[label] = len(frames)
            frames.append({"name": label})
        return index

    tick_samples = []
    tick_weights = []
    for entry in profile.get("stacks", []):
        tick_samples.append([frame(label) for label in entry["frames"]])
        tick_weights.append(entry["ticks"])
    site_samples = []
    site_weights = []
    for row in profile.get("sites", []):
        site_samples.append([frame(_site_frame_name(row))])
        site_weights.append(row["sends"])
    total_ticks = sum(tick_weights)
    total_sends = sum(site_weights)
    return {
        "$schema": "https://www.speedscope.app/file-format-schema.json",
        "name": name,
        "exporter": "repro-obs",
        "shared": {"frames": frames},
        "profiles": [
            {
                "type": "sampled",
                "name": f"{name}: activation ticks",
                "unit": "none",
                "startValue": 0,
                "endValue": total_ticks,
                "samples": tick_samples,
                "weights": tick_weights,
            },
            {
                "type": "sampled",
                "name": f"{name}: send sites",
                "unit": "none",
                "startValue": 0,
                "endValue": total_sends,
                "samples": site_samples,
                "weights": site_weights,
            },
        ],
    }


#: structural schema for the speedscope export (subset validator above)
SPEEDSCOPE_SCHEMA = {
    "type": "object",
    "required": ["$schema", "shared", "profiles"],
    "properties": {
        "$schema": {"type": "string"},
        "name": {"type": "string"},
        "shared": {
            "type": "object",
            "required": ["frames"],
            "properties": {
                "frames": {
                    "type": "array",
                    "items": {
                        "type": "object",
                        "required": ["name"],
                        "properties": {"name": {"type": "string"}},
                    },
                },
            },
        },
        "profiles": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["type", "name", "unit", "samples", "weights"],
                "properties": {
                    "type": {"type": "string", "enum": ["sampled", "evented"]},
                    "name": {"type": "string"},
                    "unit": {"type": "string"},
                    "startValue": {"type": "number", "minimum": 0},
                    "endValue": {"type": "number", "minimum": 0},
                    "samples": {
                        "type": "array",
                        "items": {
                            "type": "array",
                            "items": {"type": "integer", "minimum": 0},
                        },
                    },
                    "weights": {
                        "type": "array",
                        "items": {"type": "number", "minimum": 0},
                    },
                },
            },
        },
    },
}


def validate_speedscope(doc: dict) -> list[str]:
    """Structural problems in a speedscope document ([] when loadable).

    Beyond the schema: every profile's samples/weights arrays must pair
    up one-to-one, and every sample's frame indices must point into the
    shared frame table.
    """
    problems = check_schema(doc, SPEEDSCOPE_SCHEMA)
    if problems:
        return problems
    n_frames = len(doc["shared"]["frames"])
    for p, prof in enumerate(doc["profiles"]):
        if len(prof["samples"]) != len(prof["weights"]):
            problems.append(
                f"$.profiles[{p}]: {len(prof['samples'])} samples vs "
                f"{len(prof['weights'])} weights"
            )
        for s, sample in enumerate(prof["samples"]):
            for index in sample:
                if index >= n_frames:
                    problems.append(
                        f"$.profiles[{p}].samples[{s}]: frame index "
                        f"{index} outside the shared table ({n_frames})"
                    )
    return problems


def collapsed_stacks(profile: dict) -> str:
    """The activation-tick stacks in Brendan Gregg's collapsed format
    (one ``a;b;c 42`` line per stack — feed to ``flamegraph.pl``)."""
    lines = [
        ";".join(entry["frames"]) + f" {entry['ticks']}"
        for entry in profile.get("stacks", [])
        if entry["frames"]
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def write_speedscope(profile: dict, path: str, name: str = "repro profile") -> dict:
    doc = speedscope_profile(profile, name=name)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(doc, handle, indent=1, sort_keys=True)
    return doc


def write_collapsed(profile: dict, path: str) -> str:
    text = collapsed_stacks(profile)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
    return text
