"""Reconstruct the compiler's decisions as a human-readable story.

The trace records *what happened and why* at every decision point —
``dynamic_sends`` events carry the reason the send could not be
inlined, ``inline-refused`` events carry which budget refused it,
``type_tests`` events say which prediction inserted the test, loop
events tell the iterate/widen/split story.  :func:`narrate` folds that
back into the prose a compiler developer would write while stepping
through the same compile: "this send stayed dynamic because the
receiver type was unknown; this test was elided because analysis
proved the range".
"""

from __future__ import annotations

from collections import Counter as TallyCounter

from .trace import Span, Tracer


def _tally(events, *attr_names) -> TallyCounter:
    """Count events by the tuple of the given attribute values."""
    tally: TallyCounter = TallyCounter()
    for event in events:
        key = tuple(str(event.attrs.get(a, "?")) for a in attr_names)
        tally[key] += int(event.attrs.get("n", 1))
    return tally


def _span_events(span: Span) -> list:
    """Every event under a span, nested children included."""
    events = list(span.events)
    for child in span.children:
        events.extend(_span_events(child))
    return events


def _narrate_compile(span: Span) -> list[str]:
    attrs = span.attrs
    header = (
        f"compiled {attrs.get('selector', '?')!r}"
        f" for {attrs.get('receiver', '?')}"
        f" [{attrs.get('config', '?')} / tier {attrs.get('tier', '?')}]"
    )
    if attrs.get("outcome") not in (None, "ok"):
        header += f" -> {attrs['outcome']}"
    lines = [header]
    events = _span_events(span)
    by_name: dict[str, list] = {}
    for event in events:
        by_name.setdefault(event.name, []).append(event)

    def total(name: str) -> int:
        return sum(int(e.attrs.get("n", 1)) for e in by_name.get(name, ()))

    inlined = total("inlined_sends")
    dynamic = total("dynamic_sends")
    if inlined or dynamic:
        lines.append(f"  sends: {inlined} inlined, {dynamic} left dynamic")
    for (selector, reason), count in sorted(
        _tally(by_name.get("dynamic_sends", ()), "selector", "reason").items()
    ):
        suffix = f" (x{count})" if count > 1 else ""
        lines.append(f"    dynamic {selector!r}: {reason}{suffix}")
    for (selector, reason), count in sorted(
        _tally(by_name.get("inline-refused", ()), "selector", "reason").items()
    ):
        suffix = f" (x{count})" if count > 1 else ""
        lines.append(f"    not inlined {selector!r}: {reason}{suffix}")

    tests = total("type_tests")
    elided = total("type_tests_elided")
    checks_gone = total("overflow_checks_elided") + total("bounds_checks_elided")
    if tests or elided or checks_gone:
        lines.append(
            f"  checks: {tests} type tests emitted, {elided} elided, "
            f"{checks_gone} overflow/bounds checks elided"
        )
    for (selector, why), count in sorted(
        _tally(by_name.get("type_tests", ()), "selector", "why").items()
    ):
        suffix = f" (x{count})" if count > 1 else ""
        lines.append(f"    test before {selector!r}: {why}{suffix}")

    for event in by_name.get("loop_analysis_iterations", ()):
        lines.append(
            f"  loop L{event.attrs.get('loop_id')}: analysis round "
            f"{event.attrs.get('round')}"
        )
    for event in by_name.get("loop-widen", ()):
        lines.append(
            f"    widened {event.attrs.get('var')}: "
            f"{event.attrs.get('from')} -> {event.attrs.get('to')}"
        )
    for event in by_name.get("loop-split", ()):
        lines.append(
            f"  loop L{event.attrs.get('loop_id')}: split into "
            f"{event.attrs.get('versions')} versions "
            f"(specialized on {event.attrs.get('split_vars', '?')})"
        )
    for event in by_name.get("loop-pessimistic", ()):
        lines.append(
            f"  loop L{event.attrs.get('loop_id')}: pessimistic single "
            f"version ({event.attrs.get('reason')})"
        )
    for event in by_name.get("split-folded", ()):
        lines.append(
            f"  splitting: folded {event.attrs.get('groups')} front groups "
            f"into {event.attrs.get('kept')} (front budget "
            f"{event.attrs.get('max_fronts')})"
        )
    for event in by_name.get("tier-degrade", ()):
        lines.append(
            f"  DEGRADED {event.attrs.get('from_tier')} -> "
            f"{event.attrs.get('to_tier')}: {event.attrs.get('error')}"
        )
    return lines


def narrate(tracer: Tracer, max_compiles: int = 50) -> str:
    """The whole trace as a story, one paragraph per compiled body."""
    lines = ["trace narrative", "==============="]
    compiles = tracer.spans_named("compile")
    shown = compiles[:max_compiles]
    for span in shown:
        lines.append("")
        lines.extend(_narrate_compile(span))
    if len(compiles) > len(shown):
        lines.append("")
        lines.append(f"... and {len(compiles) - len(shown)} more compiles")
    degradations = tracer.events_named("tier-degrade")
    lines.append("")
    lines.append(
        f"{len(compiles)} compilation attempts, "
        f"{len(degradations)} tier degradations"
    )
    return "\n".join(lines)
