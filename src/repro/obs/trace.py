"""Hierarchical spans and instant events for the compile/run pipeline.

A :class:`Tracer` records a tree of :class:`Span` objects (one per
bracketed phase: a tier attempt, the type-analysis pass, codegen, …)
and flat instant events hung off the innermost open span (one per
point decision: a send inlined, a type test emitted, a loop-analysis
round, a tier degradation).

Design constraints, in order:

1. **Disabled is free.**  The default tracer everywhere is
   :data:`NULL_TRACER`; every call on it is a constant no-op, and hot
   call sites additionally guard with ``if tracer.enabled:`` so no
   attribute dict is ever built.  The modeled measurements (cycles,
   instructions, code bytes) never flow through the tracer at all, so
   they are bit-identical with tracing on or off.
2. **Deterministic ordering.**  Every span and event carries a
   monotonically increasing ``seq`` number; tests assert on structure
   and totals, never on wall-clock timestamps.
3. **Wall time is diagnostic.**  Spans also record host-clock start
   and duration (microseconds) so the Chrome trace-event export lays
   out a real timeline; two runs of the same workload produce the same
   *shape* with different timings.
"""

from __future__ import annotations

import time
from typing import Callable, Iterator, Optional

#: span/event categories (the Chrome export's ``cat`` field)
CAT_COMPILE = "compile"
CAT_RUNTIME = "runtime"
CAT_ROBUSTNESS = "robustness"


class Span:
    """One bracketed phase: a name, attributes, children, and events."""

    __slots__ = (
        "name", "category", "attrs", "seq", "start_us", "dur_us",
        "children", "events", "parent",
    )

    def __init__(
        self,
        name: str,
        category: str,
        attrs: dict,
        seq: int,
        start_us: float,
        parent: Optional["Span"],
    ) -> None:
        self.name = name
        self.category = category
        self.attrs = attrs
        self.seq = seq
        self.start_us = start_us
        self.dur_us = 0.0
        self.children: list[Span] = []
        self.events: list[Event] = []
        self.parent = parent

    def set(self, **attrs) -> "Span":
        """Attach (or overwrite) attributes while the span is open."""
        self.attrs.update(attrs)
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<span {self.name!r} #{self.seq} {self.attrs}>"


class Event:
    """One instant decision point inside a span."""

    __slots__ = ("name", "category", "attrs", "seq", "ts_us")

    def __init__(
        self, name: str, category: str, attrs: dict, seq: int, ts_us: float
    ) -> None:
        self.name = name
        self.category = category
        self.attrs = attrs
        self.seq = seq
        self.ts_us = ts_us

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<event {self.name!r} #{self.seq} {self.attrs}>"


class _SpanHandle:
    """Context manager closing one span (re-entrant tracers need one
    handle per ``span()`` call, so the handle is separate from Span)."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self.span = span

    def set(self, **attrs) -> "_SpanHandle":
        self.span.set(**attrs)
        return self

    def __enter__(self) -> "_SpanHandle":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.span.attrs.setdefault("error", exc_type.__name__)
        self._tracer._close(self.span)


class _NullSpanHandle:
    """The do-nothing span handle the :class:`NullTracer` hands out."""

    __slots__ = ()

    def set(self, **attrs) -> "_NullSpanHandle":
        return self

    def __enter__(self) -> "_NullSpanHandle":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NULL_SPAN_HANDLE = _NullSpanHandle()


class NullTracer:
    """The disabled tracer: every operation is a constant no-op.

    Call sites that would build an attribute dict should still guard
    with ``if tracer.enabled:`` — that keeps the disabled cost at one
    attribute load and one branch.
    """

    __slots__ = ()
    enabled = False

    def span(self, name: str, category: str = CAT_COMPILE, **attrs):
        return _NULL_SPAN_HANDLE

    def event(self, name: str, category: str = CAT_COMPILE, **attrs) -> None:
        return None


#: the process-wide disabled tracer (stateless, safe to share)
NULL_TRACER = NullTracer()


class Tracer:
    """An enabled tracer: records spans and events for later export."""

    enabled = True

    def __init__(self, clock: Optional[Callable[[], float]] = None) -> None:
        #: microsecond clock; injectable for deterministic tests
        self._clock = clock or (lambda: time.perf_counter_ns() / 1000.0)
        self.roots: list[Span] = []
        #: events emitted outside any open span
        self.orphan_events: list[Event] = []
        self._stack: list[Span] = []
        self._seq = 0

    # -- recording ---------------------------------------------------------

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def span(self, name: str, category: str = CAT_COMPILE, **attrs) -> _SpanHandle:
        parent = self._stack[-1] if self._stack else None
        span = Span(name, category, attrs, self._next_seq(), self._clock(), parent)
        if parent is None:
            self.roots.append(span)
        else:
            parent.children.append(span)
        self._stack.append(span)
        return _SpanHandle(self, span)

    def _close(self, span: Span) -> None:
        span.dur_us = max(0.0, self._clock() - span.start_us)
        # Close any children left open by an exception unwinding past
        # their handles, then the span itself.
        while self._stack and self._stack[-1] is not span:
            self._stack.pop()
        if self._stack and self._stack[-1] is span:
            self._stack.pop()

    def event(self, name: str, category: str = CAT_COMPILE, **attrs) -> Event:
        event = Event(name, category, attrs, self._next_seq(), self._clock())
        if self._stack:
            self._stack[-1].events.append(event)
        else:
            self.orphan_events.append(event)
        return event

    # -- reading -----------------------------------------------------------

    def walk(self) -> Iterator[tuple[Span, int]]:
        """Every recorded span, depth-first, with its nesting depth."""
        stack: list[tuple[Span, int]] = [(s, 0) for s in reversed(self.roots)]
        while stack:
            span, depth = stack.pop()
            yield span, depth
            for child in reversed(span.children):
                stack.append((child, depth + 1))

    def all_events(self) -> Iterator[Event]:
        """Every instant event, in recording (seq) order."""
        events = list(self.orphan_events)
        for span, _ in self.walk():
            events.extend(span.events)
        return iter(sorted(events, key=lambda e: e.seq))

    def events_named(self, name: str) -> list[Event]:
        return [e for e in self.all_events() if e.name == name]

    def total(self, event_name: str, attr: str = "n") -> int:
        """Sum an integer attribute over every event with that name.

        Stat-counter events carry their increment in ``n`` (default 1),
        so ``tracer.total('type_tests')`` equals the compiler's
        ``stats['type_tests']`` counter summed over every compile the
        tracer observed — the acceptance check of this subsystem.
        """
        return sum(int(e.attrs.get(attr, 1)) for e in self.events_named(event_name))

    def spans_named(self, name: str) -> list[Span]:
        return [span for span, _ in self.walk() if span.name == name]
