"""The deterministic activation-tick profiler.

Wall-clock sampling would make every profile a different profile — the
numbers here feed goldens, CI artifacts, and the paper-style "where do
the sends go" tables, so the profiler ticks on *deterministic* events
instead:

* an **activation tick** for every fresh activation entering the
  dispatch loop (``pc == 0``) or direct-called by a translated body's
  trampoline — the modeled analogue of a call-stack sample;
* a **branch tick** for every taken backward branch (threaded tier:
  ``next_pc <= current index``; translated tier: the emitter plants the
  same test at emission time), so loop-heavy bodies weigh what they
  cost even when they rarely activate;
* an **interp tick** for every interpreter-tier entry (degraded bodies
  push no VM frame, so the activation hook cannot see them).

Each tick attributes to the executing code body and its tier
(translated / optimizing / pessimistic / interpreter), captures the
current frame stack for the flamegraph exporters
(:func:`repro.obs.export.speedscope_profile`,
:func:`repro.obs.export.collapsed_stacks`), and advances the tick clock
that stamps IC lifecycle transitions (:mod:`.siteprof`).  Tier
residency over time is kept as a bounded ring of per-window tier
counts.

Send-site hotness needs no ticks at all: the inline-cache counters the
VM already maintains (hits / misses / relinks per
:class:`~repro.vm.code.InlineCacheSite`) *are* the per-site send
counts, read at snapshot time — including sites of bodies invalidation
retired mid-run, which the profiler pins (``note_retired``) so their
counters survive cache eviction.

The contract with the modeled measurements: the profiler never touches
``vm.cycles`` / ``vm.instructions`` / the IC counters, the hooks in the
hot paths are emitted (translated tier) or branched-around (threaded
tier) only when a profiler is installed, and everything it records is
derived from deterministic counts — so modeled numbers are bit-identical
with profiling on or off, profiling off costs one ``is not None`` test
per run segment, and two profiled runs of the same workload serialize
to byte-identical JSON (:meth:`Profiler.to_json`).
"""

from __future__ import annotations

import json
from collections import deque
from itertools import chain

from .siteprof import ICLifecycleTracker, collect_sites, fanout_histogram

#: schema identifier for the serialized profile (bump on shape change)
PROFILE_SCHEMA = "repro-profile/1"

#: activation ticks per tier-residency window (one ring entry each)
DEFAULT_WINDOW = 1024

#: ring capacity: windows kept (older residency entries fall off)
DEFAULT_RING = 256

#: frames kept per captured stack (deep recursion truncates at the root)
DEFAULT_STACK_DEPTH = 32

TIER_NAMES = ("translated", "optimizing", "pessimistic", "interpreter")


class Profiler:
    """Per-runtime deterministic profiler (installed as ``runtime.profiler``).

    Enabling is a construction-time decision (``REPRO_PROFILE=1`` or
    ``Runtime(..., profile=True)``): the translated-tier tick accounting
    is compiled into generated code the same way modeled counters are,
    so a mid-run toggle would leave already-translated bodies silent.
    """

    __slots__ = (
        "runtime", "stack_depth", "window",
        "ticks", "activation_ticks", "branch_ticks", "interp_ticks",
        "body_ticks", "body_activations", "body_tier", "tier_ticks",
        "stack_counts", "residency", "_window_counts",
        "ic", "retired_codes",
    )

    def __init__(
        self,
        runtime,
        stack_depth: int = DEFAULT_STACK_DEPTH,
        window: int = DEFAULT_WINDOW,
        ring_capacity: int = DEFAULT_RING,
    ) -> None:
        self.runtime = runtime
        self.stack_depth = stack_depth
        self.window = window
        self.ticks = 0
        self.activation_ticks = 0
        self.branch_ticks = 0
        self.interp_ticks = 0
        #: code-body name -> ticks attributed (all kinds)
        self.body_ticks: dict[str, int] = {}
        #: code-body name -> activation ticks only
        self.body_activations: dict[str, int] = {}
        #: code-body name -> tier of its most recent tick
        self.body_tier: dict[str, str] = {}
        self.tier_ticks = {name: 0 for name in TIER_NAMES}
        #: captured frame stacks -> ticks (the flamegraph weights)
        self.stack_counts: dict[tuple, int] = {}
        #: tier-residency ring: one entry per completed tick window
        self.residency: deque = deque(maxlen=ring_capacity)
        self._window_counts = {name: 0 for name in TIER_NAMES}
        self.ic = ICLifecycleTracker()
        #: bodies invalidation retired, pinned so their IC counters stay
        #: attributable after the runtime's caches dropped them
        self.retired_codes: dict[int, object] = {}

    # ------------------------------------------------------------------
    # Tick hooks (the only methods hot paths call)
    # ------------------------------------------------------------------

    def _tick(self, name: str, tier: str) -> None:
        self.ticks += 1
        self.tier_ticks[tier] += 1
        self.body_ticks[name] = self.body_ticks.get(name, 0) + 1
        self.body_tier[name] = tier
        window = self._window_counts
        window[tier] += 1
        if self.ticks % self.window == 0:
            self.residency.append({"tick": self.ticks, **window})
            for key in window:
                window[key] = 0

    def _capture_stack(self, extra: str = "") -> None:
        frames = self.runtime.frames
        stack = tuple(f.code.name for f in frames[-self.stack_depth:])
        if extra:
            stack += (extra,)
        self.stack_counts[stack] = self.stack_counts.get(stack, 0) + 1

    def tick_activation(self, frame) -> None:
        """A fresh activation entered the dispatch loop (or was
        direct-called by a translated trampoline).  ``frame`` is already
        on the runtime's frame stack."""
        code = frame.code
        name = code.name
        tier = "translated" if code.translated else code.tier
        self.activation_ticks += 1
        self.body_activations[name] = self.body_activations.get(name, 0) + 1
        self._tick(name, tier)
        self._capture_stack()

    def tick_branch(self, frame) -> None:
        """A taken backward branch in ``frame``'s body."""
        code = frame.code
        tier = "translated" if code.translated else code.tier
        self.branch_ticks += 1
        self._tick(code.name, tier)
        self._capture_stack()

    def tick_interp(self, name: str) -> None:
        """An interpreter-tier entry (no VM frame is pushed for it)."""
        self.interp_ticks += 1
        self._tick(name, "interpreter")
        self._capture_stack(extra=name)

    def note_ic(self, site, kind: str) -> None:
        """An inline-cache cold-path event (from ``_send_miss``)."""
        self.ic.note(site, kind, self.ticks)

    def note_retired(self, code) -> None:
        """Invalidation retired ``code``: pin it so its send-site
        counters still aggregate into the profile."""
        if getattr(code, "ic_sites", None):
            self.retired_codes.setdefault(id(code), code)

    # ------------------------------------------------------------------
    # Snapshot
    # ------------------------------------------------------------------

    def _all_codes(self):
        """Every body whose IC counters belong in the profile, once:
        the live caches, retired bodies still held by live frames, and
        retired bodies only the profiler still pins."""
        seen: set[int] = set()
        for code in chain(
            self.runtime.iter_compiled_codes(),
            self.runtime._retired_live,
            self.retired_codes.values(),
        ):
            if id(code) not in seen:
                seen.add(id(code))
                yield code

    def snapshot(self) -> dict:
        """The whole profile as one JSON-ready dict (deterministic:
        name-keyed, hottest-first with full tie-breaking, no wall
        clock)."""
        bodies = [
            {
                "name": name,
                "ticks": self.body_ticks[name],
                "activations": self.body_activations.get(name, 0),
                "tier": self.body_tier[name],
            }
            for name in sorted(
                self.body_ticks, key=lambda n: (-self.body_ticks[n], n)
            )
        ]
        sites = collect_sites(self._all_codes(), self.ic)
        residency = list(self.residency)
        if any(self._window_counts.values()):
            residency.append({"tick": self.ticks, **self._window_counts})
        stacks = [
            {"frames": list(stack), "ticks": count}
            for stack, count in sorted(
                self.stack_counts.items(), key=lambda kv: (-kv[1], kv[0])
            )
        ]
        return {
            "schema": PROFILE_SCHEMA,
            "window": self.window,
            "ticks": {
                "total": self.ticks,
                "activation": self.activation_ticks,
                "branch": self.branch_ticks,
                "interp": self.interp_ticks,
            },
            "tiers": dict(self.tier_ticks),
            "tier_residency": residency,
            "bodies": bodies,
            "sites": sites,
            "fanout_histogram": fanout_histogram(sites),
            "ic_events": dict(self.ic.events),
            "stacks": stacks,
        }

    def to_json(self, indent: int = 1) -> str:
        """Canonical serialization: two identical runs produce
        byte-identical output (sorted keys, no timestamps)."""
        return json.dumps(self.snapshot(), sort_keys=True, indent=indent)


def profiler_for(runtime):
    """The runtime's profiler, or None (profiling off)."""
    return getattr(runtime, "profiler", None)
