"""The metrics registry: named counters, gauges, and histograms.

The runtime and compiler keep their hot counters as plain attribute
increments (``self.stats["type_tests"] += 1``, ``vm.send_hits += 1``)
— a method call per increment in the dispatch loop would be measurable
host overhead.  The registry therefore plays two roles:

* a home for *first-class* metrics (``Counter``/``Gauge``/
  ``Histogram`` objects) owned by cold code paths, and
* a **collector** that pulls the scattered raw counters into one
  namespace after (or during) a run — :func:`registry_for_runtime`
  produces the unified view: ``compiler.*`` effort/effect stats,
  ``vm.*`` execution measurements, ``ic.*`` inline-cache accounting,
  ``dispatch.*`` predecode/superinstruction counts, ``translate.*``
  translation-tier accounting, ``tiers.*`` degradations,
  ``invalidation.*`` dependency/invalidation accounting, and
  ``faults.*`` injection hits.

Snapshots are plain dicts of primitives (JSON-ready); ``diff`` gives
the delta between two snapshots, which is how a benchmark isolates the
cost of its measured region from warm-up.
"""

from __future__ import annotations

from typing import Optional

#: separator between a scope (universe id) and a metric's base name in
#: a scoped key.  Metric names themselves use "." namespacing and never
#: contain "/", so the split is unambiguous: "u0/vm.cycles" is the
#: "vm.cycles" counter of tenant "u0".
SCOPE_SEP = "/"


def scoped_name(scope: str, name: str) -> str:
    return f"{scope}{SCOPE_SEP}{name}"


def split_scoped(name: str) -> tuple:
    """``(scope, base)`` for a scoped key, ``(None, name)`` otherwise."""
    scope, sep, base = name.partition(SCOPE_SEP)
    if sep and scope:
        return scope, base
    return None, name


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (n={n})")
        self.value += n

    def snapshot(self):
        return self.value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Counter {self.name}={self.value}>"


class Gauge:
    """A point-in-time value (may go up or down; may be float)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def set(self, value) -> None:
        self.value = value

    def snapshot(self):
        return self.value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Gauge {self.name}={self.value}>"


class Histogram:
    """A distribution summary: count, sum, min, max.

    No buckets: the consumers here want "how many loop-analysis rounds
    did methods need, and what was the worst case", not quantiles.
    """

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0
        self.min = None
        self.max = None

    def observe(self, value) -> None:
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    def snapshot(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Histogram {self.name} n={self.count} sum={self.total}>"


class MetricsRegistry:
    """A namespace of metrics; one per run (or one per subsystem)."""

    def __init__(self) -> None:
        self._metrics: dict[str, object] = {}

    def _get(self, name: str, cls):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name)
            self._metrics[name] = metric
        elif type(metric) is not cls:
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, not {cls.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def get(self, name: str):
        """The metric's snapshot value, or None when absent."""
        metric = self._metrics.get(name)
        return None if metric is None else metric.snapshot()

    def snapshot(self) -> dict:
        """Every metric's current value, keyed by name (JSON-ready)."""
        return {name: m.snapshot() for name, m in sorted(self._metrics.items())}

    @staticmethod
    def diff(before: dict, after: dict) -> dict:
        """Per-metric delta between two snapshots.

        Numeric metrics subtract; histogram snapshots diff their
        ``count``/``sum`` fields (min/max are not meaningful as deltas
        and are dropped).  Metrics absent from ``before`` count from
        zero.
        """
        out: dict = {}
        for name, now in after.items():
            was = before.get(name)
            if isinstance(now, dict):
                was = was or {}
                out[name] = {
                    "count": now.get("count", 0) - was.get("count", 0),
                    "sum": (now.get("sum") or 0) - (was.get("sum") or 0),
                }
            else:
                out[name] = now - (was or 0)
        return out

    def scoped(self, universe_id: str) -> "ScopedView":
        """A per-tenant view of this registry: every metric created (or
        read) through the view lives under ``<universe_id>/<name>``, so
        one registry can hold several universes' ``vm.*``/``ic.*``/…
        counters side by side without collisions."""
        if not universe_id or SCOPE_SEP in universe_id:
            raise ValueError(f"invalid metric scope {universe_id!r}")
        return ScopedView(self, universe_id)

    def render(self, title: str = "metrics") -> str:
        """A plain-text two-column table of every metric."""
        lines = [title]
        for name, value in self.snapshot().items():
            if isinstance(value, dict):
                value = (
                    f"n={value['count']} sum={value['sum']} "
                    f"min={value['min']} max={value['max']}"
                )
            elif isinstance(value, float):
                value = f"{value:.6f}"
            lines.append(f"  {name:40} {value}")
        return "\n".join(lines)


class ScopedView:
    """A :class:`MetricsRegistry` facade that prefixes every name with
    one tenant's scope.

    Quacks like the registry for everything the collectors use
    (``counter``/``gauge``/``histogram``/``names``/``get``/
    ``snapshot``), so :func:`collect_runtime` works unchanged against a
    view — that is what makes ``registry_for_runtime(rt, scope=...)``
    a one-line change rather than a parallel collector.
    """

    __slots__ = ("_registry", "scope")

    def __init__(self, registry: MetricsRegistry, scope: str) -> None:
        self._registry = registry
        self.scope = scope

    def counter(self, name: str) -> Counter:
        return self._registry.counter(scoped_name(self.scope, name))

    def gauge(self, name: str) -> Gauge:
        return self._registry.gauge(scoped_name(self.scope, name))

    def histogram(self, name: str) -> Histogram:
        return self._registry.histogram(scoped_name(self.scope, name))

    def names(self) -> list[str]:
        prefix = self.scope + SCOPE_SEP
        return sorted(
            name[len(prefix):]
            for name in self._registry.names()
            if name.startswith(prefix)
        )

    def get(self, name: str):
        return self._registry.get(scoped_name(self.scope, name))

    def snapshot(self) -> dict:
        """This tenant's metrics only, with the scope prefix stripped."""
        prefix = self.scope + SCOPE_SEP
        return {
            name[len(prefix):]: value
            for name, value in self._registry.snapshot().items()
            if name.startswith(prefix)
        }


# ---------------------------------------------------------------------------
# Collectors: raw counters -> unified names
# ---------------------------------------------------------------------------


def collect_compile_stats(registry: MetricsRegistry, stats: dict) -> None:
    """File the compiler's effort/effect counters under ``compiler.*``."""
    for key, value in sorted(stats.items()):
        registry.counter(f"compiler.{key}").inc(value)


def collect_runtime(registry: MetricsRegistry, runtime) -> None:
    """Pull one Runtime's scattered counters into the registry."""
    registry.counter("vm.cycles").inc(runtime.cycles)
    registry.counter("vm.instructions").inc(runtime.instructions)
    registry.counter("vm.code_bytes").inc(runtime.code_bytes)
    registry.counter("vm.methods_compiled").inc(runtime.methods_compiled)
    registry.gauge("vm.compile_seconds").set(runtime.compile_seconds)
    registry.counter("ic.hits").inc(runtime.send_hits)
    registry.counter("ic.misses").inc(runtime.send_misses)
    registry.counter("ic.megamorphic").inc(runtime.send_megamorphic)
    registry.counter("ic.pic_hits").inc(runtime.send_pic_hits)
    # Dispatch-ladder state (REPRO_PIC=1; all zero with the ladder off).
    # The histogram is the ladder-state census across warm sites: 1 for
    # a monomorphic site, 2..pic_depth for a PIC of that many rows,
    # pic_depth+1 for a site that overflowed into the megamorphic table.
    registry.counter("ic.mega_transitions").inc(runtime.mega_transitions)
    registry.counter("dispatch.mega_table_hits").inc(
        runtime.mega_table_hits
    )
    depth_hist = registry.histogram("ic.pic_depth_histogram")
    for code in runtime.iter_compiled_codes():
        for site in getattr(code, "ic_sites", ()):
            if site.mega is not None:
                depth_hist.observe(runtime.pic_depth + 1)
            elif site.pic is not None:
                depth_hist.observe(len(site.pic))
            elif site.entries:
                depth_hist.observe(1)
    registry.counter("compiler.sharing.hits").inc(runtime.share_hits)
    registry.counter("compiler.sharing.stores").inc(runtime.share_stores)
    for key, value in sorted(runtime.translate_stats.items()):
        # emit_seconds is host time (a float), not a monotone count
        if key == "emit_seconds":
            registry.gauge("translate.emit_seconds").set(value)
        else:
            registry.counter(f"translate.{key}").inc(value)
    code_cache = getattr(runtime, "code_cache", None)
    if code_cache is not None:
        for key, value in sorted(code_cache.stats.items()):
            registry.counter(f"compiler.codecache.{key}").inc(value)
    collect_compile_stats(registry, runtime.aggregate_compile_stats())
    for key, value in sorted(runtime.aggregate_dispatch_stats().items()):
        registry.counter(f"dispatch.{key}").inc(value)
    for key, value in sorted(runtime.recovery.summary().items()):
        registry.counter(f"tiers.{key}").inc(value)
    # The ring may have wrapped: `total` stays exact, `dropped` says how
    # many events the per-edge summary above is missing.
    registry.counter("tiers.degradations").inc(runtime.recovery.total)
    registry.counter("tiers.dropped").inc(runtime.recovery.dropped)
    for key, value in sorted(runtime.universe.deps.stats.items()):
        registry.counter(f"invalidation.{key}").inc(value)
    registry.gauge("invalidation.edges_live").set(
        runtime.universe.deps.edge_count()
    )
    profiler = getattr(runtime, "profiler", None)
    if profiler is not None:
        collect_profile(registry, profiler)


def collect_profile(registry, profiler) -> None:
    """File a :class:`~repro.obs.profile.Profiler`'s tick totals under
    ``profile.*`` (per-tier tick counts included)."""
    registry.counter("profile.ticks").inc(profiler.ticks)
    registry.counter("profile.ticks.activation").inc(profiler.activation_ticks)
    registry.counter("profile.ticks.branch").inc(profiler.branch_ticks)
    registry.counter("profile.ticks.interp").inc(profiler.interp_ticks)
    for tier, count in sorted(profiler.tier_ticks.items()):
        registry.counter(f"profile.tier.{tier}").inc(count)
    for kind, count in sorted(profiler.ic.events.items()):
        registry.counter(f"profile.ic_events.{kind}").inc(count)


def collect_graph(registry: MetricsRegistry, graph) -> None:
    """File one CompiledGraph's stats: node mix + effort counters.

    Used by :mod:`repro.tools.report` for per-method (rather than
    per-run) views; node-kind counts go under ``graph.nodes.*``.
    """
    registry.gauge("graph.nodes.total").set(graph.stats.total)
    for kind, count in sorted(graph.stats.counts.items()):
        registry.gauge(f"graph.nodes.{kind}").set(count)
    collect_compile_stats(registry, graph.compile_stats)


def registry_for_runtime(
    runtime, scope: Optional[str] = None
) -> MetricsRegistry:
    """The unified post-run view of one Runtime's measurements.

    With ``scope`` (typically ``runtime.universe.universe_id``) the
    counters are collected through :meth:`MetricsRegistry.scoped`, so
    the snapshot's keys read ``<scope>/vm.cycles`` etc. — the
    per-tenant form multi-universe hosts aggregate into one registry.
    """
    registry = MetricsRegistry()
    target = registry.scoped(scope) if scope is not None else registry
    collect_runtime(target, runtime)
    return registry
