"""Unified observability: tracing, metrics, exporters, narratives.

The paper's evaluation is an exercise in counting — type tests
executed, sends left dynamic, loop-analysis rounds until fixed point,
code-size blowup from splitting.  This package is the one place those
counts (and the *decisions* behind them) are recorded:

* :mod:`.trace` — hierarchical compilation spans and instant events,
  recorded by a :class:`Tracer` with near-zero overhead when disabled
  (the default is the :data:`NULL_TRACER`, whose every operation is a
  no-op).
* :mod:`.metrics` — named ``Counter``/``Gauge``/``Histogram`` objects
  in a :class:`MetricsRegistry` with a snapshot/diff API, plus
  collectors that unify the runtime's and compiler's raw counters
  under stable metric names.
* :mod:`.export` — JSON-lines dump, Chrome ``chrome://tracing``
  trace-event output, speedscope/collapsed flamegraph exports of a
  profile, and a structural schema check for all of them.
* :mod:`.narrate` — the human-readable "why was this send not inlined
  / this test not elided" story, reconstructed from a trace.
* :mod:`.profile` / :mod:`.siteprof` — the deterministic
  activation-tick profiler and the inline-cache lifecycle tracker
  (per-site state transitions, receiver-map fan-out).

Nothing here touches the modeled measurements: tracing or profiling on
or off, the cycle/instruction/code-byte numbers are bit-identical
(goldens in ``tests/vm/test_golden_determinism.py`` and
``tests/obs/test_profile.py`` enforce this).
"""

from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    ScopedView,
    registry_for_runtime,
    split_scoped,
)
from .trace import NULL_TRACER, NullTracer, Span, Tracer
from .export import (
    chrome_trace,
    check_schema,
    collapsed_stacks,
    speedscope_profile,
    to_jsonl_records,
    validate_chrome_trace,
    validate_speedscope,
    write_chrome_trace,
    write_collapsed,
    write_jsonl,
    write_speedscope,
)
from .narrate import narrate
from .profile import PROFILE_SCHEMA, Profiler, profiler_for
from .siteprof import ICLifecycleTracker, classify_site, collect_sites

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ScopedView",
    "registry_for_runtime",
    "split_scoped",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Tracer",
    "chrome_trace",
    "check_schema",
    "collapsed_stacks",
    "speedscope_profile",
    "to_jsonl_records",
    "validate_chrome_trace",
    "validate_speedscope",
    "write_chrome_trace",
    "write_collapsed",
    "write_jsonl",
    "write_speedscope",
    "narrate",
    "PROFILE_SCHEMA",
    "Profiler",
    "profiler_for",
    "ICLifecycleTracker",
    "classify_site",
    "collect_sites",
]
