"""The reference AST interpreter (semantic ground truth)."""

from .interpreter import Activation, Interpreter

__all__ = ["Activation", "Interpreter"]
